//! The built-in function library (the engine's F&O subset — every entry
//! in `xqr_compiler::builtins::BUILTINS` is implemented here; a test
//! asserts the two lists stay in sync).

use crate::env::ExecState;
use crate::eval::{Evaluator, Flow, Sink};
use crate::regex::Regex;
use crate::value::{atomize, atomize_one, deep_equal_item, Item, Sequence};
use std::collections::HashSet;
use xqr_compiler::Core;
use xqr_store::NodeRef;
use xqr_xdm::{AtomicType, AtomicValue, Decimal, Duration, Error, ErrorCode, Result};

/// Evaluate a built-in call, streaming results into `sink`.
pub fn call(
    ev: &Evaluator<'_>,
    name: &str,
    args: &[Core],
    st: &mut ExecState,
    sink: &mut dyn Sink,
) -> Result<Flow> {
    let result = dispatch(ev, name, args, st)?;
    for item in result {
        if sink.accept(ev, st, item)? == Flow::Done {
            return Ok(Flow::Done);
        }
    }
    Ok(Flow::More)
}

fn one_string(
    ev: &Evaluator<'_>,
    args: &[Core],
    idx: usize,
    st: &mut ExecState,
) -> Result<Option<String>> {
    let store = st.store.clone();
    let items = ev.eval(&args[idx], st)?;
    Ok(atomize_one(&items, &store, "string argument")?.map(|v| v.string_value()))
}

fn string_or_empty(
    ev: &Evaluator<'_>,
    args: &[Core],
    idx: usize,
    st: &mut ExecState,
) -> Result<String> {
    Ok(one_string(ev, args, idx, st)?.unwrap_or_default())
}

/// The context item, or the focus error.
fn ctx_item(st: &ExecState) -> Result<Item> {
    st.context_item().cloned()
}

fn int_item(i: i64) -> Sequence {
    vec![Item::integer(i)]
}

fn str_item(s: impl AsRef<str>) -> Sequence {
    vec![Item::string(s.as_ref())]
}

fn bool_item(b: bool) -> Sequence {
    vec![Item::boolean(b)]
}

fn dispatch(ev: &Evaluator<'_>, name: &str, args: &[Core], st: &mut ExecState) -> Result<Sequence> {
    let store = st.store.clone();
    let tz = ev.dyn_ctx.implicit_timezone;
    Ok(match name {
        // ---- context ---------------------------------------------------------
        "position" => {
            let f = st.focus().ok_or_else(|| {
                Error::new(ErrorCode::MissingContext, "position() outside a focus")
            })?;
            int_item(f.position)
        }
        "last" => {
            let f = st
                .focus()
                .ok_or_else(|| Error::new(ErrorCode::MissingContext, "last() outside a focus"))?;
            let size = f.size.ok_or_else(|| {
                Error::internal("last() used where context size was not computed")
            })?;
            int_item(size)
        }

        // ---- accessors --------------------------------------------------------
        "string" => {
            let s = if args.is_empty() {
                ctx_item(st)?.string_value(&store)
            } else {
                let items = ev.eval(&args[0], st)?;
                match items.len() {
                    0 => String::new(),
                    1 => items[0].string_value(&store),
                    _ => return Err(Error::type_error("fn:string on a multi-item sequence")),
                }
            };
            str_item(s)
        }
        "data" => {
            let items = ev.eval(&args[0], st)?;
            atomize(&items, &store)?
                .into_iter()
                .map(Item::Atomic)
                .collect()
        }
        "node-name" => {
            let items = ev.eval(&args[0], st)?;
            match items.as_slice() {
                [] => Vec::new(),
                [item] => match item.node_name(&store) {
                    Some(q) => vec![Item::Atomic(AtomicValue::QName(q))],
                    None => Vec::new(),
                },
                _ => return Err(Error::type_error("node-name requires at most one node")),
            }
        }
        "name" | "local-name" | "namespace-uri" => {
            let item = if args.is_empty() {
                ctx_item(st)?
            } else {
                let items = ev.eval(&args[0], st)?;
                match items.len() {
                    0 => return Ok(str_item("")),
                    1 => items[0].clone(),
                    _ => return Err(Error::type_error(format!("{name} requires one node"))),
                }
            };
            let q = item.node_name(&store);
            let s = match (name, q) {
                ("name", Some(q)) => q.lexical(),
                ("local-name", Some(q)) => q.local_name().to_string(),
                ("namespace-uri", Some(q)) => q.namespace().unwrap_or("").to_string(),
                _ => String::new(),
            };
            str_item(s)
        }
        "root" => {
            let item = if args.is_empty() {
                ctx_item(st)?
            } else {
                let items = ev.eval(&args[0], st)?;
                match items.len() {
                    0 => return Ok(Vec::new()),
                    1 => items[0].clone(),
                    _ => return Err(Error::type_error("root requires one node")),
                }
            };
            match item.as_node() {
                Some(n) => vec![Item::Node(NodeRef::new(n.doc, xqr_store::NodeId(0)))],
                None => return Err(Error::type_error("root of a non-node")),
            }
        }
        "base-uri" | "document-uri" => {
            let items = ev.eval(&args[0], st)?;
            match items.as_slice() {
                [] => Vec::new(),
                [Item::Node(n)] => match &store.doc_of(*n).uri {
                    Some(u) => vec![Item::Atomic(AtomicValue::AnyUri(u.as_str().into()))],
                    None => Vec::new(),
                },
                _ => return Err(Error::type_error(format!("{name} requires one node"))),
            }
        }

        // ---- documents ---------------------------------------------------------
        "doc" | "document" => {
            let Some(uri) = one_string(ev, args, 0, st)? else {
                return Ok(Vec::new());
            };
            vec![Item::Node(ev.resolve_doc(&uri, st)?)]
        }
        "collection" => {
            if args.is_empty() {
                ev.dyn_ctx
                    .default_collection
                    .iter()
                    .map(|n| Item::Node(*n))
                    .collect()
            } else {
                let Some(uri) = one_string(ev, args, 0, st)? else {
                    return Ok(Vec::new());
                };
                vec![Item::Node(ev.resolve_doc(&uri, st)?)]
            }
        }

        // ---- sequences -----------------------------------------------------------
        "empty" => bool_item(ev.eval_limited(&args[0], st, 1)?.is_empty()),
        "exists" => bool_item(!ev.eval_limited(&args[0], st, 1)?.is_empty()),
        "count" => int_item(ev.eval(&args[0], st)?.len() as i64),
        "distinct-values" => {
            let items = ev.eval(&args[0], st)?;
            let vals = atomize(&items, &store)?;
            let mut out: Vec<AtomicValue> = Vec::new();
            'outer: for v in vals {
                // Untyped values compare as strings here.
                let v = match v {
                    AtomicValue::UntypedAtomic(s) => AtomicValue::String(s),
                    other => other,
                };
                for seen in &out {
                    if let Ok(Some(o)) = seen.value_compare(&v, tz) {
                        if o.is_eq() {
                            continue 'outer;
                        }
                    }
                    // NaN equals NaN for distinct-values purposes.
                    if seen.is_nan() && v.is_nan() {
                        continue 'outer;
                    }
                }
                out.push(v);
            }
            out.into_iter().map(Item::Atomic).collect()
        }
        "distinct-nodes" => {
            let items = ev.eval(&args[0], st)?;
            let mut seen = HashSet::new();
            let mut out = Vec::new();
            for i in items {
                match i.as_node() {
                    Some(n) => {
                        if seen.insert(n) {
                            out.push(Item::Node(n));
                        }
                    }
                    None => return Err(Error::type_error("distinct-nodes requires nodes")),
                }
            }
            out
        }
        "reverse" => {
            let mut items = ev.eval(&args[0], st)?;
            items.reverse();
            items
        }
        "subsequence" => {
            let items = ev.eval(&args[0], st)?;
            let start = number_arg(ev, args, 1, st)?;
            let len = if args.len() > 2 {
                Some(number_arg(ev, args, 2, st)?)
            } else {
                None
            };
            let start_round = start.round();
            let end = len.map(|l| start_round + l.round());
            items
                .into_iter()
                .enumerate()
                .filter(|(i, _)| {
                    let p = *i as f64 + 1.0;
                    p >= start_round && end.is_none_or(|e| p < e)
                })
                .map(|(_, it)| it)
                .collect()
        }
        "insert-before" => {
            let mut items = ev.eval(&args[0], st)?;
            let pos = integer_arg(ev, args, 1, st)?.max(1) as usize;
            let ins = ev.eval(&args[2], st)?;
            let at = (pos - 1).min(items.len());
            items.splice(at..at, ins);
            items
        }
        "remove" => {
            let items = ev.eval(&args[0], st)?;
            let pos = integer_arg(ev, args, 1, st)?;
            items
                .into_iter()
                .enumerate()
                .filter(|(i, _)| (*i as i64 + 1) != pos)
                .map(|(_, it)| it)
                .collect()
        }
        "index-of" => {
            let items = ev.eval(&args[0], st)?;
            let target_items = ev.eval(&args[1], st)?;
            let Some(target) = atomize_one(&target_items, &store, "index-of")? else {
                return Ok(Vec::new());
            };
            let vals = atomize(&items, &store)?;
            vals.into_iter()
                .enumerate()
                .filter(|(_, v)| {
                    let v = match v {
                        AtomicValue::UntypedAtomic(s) => AtomicValue::String(s.clone()),
                        other => other.clone(),
                    };
                    matches!(v.value_compare(&target, tz), Ok(Some(o)) if o.is_eq())
                })
                .map(|(i, _)| Item::integer(i as i64 + 1))
                .collect()
        }
        "zero-or-one" => {
            let items = ev.eval(&args[0], st)?;
            if items.len() > 1 {
                return Err(Error::new(ErrorCode::Cardinality, "zero-or-one got more"));
            }
            items
        }
        "one-or-more" => {
            let items = ev.eval(&args[0], st)?;
            if items.is_empty() {
                return Err(Error::new(ErrorCode::Cardinality, "one-or-more got empty"));
            }
            items
        }
        "exactly-one" => {
            let items = ev.eval(&args[0], st)?;
            if items.len() != 1 {
                return Err(Error::new(
                    ErrorCode::Cardinality,
                    format!("exactly-one got {}", items.len()),
                ));
            }
            items
        }
        "unordered" => ev.eval(&args[0], st)?,
        "deep-equal" => {
            let a = ev.eval(&args[0], st)?;
            let b = ev.eval(&args[1], st)?;
            bool_item(
                a.len() == b.len() && a.iter().zip(&b).all(|(x, y)| deep_equal_item(x, y, &store)),
            )
        }

        // ---- aggregates -------------------------------------------------------------
        "sum" => {
            let items = ev.eval(&args[0], st)?;
            if items.is_empty() {
                if args.len() > 1 {
                    return ev.eval(&args[1], st);
                }
                return Ok(int_item(0));
            }
            let vals = atomize(&items, &store)?;
            vec![Item::Atomic(fold_numeric(vals, "sum")?)]
        }
        "avg" => {
            let items = ev.eval(&args[0], st)?;
            if items.is_empty() {
                return Ok(Vec::new());
            }
            let n = items.len() as i64;
            let vals = atomize(&items, &store)?;
            let total = fold_numeric(vals, "avg")?;
            let r = xqr_compiler::ops::arith(
                xqr_xqparser::ast::ArithOp::Div,
                &total,
                &AtomicValue::Integer(n),
            )?;
            vec![Item::Atomic(r)]
        }
        "min" | "max" => {
            let items = ev.eval(&args[0], st)?;
            if items.is_empty() {
                return Ok(Vec::new());
            }
            let vals = atomize(&items, &store)?;
            let mut best: Option<AtomicValue> = None;
            for v in vals {
                let v = match v {
                    AtomicValue::UntypedAtomic(s) => {
                        AtomicValue::Double(xqr_xdm::parse_double(s.trim())?)
                    }
                    other => other,
                };
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = b.value_compare(&v, tz)?;
                        match ord {
                            Some(o) => {
                                if (name == "min") == o.is_le() {
                                    b
                                } else {
                                    v
                                }
                            }
                            None => b, // NaN: keep first (spec allows NaN result; simplified)
                        }
                    }
                });
            }
            vec![Item::Atomic(best.expect("non-empty"))]
        }

        // ---- booleans -----------------------------------------------------------------
        "not" => bool_item(!ev.eval_ebv(&args[0], st)?),
        "true" => bool_item(true),
        "false" => bool_item(false),
        "boolean" => bool_item(ev.eval_ebv(&args[0], st)?),

        // ---- numerics --------------------------------------------------------------------
        "number" => {
            let v = if args.is_empty() {
                ctx_item(st)?.typed_value(&store)?
            } else {
                let items = ev.eval(&args[0], st)?;
                match atomize_one(&items, &store, "number")? {
                    Some(v) => v,
                    None => return Ok(vec![Item::Atomic(AtomicValue::Double(f64::NAN))]),
                }
            };
            // fn:number casts (strings parse as doubles); failures → NaN.
            let d = match v.cast_to(AtomicType::Double) {
                Ok(AtomicValue::Double(d)) => d,
                _ => f64::NAN,
            };
            vec![Item::Atomic(AtomicValue::Double(d))]
        }
        "abs" | "ceiling" | "floor" | "round" => {
            let items = ev.eval(&args[0], st)?;
            let Some(v) = atomize_one(&items, &store, name)? else {
                return Ok(Vec::new());
            };
            vec![Item::Atomic(unary_numeric(name, &v)?)]
        }
        "round-half-to-even" => {
            let items = ev.eval(&args[0], st)?;
            let Some(v) = atomize_one(&items, &store, name)? else {
                return Ok(Vec::new());
            };
            let precision = if args.len() > 1 {
                integer_arg(ev, args, 1, st)?
            } else {
                0
            };
            let r = match v {
                AtomicValue::Integer(_) if precision >= 0 => v,
                AtomicValue::Integer(i) => {
                    AtomicValue::Decimal(Decimal::from_i64(i).round_half_even(precision))
                }
                AtomicValue::Decimal(d) => AtomicValue::Decimal(d.round_half_even(precision)),
                AtomicValue::Double(d) => {
                    let factor = 10f64.powi(precision as i32);
                    let scaled = d * factor;
                    let r = scaled.round_ties_even();
                    AtomicValue::Double(r / factor)
                }
                AtomicValue::Float(f) => {
                    let factor = 10f32.powi(precision as i32);
                    AtomicValue::Float((f * factor).round_ties_even() / factor)
                }
                other => {
                    return Err(Error::type_error(format!(
                        "round-half-to-even on {}",
                        other.type_of().name()
                    )))
                }
            };
            vec![Item::Atomic(r)]
        }

        // ---- strings --------------------------------------------------------------------------
        "concat" => {
            let mut s = String::new();
            for a in args {
                let items = ev.eval(a, st)?;
                if let Some(v) = atomize_one(&items, &store, "concat")? {
                    s.push_str(&v.string_value());
                }
            }
            str_item(s)
        }
        "string-join" => {
            let items = ev.eval(&args[0], st)?;
            let sep = string_or_empty(ev, args, 1, st)?;
            let vals = atomize(&items, &store)?;
            str_item(
                vals.iter()
                    .map(|v| v.string_value())
                    .collect::<Vec<_>>()
                    .join(&sep),
            )
        }
        "string-length" => {
            let s = if args.is_empty() {
                ctx_item(st)?.string_value(&store)
            } else {
                string_or_empty(ev, args, 0, st)?
            };
            int_item(s.chars().count() as i64)
        }
        "substring" => {
            let s = string_or_empty(ev, args, 0, st)?;
            let chars: Vec<char> = s.chars().collect();
            let start = number_arg(ev, args, 1, st)?.round();
            let len = if args.len() > 2 {
                Some(number_arg(ev, args, 2, st)?.round())
            } else {
                None
            };
            let out: String = chars
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    let p = *i as f64 + 1.0;
                    p >= start && len.is_none_or(|l| p < start + l)
                })
                .map(|(_, c)| *c)
                .collect();
            str_item(out)
        }
        "upper-case" => str_item(string_or_empty(ev, args, 0, st)?.to_uppercase()),
        "lower-case" => str_item(string_or_empty(ev, args, 0, st)?.to_lowercase()),
        "contains" => {
            let a = string_or_empty(ev, args, 0, st)?;
            let b = string_or_empty(ev, args, 1, st)?;
            bool_item(a.contains(&b))
        }
        "starts-with" => {
            let a = string_or_empty(ev, args, 0, st)?;
            let b = string_or_empty(ev, args, 1, st)?;
            bool_item(a.starts_with(&b))
        }
        "ends-with" => {
            let a = string_or_empty(ev, args, 0, st)?;
            let b = string_or_empty(ev, args, 1, st)?;
            bool_item(a.ends_with(&b))
        }
        "substring-before" => {
            let a = string_or_empty(ev, args, 0, st)?;
            let b = string_or_empty(ev, args, 1, st)?;
            str_item(a.find(&b).map(|i| a[..i].to_string()).unwrap_or_default())
        }
        "substring-after" => {
            let a = string_or_empty(ev, args, 0, st)?;
            let b = string_or_empty(ev, args, 1, st)?;
            str_item(
                a.find(&b)
                    .map(|i| a[i + b.len()..].to_string())
                    .unwrap_or_default(),
            )
        }
        "normalize-space" => {
            let s = if args.is_empty() {
                ctx_item(st)?.string_value(&store)
            } else {
                string_or_empty(ev, args, 0, st)?
            };
            str_item(s.split_whitespace().collect::<Vec<_>>().join(" "))
        }
        "translate" => {
            let s = string_or_empty(ev, args, 0, st)?;
            let from: Vec<char> = string_or_empty(ev, args, 1, st)?.chars().collect();
            let to: Vec<char> = string_or_empty(ev, args, 2, st)?.chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            str_item(out)
        }
        "matches" => {
            let s = string_or_empty(ev, args, 0, st)?;
            let pattern = string_or_empty(ev, args, 1, st)?;
            bool_item(Regex::new(&pattern)?.is_match(&s))
        }
        "tokenize" => {
            let s = string_or_empty(ev, args, 0, st)?;
            let pattern = string_or_empty(ev, args, 1, st)?;
            let re = Regex::new(&pattern)?;
            if s.is_empty() {
                return Ok(Vec::new());
            }
            re.split(&s).into_iter().map(|t| Item::string(&t)).collect()
        }
        "replace" => {
            let s = string_or_empty(ev, args, 0, st)?;
            let pattern = string_or_empty(ev, args, 1, st)?;
            let replacement = string_or_empty(ev, args, 2, st)?;
            let re = Regex::new(&pattern)?;
            str_item(re.replace_all(&s, &replacement))
        }
        "string-to-codepoints" => {
            let s = string_or_empty(ev, args, 0, st)?;
            s.chars().map(|c| Item::integer(c as i64)).collect()
        }
        "codepoints-to-string" => {
            let items = ev.eval(&args[0], st)?;
            let vals = atomize(&items, &store)?;
            let mut s = String::new();
            for v in vals {
                match v.cast_to(AtomicType::Integer)? {
                    AtomicValue::Integer(i) => {
                        let c = u32::try_from(i)
                            .ok()
                            .and_then(char::from_u32)
                            .ok_or_else(|| Error::value("invalid codepoint"))?;
                        s.push(c);
                    }
                    _ => unreachable!("cast to integer"),
                }
            }
            str_item(s)
        }
        "compare" => {
            let a = one_string(ev, args, 0, st)?;
            let b = one_string(ev, args, 1, st)?;
            match (a, b) {
                (Some(a), Some(b)) => int_item(match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                }),
                _ => Vec::new(),
            }
        }

        // ---- dates -----------------------------------------------------------------------------
        "current-dateTime" => vec![Item::Atomic(AtomicValue::DateTime(
            ev.dyn_ctx.current_datetime,
        ))],
        "current-date" => {
            vec![Item::Atomic(AtomicValue::Date(
                ev.dyn_ctx.current_datetime.date(),
            ))]
        }
        "current-time" => {
            vec![Item::Atomic(AtomicValue::Time(
                ev.dyn_ctx.current_datetime.time(),
            ))]
        }
        "implicit-timezone" => {
            vec![Item::Atomic(AtomicValue::DayTimeDuration(
                Duration::from_millis(ev.dyn_ctx.implicit_timezone as i64 * 60_000),
            ))]
        }
        "year-from-date" | "month-from-date" | "day-from-date" => {
            let items = ev.eval(&args[0], st)?;
            let Some(v) = atomize_one(&items, &store, name)? else {
                return Ok(Vec::new());
            };
            let d = match v.cast_to(AtomicType::Date)? {
                AtomicValue::Date(d) => d,
                _ => unreachable!("cast to date"),
            };
            int_item(match name {
                "year-from-date" => d.year as i64,
                "month-from-date" => d.month as i64,
                _ => d.day as i64,
            })
        }
        "year-from-dateTime"
        | "month-from-dateTime"
        | "day-from-dateTime"
        | "hours-from-dateTime"
        | "minutes-from-dateTime"
        | "seconds-from-dateTime" => {
            let items = ev.eval(&args[0], st)?;
            let Some(v) = atomize_one(&items, &store, name)? else {
                return Ok(Vec::new());
            };
            let dt = match v.cast_to(AtomicType::DateTime)? {
                AtomicValue::DateTime(d) => d,
                _ => unreachable!("cast to dateTime"),
            };
            match name {
                "seconds-from-dateTime" => {
                    let millis = dt.second as i64 * 1000 + dt.millis as i64;
                    vec![Item::Atomic(AtomicValue::Decimal(
                        Decimal::from_parts(millis as i128, 3).expect("small scale"),
                    ))]
                }
                _ => int_item(match name {
                    "year-from-dateTime" => dt.year as i64,
                    "month-from-dateTime" => dt.month as i64,
                    "day-from-dateTime" => dt.day as i64,
                    "hours-from-dateTime" => dt.hour as i64,
                    _ => dt.minute as i64,
                }),
            }
        }
        "add-date" => {
            // The talk's F&O sampler: add-date(date, duration) → date.
            let items = ev.eval(&args[0], st)?;
            let Some(v) = atomize_one(&items, &store, name)? else {
                return Ok(Vec::new());
            };
            let d = match v.cast_to(AtomicType::Date)? {
                AtomicValue::Date(d) => d,
                _ => unreachable!("cast to date"),
            };
            let dur_items = ev.eval(&args[1], st)?;
            let Some(dv) = atomize_one(&dur_items, &store, name)? else {
                return Ok(Vec::new());
            };
            let dur = match dv {
                AtomicValue::Duration(d)
                | AtomicValue::YearMonthDuration(d)
                | AtomicValue::DayTimeDuration(d) => d,
                AtomicValue::UntypedAtomic(s) => Duration::parse(s.trim())?,
                other => {
                    return Err(Error::type_error(format!(
                        "add-date needs a duration, got {}",
                        other.type_of().name()
                    )))
                }
            };
            vec![Item::Atomic(AtomicValue::Date(d.add_duration(dur)?))]
        }

        "years-from-duration"
        | "months-from-duration"
        | "days-from-duration"
        | "hours-from-duration"
        | "minutes-from-duration"
        | "seconds-from-duration" => {
            let items = ev.eval(&args[0], st)?;
            let Some(v) = atomize_one(&items, &store, name)? else {
                return Ok(Vec::new());
            };
            let d = match v {
                AtomicValue::Duration(d)
                | AtomicValue::YearMonthDuration(d)
                | AtomicValue::DayTimeDuration(d) => d,
                AtomicValue::UntypedAtomic(s) => Duration::parse(s.trim())?,
                other => {
                    return Err(Error::type_error(format!(
                        "{name} needs a duration, got {}",
                        other.type_of().name()
                    )))
                }
            };
            // Components carry the duration's sign, per F&O.
            match name {
                "years-from-duration" => int_item(d.months / 12),
                "months-from-duration" => int_item(d.months % 12),
                "days-from-duration" => int_item(d.millis / 86_400_000),
                "hours-from-duration" => int_item((d.millis % 86_400_000) / 3_600_000),
                "minutes-from-duration" => int_item((d.millis % 3_600_000) / 60_000),
                _ => vec![Item::Atomic(AtomicValue::Decimal(
                    Decimal::from_parts((d.millis % 60_000) as i128, 3).expect("scale 3"),
                ))],
            }
        }

        // ---- errors & debugging ----------------------------------------------------------------
        "error" => {
            let msg = if args.len() > 1 {
                string_or_empty(ev, args, 1, st)?
            } else if !args.is_empty() {
                string_or_empty(ev, args, 0, st)?
            } else {
                "fn:error() called".to_string()
            };
            return Err(Error::new(ErrorCode::UserError, msg));
        }
        "trace" => {
            let items = ev.eval(&args[0], st)?;
            let _label = string_or_empty(ev, args, 1, st)?;
            items // label deliberately not printed (deterministic tests)
        }

        other => {
            return Err(Error::new(
                ErrorCode::UndefinedFunction,
                format!("builtin {other:?} not implemented"),
            ))
        }
    })
}

fn number_arg(ev: &Evaluator<'_>, args: &[Core], idx: usize, st: &mut ExecState) -> Result<f64> {
    let store = st.store.clone();
    let items = ev.eval(&args[idx], st)?;
    let Some(v) = atomize_one(&items, &store, "numeric argument")? else {
        return Err(Error::type_error("numeric argument is empty"));
    };
    v.to_double()
}

fn integer_arg(ev: &Evaluator<'_>, args: &[Core], idx: usize, st: &mut ExecState) -> Result<i64> {
    Ok(number_arg(ev, args, idx, st)? as i64)
}

fn fold_numeric(vals: Vec<AtomicValue>, what: &str) -> Result<AtomicValue> {
    let mut acc: Option<AtomicValue> = None;
    for v in vals {
        acc = Some(match acc {
            None => match v {
                AtomicValue::UntypedAtomic(_) => xqr_compiler::ops::arith(
                    xqr_xqparser::ast::ArithOp::Add,
                    &AtomicValue::Double(0.0),
                    &v,
                )?,
                other => other,
            },
            Some(a) => xqr_compiler::ops::arith(xqr_xqparser::ast::ArithOp::Add, &a, &v)
                .map_err(|e| Error::type_error(format!("{what}: {}", e.message)))?,
        });
    }
    acc.ok_or_else(|| Error::internal("fold of empty sequence"))
}

fn unary_numeric(name: &str, v: &AtomicValue) -> Result<AtomicValue> {
    use AtomicValue as V;
    let v = match v {
        V::UntypedAtomic(s) => V::Double(xqr_xdm::parse_double(s.trim())?),
        other => other.clone(),
    };
    Ok(match (name, &v) {
        ("abs", V::Integer(i)) => V::Integer(i.abs()),
        ("abs", V::Decimal(d)) => V::Decimal(d.abs()),
        ("abs", V::Double(d)) => V::Double(d.abs()),
        ("abs", V::Float(f)) => V::Float(f.abs()),
        ("ceiling", V::Integer(_)) | ("floor", V::Integer(_)) | ("round", V::Integer(_)) => v,
        ("ceiling", V::Decimal(d)) => V::Decimal(d.ceiling()),
        ("floor", V::Decimal(d)) => V::Decimal(d.floor()),
        ("round", V::Decimal(d)) => V::Decimal(d.round()),
        ("ceiling", V::Double(d)) => V::Double(d.ceil()),
        ("floor", V::Double(d)) => V::Double(d.floor()),
        ("round", V::Double(d)) => V::Double((d + 0.5).floor()),
        ("ceiling", V::Float(f)) => V::Float(f.ceil()),
        ("floor", V::Float(f)) => V::Float(f.floor()),
        ("round", V::Float(f)) => V::Float((f + 0.5).floor()),
        _ => {
            return Err(Error::type_error(format!(
                "{name} on non-numeric {}",
                v.type_of().name()
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use xqr_compiler::builtins::BUILTINS;

    /// Every declared builtin must be dispatchable (compile-time list ↔
    /// runtime implementation sync check). We can't easily invoke each
    /// one here without a full engine, so we check the dispatch arm
    /// exists by name via a curated list mirrored from `dispatch`.
    #[test]
    fn all_builtins_have_implementations() {
        let implemented = [
            "position",
            "last",
            "string",
            "data",
            "node-name",
            "name",
            "local-name",
            "namespace-uri",
            "root",
            "base-uri",
            "document-uri",
            "doc",
            "document",
            "collection",
            "empty",
            "exists",
            "count",
            "distinct-values",
            "distinct-nodes",
            "reverse",
            "subsequence",
            "insert-before",
            "remove",
            "index-of",
            "zero-or-one",
            "one-or-more",
            "exactly-one",
            "unordered",
            "deep-equal",
            "sum",
            "avg",
            "min",
            "max",
            "not",
            "true",
            "false",
            "boolean",
            "number",
            "abs",
            "ceiling",
            "floor",
            "round",
            "round-half-to-even",
            "concat",
            "string-join",
            "string-length",
            "substring",
            "upper-case",
            "lower-case",
            "contains",
            "starts-with",
            "ends-with",
            "substring-before",
            "substring-after",
            "normalize-space",
            "translate",
            "tokenize",
            "matches",
            "replace",
            "string-to-codepoints",
            "codepoints-to-string",
            "compare",
            "current-dateTime",
            "current-date",
            "current-time",
            "implicit-timezone",
            "year-from-date",
            "month-from-date",
            "day-from-date",
            "year-from-dateTime",
            "month-from-dateTime",
            "day-from-dateTime",
            "hours-from-dateTime",
            "minutes-from-dateTime",
            "seconds-from-dateTime",
            "add-date",
            "years-from-duration",
            "months-from-duration",
            "days-from-duration",
            "hours-from-duration",
            "minutes-from-duration",
            "seconds-from-duration",
            "error",
            "trace",
        ];
        for (name, _, _) in BUILTINS {
            assert!(
                implemented.contains(name),
                "builtin {name} declared but not implemented"
            );
        }
    }
}
