//! The experiment harness: prints the tables for every experiment in
//! DESIGN.md's index.
//!
//! Usage:
//!   harness [--quick|--full] [E1 E5 ...]
//!
//! With no experiment ids, runs everything.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_uppercase())
        .collect();
    let run_one = |id: &str| wanted.is_empty() || wanted.iter().any(|w| w == id);

    println!("xqr experiment harness ({scale:?} scale)\n");
    // Run individually so a single experiment can be selected without
    // paying for the others.
    use xqr_bench::experiments::*;
    type Runner = Box<dyn Fn(Scale) -> Table>;
    let runners: Vec<(&str, Runner)> = vec![
        ("E1", Box::new(e1_streaming)),
        ("E2", Box::new(e2_lazy)),
        ("E3", Box::new(e3_representation)),
        ("E4", Box::new(e4_pooling)),
        ("E5", Box::new(e5_structural_join)),
        ("E6", Box::new(e6_twig)),
        ("E7", Box::new(e7_rewrites)),
        ("E8", Box::new(e8_compile)),
        ("E9", Box::new(e9_transform)),
        ("E10", Box::new(e10_skip)),
        ("E11", Box::new(e11_nodeids)),
        ("E12", Box::new(e12_memo)),
    ];
    let mut ran = 0;
    for (id, f) in &runners {
        if run_one(id) {
            let table = f(scale);
            println!("{}", table.render());
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("no experiments matched; known ids: E1..E12");
        std::process::exit(2);
    }
}
