//! The experiment suite E1–E12 (DESIGN.md's experiment index).
//!
//! Each experiment is a function returning a [`Table`]; the `harness`
//! binary prints them, EXPERIMENTS.md records one run. Criterion benches
//! reuse the same workload builders with statistical repetition; the
//! tables here use single timed runs at larger scales (shape, not
//! microseconds, is the claim being reproduced).

use std::sync::Arc;
use std::time::{Duration, Instant};
use xqr_compiler::{normalize_module, optimize_module, typing, RewriteConfig};
use xqr_core::{CompileOptions, DynamicContext, Engine, EngineOptions};
use xqr_joins::{
    element_list, enumerate_matches, mpmgjn, nested_loop, normalize, stack_tree_desc, twig_stack,
    JoinKind, TwigPattern,
};
use xqr_runtime::RuntimeOptions;
use xqr_store::{dom, Document};
use xqr_tokenstream::{drain, BufferFactory, ParserTokenIterator, TokenStream};
use xqr_xdm::NamePool;
use xqr_xmlgen::{
    auction_site, bibliography, random_tree, trading_partners, RandomTreeConfig, XmarkConfig,
};

/// One result table.
pub struct Table {
    pub id: &'static str,
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

fn ms(d: Duration) -> String {
    format!("{:.2}ms", d.as_secs_f64() * 1000.0)
}

fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Scale knob: `quick` for CI-sized runs, `full` for the recorded tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Full,
}

impl Scale {
    fn pick(&self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

// ---------------------------------------------------------------- E1

/// E1 — streaming: time-to-first-result and totals, streaming matcher vs
/// materialized execution, growing documents.
pub fn e1_streaming(scale: Scale) -> Table {
    let mut rows = Vec::new();
    let sizes = match scale {
        Scale::Quick => vec![200, 1_000],
        Scale::Full => vec![1_000, 5_000, 20_000, 80_000],
    };
    for n in sizes {
        let xml = auction_site(&XmarkConfig::scaled(n));
        let engine = Engine::new();
        let q = engine.compile("/site/people/person").unwrap();
        assert!(q.is_streamable());
        // Streaming: first match + total.
        let mut first: Option<Duration> = None;
        let t0 = Instant::now();
        let mut matches = 0u64;
        q.execute_streaming(&engine, &xml, |_| {
            matches += 1;
            if first.is_none() {
                first = Some(t0.elapsed());
            }
        })
        .unwrap();
        let stream_total = t0.elapsed();
        // Materialized: parse into the store, evaluate, serialize.
        let (out, mat_total) = time(|| engine.query_xml(&xml, "/site/people/person").unwrap());
        rows.push(vec![
            format!("{}", xml.len() / 1024),
            matches.to_string(),
            ms(first.unwrap_or_default()),
            ms(stream_total),
            ms(mat_total),
            format!(
                "{:.1}x",
                mat_total.as_secs_f64() / stream_total.as_secs_f64().max(1e-9)
            ),
        ]);
        let _ = out;
    }
    Table {
        id: "E1",
        title: "streaming vs materialized (query: /site/people/person)".into(),
        headers: vec![
            "doc KiB".into(),
            "matches".into(),
            "first result".into(),
            "stream total".into(),
            "materialized".into(),
            "speedup".into(),
        ],
        rows,
    }
}

// ---------------------------------------------------------------- E2

/// E2 — lazy evaluation: items produced for early-exit queries vs the
/// nominal input size.
pub fn e2_lazy(scale: Scale) -> Table {
    let n = scale.pick(100_000, 10_000_000);
    let engine = Engine::new();
    let cases = [
        (format!("(1 to {n})[3]"), "positional [3]"),
        (format!("exists(1 to {n})"), "exists()"),
        (
            format!("some $x in (1 to {n}) satisfies $x eq 5"),
            "some … satisfies",
        ),
        (format!("count(1 to {n})"), "count() (no early exit)"),
    ];
    let mut rows = Vec::new();
    for (q, label) in &cases {
        let prepared = engine.compile(q).unwrap();
        let (r, t) = time(|| prepared.execute(&engine, &DynamicContext::new()).unwrap());
        rows.push(vec![
            (*label).to_string(),
            n.to_string(),
            r.counters.items_produced.get().to_string(),
            r.counters.early_exits.get().to_string(),
            ms(t),
        ]);
    }
    Table {
        id: "E2",
        title: "lazy evaluation: work is proportional to demand".into(),
        headers: vec![
            "query".into(),
            "input size".into(),
            "items produced".into(),
            "early exits".into(),
            "time".into(),
        ],
        rows,
    }
}

// ---------------------------------------------------------------- E3

/// E3 — data representation: DOM tree vs TokenStream array vs labeled
/// store: build time, memory, scan time.
pub fn e3_representation(scale: Scale) -> Table {
    let n = scale.pick(2_000, 40_000);
    let xml = auction_site(&XmarkConfig::scaled(n));
    let names = Arc::new(NamePool::new());

    let (dom_tree, dom_build) = time(|| dom::parse_dom(&xml).unwrap());
    let (dom_count, dom_scan) = time(|| dom::count_nodes(&dom_tree));
    let dom_mem = dom::memory_bytes(&dom_tree);

    let (stream, ts_build) = time(|| TokenStream::from_xml(&xml, names.clone()).unwrap());
    let (ts_count, ts_scan) = time(|| drain(&mut stream.iter()).unwrap());
    let ts_mem = stream.memory_bytes();

    let (doc, store_build) = time(|| Document::parse(&xml, names.clone()).unwrap());
    let (store_count, store_scan) = time(|| doc.all_elements().count());
    let store_mem = doc.memory_bytes();

    let row = |name: &str, build: Duration, scan: Duration, mem: usize, units: usize| {
        vec![
            name.to_string(),
            ms(build),
            ms(scan),
            format!("{}", mem / 1024),
            units.to_string(),
        ]
    };
    Table {
        id: "E3",
        title: format!(
            "representation comparison ({} KiB XMark document)",
            xml.len() / 1024
        ),
        headers: vec![
            "representation".into(),
            "build".into(),
            "full scan".into(),
            "memory KiB".into(),
            "units scanned".into(),
        ],
        rows: vec![
            row(
                "DOM tree (Rc nodes)",
                dom_build,
                dom_scan,
                dom_mem,
                dom_count,
            ),
            row("TokenStream (array)", ts_build, ts_scan, ts_mem, ts_count),
            row(
                "labeled store (SoA)",
                store_build,
                store_scan,
                store_mem,
                store_count,
            ),
        ],
    }
}

// ---------------------------------------------------------------- E4

/// E4 — pooling (dictionary compression) on the wire.
pub fn e4_pooling(scale: Scale) -> Table {
    let n = scale.pick(1_000, 20_000);
    let mut rows = Vec::new();
    for (name, xml) in [
        ("xmark", auction_site(&XmarkConfig::scaled(n))),
        ("ebxml", trading_partners(11, n / 20 + 2)),
        ("bib", bibliography(5, n / 4 + 1)),
    ] {
        let names = Arc::new(NamePool::new());
        let stream = TokenStream::from_xml(&xml, names).unwrap();
        let pooled = xqr_tokenstream::encode(&stream, true).len();
        let unpooled = xqr_tokenstream::encode(&stream, false).len();
        rows.push(vec![
            name.to_string(),
            format!("{}", xml.len() / 1024),
            format!("{}", unpooled / 1024),
            format!("{}", pooled / 1024),
            format!("{:.2}x", unpooled as f64 / pooled as f64),
            format!("{:.2}x", xml.len() as f64 / pooled as f64),
        ]);
    }
    Table {
        id: "E4",
        title: "binary encoding: pooled (pragma dictionary) vs unpooled".into(),
        headers: vec![
            "workload".into(),
            "XML KiB".into(),
            "unpooled KiB".into(),
            "pooled KiB".into(),
            "pooling gain".into(),
            "vs raw XML".into(),
        ],
        rows,
    }
}

// ---------------------------------------------------------------- E5

/// E5 — binary structural joins vs navigation across ancestor
/// selectivities.
pub fn e5_structural_join(scale: Scale) -> Table {
    let nodes = scale.pick(5_000, 100_000);
    let mut rows = Vec::new();
    for p_anc in [0.01, 0.05, 0.15, 0.35] {
        let cfg = RandomTreeConfig {
            nodes,
            p_ancestor: p_anc,
            p_descendant: 0.2,
            ..Default::default()
        };
        let xml = random_tree(&cfg);
        let names = Arc::new(NamePool::new());
        let doc = Document::parse(&xml, names.clone()).unwrap();
        let a = names.intern(&xqr_xdm::QName::local("a"));
        let d = names.intern(&xqr_xdm::QName::local("d"));
        let alist = element_list(&doc, a);
        let dlist = element_list(&doc, d);

        let (st_pairs, t_stack) =
            time(|| stack_tree_desc(&alist, &dlist, JoinKind::AncestorDescendant));
        let (mj_pairs, t_merge) = time(|| mpmgjn(&alist, &dlist, JoinKind::AncestorDescendant));
        let nl_time = if alist.len() * dlist.len() <= 50_000_000 {
            let (nl_pairs, t) = time(|| nested_loop(&alist, &dlist, JoinKind::AncestorDescendant));
            assert_eq!(normalize(nl_pairs).len(), normalize(st_pairs.clone()).len());
            ms(t)
        } else {
            "-".into()
        };
        assert_eq!(st_pairs.len(), mj_pairs.len());
        // Navigation baseline through the twig machinery.
        let twig = TwigPattern::parse("//a//d", &names).unwrap();
        let (nav, t_nav) = time(|| enumerate_matches(&doc, &twig));
        assert_eq!(nav.len(), st_pairs.len());

        rows.push(vec![
            format!("{p_anc:.2}"),
            alist.len().to_string(),
            dlist.len().to_string(),
            st_pairs.len().to_string(),
            ms(t_stack),
            ms(t_merge),
            nl_time,
            ms(t_nav),
        ]);
    }
    Table {
        id: "E5",
        title: format!("structural join //a//d over {nodes}-node random trees"),
        headers: vec![
            "P(a)".into(),
            "|A|".into(),
            "|D|".into(),
            "output".into(),
            "stack-tree".into(),
            "mpmgjn".into(),
            "nested-loop".into(),
            "navigation".into(),
        ],
        rows,
    }
}

// ---------------------------------------------------------------- E6

/// E6 — holistic twig join vs a binary-join plan: intermediate sizes.
pub fn e6_twig(scale: Scale) -> Table {
    let nodes = scale.pick(5_000, 80_000);
    let mut rows = Vec::new();
    // Pattern //a[t0]/d : binary plan joins (a,t0) and (a,d) separately.
    for p_anc in [0.05, 0.15, 0.30] {
        let cfg = RandomTreeConfig {
            nodes,
            p_ancestor: p_anc,
            p_descendant: 0.25,
            alphabet: 3,
            ..Default::default()
        };
        let xml = random_tree(&cfg);
        let names = Arc::new(NamePool::new());
        let doc = Document::parse(&xml, names.clone()).unwrap();
        let twig = TwigPattern::parse("//a[t0]/d", &names).unwrap();
        let lists: Vec<_> = twig
            .nodes
            .iter()
            .map(|n| element_list(&doc, n.name))
            .collect();

        let ((matches, stats), t_twig) = time(|| twig_stack(&twig, &lists));
        // Binary plan: (a ad t0) then (a pc d), merge on a.
        let (binary_intermediate, t_binary, merged) = {
            let t0i = Instant::now();
            // `[t0]` and `/d` are both child edges in the pattern.
            let ab = stack_tree_desc(&lists[0], &lists[1], JoinKind::ParentChild);
            let ad = stack_tree_desc(&lists[0], &lists[2], JoinKind::ParentChild);
            let inter = ab.len() + ad.len();
            // Merge phase: group by the `a` node.
            let mut result = 0usize;
            let mut b_by_a: std::collections::HashMap<u32, usize> =
                std::collections::HashMap::new();
            for (a, _) in &ab {
                *b_by_a.entry(a.start).or_insert(0) += 1;
            }
            for (a, _) in &ad {
                if let Some(&bcount) = b_by_a.get(&a.start) {
                    result += bcount;
                }
            }
            (inter, t0i.elapsed(), result)
        };
        assert_eq!(matches.len(), merged, "binary plan result must agree");
        rows.push(vec![
            format!("{p_anc:.2}"),
            matches.len().to_string(),
            stats.path_solutions.to_string(),
            binary_intermediate.to_string(),
            ms(t_twig),
            ms(t_binary),
        ]);
    }
    Table {
        id: "E6",
        title: format!("twig //a[t0]/d: TwigStack vs binary join plan ({nodes} nodes)"),
        headers: vec![
            "P(a)".into(),
            "matches".into(),
            "twig intermediates".into(),
            "binary intermediates".into(),
            "twigstack".into(),
            "binary plan".into(),
        ],
        rows,
    }
}

// ---------------------------------------------------------------- E7

/// E7 — rewrite ablation: execution time with each family disabled.
pub fn e7_rewrites(scale: Scale) -> Table {
    let n = scale.pick(500, 5_000);
    let bib = bibliography(3, n);
    let queries: Vec<(&str, String)> = vec![
        (
            "ddo-heavy path",
            "count(doc(\"bib.xml\")/bib/book/author/last)".to_string(),
        ),
        (
            "join query",
            "for $a in doc(\"bib.xml\")//book return for $b in doc(\"bib.xml\")//book \
             return if ($a/publisher = $b/publisher and $a/@year = 1967) then $b/title else ()"
                .to_string(),
        ),
        (
            "let + constants",
            "let $k := 2 * 3 + 4 return for $b in doc(\"bib.xml\")//book \
             where count($b/author) ge $k - 7 return $b/title"
                .to_string(),
        ),
        (
            "positional",
            "(doc(\"bib.xml\")//book)[5]/title".to_string(),
        ),
    ];
    let families = [
        "none-disabled",
        "ddo_elimination",
        "join_detection",
        "let_folding",
        "constant_folding",
        "path_rewrites",
        "all-disabled",
    ];
    let mut rows = Vec::new();
    for family in families {
        let cfg = match family {
            "none-disabled" => RewriteConfig::all(),
            "all-disabled" => RewriteConfig::none(),
            f => RewriteConfig::without(f),
        };
        let mut cells = vec![family.to_string()];
        for (_, q) in &queries {
            let engine = Engine::with_options(EngineOptions {
                compile: CompileOptions {
                    rewrite: cfg.clone(),
                    ..Default::default()
                },
                runtime: RuntimeOptions::default(),
                ..Default::default()
            });
            engine.load_document("bib.xml", &bib).unwrap();
            let prepared = engine.compile(q).unwrap();
            // warm the doc cache, then measure.
            prepared.execute(&engine, &DynamicContext::new()).unwrap();
            let (_, t) = time(|| prepared.execute(&engine, &DynamicContext::new()).unwrap());
            cells.push(ms(t));
        }
        rows.push(cells);
    }
    let mut headers = vec!["disabled family".to_string()];
    headers.extend(queries.iter().map(|(l, _)| l.to_string()));
    Table {
        id: "E7",
        title: format!("rewrite-family ablation over a {n}-book bibliography"),
        headers,
        rows,
    }
}

// ---------------------------------------------------------------- E8

/// E8 — compilation pipeline phase costs.
pub fn e8_compile(_scale: Scale) -> Table {
    let small = "1 + 2";
    let medium = "for $b in doc(\"bib.xml\")//book where $b/price > 50 \
                  order by $b/title return <r>{$b/title, $b/price}</r>";
    let giant = giant_customer_query();
    let mut rows = Vec::new();
    for (label, q) in [
        ("tiny", small),
        ("medium", medium),
        ("trading-partner (giant)", &giant),
    ] {
        let (ast, t_parse) = time(|| xqr_xqparser::parse_query(q).unwrap());
        let (mut module, t_norm) = time(|| normalize_module(&ast).unwrap());
        let (_, t_type) = time(|| typing::check_module(&module, false).unwrap());
        let (_, t_opt) = time(|| optimize_module(&mut module, &RewriteConfig::all()));
        rows.push(vec![
            label.to_string(),
            q.len().to_string(),
            ms(t_parse),
            ms(t_norm),
            ms(t_type),
            ms(t_opt),
        ]);
    }
    Table {
        id: "E8",
        title: "compilation phases".into(),
        headers: vec![
            "query".into(),
            "bytes".into(),
            "parse".into(),
            "normalize".into(),
            "typecheck".into(),
            "optimize".into(),
        ],
        rows,
    }
}

// ---------------------------------------------------------------- E9

/// The condensed trading-partner transformation (the talk's customer
/// query, reduced to its load-bearing joins and constructors).
pub fn customer_query() -> &'static str {
    r#"
    declare variable $wlc := doc("ebsample.xml");
    <result>{
      for $tp in $wlc/wlc/trading-partner
      return
        <trading-partner name="{$tp/@name}"
                         business-id="{$tp/party-identifier/@business-id}"
                         type="{$tp/@type}">
          { for $eps in $wlc/wlc/extended-property-set
            where $tp/@extended-property-set-name = $eps/@name
            return <property-set name="{$eps/@name}"/> }
          { for $cc in $tp/client-certificate
            return <client-certificate name="{$cc/@name}"/> }
          {
            for $dc in $tp/delivery-channel
            for $de in $tp/document-exchange
            for $tr in $tp/transport
            where $dc/@document-exchange-name = $de/@name
              and $dc/@transport-name = $tr/@name
              and $de/@business-protocol-name = "ebXML"
            return
              <ebxml-binding name="{$dc/@name}"
                             is-signature-required="{$dc/@nonrepudiation-of-origin}">
                { if (empty($de/EBXML-binding/@retries)) then ()
                  else attribute retries { string($de/EBXML-binding/@retries) } }
                <transport protocol="{$tr/@protocol}" endpoint="{$tr/endpoint[1]/@uri}">
                  {
                    for $ca in $wlc/wlc/collaboration-agreement
                    for $p1 in $ca/party[1]
                    where $p1/@delivery-channel-name = $dc/@name
                    return <authentication client-partner-name="{$p1/@trading-partner-name}"/>
                  }
                </transport>
              </ebxml-binding>
          }
        </trading-partner>
    }</result>
    "#
}

/// A hand-written DOM-walking transformer doing the same job the way a
/// naive template engine would: re-scanning the whole tree for every
/// cross-reference (no indexes, no join detection) — the talk's
/// "best-XSLT-implementation" stand-in per DESIGN.md's substitution note.
pub fn dom_baseline_transform(xml: &str) -> String {
    let root = dom::parse_dom(xml).unwrap();
    let mut out = String::from("<result>");
    let mut partners = Vec::new();
    dom::descendants_named(&root, "trading-partner", &mut partners);
    let get_attr = |n: &dom::DomRef, name: &str| -> String {
        n.borrow()
            .attributes
            .iter()
            .find(|(q, _)| q.local_name() == name)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    };
    for tp in &partners {
        let name = get_attr(tp, "name");
        let mut pid = Vec::new();
        dom::descendants_named(tp, "party-identifier", &mut pid);
        let bid = pid
            .first()
            .map(|p| get_attr(p, "business-id"))
            .unwrap_or_default();
        out.push_str(&format!(
            "<trading-partner name=\"{}\" business-id=\"{}\" type=\"{}\">",
            name,
            bid,
            get_attr(tp, "type")
        ));
        // property sets: full-tree scan per partner (the quadratic bit).
        let mut epss = Vec::new();
        dom::descendants_named(&root, "extended-property-set", &mut epss);
        let want = get_attr(tp, "extended-property-set-name");
        for eps in &epss {
            if get_attr(eps, "name") == want {
                out.push_str(&format!("<property-set name=\"{}\"/>", want));
            }
        }
        let mut ccs = Vec::new();
        dom::descendants_named(tp, "client-certificate", &mut ccs);
        for cc in &ccs {
            out.push_str(&format!(
                "<client-certificate name=\"{}\"/>",
                get_attr(cc, "name")
            ));
        }
        // dc × de × tr triple join by nested scans.
        let (mut dcs, mut des, mut trs) = (Vec::new(), Vec::new(), Vec::new());
        dom::descendants_named(tp, "delivery-channel", &mut dcs);
        dom::descendants_named(tp, "document-exchange", &mut des);
        dom::descendants_named(tp, "transport", &mut trs);
        for dc in &dcs {
            for de in &des {
                if get_attr(dc, "document-exchange-name") != get_attr(de, "name")
                    || get_attr(de, "business-protocol-name") != "ebXML"
                {
                    continue;
                }
                for tr in &trs {
                    if get_attr(dc, "transport-name") != get_attr(tr, "name") {
                        continue;
                    }
                    out.push_str(&format!(
                        "<ebxml-binding name=\"{}\" is-signature-required=\"{}\">",
                        get_attr(dc, "name"),
                        get_attr(dc, "nonrepudiation-of-origin")
                    ));
                    let mut eps2 = Vec::new();
                    dom::descendants_named(tr, "endpoint", &mut eps2);
                    let uri = eps2.first().map(|e| get_attr(e, "uri")).unwrap_or_default();
                    out.push_str(&format!(
                        "<transport protocol=\"{}\" endpoint=\"{}\">",
                        get_attr(tr, "protocol"),
                        uri
                    ));
                    // collaboration agreements: another full-tree scan.
                    let mut cas = Vec::new();
                    dom::descendants_named(&root, "collaboration-agreement", &mut cas);
                    for ca in &cas {
                        let mut parties = Vec::new();
                        dom::descendants_named(ca, "party", &mut parties);
                        if let Some(p1) = parties.first() {
                            if get_attr(p1, "delivery-channel-name") == get_attr(dc, "name") {
                                out.push_str(&format!(
                                    "<authentication client-partner-name=\"{}\"/>",
                                    get_attr(p1, "trading-partner-name")
                                ));
                            }
                        }
                    }
                    out.push_str("</transport></ebxml-binding>");
                }
            }
        }
        out.push_str("</trading-partner>");
    }
    out.push_str("</result>");
    out
}

/// E9 — the headline: optimized XQuery vs the materializing baseline vs
/// the naive tree-walking transformer.
pub fn e9_transform(scale: Scale) -> Table {
    let sizes = match scale {
        Scale::Quick => vec![20, 60],
        Scale::Full => vec![50, 150, 400, 800],
    };
    let mut rows = Vec::new();
    for partners in sizes {
        let xml = trading_partners(9, partners);
        // Optimized engine.
        let engine = Engine::new();
        engine.load_document("ebsample.xml", &xml).unwrap();
        let q = engine.compile(customer_query()).unwrap();
        q.execute(&engine, &DynamicContext::new()).unwrap(); // warm
        let (r_opt, t_opt) = time(|| q.execute(&engine, &DynamicContext::new()).unwrap());
        // Unoptimized engine (no join detection, no ddo elimination).
        let engine2 = Engine::with_options(EngineOptions::unoptimized());
        engine2.load_document("ebsample.xml", &xml).unwrap();
        let q2 = engine2.compile(customer_query()).unwrap();
        q2.execute(&engine2, &DynamicContext::new()).unwrap();
        let (r_unopt, t_unopt) = time(|| q2.execute(&engine2, &DynamicContext::new()).unwrap());
        // Naive DOM transformer (parse + walk each run, like a CLI XSLT).
        let (_, t_dom) = time(|| dom_baseline_transform(&xml));
        assert_eq!(
            r_opt.serialize_guarded().unwrap().len(),
            r_unopt.serialize_guarded().unwrap().len()
        );
        rows.push(vec![
            partners.to_string(),
            format!("{}", xml.len() / 1024),
            ms(t_opt),
            ms(t_unopt),
            ms(t_dom),
            format!(
                "{:.1}x",
                t_dom.as_secs_f64() / t_opt.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    Table {
        id: "E9",
        title: "trading-partner transformation: engine vs baselines".into(),
        headers: vec![
            "partners".into(),
            "doc KiB".into(),
            "optimized".into(),
            "unoptimized".into(),
            "DOM transformer".into(),
            "vs DOM".into(),
        ],
        rows,
    }
}

// ---------------------------------------------------------------- E10

/// E10 — skip(): tokens skipped by the streaming matcher for selective
/// vs unselective patterns.
pub fn e10_skip(scale: Scale) -> Table {
    let n = scale.pick(2_000, 40_000);
    let xml = auction_site(&XmarkConfig::scaled(n));
    let engine = Engine::new();
    let mut rows = Vec::new();
    for (label, q) in [
        (
            "selective child path",
            "/site/closed_auctions/closed_auction",
        ),
        ("semi-selective", "/site/people/person/name"),
        ("descendant (no skip)", "//name"),
        ("streaming count", "count(/site/people/person)"),
    ] {
        let prepared = engine.compile(q).unwrap();
        let t0 = Instant::now();
        let mut count = 0u64;
        let stats = if prepared.is_streamable_count() {
            let (n, stats) = prepared.execute_streaming_count(&engine, &xml).unwrap();
            count = n;
            stats
        } else {
            prepared
                .execute_streaming(&engine, &xml, |_| count += 1)
                .unwrap()
        };
        let t = t0.elapsed();
        rows.push(vec![
            label.to_string(),
            q.to_string(),
            count.to_string(),
            stats.tokens_seen.to_string(),
            stats.tokens_skipped.to_string(),
            format!(
                "{:.0}%",
                100.0 * stats.tokens_skipped as f64
                    / (stats.tokens_seen + stats.tokens_skipped) as f64
            ),
            ms(t),
        ]);
    }
    Table {
        id: "E10",
        title: format!(
            "skip() effectiveness on a {} KiB document",
            xml.len() / 1024
        ),
        headers: vec![
            "case".into(),
            "query".into(),
            "matches".into(),
            "tokens seen".into(),
            "tokens skipped".into(),
            "skipped %".into(),
            "time".into(),
        ],
        rows,
    }
}

// ---------------------------------------------------------------- E11

/// E11 — on-demand node identity: the compiler's analysis plus the cost
/// of identity-dependent operators on construction pipelines.
pub fn e11_nodeids(scale: Scale) -> Table {
    let n = scale.pick(2_000, 30_000);
    let engine = Engine::new();
    engine
        .load_document("bib.xml", &bibliography(2, n))
        .unwrap();
    let mut rows = Vec::new();
    for (label, q) in [
        (
            "construct only (no ids needed)",
            "for $i in 1 to 500 return <item n=\"{$i}\">{$i * 2}</item>",
        ),
        (
            "construct + identity ops (ids needed)",
            "count((for $i in 1 to 500 return <item/>) | (for $i in 1 to 500 return <item/>))",
        ),
        (
            "path query (ddo ⇒ ids)",
            "count(doc(\"bib.xml\")//book/author)",
        ),
    ] {
        let prepared = engine.compile(q).unwrap();
        prepared.execute(&engine, &DynamicContext::new()).unwrap();
        let (r, t) = time(|| prepared.execute(&engine, &DynamicContext::new()).unwrap());
        rows.push(vec![
            label.to_string(),
            prepared.needs_node_ids().to_string(),
            r.counters.nodes_constructed.get().to_string(),
            r.counters.ddo_sorts.get().to_string(),
            ms(t),
        ]);
    }
    Table {
        id: "E11",
        title: "node-identity demand analysis".into(),
        headers: vec![
            "query".into(),
            "needs ids".into(),
            "nodes constructed".into(),
            "ddo sorts".into(),
            "time".into(),
        ],
        rows,
    }
}

// ---------------------------------------------------------------- E12

/// E12 — sharing: buffer factory (one upstream pass for N consumers)
/// and function memoization.
pub fn e12_memo(scale: Scale) -> Table {
    let n = scale.pick(2_000, 40_000);
    let xml = auction_site(&XmarkConfig::scaled(n));
    let mut rows = Vec::new();

    // Buffer sharing: 3 consumers over one parse vs 3 parses.
    let names = Arc::new(NamePool::new());
    let t0 = Instant::now();
    let factory = BufferFactory::new(ParserTokenIterator::new(&xml, names.clone()));
    let mut total = 0usize;
    for _ in 0..3 {
        let mut c = factory.consumer();
        total += drain(&mut c).unwrap();
    }
    let shared = t0.elapsed();
    let pulled_once = factory.upstream_pulled();
    let t1 = Instant::now();
    let mut total2 = 0usize;
    for _ in 0..3 {
        let mut it = ParserTokenIterator::new(&xml, names.clone());
        total2 += drain(&mut it).unwrap();
    }
    let reparsed = t1.elapsed();
    assert_eq!(total, total2);
    rows.push(vec![
        "buffer factory, 3 consumers".into(),
        pulled_once.to_string(),
        (total / 3).to_string(),
        ms(shared),
        ms(reparsed),
        format!(
            "{:.1}x",
            reparsed.as_secs_f64() / shared.as_secs_f64().max(1e-9)
        ),
    ]);

    // Function memoization: fib with and without.
    let q = "declare function local:fib($n as xs:integer) as xs:integer {
               if ($n lt 2) then $n else local:fib($n - 1) + local:fib($n - 2)
             }; local:fib(22)";
    let engine_plain = Engine::new();
    let prepared = engine_plain.compile(q).unwrap();
    let (r1, t_plain) = time(|| {
        prepared
            .execute(&engine_plain, &DynamicContext::new())
            .unwrap()
    });
    let engine_memo = Engine::with_options(EngineOptions {
        compile: CompileOptions::default(),
        runtime: RuntimeOptions {
            memoize_functions: true,
            ..Default::default()
        },
        ..Default::default()
    });
    let prepared_m = engine_memo.compile(q).unwrap();
    let (r2, t_memo) = time(|| {
        prepared_m
            .execute(&engine_memo, &DynamicContext::new())
            .unwrap()
    });
    assert_eq!(
        r1.serialize_guarded().unwrap(),
        r2.serialize_guarded().unwrap()
    );
    rows.push(vec![
        "memoized fib(22)".into(),
        r2.counters.function_calls.get().to_string(),
        r1.counters.function_calls.get().to_string(),
        ms(t_memo),
        ms(t_plain),
        format!(
            "{:.1}x",
            t_plain.as_secs_f64() / t_memo.as_secs_f64().max(1e-9)
        ),
    ]);

    Table {
        id: "E12",
        title: "sharing: buffered consumers & function memoization".into(),
        headers: vec![
            "case".into(),
            "work (shared)".into(),
            "work (unshared)".into(),
            "time shared".into(),
            "time unshared".into(),
            "gain".into(),
        ],
        rows,
    }
}

/// The talk's 60% customer query, reconstructed at full length (used by
/// E8 to measure compile costs on a realistically giant query).
pub fn giant_customer_query() -> String {
    // Build a long query programmatically: the condensed transformation
    // repeated across protocol branches, mirroring the talk's repetition
    // of the ebXML and RosettaNet binding sections.
    let mut q = String::from("declare variable $wlc := doc(\"ebsample.xml\");\n<result>{\n");
    let mut first = true;
    for proto in ["ebXML", "RosettaNet"] {
        if !first {
            q.push(',');
        }
        first = false;
        q.push_str(&format!(
            r#"
    for $tp in $wlc/wlc/trading-partner
    return
      <trading-partner name="{{$tp/@name}}" type="{{$tp/@type}}">
        {{
          for $dc in $tp/delivery-channel
          for $de in $tp/document-exchange
          for $tr in $tp/transport
          where $dc/@document-exchange-name = $de/@name
            and $dc/@transport-name = $tr/@name
            and $de/@business-protocol-name = "{proto}"
          return
            <binding protocol="{proto}" name="{{$dc/@name}}">
              <transport protocol="{{$tr/@protocol}}" endpoint="{{$tr/endpoint[1]/@uri}}">
                {{
                  for $ca in $wlc/wlc/collaboration-agreement
                  for $p1 in $ca/party[1]
                  where $p1/@delivery-channel-name = $dc/@name
                  return
                    if ($p1/@trading-partner-name = $tp/@name)
                    then <authentication side="own"/>
                    else <authentication side="peer" client-partner-name="{{$p1/@trading-partner-name}}"/>
                }}
              </transport>
            </binding>
        }}
      </trading-partner>
"#
        ));
    }
    q.push_str(
        r#",
    for $cd in $wlc/wlc/conversation-definition
    for $role in $cd/role
    where not(empty($role/@wlpi-template) or $role/@wlpi-template = "")
    return
      <service name="{concat("flows/", $role/@wlpi-template, ".jpd")}"
               business-protocol="{upper-case($cd/@business-protocol-name)}"/>
}</result>"#,
    );
    q
}

/// Run every experiment at the given scale.
pub fn all_experiments(scale: Scale) -> Vec<Table> {
    vec![
        e1_streaming(scale),
        e2_lazy(scale),
        e3_representation(scale),
        e4_pooling(scale),
        e5_structural_join(scale),
        e6_twig(scale),
        e7_rewrites(scale),
        e8_compile(scale),
        e9_transform(scale),
        e10_skip(scale),
        e11_nodeids(scale),
        e12_memo(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn customer_query_compiles_and_runs() {
        let engine = Engine::new();
        engine
            .load_document("ebsample.xml", &trading_partners(9, 10))
            .unwrap();
        let q = engine.compile(customer_query()).unwrap();
        let r = q.execute(&engine, &DynamicContext::new()).unwrap();
        let out = r.serialize_guarded().unwrap();
        assert!(out.starts_with("<result>"));
        assert_eq!(out.matches("<trading-partner ").count(), 10);
        assert!(
            out.contains("<ebxml-binding"),
            "{}",
            &out[..500.min(out.len())]
        );
    }

    #[test]
    fn giant_query_compiles() {
        let q = giant_customer_query();
        assert!(q.len() > 1500);
        let engine = Engine::new();
        engine
            .load_document("ebsample.xml", &trading_partners(9, 6))
            .unwrap();
        let prepared = engine.compile(&q).unwrap();
        let r = prepared.execute(&engine, &DynamicContext::new()).unwrap();
        assert!(r.serialize_guarded().unwrap().contains("<binding"));
    }

    #[test]
    fn dom_baseline_agrees_with_engine_on_counts() {
        let xml = trading_partners(9, 12);
        let engine = Engine::new();
        engine.load_document("ebsample.xml", &xml).unwrap();
        let q = engine.compile(customer_query()).unwrap();
        let engine_out = q
            .execute(&engine, &DynamicContext::new())
            .unwrap()
            .serialize_guarded()
            .unwrap();
        let dom_out = dom_baseline_transform(&xml);
        assert_eq!(
            engine_out.matches("<trading-partner ").count(),
            dom_out.matches("<trading-partner ").count()
        );
        assert_eq!(
            engine_out.matches("<ebxml-binding").count(),
            dom_out.matches("<ebxml-binding").count()
        );
        assert_eq!(
            engine_out.matches("<authentication").count(),
            dom_out.matches("<authentication").count()
        );
    }

    #[test]
    fn quick_experiments_run() {
        // Smoke: every experiment produces a table with rows at quick
        // scale (this is what `harness --quick` prints).
        for t in all_experiments(Scale::Quick) {
            assert!(!t.rows.is_empty(), "{}", t.id);
            assert!(t.render().contains(t.id));
        }
    }
}
