//! # xqr-bench — shared helpers for the experiment harness and benches.

pub mod experiments;

pub use experiments::{all_experiments, Scale, Table};
