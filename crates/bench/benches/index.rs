//! E15: index-backed access paths vs scan-fed joins vs navigation.
//!
//! The question the structural index answers: how much of a structural
//! or twig join's cost is *building its input lists*? A scan-fed join
//! walks the whole document per query to materialize each name's label
//! list; the index hands out the same lists as pre-built slices, and the
//! path dictionary collapses linear patterns to a lookup with no join at
//! all. Two document regimes: `bib` (regular — the path dictionary has a
//! handful of entries, the DataGuide assumption) and `rand` (adversarial
//! — thousands of distinct paths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use xqr_core::{DynamicContext, Engine, EngineOptions};
use xqr_index::{DocIndex, IndexedAccess, PathStep};
use xqr_joins::{
    element_list, enumerate_matches, stack_tree_desc, twig_stack, EdgeKind, JoinKind, Labeled,
    TwigPattern,
};
use xqr_store::Document;
use xqr_xdm::{NameId, NamePool, QName};
use xqr_xmlgen::{bibliography, random_tree, RandomTreeConfig};

struct Fixture {
    doc: Arc<Document>,
    names: Arc<NamePool>,
    index: DocIndex,
}

fn fixture(xml: &str) -> Fixture {
    let names = Arc::new(NamePool::new());
    let doc = Document::parse(xml, names.clone()).unwrap();
    let index = DocIndex::build(&doc).unwrap();
    Fixture { doc, names, index }
}

fn rand_xml(nodes: usize) -> String {
    random_tree(&RandomTreeConfig {
        nodes,
        p_ancestor: 0.15,
        p_descendant: 0.2,
        ..Default::default()
    })
}

fn name(f: &Fixture, local: &str) -> NameId {
    f.names.intern(&QName::local(local))
}

/// Linear patterns: scan + structural join vs index-fed join vs a pure
/// path dictionary lookup vs navigation.
fn bench_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_linear_access_path");
    let cases = [
        ("bib", fixture(&bibliography(7, 5_000)), "author", "last"),
        ("rand", fixture(&rand_xml(50_000)), "a", "d"),
    ];
    for (label, f, anc, desc) in &cases {
        let (a, d) = (name(f, anc), name(f, desc));
        let steps: Vec<PathStep> = vec![(EdgeKind::Descendant, a), (EdgeKind::Descendant, d)];
        group.bench_with_input(BenchmarkId::new("scan+join", label), &(), |b, _| {
            b.iter(|| {
                let alist = element_list(&f.doc, a);
                let dlist = element_list(&f.doc, d);
                stack_tree_desc(&alist, &dlist, JoinKind::AncestorDescendant).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("index-fed join", label), &(), |b, _| {
            b.iter(|| {
                let alist = f.index.element_labels(a);
                let dlist = f.index.element_labels(d);
                stack_tree_desc(alist, dlist, JoinKind::AncestorDescendant).len()
            })
        });
        group.bench_with_input(BenchmarkId::new("path-dict lookup", label), &(), |b, _| {
            b.iter(|| f.index.linear_elements(&steps).len())
        });
        group.bench_with_input(BenchmarkId::new("navigation", label), &(), |b, _| {
            let twig = TwigPattern::parse(&format!("//{anc}//{desc}"), &f.names).unwrap();
            b.iter(|| enumerate_matches(&f.doc, &twig).len())
        });
    }
    group.finish();
}

/// Branching twigs: scan-fed vs index-fed vs path-prefiltered holistic
/// joins vs navigation.
fn bench_twig(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_twig_access_path");
    let cases = [
        (
            "bib",
            fixture(&bibliography(7, 5_000)),
            "//book[author]/price",
        ),
        ("rand", fixture(&rand_xml(50_000)), "//a[t0]/d"),
    ];
    for (label, f, pattern) in &cases {
        let twig = TwigPattern::parse(pattern, &f.names).unwrap();
        let twig_names: Vec<NameId> = twig.nodes.iter().map(|n| n.name).collect();
        // Root chains for the path prefilter, as access-path answering
        // builds them (trunk root `//x`, branches `//x/y`).
        let chains: Vec<Vec<PathStep>> = vec![
            vec![(EdgeKind::Descendant, twig_names[0])],
            vec![
                (EdgeKind::Descendant, twig_names[0]),
                (EdgeKind::Child, twig_names[1]),
            ],
            vec![
                (EdgeKind::Descendant, twig_names[0]),
                (EdgeKind::Child, twig_names[2]),
            ],
        ];
        group.bench_with_input(BenchmarkId::new("scan+twig_stack", label), &(), |b, _| {
            b.iter(|| {
                let lists: Vec<Vec<Labeled>> = twig_names
                    .iter()
                    .map(|&n| element_list(&f.doc, n))
                    .collect();
                twig_stack(&twig, &lists).0.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("index+twig_stack", label), &(), |b, _| {
            b.iter(|| {
                let lists: Vec<Vec<Labeled>> = twig_names
                    .iter()
                    .map(|&n| f.index.element_labels(n).to_vec())
                    .collect();
                twig_stack(&twig, &lists).0.len()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("index+path-prefilter+twig_stack", label),
            &(),
            |b, _| {
                b.iter(|| {
                    let dict = f.index.path_dict();
                    let lists: Vec<Vec<Labeled>> = twig_names
                        .iter()
                        .zip(&chains)
                        .map(|(&n, chain)| f.index.elements_on_paths(n, &dict.matching(chain)))
                        .collect();
                    twig_stack(&twig, &lists).0.len()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("navigation", label), &(), |b, _| {
            b.iter(|| enumerate_matches(&f.doc, &twig).len())
        });
    }
    group.finish();
}

/// End to end through the engine: the same prepared query against an
/// indexed document, an unindexed one (IndexScan falls back), and the
/// fully unoptimized baseline.
fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_engine_access_path");
    let bib = bibliography(7, 5_000);
    let configs: [(&str, EngineOptions); 3] = [
        ("indexed", EngineOptions::default()),
        (
            "fallback-navigation",
            EngineOptions {
                index_documents: false,
                ..Default::default()
            },
        ),
        ("unoptimized", EngineOptions::unoptimized()),
    ];
    for (q_label, q) in [
        ("twig", r#"count(doc("bib.xml")//book[author]/price)"#),
        ("linear", r#"count(doc("bib.xml")//author/last)"#),
    ] {
        for (label, opts) in &configs {
            let engine = Engine::with_options(opts.clone());
            engine.load_document("bib.xml", &bib).unwrap();
            let plan = engine.compile(q).unwrap();
            let ctx = DynamicContext::new();
            group.bench_with_input(BenchmarkId::new(*label, q_label), &(), |b, _| {
                b.iter(|| plan.execute(&engine, &ctx).unwrap().len())
            });
        }
    }
    group.finish();
}

/// What a catalog load pays to build the index in the first place.
fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_index_build");
    for (label, xml) in [
        ("bib5000", bibliography(7, 5_000)),
        ("rand50000", rand_xml(50_000)),
    ] {
        let f = fixture(&xml);
        group.bench_with_input(BenchmarkId::new("build", label), &(), |b, _| {
            b.iter(|| DocIndex::build(&f.doc).unwrap().entry_count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_linear, bench_twig, bench_engine, bench_build);
criterion_main!(benches);
