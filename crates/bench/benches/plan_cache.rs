//! Plan-cache benchmark: what a cache hit is worth.
//!
//! Three rungs per query shape:
//! * `cold_compile`   — full parse → normalize → typecheck → optimize,
//!   what every query pays without a cache;
//! * `cache_hit`      — the sharded-LRU lookup returning an `Arc` to the
//!   already-compiled plan;
//! * `execute_only`   — running the prepared plan, the floor a perfect
//!   cache approaches.
//!
//! A fourth group measures the full service path (admission + cache +
//! worker pool + stats) against bare `Engine::query` to price the
//! service layer itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xqr_core::{DynamicContext, Engine};
use xqr_service::{PlanCache, QueryService, ServiceConfig};
use xqr_xmlgen::bibliography;

const QUERIES: &[(&str, &str)] = &[
    ("tiny", "1 + 1"),
    ("path", r#"count(doc("bib.xml")//book/title)"#),
    (
        "flwor",
        r#"for $b in doc("bib.xml")//book
           where xs:decimal($b/price) < 50
           order by string($b/title)
           return <cheap>{string($b/title)}</cheap>"#,
    ),
];

fn bench_compile_vs_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_cache");
    let engine = Engine::new();
    engine
        .load_document("bib.xml", &bibliography(2, 100))
        .unwrap();

    for (label, q) in QUERIES {
        group.bench_with_input(BenchmarkId::new("cold_compile", label), q, |b, q| {
            b.iter(|| engine.compile(q).unwrap())
        });

        let cache = PlanCache::new(64, 8);
        cache.get_or_compile(&engine, q).unwrap();
        group.bench_with_input(BenchmarkId::new("cache_hit", label), q, |b, q| {
            b.iter(|| cache.get_or_compile(&engine, q).unwrap())
        });

        let prepared = engine.compile(q).unwrap();
        group.bench_with_input(
            BenchmarkId::new("execute_only", label),
            &prepared,
            |b, p| b.iter(|| p.execute(&engine, &DynamicContext::new()).unwrap().len()),
        );
    }
    group.finish();
}

fn bench_service_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_path");
    let bib = bibliography(2, 100);
    let q = r#"count(doc("bib.xml")//book)"#;

    let engine = Engine::new();
    engine.load_document("bib.xml", &bib).unwrap();
    group.bench_function("engine_query", |b| b.iter(|| engine.query(q).unwrap()));

    let service = QueryService::new(ServiceConfig::default());
    service.load_document("bib.xml", &bib).unwrap();
    service.run(q).unwrap(); // warm the cache
    group.bench_function("service_run", |b| b.iter(|| service.run(q).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_compile_vs_hit, bench_service_overhead);
criterion_main!(benches);
