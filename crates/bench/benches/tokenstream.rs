//! E4/E11/E12 micro-benchmarks: wire encoding with/without pooling,
//! construction pipelines, buffer sharing and memoization.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use xqr_core::{DynamicContext, Engine, EngineOptions};
use xqr_runtime::RuntimeOptions;
use xqr_tokenstream::{decode, drain, encode, BufferFactory, ParserTokenIterator, TokenStream};
use xqr_xdm::NamePool;
use xqr_xmlgen::{auction_site, XmarkConfig};

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_encoding");
    let xml = auction_site(&XmarkConfig::scaled(2_000));
    let stream = TokenStream::from_xml(&xml, Arc::new(NamePool::new())).unwrap();
    group.bench_function("encode_pooled", |b| b.iter(|| encode(&stream, true).len()));
    group.bench_function("encode_unpooled", |b| {
        b.iter(|| encode(&stream, false).len())
    });
    let pooled = encode(&stream, true);
    group.bench_function("decode_pooled", |b| {
        b.iter(|| {
            decode(pooled.clone(), Arc::new(NamePool::new()))
                .unwrap()
                .len()
        })
    });
    group.finish();
}

fn bench_buffer_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_sharing");
    group.sample_size(20);
    let xml = auction_site(&XmarkConfig::scaled(1_000));
    let names = Arc::new(NamePool::new());
    group.bench_function("three_consumers_buffered", |b| {
        b.iter(|| {
            let f = BufferFactory::new(ParserTokenIterator::new(&xml, names.clone()));
            let mut total = 0usize;
            for _ in 0..3 {
                total += drain(&mut f.consumer()).unwrap();
            }
            total
        })
    });
    group.bench_function("three_consumers_reparsed", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..3 {
                total += drain(&mut ParserTokenIterator::new(&xml, names.clone())).unwrap();
            }
            total
        })
    });
    group.finish();
}

fn bench_memoization(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_memoization");
    group.sample_size(15);
    let q = "declare function local:fib($n as xs:integer) as xs:integer {
               if ($n lt 2) then $n else local:fib($n - 1) + local:fib($n - 2)
             }; local:fib(18)";
    let plain = Engine::new();
    let prepared = plain.compile(q).unwrap();
    group.bench_function("fib18_plain", |b| {
        b.iter(|| {
            prepared
                .execute(&plain, &DynamicContext::new())
                .unwrap()
                .len()
        })
    });
    let memo = Engine::with_options(EngineOptions {
        compile: Default::default(),
        runtime: RuntimeOptions {
            memoize_functions: true,
            ..Default::default()
        },
        ..Default::default()
    });
    let prepared_m = memo.compile(q).unwrap();
    group.bench_function("fib18_memoized", |b| {
        b.iter(|| {
            prepared_m
                .execute(&memo, &DynamicContext::new())
                .unwrap()
                .len()
        })
    });
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    // E11's construction pipelines.
    let mut group = c.benchmark_group("e11_construction");
    group.sample_size(20);
    let engine = Engine::new();
    let no_ids = engine
        .compile("for $i in 1 to 200 return <item n=\"{$i}\">{$i}</item>")
        .unwrap();
    let with_ids = engine
        .compile("count((for $i in 1 to 200 return <i/>) | (for $i in 1 to 200 return <i/>))")
        .unwrap();
    group.bench_function("construct_no_identity", |b| {
        b.iter(|| {
            no_ids
                .execute(&engine, &DynamicContext::new())
                .unwrap()
                .len()
        })
    });
    group.bench_function("construct_with_identity_ops", |b| {
        b.iter(|| {
            with_ids
                .execute(&engine, &DynamicContext::new())
                .unwrap()
                .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_encoding,
    bench_buffer_sharing,
    bench_memoization,
    bench_construction
);
criterion_main!(benches);
