//! E1/E10 micro-benchmarks: streaming matcher vs materialized execution;
//! skip() effectiveness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xqr_core::{DynamicContext, Engine, Item, NodeRef};
use xqr_xmlgen::{auction_site, XmarkConfig};

fn bench_streaming_vs_materialized(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_streaming");
    group.sample_size(20);
    for n in [500usize, 2_000] {
        let xml = auction_site(&XmarkConfig::scaled(n));
        group.bench_with_input(BenchmarkId::new("streaming", n), &xml, |b, xml| {
            let engine = Engine::new();
            let q = engine.compile("/site/people/person").unwrap();
            b.iter(|| {
                let mut count = 0u64;
                q.execute_streaming(&engine, xml, |_| count += 1).unwrap();
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("materialized", n), &xml, |b, xml| {
            b.iter(|| {
                // Fresh engine per iteration: the store grows per load.
                let engine = Engine::new();
                engine.query_xml(xml, "/site/people/person").unwrap().len()
            })
        });
    }
    group.finish();
}

fn bench_skip(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_skip");
    group.sample_size(20);
    let xml = auction_site(&XmarkConfig::scaled(2_000));
    let engine = Engine::new();
    for (label, q) in [
        (
            "selective_with_skip",
            "/site/closed_auctions/closed_auction",
        ),
        ("descendant_no_skip", "//closed_auction"),
    ] {
        let prepared = engine.compile(q).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut count = 0u64;
                prepared
                    .execute_streaming(&engine, &xml, |_| count += 1)
                    .unwrap();
                count
            })
        });
    }
    group.finish();
}

fn bench_positional_early_exit(c: &mut Criterion) {
    // E2's lazy-evaluation claim as a micro-benchmark.
    let mut group = c.benchmark_group("e2_lazy");
    let engine = Engine::new();
    let doc = engine
        .load_document("x.xml", &auction_site(&XmarkConfig::scaled(2_000)))
        .unwrap();
    let item = Item::Node(NodeRef::new(doc, xqr_core::NodeId(0)));
    for (label, q) in [
        ("first_person", "(.//person)[1]"),
        ("all_persons", ".//person"),
    ] {
        let prepared = engine.compile(q).unwrap();
        group.bench_function(label, |b| {
            let mut ctx = DynamicContext::new();
            ctx.context_item = Some(item.clone());
            b.iter(|| prepared.execute(&engine, &ctx).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_streaming_vs_materialized,
    bench_skip,
    bench_positional_early_exit
);
criterion_main!(benches);
