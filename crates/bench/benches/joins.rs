//! E5/E6 micro-benchmarks: structural join algorithms and holistic twig
//! joins vs their baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use xqr_joins::{
    element_list, enumerate_matches, mpmgjn, nested_loop, stack_tree_anc, stack_tree_desc,
    twig_stack, JoinKind, TwigPattern,
};
use xqr_store::Document;
use xqr_xdm::{NamePool, QName};
use xqr_xmlgen::{random_tree, RandomTreeConfig};

struct Fixture {
    doc: Arc<Document>,
    names: Arc<NamePool>,
}

fn fixture(nodes: usize, p_anc: f64) -> Fixture {
    let names = Arc::new(NamePool::new());
    let cfg = RandomTreeConfig {
        nodes,
        p_ancestor: p_anc,
        p_descendant: 0.2,
        ..Default::default()
    };
    let doc = Document::parse(&random_tree(&cfg), names.clone()).unwrap();
    Fixture { doc, names }
}

fn bench_structural(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_structural_join");
    for p in [0.05f64, 0.25] {
        let f = fixture(10_000, p);
        let a = f.names.intern(&QName::local("a"));
        let d = f.names.intern(&QName::local("d"));
        let alist = element_list(&f.doc, a);
        let dlist = element_list(&f.doc, d);
        let label = format!("p{}", (p * 100.0) as u32);
        group.bench_with_input(BenchmarkId::new("stack_tree_desc", &label), &(), |b, _| {
            b.iter(|| stack_tree_desc(&alist, &dlist, JoinKind::AncestorDescendant))
        });
        group.bench_with_input(BenchmarkId::new("stack_tree_anc", &label), &(), |b, _| {
            b.iter(|| stack_tree_anc(&alist, &dlist, JoinKind::AncestorDescendant))
        });
        group.bench_with_input(BenchmarkId::new("mpmgjn", &label), &(), |b, _| {
            b.iter(|| mpmgjn(&alist, &dlist, JoinKind::AncestorDescendant))
        });
        if alist.len() * dlist.len() < 4_000_000 {
            group.bench_with_input(BenchmarkId::new("nested_loop", &label), &(), |b, _| {
                b.iter(|| nested_loop(&alist, &dlist, JoinKind::AncestorDescendant))
            });
        }
        group.bench_with_input(BenchmarkId::new("navigation", &label), &(), |b, _| {
            let twig = TwigPattern::parse("//a//d", &f.names).unwrap();
            b.iter(|| enumerate_matches(&f.doc, &twig))
        });
    }
    group.finish();
}

fn bench_twig(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_twig");
    let f = fixture(10_000, 0.15);
    let twig = TwigPattern::parse("//a[t0]/d", &f.names).unwrap();
    let lists: Vec<_> = twig
        .nodes
        .iter()
        .map(|n| element_list(&f.doc, n.name))
        .collect();
    group.bench_function("twig_stack", |b| b.iter(|| twig_stack(&twig, &lists)));
    group.bench_function("binary_plan", |b| {
        b.iter(|| {
            let ab = stack_tree_desc(&lists[0], &lists[1], JoinKind::ParentChild);
            let ad = stack_tree_desc(&lists[0], &lists[2], JoinKind::ParentChild);
            (ab.len(), ad.len())
        })
    });
    group.bench_function("navigation", |b| {
        b.iter(|| enumerate_matches(&f.doc, &twig))
    });
    group.finish();
}

criterion_group!(benches, bench_structural, bench_twig);
criterion_main!(benches);
