//! E18: morsel-parallel twig joins and shared-scan batch execution.
//!
//! Three questions, mirroring the claims in `EXPERIMENTS.md`:
//!
//! 1. **Large-document speedup** — on an index-fed twig over ~10⁵
//!    elements, how does the morsel executor scale with the morsel
//!    count vs the serial `twig_stack` kernel?
//! 2. **Small-document overhead** — on a document far below
//!    `min_split`, forcing a split should *lose* (the honest negative:
//!    pool handoff + merge dominate microsecond joins), which is why
//!    the default config refuses to split small inputs.
//! 3. **Batch amortization** — `Engine::query_batch` over one document
//!    vs compiling/loading per query, with the shared scan cache
//!    deduplicating inverted-list builds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use xqr_core::{Engine, EngineOptions};
use xqr_joins::{element_list, twig_stack, TwigPattern};
use xqr_parallel::{parallel_twig_stack, ParallelConfig};
use xqr_store::Document;
use xqr_xdm::{Limits, NamePool, QueryGuard};
use xqr_xmlgen::{random_tree, RandomTreeConfig};

struct Fixture {
    twig: TwigPattern,
    lists: Vec<Vec<xqr_joins::Labeled>>,
    shared: Vec<Arc<Vec<xqr_joins::Labeled>>>,
}

fn fixture(nodes: usize) -> Fixture {
    let names = Arc::new(NamePool::new());
    let cfg = RandomTreeConfig {
        seed: 0xE18,
        nodes,
        max_depth: 12,
        alphabet: 3,
        p_ancestor: 0.2,
        p_descendant: 0.25,
        ..Default::default()
    };
    let doc = Document::parse(&random_tree(&cfg), names.clone()).unwrap();
    let twig = TwigPattern::parse("//t0[t1]//t2", &names).unwrap();
    let lists: Vec<_> = twig
        .nodes
        .iter()
        .map(|n| element_list(&doc, n.name))
        .collect();
    let shared: Vec<_> = lists.iter().cloned().map(Arc::new).collect();
    Fixture {
        twig,
        lists,
        shared,
    }
}

fn bench_parallel_twig(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_parallel_twig");
    group.sample_size(20);
    let f = fixture(120_000);
    let guard = QueryGuard::new(Limits::unlimited());

    group.bench_function("serial_twig_stack", |b| {
        b.iter(|| twig_stack(&f.twig, &f.lists))
    });
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    for m in [2usize, 4, ncpu] {
        group.bench_with_input(BenchmarkId::new("morsels", m), &m, |b, &m| {
            b.iter(|| {
                parallel_twig_stack(
                    &f.twig,
                    f.shared.clone(),
                    &ParallelConfig::forced(m),
                    &guard,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_small_doc_negative(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_small_doc");
    let f = fixture(300);
    let guard = QueryGuard::new(Limits::unlimited());

    group.bench_function("serial", |b| b.iter(|| twig_stack(&f.twig, &f.lists)));
    group.bench_function("forced_4_morsels", |b| {
        b.iter(|| {
            parallel_twig_stack(
                &f.twig,
                f.shared.clone(),
                &ParallelConfig::forced(4),
                &guard,
            )
            .unwrap()
        })
    });
    // What the default config actually does on this input: refuses to
    // split (below `min_split`), paying only the heuristic check.
    group.bench_function("default_config", |b| {
        b.iter(|| {
            parallel_twig_stack(
                &f.twig,
                f.shared.clone(),
                &ParallelConfig::default(),
                &guard,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("e18_batch");
    group.sample_size(20);
    let xml = random_tree(&RandomTreeConfig {
        seed: 0xBA7C,
        nodes: 30_000,
        max_depth: 10,
        alphabet: 3,
        p_ancestor: 0.2,
        p_descendant: 0.25,
        ..Default::default()
    });
    // Eight queries sharing three underlying inverted-list scans.
    let queries: Vec<&str> = vec![
        "count(//t0//t1)",
        "count(//t0[t1]//t2)",
        "count(//t0/t1)",
        "count(//t1//t2)",
        "count(//t0[t2])",
        "count(//t0[t1][t2])",
        "count(//t2)",
        "count(//t1)",
    ];

    group.bench_function("query_batch_shared_scans", |b| {
        let engine = Engine::with_options(EngineOptions::default());
        b.iter(|| engine.query_batch(&xml, &queries))
    });
    group.bench_function("individual_queries", |b| {
        let engine = Engine::with_options(EngineOptions::default());
        b.iter(|| {
            queries
                .iter()
                .map(|q| engine.query_xml(&xml, q))
                .collect::<Vec<_>>()
        })
    });
    // Parse + index once outside the loop: what remains is compile +
    // execute per query with *no* shared scan cache, isolating the
    // scan-sharing benefit from the parse/index amortization.
    group.bench_function("individual_preloaded", |b| {
        let engine = Engine::with_options(EngineOptions::default());
        let ctx = xqr_core::context_with_doc(&engine, "e18.xml", &xml).unwrap();
        b.iter(|| {
            queries
                .iter()
                .map(|q| {
                    engine
                        .compile(q)
                        .and_then(|p| p.execute(&engine, &ctx))
                        .and_then(|r| r.serialize_guarded())
                })
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_twig,
    bench_small_doc_negative,
    bench_batch
);
criterion_main!(benches);
