//! E17: standing continuous queries — one shared-automaton publish vs N
//! independent streaming passes.
//!
//! The claim under test: matching a subscription set against a document
//! costs one tokenization pass plus automaton work that scales with the
//! *shared-prefix trie*, not with the subscription count. The control
//! runs the same N patterns as N independent `StreamMatcher` passes,
//! each re-tokenizing the document.
//!
//! The `disjoint` group is the honest negative: patterns with no common
//! prefix build a wide trie whose root fan-out every element must be
//! checked against, so the combined pass's per-element cost grows with
//! N even though it still tokenizes once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xqr_core::Engine;
use xqr_subscribe::{run_document, CombinedAutomaton, SubscriptionRegistry};
use xqr_tokenstream::ParserTokenIterator;
use xqr_xdm::Limits;

/// A feed-shaped document: `items` entries under a shared `/feed/item`
/// spine, each carrying a handful of the `f0..f{width}` field tags the
/// subscription set selects on, plus text payload.
fn feed(items: usize, width: usize) -> String {
    let mut xml = String::with_capacity(items * 64);
    xml.push_str("<feed>");
    for i in 0..items {
        xml.push_str("<item>");
        // Each item carries 4 of the field tags, rotating so every
        // field appears in roughly items*4/width entries.
        for k in 0..4 {
            let f = (i * 4 + k) % width;
            xml.push_str(&format!("<f{f}>payload {i}.{k}</f{f}>"));
        }
        xml.push_str("</item>");
    }
    xml.push_str("</feed>");
    xml
}

/// N shared-prefix subscriptions: `/feed/item/f{i}` — the trie shares
/// the two-step spine, fanning out only at the leaves.
fn shared_prefix_queries(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("/feed/item/f{i}")).collect()
}

/// N disjoint subscriptions: `//f{i}` — descendant steps at the root,
/// no shared prefix, maximal live fan-out at every element.
fn disjoint_queries(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("//f{i}")).collect()
}

fn bench_publish_vs_independent(c: &mut Criterion) {
    let mut group = c.benchmark_group("e17_publish");
    group.sample_size(10);
    let xml = feed(2_000, 256);
    for n in [16usize, 64, 256] {
        let queries = shared_prefix_queries(n);

        // One publish: shared tokenization + combined automaton.
        group.bench_with_input(BenchmarkId::new("combined_publish", n), &xml, |b, xml| {
            let engine = Engine::new();
            let reg = SubscriptionRegistry::new();
            for q in &queries {
                let plan = engine.compile_shared(q).unwrap();
                reg.register(q, plan, Limits::unlimited(), None);
            }
            b.iter(|| {
                let report = reg
                    .publish(&engine, "feed.xml", xml, Limits::unlimited())
                    .unwrap();
                report.matches
            })
        });

        // The control: N independent single-pattern streaming passes,
        // each re-tokenizing the document from scratch.
        group.bench_with_input(BenchmarkId::new("independent_passes", n), &xml, |b, xml| {
            let engine = Engine::new();
            let plans: Vec<_> = queries
                .iter()
                .map(|q| engine.compile_shared(q).unwrap())
                .collect();
            b.iter(|| {
                let mut matches = 0u64;
                for plan in &plans {
                    plan.execute_streaming(&engine, xml, |_| matches += 1)
                        .unwrap();
                }
                matches
            })
        });
    }
    group.finish();
}

fn bench_automaton_scaling(c: &mut Criterion) {
    // The raw combined pass (no registry, no delivery) so the scaling
    // curve isolates automaton cost: shared-prefix vs disjoint fan-out.
    let mut group = c.benchmark_group("e17_automaton");
    group.sample_size(10);
    let xml = feed(2_000, 256);
    for n in [16usize, 64, 256] {
        for (shape, queries) in [
            ("shared", shared_prefix_queries(n)),
            ("disjoint", disjoint_queries(n)),
        ] {
            let engine = Engine::new();
            let patterns: Vec<_> = queries
                .iter()
                .map(|q| {
                    engine
                        .compile_shared(q)
                        .unwrap()
                        .stream_pattern()
                        .expect("streamable")
                        .clone()
                })
                .collect();
            let automaton = CombinedAutomaton::build(&patterns);
            group.bench_function(BenchmarkId::new(shape, n), |b| {
                b.iter(|| {
                    let mut it = ParserTokenIterator::new(&xml, engine.names().clone());
                    let outcome = run_document(&automaton, &mut it, |_, _| Ok(())).unwrap();
                    outcome.stats.matches
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_publish_vs_independent,
    bench_automaton_scaling
);
criterion_main!(benches);
