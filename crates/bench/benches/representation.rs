//! E3 micro-benchmarks: build and scan costs per data representation
//! (DOM tree vs TokenStream array vs labeled store).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use xqr_store::{dom, Document};
use xqr_tokenstream::{drain, TokenStream};
use xqr_xdm::NamePool;
use xqr_xmlgen::{auction_site, XmarkConfig};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_build");
    for n in [500usize, 2_000] {
        let xml = auction_site(&XmarkConfig::scaled(n));
        group.bench_with_input(BenchmarkId::new("dom", n), &xml, |b, xml| {
            b.iter(|| dom::parse_dom(xml).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("tokenstream", n), &xml, |b, xml| {
            b.iter(|| TokenStream::from_xml(xml, Arc::new(NamePool::new())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("store", n), &xml, |b, xml| {
            b.iter(|| Document::parse(xml, Arc::new(NamePool::new())).unwrap())
        });
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_scan");
    let xml = auction_site(&XmarkConfig::scaled(2_000));
    let names = Arc::new(NamePool::new());
    let dom_tree = dom::parse_dom(&xml).unwrap();
    let stream = TokenStream::from_xml(&xml, names.clone()).unwrap();
    let doc = Document::parse(&xml, names).unwrap();
    group.bench_function("dom_count", |b| b.iter(|| dom::count_nodes(&dom_tree)));
    group.bench_function("tokenstream_drain", |b| {
        b.iter(|| drain(&mut stream.iter()).unwrap())
    });
    group.bench_function("store_elements", |b| b.iter(|| doc.all_elements().count()));
    group.finish();
}

criterion_group!(benches, bench_build, bench_scan);
criterion_main!(benches);
