//! E16: cold start from durable segments vs re-parse + re-index.
//!
//! The durability claim in one measurement: a restarted service used to
//! pay `parse(xml) + DocIndex::build(doc)` per document to rebuild its
//! corpus; with the segment store it pays `Segment::open` (mmap +
//! checksum verification, no per-node work) up front and a binary
//! materialization on first touch — the structural index is served
//! zero-copy from the mapping and is never rebuilt. Three rungs per
//! document size:
//!
//! * `reparse`   — the old cold start: XML parse + index build;
//! * `mmap_load` — segment cold start: open + verify + materialize the
//!   document (the index stays mapped);
//! * `mmap_open` — catalog adoption cost alone: open + verify, document
//!   untouched (what `DocumentCatalog::with_persistence` defers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use xqr_index::DocIndex;
use xqr_segment::{segment_bytes, write_segment_file, Segment};
use xqr_store::Document;
use xqr_xdm::NamePool;
use xqr_xmlgen::bibliography;

struct Fixture {
    xml: String,
    path: PathBuf,
}

fn fixture(dir: &Path, books: usize) -> Fixture {
    let xml = bibliography(7, books);
    let names = Arc::new(NamePool::new());
    let doc = Document::parse_with_uri(&xml, names, Some("bib.xml")).unwrap();
    let index = DocIndex::build(&doc).unwrap();
    let bytes = segment_bytes(&doc, &index).unwrap();
    let file = format!("bib-{books}.seg");
    write_segment_file(dir, &file, &bytes).unwrap();
    Fixture {
        xml,
        path: dir.join(file),
    }
}

fn bench_cold_start(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("xqr-bench-segment-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut group = c.benchmark_group("e16_cold_start");
    for books in [1_000usize, 10_000] {
        let f = fixture(&dir, books);
        group.bench_with_input(BenchmarkId::new("reparse", books), &f, |b, f| {
            b.iter(|| {
                let names = Arc::new(NamePool::new());
                let doc = Document::parse_with_uri(&f.xml, names, Some("bib.xml")).unwrap();
                let index = DocIndex::build(&doc).unwrap();
                (doc.len(), index.entry_count())
            })
        });
        group.bench_with_input(BenchmarkId::new("mmap_load", books), &f, |b, f| {
            b.iter(|| {
                let seg = Segment::open(&f.path).unwrap();
                let names = Arc::new(NamePool::new());
                let (doc, index) = seg.load(&names).unwrap();
                (doc.len(), index.is_zero_copy())
            })
        });
        group.bench_with_input(BenchmarkId::new("mmap_open", books), &f, |b, f| {
            b.iter(|| {
                let seg = Segment::open(&f.path).unwrap();
                (seg.node_count(), seg.file_bytes())
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_cold_start);
criterion_main!(benches);
