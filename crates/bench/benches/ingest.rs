//! E19: chunked ingestion — time-to-first-match and peak allocation,
//! push-fed chunks vs materialize-then-parse.
//!
//! Two claims under test:
//!
//! 1. **Time-to-first-match**: a standing subscription fed the document
//!    as chunks can act on its first match after a prefix of the bytes;
//!    the materialize-then-parse control cannot report anything until
//!    the whole document has been assembled and published.
//! 2. **Bounded memory**: a chunked publish whose subscriptions all
//!    ride the streamed pass holds O(lexer buffer) bytes regardless of
//!    document size, while the control holds the entire document (and
//!    its parse) at once. Measured with a tracking allocator, reported
//!    as peak-delta bytes next to the timing groups.
//!
//! Run with `cargo bench -p xqr-bench --bench ingest`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use xqr_core::Engine;
use xqr_subscribe::SubscriptionRegistry;
use xqr_xdm::Limits;

/// A tracking allocator: live bytes and the high-water mark, cheap
/// enough to leave on for the timing groups too.
struct PeakAlloc {
    live: AtomicUsize,
    peak: AtomicUsize,
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = self.live.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            self.peak.fetch_max(live, Ordering::Relaxed);
        }
        p
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.live.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc {
    live: AtomicUsize::new(0),
    peak: AtomicUsize::new(0),
};

impl PeakAlloc {
    /// Peak-delta of `f` relative to the live bytes when it started.
    fn peak_delta(&self, f: impl FnOnce()) -> usize {
        let before = self.live.load(Ordering::Relaxed);
        self.peak.store(before, Ordering::Relaxed);
        f();
        self.peak.load(Ordering::Relaxed).saturating_sub(before)
    }
}

/// One log entry, ~40 bytes. The generator yields the document as
/// per-entry chunks so the chunked leg never materializes it.
fn entry(i: usize) -> String {
    format!("<entry><seq>{i}</seq><msg>payload {i}</msg></entry>")
}

fn registry_with(engine: &Engine, queries: &[&str]) -> SubscriptionRegistry {
    let reg = SubscriptionRegistry::new();
    for q in queries {
        let plan = engine.compile_shared(q).unwrap();
        reg.register(q, plan, Limits::unlimited(), None);
    }
    reg
}

/// Time-to-first-match: the needle sits right after the front of the
/// document; the tail is `entries` more of them. The chunked leg feeds
/// until the subscription reports a match, then stops — the control
/// must assemble and publish everything first.
fn bench_first_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("e19_first_match");
    group.sample_size(10);
    let engine = Engine::new();
    let reg = registry_with(&engine, &["/log/needle"]);

    for entries in [1_000usize, 10_000, 50_000] {
        let chunks: Vec<String> = std::iter::once("<log><needle>hit</needle>".to_string())
            .chain((0..entries).map(entry))
            .chain(std::iter::once("</log>".to_string()))
            .collect();

        group.bench_with_input(
            BenchmarkId::new("chunked_until_match", entries),
            &chunks,
            |b, chunks| {
                b.iter(|| {
                    let mut session = reg.begin_publish(&engine, "log.xml", Limits::unlimited());
                    for c in chunks {
                        session.feed(c.as_bytes()).unwrap();
                        if session.matches_so_far() > 0 {
                            break;
                        }
                    }
                    // Acting on the first match: the session is simply
                    // dropped; nothing was delivered or stored yet.
                    session.matches_so_far()
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("materialize_then_publish", entries),
            &chunks,
            |b, chunks| {
                b.iter(|| {
                    let xml: String = chunks.concat();
                    let report = reg
                        .publish(&engine, "log.xml", &xml, Limits::unlimited())
                        .unwrap();
                    report.matches
                })
            },
        );
    }
    group.finish();
}

/// Full chunked publish vs whole-document publish, end to end — the
/// overhead of resumable lexing when the client *does* want the whole
/// report, not just the first match.
fn bench_full_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("e19_full_publish");
    group.sample_size(10);
    let engine = Engine::new();
    let reg = registry_with(&engine, &["/log/entry/seq", "/log/needle"]);

    for entries in [10_000usize, 50_000] {
        let xml: String = std::iter::once("<log>".to_string())
            .chain((0..entries).map(entry))
            .chain(std::iter::once("</log>".to_string()))
            .collect();

        group.bench_with_input(BenchmarkId::new("chunked", entries), &xml, |b, xml| {
            b.iter(|| {
                reg.publish_chunked(
                    &engine,
                    "log.xml",
                    xml.as_bytes().chunks(4096),
                    Limits::unlimited(),
                )
                .unwrap()
                .matches
            })
        });

        group.bench_with_input(BenchmarkId::new("whole", entries), &xml, |b, xml| {
            b.iter(|| {
                reg.publish(&engine, "log.xml", xml, Limits::unlimited())
                    .unwrap()
                    .matches
            })
        });
    }
    group.finish();
}

/// Peak allocation, printed once: a generator-fed chunked publish holds
/// the lexer buffer; the control holds the whole document. The
/// subscription matches once, at the very end — the automaton works
/// over every element, but match *storage* (which any leg pays in
/// proportion to its result) stays out of the measurement.
fn report_peak_memory() {
    let entries = 200_000usize; // ~9.4 MiB of document text

    let engine = Engine::new();
    let reg = registry_with(&engine, &["/log/needle"]);

    let chunked = ALLOC.peak_delta(|| {
        let mut session = reg.begin_publish(&engine, "log.xml", Limits::unlimited());
        session.feed(b"<log>").unwrap();
        for i in 0..entries {
            session.feed(entry(i).as_bytes()).unwrap();
            if std::env::var_os("E19_DEBUG").is_some() && i % 50_000 == 0 {
                println!(
                    "  after {} entries: live {} KiB, session buffered {} B",
                    i,
                    ALLOC.live.load(Ordering::Relaxed) / 1024,
                    session.buffered_bytes()
                );
            }
        }
        session.feed(b"<needle>hit</needle></log>").unwrap();
        assert!(!session.needs_fallback_doc());
        let report = session
            .finish(&reg, &engine, |_| unreachable!("no fallback subscriptions"))
            .unwrap();
        assert_eq!(report.matches, 1);
    });

    let materialized = ALLOC.peak_delta(|| {
        let mut xml = String::from("<log>");
        for i in 0..entries {
            xml.push_str(&entry(i));
        }
        xml.push_str("<needle>hit</needle></log>");
        reg.publish(&engine, "log.xml", &xml, Limits::unlimited())
            .unwrap();
    });

    println!(
        "e19_peak_alloc: {entries} entries — chunked publish {} KiB vs \
         materialize-then-publish {} KiB ({:.1}x)",
        chunked / 1024,
        materialized / 1024,
        materialized as f64 / chunked.max(1) as f64
    );
}

fn bench_all(c: &mut Criterion) {
    report_peak_memory();
    bench_first_match(c);
    bench_full_publish(c);
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
