//! E7/E8/E9 micro-benchmarks: optimizer ablation, compilation phases,
//! and the customer transformation vs its baselines.

use criterion::{criterion_group, BenchmarkId, Criterion};
use xqr_bench::experiments::{customer_query, dom_baseline_transform, giant_customer_query};
use xqr_compiler::RewriteConfig;
use xqr_core::{CompileOptions, DynamicContext, Engine, EngineOptions};
use xqr_runtime::RuntimeOptions;
use xqr_xmlgen::{bibliography, trading_partners};

fn bench_rewrite_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_ablation");
    group.sample_size(15);
    let bib = bibliography(3, 300);
    let q = "for $a in doc(\"bib.xml\")//book return for $b in doc(\"bib.xml\")//book \
             return if ($a/publisher = $b/publisher and $a/@year = 1967) then $b/title else ()";
    for (label, cfg) in [
        ("all_rules", RewriteConfig::all()),
        (
            "no_join_detection",
            RewriteConfig::without("join_detection"),
        ),
        (
            "no_ddo_elimination",
            RewriteConfig::without("ddo_elimination"),
        ),
        ("no_rules", RewriteConfig::none()),
    ] {
        let engine = Engine::with_options(EngineOptions {
            compile: CompileOptions {
                rewrite: cfg,
                ..Default::default()
            },
            runtime: RuntimeOptions::default(),
            ..Default::default()
        });
        engine.load_document("bib.xml", &bib).unwrap();
        let prepared = engine.compile(q).unwrap();
        prepared.execute(&engine, &DynamicContext::new()).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                prepared
                    .execute(&engine, &DynamicContext::new())
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_compile_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_compile");
    let giant = giant_customer_query();
    for (label, q) in [("tiny", "1 + 2"), ("giant", giant.as_str())] {
        group.bench_with_input(BenchmarkId::new("parse", label), &q, |b, q| {
            b.iter(|| xqr_xqparser::parse_query(q).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("full_compile", label), &q, |b, q| {
            b.iter(|| xqr_compiler::compile(q, &xqr_compiler::CompileOptions::default()).unwrap())
        });
    }
    group.finish();
}

fn bench_transformation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_transform");
    group.sample_size(15);
    let xml = trading_partners(9, 40);
    let engine = Engine::new();
    engine.load_document("ebsample.xml", &xml).unwrap();
    let q = engine.compile(customer_query()).unwrap();
    q.execute(&engine, &DynamicContext::new()).unwrap();
    group.bench_function("engine_optimized", |b| {
        b.iter(|| q.execute(&engine, &DynamicContext::new()).unwrap().len())
    });
    let engine2 = Engine::with_options(EngineOptions::unoptimized());
    engine2.load_document("ebsample.xml", &xml).unwrap();
    let q2 = engine2.compile(customer_query()).unwrap();
    q2.execute(&engine2, &DynamicContext::new()).unwrap();
    group.bench_function("engine_unoptimized", |b| {
        b.iter(|| q2.execute(&engine2, &DynamicContext::new()).unwrap().len())
    });
    group.bench_function("dom_transformer", |b| {
        b.iter(|| dom_baseline_transform(&xml).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rewrite_ablation,
    bench_compile_phases,
    bench_transformation
);
fn main() {
    // CI sets XQR_REQUIRE_FAULTS_OFF=1 to prove that benchmark builds
    // carry the no-op faultpoint macros, not the injection machinery: a
    // bench binary that can inject faults is also paying for armed()
    // checks on every measured hot path.
    if std::env::var_os("XQR_REQUIRE_FAULTS_OFF").is_some() {
        assert!(
            !xqr_faults::compiled_with_failpoints(),
            "bench build was compiled with the failpoints feature"
        );
    }
    benches();
}
