//! Run-level reporting: outcome tallies, expression-kind coverage, and
//! optimizer-rule coverage, rendered as the fuzz binary's summary.

use std::collections::BTreeMap;
use xqr_compiler::RewriteStats;
use xqr_xdm::ErrorCode;

#[derive(Default)]
pub struct RunReport {
    pub cases: usize,
    pub agreed: usize,
    pub agreed_error: usize,
    pub skipped: usize,
    pub diverged: usize,
    pub streamed: usize,
    /// Stable error codes observed on agreed-error cases.
    pub error_codes: BTreeMap<&'static str, usize>,
    /// Expression kinds emitted by the generator, summed over the run.
    pub expr_kinds: BTreeMap<&'static str, usize>,
    /// Optimizer rules that fired at least once, with firing counts.
    pub rewrite_rules: BTreeMap<&'static str, usize>,
}

impl RunReport {
    pub fn note_kinds(&mut self, kinds: &BTreeMap<&'static str, usize>) {
        for (k, v) in kinds {
            *self.expr_kinds.entry(k).or_insert(0) += v;
        }
    }

    pub fn note_rewrites(&mut self, stats: &RewriteStats) {
        for (rule, n) in stats {
            *self.rewrite_rules.entry(rule).or_insert(0) += n;
        }
    }

    pub fn note_error(&mut self, code: ErrorCode) {
        *self.error_codes.entry(code.as_str()).or_insert(0) += 1;
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cases: {}  agreed: {}  agreed-error: {}  skipped: {}  diverged: {}  streamed: {}\n",
            self.cases, self.agreed, self.agreed_error, self.skipped, self.diverged, self.streamed
        ));
        if !self.error_codes.is_empty() {
            out.push_str("error codes on agreed-error cases:\n");
            for (code, n) in &self.error_codes {
                out.push_str(&format!("  {code:<10} {n}\n"));
            }
        }
        out.push_str(&format!(
            "expression kinds exercised ({}):\n",
            self.expr_kinds.len()
        ));
        for (kind, n) in &self.expr_kinds {
            out.push_str(&format!("  {kind:<28} {n}\n"));
        }
        out.push_str(&format!(
            "rewrite rules fired ({}):\n",
            self.rewrite_rules.len()
        ));
        for (rule, n) in &self.rewrite_rules {
            out.push_str(&format!("  {rule:<28} {n}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_all_sections() {
        let mut r = RunReport {
            cases: 3,
            agreed: 2,
            agreed_error: 1,
            ..Default::default()
        };
        r.note_kinds(&BTreeMap::from([("path", 5usize)]));
        let mut stats = RewriteStats::default();
        stats.insert("constant-fold-arith", 2);
        r.note_rewrites(&stats);
        r.note_error(ErrorCode::DivisionByZero);
        let text = r.render();
        assert!(text.contains("cases: 3"));
        assert!(text.contains("path"));
        assert!(text.contains("constant-fold-arith"));
        assert!(text.contains("FOAR0001"));
    }
}
