//! The chunked-ingestion leg of the oracle: a document fed as byte
//! chunks must be indistinguishable from the same document handed over
//! whole.
//!
//! The invariant, enforced per case:
//!
//! > **Publishing a document through `publish_chunked` — re-split at
//! > arbitrary byte boundaries, including mid-tag, mid-entity, and
//! > mid-UTF-8 — produces a report identical to `publish`**: the same
//! > per-subscription results or the same coded errors, the same match
//! > counts, the same stream statistics, and the same shared-pass /
//! > fallback split. Never a different answer, never a leaked store
//! > document.
//!
//! Each case derives a subscription set (random paths riding the
//! shared automaton pass plus grammar-generated queries on the
//! fallback) and a few random documents from one seed. Every document
//! is published whole for the reference report, then re-published
//! through the chunked session under several seeded chunkings — a
//! degenerate 1-byte split is always among them, which drags every
//! token construct across a boundary.
//!
//! In faulted mode the same traffic runs through the *service* chunk
//! sessions with a schedule over the ingestion faultpoints
//! (`ingest.chunk`, `ingest.flush`, plus the parse/deliver sites
//! below them). The judgement relaxes to the chaos rules: every
//! session ends correct or coded, a failed session is removed (no
//! leaked sessions, no store residue), and `err:XQRL0000` appears only
//! when a panic was scheduled.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

use crate::gen::{GenConfig, QueryGen};
use crate::pubsub::{case_limits, doc_config, random_path, Violation};
use xqr_core::{contain_panic, Engine};
use xqr_faults::{FaultKind, FaultRule, FaultSchedule};
use xqr_service::{QueryService, ServiceConfig};
use xqr_subscribe::{SubId, SubscriptionRegistry};
use xqr_xdm::ErrorCode;
use xqr_xmlgen::random_tree;

/// Faultpoint sites on the chunked-ingestion path, the two
/// ingest-specific ones first — the schedule generator favours them so
/// mid-chunk failure handling is exercised constantly.
pub const INGEST_SITES: &[&str] = &[
    "ingest.chunk",
    "ingest.flush",
    "xml.read",
    "tokens.buffer",
    "subscribe.deliver",
    "store.load",
];

/// Everything one ingest case reports.
#[derive(Debug)]
pub struct IngestCase {
    pub seed: u64,
    pub faulted: bool,
    pub subscriptions: usize,
    pub documents: usize,
    /// Chunked publishes compared against their whole-document twin.
    pub chunkings: u64,
    /// Comparisons that ended byte-identical (results and stats).
    pub agreed: u64,
    /// Comparisons that ended in matching (or fault-coded) errors.
    pub coded: u64,
    /// Injections that fired (faulted mode).
    pub fired: u64,
    pub violations: Vec<Violation>,
}

/// Split `len` bytes into seeded chunk lengths: mostly small (1–16
/// bytes, crossing every construct), occasionally large.
fn chunk_lens(rng: &mut StdRng, len: usize) -> Vec<usize> {
    let mut lens = Vec::new();
    let mut left = len;
    while left > 0 {
        let l = if rng.gen_bool(0.2) {
            rng.gen_range(1..left.min(512) + 1)
        } else {
            rng.gen_range(1..left.min(16) + 1)
        };
        lens.push(l);
        left -= l;
    }
    lens
}

fn chunks<'a>(bytes: &'a [u8], lens: &[usize]) -> Vec<&'a [u8]> {
    let mut out = Vec::with_capacity(lens.len());
    let mut pos = 0;
    for &l in lens {
        out.push(&bytes[pos..pos + l]);
        pos += l;
    }
    out
}

/// Derive a fault schedule for the ingestion path: one or two rules,
/// the first over `ingest.chunk`/`ingest.flush` most of the time.
pub fn gen_schedule(rng: &mut StdRng, seed: u64) -> FaultSchedule {
    let mut schedule = FaultSchedule::new(seed);
    for rule_no in 0..rng.gen_range(1..3u32) {
        let site = if rule_no == 0 && rng.gen_bool(0.6) {
            INGEST_SITES[rng.gen_range(0..2)]
        } else {
            INGEST_SITES[rng.gen_range(0..INGEST_SITES.len())]
        };
        let kind = match rng.gen_range(0..10u32) {
            0..=5 => FaultKind::ErrorReturn,
            6 | 7 => FaultKind::Panic,
            8 => FaultKind::Delay(Duration::from_millis(rng.gen_range(1..4))),
            _ => FaultKind::Cancel,
        };
        let mut rule = FaultRule::new(site, kind)
            .one_in(rng.gen_range(1..6))
            .skip_first(rng.gen_range(0..8));
        if rng.gen_range(0..4u32) > 0 {
            rule = rule.max_fires(rng.gen_range(1..4));
        }
        schedule = schedule.rule(rule);
    }
    schedule
}

type Outcome = Result<String, ErrorCode>;

fn outcome(r: &xqr_xdm::Result<String>) -> Outcome {
    r.clone().map_err(|e| e.code)
}

/// Run one seeded case. Un-faulted: strict chunked-vs-whole report
/// equivalence at the registry layer. Faulted: service chunk sessions
/// under an ingestion fault schedule, judged correct-or-coded with
/// cleanup checks.
pub fn run_case(seed: u64, faulted: bool) -> IngestCase {
    let mut rng = StdRng::seed_from_u64(seed);

    let n_docs = rng.gen_range(1usize..4);
    let docs: Vec<String> = (0..n_docs)
        .map(|i| random_tree(&doc_config(&mut rng, seed ^ (0x1A6E57 + i as u64))))
        .collect();
    let n_subs = rng.gen_range(1usize..6);
    let queries: Vec<String> = (0..n_subs)
        .map(|_| {
            if rng.gen_bool(0.6) {
                random_path(&mut rng)
            } else {
                QueryGen::new(&mut rng, GenConfig::default())
                    .generate()
                    .text
            }
        })
        .collect();

    let mut case = IngestCase {
        seed,
        faulted,
        subscriptions: n_subs,
        documents: n_docs,
        chunkings: 0,
        agreed: 0,
        coded: 0,
        fired: 0,
        violations: Vec::new(),
    };

    if faulted {
        run_faulted(&mut rng, seed, &docs, &queries, &mut case);
    } else {
        run_strict(&mut rng, &docs, &queries, &mut case);
    }
    case
}

/// Un-faulted leg: `publish_chunked` vs `publish` on one registry.
fn run_strict(rng: &mut StdRng, docs: &[String], queries: &[String], case: &mut IngestCase) {
    let engine = Engine::new();
    let reg = SubscriptionRegistry::new();
    let mut subs: Vec<(usize, SubId)> = Vec::new();
    for (si, q) in queries.iter().enumerate() {
        // Compile rejections are the pubsub leg's business; here only
        // registered subscriptions matter.
        if let Ok(plan) = engine.compile_shared(q) {
            subs.push((si, reg.register(q, plan, case_limits(), None)));
        }
    }

    for (di, xml) in docs.iter().enumerate() {
        let name = format!("doc-{di}");
        let whole = contain_panic(|| reg.publish(&engine, &name, xml, case_limits()));

        // Three seeded chunkings plus the 1-byte degenerate split.
        let mut lens_list: Vec<Vec<usize>> = (0..3).map(|_| chunk_lens(rng, xml.len())).collect();
        lens_list.push(vec![1; xml.len()]);

        for (ci, lens) in lens_list.iter().enumerate() {
            case.chunkings += 1;
            let split = chunks(xml.as_bytes(), lens);
            let chunked = contain_panic(|| {
                reg.publish_chunked(&engine, &name, split.iter().copied(), case_limits())
            });
            let at = format!("doc {di} chunking {ci}");
            match (&whole, &chunked) {
                (Ok(w), Ok(c)) => {
                    for &(si, id) in &subs {
                        let wr = w.result_for(id).map(outcome);
                        let cr = c.result_for(id).map(outcome);
                        if wr == cr {
                            case.agreed += 1;
                        } else {
                            case.violations.push(Violation {
                                at: format!("sub {si} {at}"),
                                detail: format!("whole {wr:?} vs chunked {cr:?}"),
                            });
                        }
                    }
                    if (w.stats.tokens_seen, w.stats.tokens_skipped, w.stats.matches)
                        != (c.stats.tokens_seen, c.stats.tokens_skipped, c.stats.matches)
                        || w.shared_pass != c.shared_pass
                        || w.fallback != c.fallback
                    {
                        case.violations.push(Violation {
                            at,
                            detail: format!(
                                "report drift: whole stats {:?} pass {}/{} vs \
                                 chunked stats {:?} pass {}/{}",
                                w.stats,
                                w.shared_pass,
                                w.fallback,
                                c.stats,
                                c.shared_pass,
                                c.fallback
                            ),
                        });
                    }
                }
                (Err(we), Err(ce)) => {
                    if we.code == ce.code {
                        case.coded += 1;
                    } else {
                        case.violations.push(Violation {
                            at,
                            detail: format!(
                                "error drift: whole {} vs chunked {}",
                                we.code.as_str(),
                                ce.code.as_str()
                            ),
                        });
                    }
                }
                (w, c) => {
                    case.violations.push(Violation {
                        at,
                        detail: format!("outcome drift: whole {w:?} vs chunked {c:?}"),
                    });
                }
            }
        }
    }

    if engine.store().doc_count() != 0 {
        case.violations.push(Violation {
            at: "store".into(),
            detail: format!(
                "chunked publishes leaked {} document(s)",
                engine.store().doc_count()
            ),
        });
    }
}

/// Faulted leg: service chunk sessions under an ingestion schedule.
/// Chaos rules: correct or coded, sessions cleaned up, no store leak,
/// `XQRL0000` only with a scheduled panic.
fn run_faulted(
    rng: &mut StdRng,
    seed: u64,
    docs: &[String],
    queries: &[String],
    case: &mut IngestCase,
) {
    let svc = QueryService::new(ServiceConfig {
        per_query_limits: case_limits(),
        max_chunk_sessions: 8,
        ..Default::default()
    });
    let mut subs: Vec<(usize, xqr_subscribe::SubId)> = Vec::new();
    for (si, q) in queries.iter().enumerate() {
        if let Ok(id) = svc.subscribe(q) {
            subs.push((si, id));
        }
    }
    // References computed un-faulted on the service's own engine.
    let reference: Vec<Vec<Outcome>> = queries
        .iter()
        .map(|q| {
            docs.iter()
                .map(|d| outcome(&contain_panic(|| svc.engine().query_xml(d, q))))
                .collect()
        })
        .collect();

    let schedule = gen_schedule(rng, seed);
    let panics_scheduled = schedule
        .rules
        .iter()
        .any(|r| matches!(r.kind, FaultKind::Panic));
    let lens_list: Vec<Vec<usize>> = docs.iter().map(|d| chunk_lens(rng, d.len())).collect();

    {
        let _guard = xqr_faults::install(schedule);
        for (di, xml) in docs.iter().enumerate() {
            case.chunkings += 1;
            let at = |si: usize| format!("sub {si} doc {di} [faulted]");
            let session = contain_panic(|| {
                let sid = svc.open_chunk_session(&format!("doc-{di}"))?;
                for c in chunks(xml.as_bytes(), &lens_list[di]) {
                    svc.feed_chunk(sid, c)?;
                }
                svc.finish_chunk_session(sid)
            });
            match session {
                Ok(report) => {
                    for &(si, id) in &subs {
                        let got = report.result_for(id).map(outcome);
                        match got {
                            Some(Ok(v)) => match &reference[si][di] {
                                Ok(want) if *want == v => case.agreed += 1,
                                Ok(want) => case.violations.push(Violation {
                                    at: at(si),
                                    detail: format!(
                                        "wrong answer under injection: want {want:?}, got {v:?}"
                                    ),
                                }),
                                // The un-faulted reference failed but the
                                // faulted session succeeded: resource
                                // verdicts aside this cannot happen; be
                                // lenient like the chaos judge and count
                                // it as coded agreement.
                                Err(_) => case.coded += 1,
                            },
                            Some(Err(code)) => {
                                if code == ErrorCode::Internal && !panics_scheduled {
                                    case.violations.push(Violation {
                                        at: at(si),
                                        detail: "XQRL0000 without a scheduled panic".into(),
                                    });
                                } else {
                                    case.coded += 1;
                                }
                            }
                            None => case.violations.push(Violation {
                                at: at(si),
                                detail: "live subscription missing from the report".into(),
                            }),
                        }
                    }
                }
                Err(e) => {
                    if e.code == ErrorCode::Internal && !panics_scheduled {
                        case.violations.push(Violation {
                            at: format!("doc {di} [faulted]"),
                            detail: format!("XQRL0000 without a scheduled panic: {e}"),
                        });
                    } else {
                        case.coded += 1;
                    }
                }
            }
        }
        case.fired = xqr_faults::fires();
    }

    // Cleanup invariants, checked un-faulted: a failed session is
    // removed, and nothing reached the store.
    if svc.chunk_sessions() != 0 {
        case.violations.push(Violation {
            at: "sessions".into(),
            detail: format!("{} chunk session(s) leaked", svc.chunk_sessions()),
        });
    }
    if svc.engine().store().doc_count() != 0 {
        case.violations.push(Violation {
            at: "store".into(),
            detail: format!(
                "faulted sessions leaked {} document(s)",
                svc.engine().store().doc_count()
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_unfaulted_case_agrees() {
        let case = run_case(7, false);
        assert!(case.violations.is_empty(), "{:?}", case.violations);
        assert!(case.agreed + case.coded > 0);
        assert!(case.chunkings >= 4, "1-byte split plus seeded chunkings");
    }

    #[test]
    fn a_single_faulted_case_upholds_the_chaos_rules() {
        let case = run_case(7, true);
        assert!(case.violations.is_empty(), "{:?}", case.violations);
    }

    #[test]
    fn chunk_lens_cover_the_document_exactly() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in [1usize, 2, 17, 400] {
            let lens = chunk_lens(&mut rng, len);
            assert_eq!(lens.iter().sum::<usize>(), len);
            assert!(lens.iter().all(|&l| l >= 1));
        }
    }
}
