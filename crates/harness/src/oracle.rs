//! The multi-configuration execution oracle.
//!
//! One case = one query text + one document. The oracle executes the
//! case through every leg of the configuration lattice and compares
//! outcomes against the **reference** leg (materialized, unoptimized
//! engine) under the optimizer contract spelled out in the crate docs:
//! optimizations may avoid errors but may never introduce them, and
//! may never change a successful result.

use std::time::Duration;
use xqr_compiler::{CompileOptions, RewriteConfig, RewriteStats};
use xqr_core::{Engine, EngineOptions, Item, NodeId, NodeRef};
use xqr_runtime::{DynamicContext, RuntimeOptions};
use xqr_service::{QueryService, ServiceConfig};
use xqr_xdm::{Error, ErrorCode, Limits};

/// Budgets applied to every leg of every case. Generous enough that a
/// legitimate case never trips them; tight enough that a pathological
/// generated query (cartesian `//node()` products…) cannot wedge a run.
pub fn fuzz_limits() -> Limits {
    Limits::unlimited()
        .with_deadline(Duration::from_secs(10))
        .with_max_items(1_000_000)
        .with_max_output_bytes(8 * 1024 * 1024)
}

/// One leg's outcome: serialized result or stable error code + message.
pub type LegOutcome = Result<String, (ErrorCode, String)>;

fn outcome_of(r: Result<String, Error>) -> LegOutcome {
    r.map_err(|e| (e.code, e.to_string()))
}

/// Is this a resource verdict (deadline, budget, shedding) rather than
/// a semantic outcome? Those are timing-dependent, so a leg reporting
/// one makes the case *skipped*, not divergent.
fn is_resource(code: ErrorCode) -> bool {
    matches!(
        code,
        ErrorCode::Limit
            | ErrorCode::Timeout
            | ErrorCode::Cancelled
            | ErrorCode::Overloaded
            | ErrorCode::Unavailable
    )
}

/// The comparison verdict for one case.
#[derive(Debug)]
pub enum Verdict {
    /// Every leg agreed with the reference (all `Ok`, equal bytes).
    Agree,
    /// The reference failed; every leg either failed too or legally
    /// avoided the error.
    AgreeError(ErrorCode),
    /// A resource budget fired somewhere — not comparable.
    Skipped(&'static str),
    /// Disagreement: the named leg broke the contract.
    Diverged(Divergence),
}

#[derive(Debug)]
pub struct Divergence {
    /// Which leg disagreed (`optimized`, `indexed`, `parallel`,
    /// `service`, `service-cached`, `streaming`).
    pub leg: &'static str,
    pub reference: LegOutcome,
    pub actual: LegOutcome,
}

/// Everything the oracle learned about one case.
pub struct CaseResult {
    pub verdict: Verdict,
    /// Optimizer rule firings for the optimized compilation (empty when
    /// compilation failed).
    pub rewrite_stats: RewriteStats,
    /// Whether the streaming leg ran (streamable + exact).
    pub streamed: bool,
}

/// The oracle: owns a long-lived [`QueryService`] (so its plan cache
/// sees the whole run and cycles through eviction) plus the engine
/// options for the per-case reference and optimized legs.
pub struct Oracle {
    ref_options: EngineOptions,
    opt_options: EngineOptions,
    idx_options: EngineOptions,
    par_options: EngineOptions,
    service: QueryService,
    case_no: u64,
}

impl Oracle {
    /// `mutate` switches on the deliberate constant-folding miscompile
    /// (`RewriteConfig::debug_miscompile_sub`) in every *optimized* leg,
    /// for the harness's own sanity check: a run with `mutate` that
    /// reports zero divergences means the oracle is blind.
    pub fn new(mutate: bool) -> Oracle {
        let limits = fuzz_limits();
        let mut ref_options = EngineOptions::unoptimized();
        ref_options.runtime.limits = limits;
        let mut rewrite = RewriteConfig::all();
        rewrite.debug_miscompile_sub = mutate;
        // Optimized leg: full rewrites + access-path selection, but NO
        // document indexes — every planted `IndexScan` misses and takes
        // its navigational fallback, so the fallback path is fuzzed too.
        let opt_options = EngineOptions {
            compile: CompileOptions {
                rewrite,
                ..Default::default()
            },
            runtime: RuntimeOptions {
                limits,
                ..Default::default()
            },
            index_documents: false,
        };
        // Indexed leg: same plans, but documents carry structural
        // indexes, so index-eligible subtrees are answered from the
        // tag/path inverted lists instead of navigation.
        let idx_options = EngineOptions {
            index_documents: true,
            ..opt_options.clone()
        };
        // Parallel leg: the indexed leg with morsel splitting *forced*
        // (3 morsels, no minimum input size), so even tiny fuzz
        // documents exercise label-range partitioning, boundary
        // replication and the document-order merge. Output must be
        // byte-identical to the serial legs.
        let par_options = EngineOptions {
            runtime: RuntimeOptions {
                limits,
                parallel: xqr_runtime::ParallelConfig::forced(3),
                ..Default::default()
            },
            ..idx_options.clone()
        };
        let service = QueryService::new(ServiceConfig {
            engine: opt_options.clone(),
            // Small on purpose: a few hundred distinct queries per run
            // cycle the LRU through plenty of evictions.
            plan_cache_capacity: 64,
            plan_cache_shards: 4,
            catalog_max_bytes: Some(16 * 1024 * 1024),
            max_concurrent: 2,
            max_queued: 8,
            per_query_limits: limits,
            // No retries in the differential oracle: a transient code is
            // already a *skip* verdict, and retrying would hide how often
            // legs shed. The chaos harness turns retries on explicitly.
            retry: xqr_service::RetryPolicy::none(),
            persist_dir: None,
            ..Default::default()
        });
        Oracle {
            ref_options,
            opt_options,
            idx_options,
            par_options,
            service,
            case_no: 0,
        }
    }

    /// Aggregate service-side statistics (plan cache, catalog, pool).
    pub fn service_stats(&self) -> xqr_service::ServiceStats {
        self.service.stats()
    }

    /// Run one (query, document) case through every leg and compare.
    pub fn run_case(&mut self, query: &str, xml: &str) -> CaseResult {
        self.case_no += 1;

        // Reference: materialized, unoptimized.
        let reference = run_engine(&self.ref_options, query, xml);

        // Optimized engine. Keep the prepared query around for the
        // streaming leg and the rewrite stats.
        let opt_engine = Engine::with_options(self.opt_options.clone());
        let mut rewrite_stats = RewriteStats::default();
        let mut streamed = false;
        let optimized = outcome_of((|| {
            let prepared = opt_engine.compile(query)?;
            rewrite_stats = prepared.compiled().stats.clone();
            let ctx = xqr_core::context_with_doc(&opt_engine, "fuzz.xml", xml)?;
            prepared.execute(&opt_engine, &ctx)?.serialize_guarded()
        })());

        if let Some(v) = self.compare("optimized", &reference, &optimized) {
            return CaseResult {
                verdict: v,
                rewrite_stats,
                streamed,
            };
        }

        // Indexed: identical compilation, but the document is loaded
        // with a structural index attached, so index-backed access paths
        // actually fire instead of falling back.
        let indexed = run_engine(&self.idx_options, query, xml);
        if let Some(v) = self.compare("indexed", &reference, &indexed) {
            return CaseResult {
                verdict: v,
                rewrite_stats,
                streamed,
            };
        }

        // Parallel: the indexed leg again with forced morsel splitting —
        // the parallel-vs-serial differential. Byte-for-byte agreement
        // with the reference is required, exactly like every other leg.
        let parallel = run_engine(&self.par_options, query, xml);
        if let Some(v) = self.compare("parallel", &reference, &parallel) {
            return CaseResult {
                verdict: v,
                rewrite_stats,
                streamed,
            };
        }

        // Service legs: same plan text twice — the second run is a plan
        // cache hit by construction (capacity 64 ≫ 1 case in flight).
        let doc_name = format!("fuzz-{}.xml", self.case_no);
        for leg in ["service", "service-cached"] {
            let outcome = outcome_of((|| {
                let id = self.service.load_document(&doc_name, xml)?;
                let mut ctx = DynamicContext::new();
                ctx.context_item = Some(Item::Node(NodeRef::new(id, NodeId(0))));
                self.service.run_with_context(query, ctx)
            })());
            if let Some(v) = self.compare(leg, &reference, &outcome) {
                self.service.remove_document(&doc_name);
                return CaseResult {
                    verdict: v,
                    rewrite_stats,
                    streamed,
                };
            }
        }
        self.service.remove_document(&doc_name);

        // Streaming leg: only when the plan is streamable *and* exact
        // (descendant patterns stream outermost matches only — a
        // documented semantic difference, not a divergence).
        if let Ok(prepared) = opt_engine.compile(query) {
            if prepared.is_streamable() && prepared.streaming_is_exact() {
                streamed = true;
                let mut out = String::new();
                let streaming = outcome_of(
                    prepared
                        .execute_streaming(&opt_engine, xml, |m| out.push_str(m))
                        .map(|_| out),
                );
                if let Some(v) = self.compare("streaming", &reference, &streaming) {
                    return CaseResult {
                        verdict: v,
                        rewrite_stats,
                        streamed,
                    };
                }
            }
        }

        let verdict = match &reference {
            Ok(_) => Verdict::Agree,
            Err((code, _)) => Verdict::AgreeError(*code),
        };
        CaseResult {
            verdict,
            rewrite_stats,
            streamed,
        }
    }

    /// Compare one leg against the reference. `None` = keep going;
    /// `Some(verdict)` = the case is decided (skip or divergence).
    fn compare(
        &self,
        leg: &'static str,
        reference: &LegOutcome,
        actual: &LegOutcome,
    ) -> Option<Verdict> {
        // XQRL0000 is the engine saying "bug": contained panic, broken
        // invariant. It is never a legitimate outcome, on any leg.
        for outcome in [reference, actual] {
            if let Err((ErrorCode::Internal, _)) = outcome {
                return Some(Verdict::Diverged(Divergence {
                    leg,
                    reference: reference.clone(),
                    actual: actual.clone(),
                }));
            }
        }
        match (reference, actual) {
            (_, Err((code, _))) | (Err((code, _)), _) if is_resource(*code) => {
                Some(Verdict::Skipped(leg))
            }
            (Ok(a), Ok(b)) if a == b => None,
            (Ok(_), Ok(_)) => Some(Verdict::Diverged(Divergence {
                leg,
                reference: reference.clone(),
                actual: actual.clone(),
            })),
            // The optimizer introduced an error the reference didn't hit.
            (Ok(_), Err(_)) => Some(Verdict::Diverged(Divergence {
                leg,
                reference: reference.clone(),
                actual: actual.clone(),
            })),
            // Reference failed: the leg may fail (with any stable,
            // non-internal code — rewrites legally reorder which error
            // fires) or may have legally avoided the error.
            (Err(_), _) => None,
        }
    }
}

/// Run a case on a fresh engine with the given options.
pub fn run_engine(options: &EngineOptions, query: &str, xml: &str) -> LegOutcome {
    let engine = Engine::with_options(options.clone());
    outcome_of((|| {
        let prepared = engine.compile(query)?;
        let ctx = xqr_core::context_with_doc(&engine, "fuzz.xml", xml)?;
        prepared.execute(&engine, &ctx)?.serialize_guarded()
    })())
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "<root><a><d>x</d></a><a/><d>y</d></root>";

    #[test]
    fn all_legs_agree_on_directed_cases() {
        let mut oracle = Oracle::new(false);
        for q in [
            "/root/a/d",
            "count(//d)",
            "for $v0 in //a where exists($v0/d) return <r>{$v0/d}</r>",
            "some $v0 in //d satisfies $v0 = \"x\"",
            "(//a)[2]",
            "//d[position() < 2]",
            // Index-eligible shapes: the `indexed` leg answers these
            // from the structural index.
            "//a[d]",
            "/root//d",
            "//a[d]/d",
        ] {
            let r = oracle.run_case(q, DOC);
            assert!(matches!(r.verdict, Verdict::Agree), "{q}: {:?}", r.verdict);
        }
    }

    #[test]
    fn errors_agree_as_errors() {
        let mut oracle = Oracle::new(false);
        // Division by zero: deterministic FOAR0001 in every leg.
        let r = oracle.run_case("1 idiv 0", DOC);
        assert!(
            matches!(r.verdict, Verdict::AgreeError(ErrorCode::DivisionByZero)),
            "{:?}",
            r.verdict
        );
    }

    #[test]
    fn streaming_leg_runs_for_exact_child_paths() {
        let mut oracle = Oracle::new(false);
        let r = oracle.run_case("/root/a", DOC);
        assert!(matches!(r.verdict, Verdict::Agree), "{:?}", r.verdict);
        assert!(r.streamed);
    }

    #[test]
    fn mutated_optimizer_is_caught() {
        // The mutation sanity check in miniature: with the deliberate
        // constant-folding miscompile switched on, a constant `a - b`
        // must diverge between the reference and the optimized leg.
        let mut oracle = Oracle::new(true);
        let r = oracle.run_case("7 - 3", DOC);
        match r.verdict {
            Verdict::Diverged(d) => {
                assert_eq!(d.leg, "optimized");
                assert_eq!(d.reference.as_deref(), Ok("4"));
                assert_eq!(d.actual.as_deref(), Ok("-4"));
            }
            other => panic!("mutation not caught: {other:?}"),
        }
    }
}
