//! The chaos leg of the oracle: seeded fault schedules against the
//! engine and the resilient service.
//!
//! Where the differential oracle ([`crate::oracle`]) asks "do all
//! configurations *mean* the same thing?", the chaos runner asks "does
//! any configuration *misbehave* when its substrate fails?" Each case
//! derives a random (query, document) pair **and** a random
//! [`FaultSchedule`] from one seed, computes the un-faulted reference
//! outcome, then replays the case with the schedule installed through
//! three faulted legs: a bare engine, the retrying/degrading
//! [`QueryService`], and (when the plan is streamable and exact) the
//! token-streaming matcher.
//!
//! The invariant every leg must uphold under injection:
//!
//! 1. **correct or coded** — the leg returns either the reference
//!    result byte-for-byte (the fault was retried or degraded away) or
//!    a stable coded error; a *different successful answer* is always a
//!    violation;
//! 2. **no wrong `Internal`** — `err:XQRL0000` is acceptable only when
//!    the schedule injects panics (contained panics legitimately carry
//!    that code); any other path to it is an engine bug;
//! 3. **no escape** — a panic unwinding out of a public API (past the
//!    engine's containment, the pool's catch, the service's load
//!    boundary) is a violation even though the test harness catches it;
//! 4. **no leak** — after the case's documents are removed, the service
//!    store's document count and resident bytes return to their
//!    pre-case baseline.
//!
//! Deadlocks are covered operationally rather than in-process: a wedged
//! case hangs the run, and the chaos smoke job runs under a CI timeout.
//!
//! Determinism: schedules fire as a pure function of
//! `(seed, site, hit index)` and backoff jitter is seeded, so a failing
//! case replays from its printed seed alone (`chaos --seed S+i
//! --cases 1` replays case `i` of master seed `S`, like the fuzz
//! driver).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

use crate::gen::{GenConfig, QueryGen};
use xqr_core::{contain_panic, context_with_doc, Engine, EngineOptions, Item, NodeId, NodeRef};
use xqr_faults::{FaultKind, FaultRule, FaultSchedule};
use xqr_runtime::DynamicContext;
use xqr_service::{QueryService, RetryPolicy, ServiceConfig};
use xqr_xdm::{Error, ErrorCode, Limits};
use xqr_xmlgen::{random_tree, RandomTreeConfig};

/// Every faultpoint site compiled into the stack, bottom to top.
pub const SITES: &[&str] = &[
    "xml.read",
    "tokens.buffer",
    "store.load",
    "store.read",
    "store.remove",
    "index.build",
    "eval.next",
    "catalog.load",
    "plans.insert",
    "pool.dispatch",
    "parallel.morsel",
    "subscribe.deliver",
    "ingest.chunk",
    "ingest.flush",
    "pressure.charge",
];

/// Budgets for chaos cases: the fuzz budgets, minus most of the
/// deadline — injected delays should not stretch a case to seconds.
fn chaos_limits() -> Limits {
    Limits::unlimited()
        .with_deadline(Duration::from_secs(10))
        .with_max_items(200_000)
        .with_max_output_bytes(4 * 1024 * 1024)
}

/// How one faulted leg ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LegEnd {
    /// Matched the reference result (possibly after retry/degradation).
    Correct,
    /// A stable coded error.
    Coded(ErrorCode),
}

/// An invariant violation — the chaos suite's only failure mode.
#[derive(Debug, Clone)]
pub struct Violation {
    pub leg: &'static str,
    pub detail: String,
}

/// Everything one chaos case reports.
#[derive(Debug)]
pub struct ChaosCase {
    pub seed: u64,
    /// The schedule this case installed — printed on violation so a
    /// failure is diagnosable without re-deriving it from the seed.
    pub schedule: FaultSchedule,
    /// Injections that actually fired during the faulted legs.
    pub fired: u64,
    /// Per-leg endings (leg name, ending) for legs that ran.
    pub legs: Vec<(&'static str, LegEnd)>,
    /// Service-side retries observed during this case.
    pub retries: u64,
    /// Degradations observed during this case (cache-only + no-index).
    pub degraded: u64,
    pub violations: Vec<Violation>,
}

impl ChaosCase {
    /// Did some leg absorb a fault and still produce the correct
    /// answer? The resilience story in one bit.
    pub fn survived_injection(&self) -> bool {
        self.fired > 0 && self.legs.iter().any(|(_, e)| *e == LegEnd::Correct)
    }
}

/// Derive a fault schedule from a case RNG: one or two rules over the
/// site list, error-class kinds most common, firing bounded more often
/// than not (a bounded rule is what makes "correct after retry"
/// reachable).
pub fn gen_schedule(rng: &mut StdRng, seed: u64) -> FaultSchedule {
    let mut schedule = FaultSchedule::new(seed);
    for _ in 0..rng.gen_range(1..3u32) {
        let site = SITES[rng.gen_range(0..SITES.len())];
        let kind = match rng.gen_range(0..10u32) {
            0..=4 => FaultKind::ErrorReturn,
            5 | 6 => FaultKind::Panic,
            7 => FaultKind::Delay(Duration::from_millis(rng.gen_range(1..4))),
            8 => FaultKind::Cancel,
            _ => FaultKind::BudgetTrip,
        };
        let mut rule = FaultRule::new(site, kind)
            .one_in(rng.gen_range(1..6))
            .skip_first(rng.gen_range(0..12));
        if rng.gen_range(0..4u32) > 0 {
            rule = rule.max_fires(rng.gen_range(1..4));
        }
        schedule = schedule.rule(rule);
    }
    schedule
}

fn doc_config(rng: &mut StdRng, seed: u64) -> RandomTreeConfig {
    RandomTreeConfig {
        seed,
        nodes: rng.gen_range(20usize..120),
        max_depth: rng.gen_range(3usize..8),
        alphabet: 4,
        p_ancestor: 0.15,
        p_descendant: 0.2,
        p_text: 0.3,
        p_attribute: 0.25,
    }
}

/// The chaos runner: a long-lived resilient service (so breakers, the
/// plan cache, and lock-poison state carry *across* cases, the way a
/// production process would) plus per-case engines.
pub struct ChaosRunner {
    options: EngineOptions,
    service: QueryService,
    case_no: u64,
}

impl Default for ChaosRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl ChaosRunner {
    pub fn new() -> ChaosRunner {
        let limits = chaos_limits();
        let mut options = EngineOptions::default();
        options.runtime.limits = limits;
        // Force the morsel executor on (split even tiny lists, 3 ways)
        // so the `parallel.morsel` site actually fires on the suite's
        // small documents — default heuristics would run them serially.
        options.runtime.parallel = xqr_runtime::ParallelConfig::forced(3);
        let service = QueryService::new(ServiceConfig {
            engine: options.clone(),
            plan_cache_capacity: 64,
            plan_cache_shards: 4,
            catalog_max_bytes: Some(16 * 1024 * 1024),
            max_concurrent: 2,
            max_queued: 8,
            per_query_limits: limits,
            retry: RetryPolicy::default(),
            persist_dir: None,
            ..Default::default()
        });
        ChaosRunner {
            options,
            service,
            case_no: 0,
        }
    }

    pub fn service_stats(&self) -> xqr_service::ServiceStats {
        self.service.stats()
    }

    /// Run one seeded chaos case through every faulted leg and check
    /// the invariant. See the module docs for the rules.
    pub fn run_case(&mut self, seed: u64) -> ChaosCase {
        self.case_no += 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let dcfg = doc_config(&mut rng, seed ^ 0xD0C);
        let xml = random_tree(&dcfg);
        let query = QueryGen::new(&mut rng, GenConfig::default())
            .generate()
            .text;
        let schedule = gen_schedule(&mut rng, seed);
        let panics_scheduled = schedule
            .rules
            .iter()
            .any(|r| matches!(r.kind, FaultKind::Panic));

        // Un-faulted reference on a throwaway engine.
        let reference = {
            let engine = Engine::with_options(self.options.clone());
            outcome(contain_panic(|| {
                let ctx = context_with_doc(&engine, "chaos.xml", &xml)?;
                engine
                    .compile(&query)?
                    .execute(&engine, &ctx)?
                    .serialize_guarded()
            }))
        };

        let mut case = ChaosCase {
            seed,
            schedule: schedule.clone(),
            fired: 0,
            legs: Vec::new(),
            retries: 0,
            degraded: 0,
            violations: Vec::new(),
        };
        let stats_before = self.service.stats();
        let store = self.service.engine().store().clone();
        let doc_name = format!("chaos-{}.xml", self.case_no);

        // Un-faulted whole-document publish: the reference for the
        // chunked-ingestion leg. The engine reference above cannot
        // anchor it — cross-document node order (a constructed node
        // unioned with stored ones) is implementation-defined and
        // depends on the store's doc-id history, so a subscription
        // evaluated on the long-lived service can legitimately order a
        // union differently from a throwaway engine. The ingest
        // invariant is *chunked == whole on the same service*, and
        // that is what gets judged.
        let ingest_reference = outcome(match contain_panic(|| self.service.subscribe(&query)) {
            Ok(sub) => {
                let run = contain_panic(|| {
                    let report = self.service.publish(&doc_name, &xml)?;
                    report
                        .result_for(sub)
                        .ok_or_else(|| {
                            xqr_xdm::Error::internal(
                                "live subscription missing from the whole-document report",
                            )
                        })?
                        .clone()
                });
                self.service.unsubscribe(sub);
                run
            }
            Err(e) => Err(e),
        });

        // Baseline for the leak check, taken before any faulted work.
        let (base_docs, base_bytes) = (store.doc_count(), store.live_bytes());

        {
            let _guard = xqr_faults::install(schedule);

            // Leg 1: bare engine, everything behind the panic boundary.
            let engine_leg = {
                let engine = Engine::with_options(self.options.clone());
                outcome(contain_panic(|| {
                    let ctx = context_with_doc(&engine, "chaos.xml", &xml)?;
                    let guard = xqr_xdm::QueryGuard::new(chaos_limits());
                    engine
                        .compile(&query)?
                        .execute_guarded(&engine, &ctx, guard)?
                        .serialize_guarded()
                }))
            };
            self.judge(
                &mut case,
                "engine",
                &reference,
                engine_leg,
                panics_scheduled,
            );

            // Leg 2: the resilient service — retry, breakers, poison
            // recovery, and degradation all in the path.
            let service_leg = outcome(contain_panic(|| {
                let id = self.service.load_document(&doc_name, &xml)?;
                let mut ctx = DynamicContext::new();
                ctx.context_item = Some(Item::Node(NodeRef::new(id, NodeId(0))));
                self.service.run_with_context(&query, ctx)
            }));
            self.judge(
                &mut case,
                "service",
                &reference,
                service_leg,
                panics_scheduled,
            );

            // Leg 3: token streaming, when the plan qualifies. Streaming
            // semantics differ from materialized evaluation only in ways
            // `streaming_is_exact` excludes, so the reference still
            // applies.
            let streaming_engine = Engine::with_options(self.options.clone());
            if let Ok(prepared) = streaming_engine.compile(&query) {
                if prepared.is_streamable() && prepared.streaming_is_exact() {
                    let mut out = String::new();
                    let streamed = outcome(contain_panic(|| {
                        prepared
                            .execute_streaming(&streaming_engine, &xml, |m| out.push_str(m))
                            .map(|_| out.clone())
                    }));
                    self.judge(
                        &mut case,
                        "streaming",
                        &reference,
                        streamed,
                        panics_scheduled,
                    );
                }
            }

            // Leg 4: chunked ingestion — the query rides a standing
            // subscription, the document arrives split into small
            // chunks through a service chunk session. `ingest.chunk`
            // and `ingest.flush` fire here; any fault must end the
            // session with a stable coded error and leave no session
            // (checked below) and no store residue (leak check below).
            let chunk_len = rng.gen_range(1usize..33);
            let ingest_leg = outcome(match contain_panic(|| self.service.subscribe(&query)) {
                Ok(sub) => {
                    // The session ops get their own containment so the
                    // unsubscribe below runs even when an injected panic
                    // unwinds out of a feed or finish.
                    let run = contain_panic(|| {
                        let sid = self.service.open_chunk_session(&doc_name)?;
                        for c in xml.as_bytes().chunks(chunk_len) {
                            self.service.feed_chunk(sid, c)?;
                        }
                        let report = self.service.finish_chunk_session(sid)?;
                        report
                            .result_for(sub)
                            .ok_or_else(|| {
                                xqr_xdm::Error::internal(
                                    "live subscription missing from the chunked report",
                                )
                            })?
                            .clone()
                    });
                    self.service.unsubscribe(sub);
                    run
                }
                Err(e) => Err(e),
            });
            self.judge(
                &mut case,
                "ingest",
                &ingest_reference,
                ingest_leg,
                panics_scheduled,
            );

            case.fired = xqr_faults::fires();
            // Guard drops here: later cleanup runs un-faulted.
        }

        // A failed chunk session must be cleaned up, not leaked.
        if self.service.chunk_sessions() != 0 {
            case.violations.push(Violation {
                leg: "ingest",
                detail: format!(
                    "{} chunk session(s) leaked past the case",
                    self.service.chunk_sessions()
                ),
            });
        }

        // Cleanup + leak check: with injection off, removal must restore
        // the store to its baseline exactly. A transient publish doc
        // whose removal was panicked mid-case is parked on the orphan
        // list; the un-faulted reap here must reclaim it.
        self.service.reap_orphaned_documents();
        self.service.remove_document(&doc_name);
        if store.doc_count() != base_docs || store.live_bytes() != base_bytes {
            case.violations.push(Violation {
                leg: "store",
                detail: format!(
                    "store leak: docs {} -> {}, bytes {} -> {}",
                    base_docs,
                    store.doc_count(),
                    base_bytes,
                    store.live_bytes()
                ),
            });
        }

        let stats_after = self.service.stats();
        case.retries = stats_after.retries - stats_before.retries;
        case.degraded = (stats_after.degraded_cache_only + stats_after.degraded_no_index)
            - (stats_before.degraded_cache_only + stats_before.degraded_no_index);
        case
    }

    /// Apply the invariant to one leg's outcome.
    fn judge(
        &self,
        case: &mut ChaosCase,
        leg: &'static str,
        reference: &Result<String, (ErrorCode, String)>,
        actual: Result<String, (ErrorCode, String)>,
        panics_scheduled: bool,
    ) {
        match actual {
            Ok(got) => match reference {
                Ok(want) if *want == got => case.legs.push((leg, LegEnd::Correct)),
                Ok(want) => case.violations.push(Violation {
                    leg,
                    detail: format!("wrong answer under injection: want {want:?}, got {got:?}"),
                }),
                // A resource verdict in the reference (deadline, budget,
                // shedding) is timing-dependent, so a leg succeeding is
                // legal. Erasing a *deterministic* error is not: the
                // faulted legs run the same configuration, so injection
                // can only add failures, never remove them.
                Err((code, _)) if is_resource(*code) => case.legs.push((leg, LegEnd::Correct)),
                Err((code, _)) => case.violations.push(Violation {
                    leg,
                    detail: format!(
                        "fault injection erased a deterministic error: reference failed \
                         with {} but the leg succeeded with {got:?}",
                        code.as_str()
                    ),
                }),
            },
            Err((ErrorCode::Internal, msg)) if !panics_scheduled => {
                case.violations.push(Violation {
                    leg,
                    detail: format!("err:XQRL0000 without a scheduled panic — engine bug: {msg}"),
                });
            }
            Err((code, _)) => case.legs.push((leg, LegEnd::Coded(code))),
        }
    }
}

fn outcome(r: Result<String, Error>) -> Result<String, (ErrorCode, String)> {
    r.map_err(|e| (e.code, e.to_string()))
}

/// Timing-dependent resource verdicts (mirrors the oracle's skip class).
fn is_resource(code: ErrorCode) -> bool {
    matches!(
        code,
        ErrorCode::Limit
            | ErrorCode::Timeout
            | ErrorCode::Cancelled
            | ErrorCode::Overloaded
            | ErrorCode::Unavailable
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let mk = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = gen_schedule(&mut rng, seed);
            s.rules
                .iter()
                .map(|r| (r.site.clone(), r.one_in, r.skip_first, r.max_fires))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7), mk(8));
    }

    #[test]
    fn a_single_case_upholds_the_invariant() {
        // The full suite (tests/chaos.rs) runs hundreds of seeds; this
        // just exercises the path end to end once.
        let mut runner = ChaosRunner::new();
        let case = runner.run_case(1);
        assert!(case.violations.is_empty(), "{:?}", case.violations);
        assert!(!case.legs.is_empty());
    }
}
