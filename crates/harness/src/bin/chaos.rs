//! Chaos testing driver.
//!
//! ```text
//! chaos [--seed N] [--cases N] [--verbose]
//! ```
//!
//! Runs `--cases` seeded chaos cases: each derives a random (query,
//! document) pair *and* a random fault schedule from its seed, installs
//! the schedule, and replays the case through the faulted legs (bare
//! engine, resilient service, streaming when exact). The invariant: an
//! injected fault yields the correct result (after retry/degradation)
//! or a stable coded error — never a wrong answer, an escaped panic, or
//! a leaked store document. On violation a replay line is printed
//! (`chaos --seed S+i --cases 1` reproduces case `i` of seed `S`) and
//! the process exits 1.

use std::process::ExitCode;
use xqr_harness::case_seed;
use xqr_harness::chaos::{ChaosRunner, LegEnd};

struct Args {
    seed: u64,
    cases: u64,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        cases: 200,
        verbose: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need_value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--seed" => {
                args.seed = need_value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--cases" => {
                args.cases = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?;
                i += 2;
            }
            "--verbose" => {
                args.verbose = true;
                i += 1;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos: {e}");
            eprintln!("usage: chaos [--seed N] [--cases N] [--verbose]");
            return ExitCode::from(2);
        }
    };

    if !xqr_faults::compiled_with_failpoints() {
        eprintln!("chaos: built without the `failpoints` feature — nothing to inject");
        return ExitCode::from(2);
    }

    println!("xqr chaos: seed={} cases={}", args.seed, args.cases);

    // Injected panics are expected traffic here: silence the default
    // hook's backtraces while a schedule is armed, keep it for real
    // panics outside the faulted window.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !xqr_faults::armed() {
            default_hook(info);
        }
    }));

    let mut runner = ChaosRunner::new();
    let (mut fired, mut correct, mut coded, mut survived) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..args.cases {
        let cseed = case_seed(args.seed, i);
        let case = runner.run_case(cseed);
        fired += case.fired;
        if case.survived_injection() {
            survived += 1;
        }
        for (leg, end) in &case.legs {
            match end {
                LegEnd::Correct => correct += 1,
                LegEnd::Coded(code) => {
                    coded += 1;
                    if args.verbose {
                        println!("case {i}: {leg} -> {}", code.as_str());
                    }
                }
            }
        }
        if !case.violations.is_empty() {
            println!("\n=== CHAOS VIOLATION at case {i} ===");
            println!(
                "replay:    chaos --seed {} --cases 1",
                args.seed.wrapping_add(i)
            );
            println!("schedule:  {:?}", case.schedule);
            for v in &case.violations {
                println!("leg {}: {}", v.leg, v.detail);
            }
            return ExitCode::FAILURE;
        }
    }

    let stats = runner.service_stats();
    println!(
        "cases: {}  injections fired: {}  legs correct: {}  legs coded-error: {}  \
         cases surviving injection: {}",
        args.cases, fired, correct, coded, survived
    );
    println!(
        "service: retries={} shed-to-streaming={} cache-only={} no-index={} \
         build-failures={} breaker-opens={}/{} lock-recoveries={}",
        stats.retries,
        stats.shed_to_streaming,
        stats.degraded_cache_only,
        stats.degraded_no_index,
        stats.index_build_failures,
        stats.index_breaker_opens,
        stats.plan_breaker_opens,
        stats.lock_recoveries
    );
    println!("no violations.");
    ExitCode::SUCCESS
}
