//! Pub/sub oracle driver.
//!
//! ```text
//! pubsub [--seed N] [--cases N] [--verbose]
//! ```
//!
//! Each case derives a subscription set and a small document stream
//! from its seed and checks the standing-query invariant twice: once
//! un-faulted (strict equivalence with independent one-shot queries),
//! once with a seeded fault schedule installed (correct or coded, a
//! failing delivery degrades only its own subscription). On violation a
//! replay line is printed (`pubsub --seed S+i --cases 1` reproduces
//! case `i` of seed `S`) and the process exits 1.

use std::process::ExitCode;
use xqr_harness::case_seed;
use xqr_harness::pubsub::run_case;

struct Args {
    seed: u64,
    cases: u64,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        cases: 100,
        verbose: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need_value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--seed" => {
                args.seed = need_value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--cases" => {
                args.cases = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?;
                i += 2;
            }
            "--verbose" => {
                args.verbose = true;
                i += 1;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pubsub: {e}");
            eprintln!("usage: pubsub [--seed N] [--cases N] [--verbose]");
            return ExitCode::from(2);
        }
    };

    if !xqr_faults::compiled_with_failpoints() {
        eprintln!("pubsub: built without the `failpoints` feature — nothing to inject");
        return ExitCode::from(2);
    }

    println!("xqr pubsub: seed={} cases={}", args.seed, args.cases);

    // Injected panics are expected traffic while a schedule is armed.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !xqr_faults::armed() {
            default_hook(info);
        }
    }));

    let (mut agreed, mut coded, mut skipped, mut fired) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..args.cases {
        let cseed = case_seed(args.seed, i);
        for faulted in [false, true] {
            let case = run_case(cseed, faulted);
            agreed += case.agreed;
            coded += case.coded;
            skipped += case.skipped;
            fired += case.fired;
            if args.verbose {
                println!(
                    "case {i}{}: subs={} (shared {} / fallback {}) docs={} \
                     agreed={} coded={} skipped={} fired={}",
                    if faulted { " [faulted]" } else { "" },
                    case.subscriptions,
                    case.shared_pass,
                    case.fallback,
                    case.documents,
                    case.agreed,
                    case.coded,
                    case.skipped,
                    case.fired
                );
            }
            if !case.violations.is_empty() {
                println!("\n=== PUBSUB VIOLATION at case {i} ===");
                println!(
                    "replay:    pubsub --seed {} --cases 1",
                    args.seed.wrapping_add(i)
                );
                for v in &case.violations {
                    println!("{}: {}", v.at, v.detail);
                }
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "cases: {} (x2 legs)  comparisons agreed: {}  coded: {}  skipped: {}  \
         injections fired: {}",
        args.cases, agreed, coded, skipped, fired
    );
    println!("no violations.");
    ExitCode::SUCCESS
}
