//! Chunked-ingestion oracle driver.
//!
//! ```text
//! ingest [--seed N] [--cases N] [--verbose]
//! ```
//!
//! Each case derives a subscription set and a few documents from its
//! seed and checks the chunked-ingestion invariant twice: once
//! un-faulted (`publish_chunked` over several re-splits of each
//! document — a 1-byte split always included — must produce a report
//! identical to `publish`), once with a seeded fault schedule over the
//! ingestion faultpoints (every service chunk session ends correct or
//! coded, is cleaned up on failure, and leaks nothing into the store).
//! On violation a replay line is printed (`ingest --seed S+i --cases 1`
//! reproduces case `i` of seed `S`) and the process exits 1.

use std::process::ExitCode;
use xqr_harness::case_seed;
use xqr_harness::ingest::run_case;

struct Args {
    seed: u64,
    cases: u64,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        cases: 100,
        verbose: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need_value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--seed" => {
                args.seed = need_value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--cases" => {
                args.cases = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?;
                i += 2;
            }
            "--verbose" => {
                args.verbose = true;
                i += 1;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ingest: {e}");
            eprintln!("usage: ingest [--seed N] [--cases N] [--verbose]");
            return ExitCode::from(2);
        }
    };

    if !xqr_faults::compiled_with_failpoints() {
        eprintln!("ingest: built without the `failpoints` feature — nothing to inject");
        return ExitCode::from(2);
    }

    println!("xqr ingest: seed={} cases={}", args.seed, args.cases);

    // Injected panics are expected traffic while a schedule is armed.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !xqr_faults::armed() {
            default_hook(info);
        }
    }));

    let (mut chunkings, mut agreed, mut coded, mut fired) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..args.cases {
        let cseed = case_seed(args.seed, i);
        for faulted in [false, true] {
            let case = run_case(cseed, faulted);
            chunkings += case.chunkings;
            agreed += case.agreed;
            coded += case.coded;
            fired += case.fired;
            if args.verbose {
                println!(
                    "case {i}{}: subs={} docs={} chunkings={} agreed={} coded={} fired={}",
                    if faulted { " [faulted]" } else { "" },
                    case.subscriptions,
                    case.documents,
                    case.chunkings,
                    case.agreed,
                    case.coded,
                    case.fired
                );
            }
            if !case.violations.is_empty() {
                println!("\n=== INGEST VIOLATION at case {i} ===");
                println!(
                    "replay:    ingest --seed {} --cases 1",
                    args.seed.wrapping_add(i)
                );
                for v in &case.violations {
                    println!("{}: {}", v.at, v.detail);
                }
                return ExitCode::FAILURE;
            }
        }
    }

    println!(
        "cases: {} (x2 legs)  chunked publishes: {}  comparisons agreed: {}  coded: {}  \
         injections fired: {}",
        args.cases, chunkings, agreed, coded, fired
    );
    println!("no violations.");
    ExitCode::SUCCESS
}
