//! Overload-governance driver: open-loop mixed load at ~10× capacity
//! under a counting allocator.
//!
//! ```text
//! overload [--seed N] [--producers N] [--ops N] [--ceiling BYTES] [--verbose]
//! ```
//!
//! Builds a ceiling-governed service and hammers it from `--producers`
//! threads, each performing `--ops` seeded operations (queries,
//! publishes, chunk sessions, stream queries, batches, catalog churn)
//! against a pool sized far below the offered load. The library runner
//! ([`xqr_harness::overload`]) checks the governance contract — ledger
//! bounded by ceiling + slack, every outcome Ok-or-coded, admission
//! accounting closed, return to Green after load stops. This binary
//! adds the two checks only a process can make:
//!
//! * **bounded peak** — a `#[global_allocator]` counts live bytes; the
//!   peak during the run must stay under a fixed bound instead of
//!   scaling with the offered load;
//! * **no leak** — live bytes after the service is dropped return to
//!   within a small envelope of the pre-run baseline.
//!
//! Exit 0 with a summary line on success; on violation the findings
//! and a replay line are printed and the process exits 1.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};

use xqr_harness::overload::{run_overload, OverloadConfig};

/// Counting allocator: live bytes and the high-water mark.
struct PeakAlloc {
    live: AtomicUsize,
    peak: AtomicUsize,
}

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let live = self.live.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            self.peak.fetch_max(live, Ordering::Relaxed);
        }
        p
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.live.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc {
    live: AtomicUsize::new(0),
    peak: AtomicUsize::new(0),
};

struct Args {
    seed: u64,
    producers: usize,
    ops: usize,
    ceiling: u64,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        producers: 20,
        ops: 150,
        ceiling: 128 << 10,
        verbose: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need_value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--seed" => {
                args.seed = need_value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--producers" => {
                args.producers = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--producers: {e}"))?;
                i += 2;
            }
            "--ops" => {
                args.ops = need_value(i)?.parse().map_err(|e| format!("--ops: {e}"))?;
                i += 2;
            }
            "--ceiling" => {
                args.ceiling = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--ceiling: {e}"))?;
                i += 2;
            }
            "--verbose" => {
                args.verbose = true;
                i += 1;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Live-byte envelope tolerated after the run: thread-local caches,
/// lazily initialized statics and allocator slack that never return to
/// the exact baseline, but do not grow with the workload.
const LEAK_ENVELOPE: usize = 8 << 20;

/// Peak live bytes tolerated during the run. The offered load is tens
/// of megabytes of document text; governance must keep the resident
/// peak at working-set scale, not offered-load scale.
const PEAK_BOUND: usize = 256 << 20;

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("overload: {e}");
            eprintln!("usage: overload [--seed N] [--producers N] [--ops N] [--ceiling BYTES] [--verbose]");
            return ExitCode::from(2);
        }
    };

    println!(
        "xqr overload: seed={} producers={} ops={} ceiling={}",
        args.seed, args.producers, args.ops, args.ceiling
    );

    let cfg = OverloadConfig {
        ceiling: args.ceiling,
        producers: args.producers,
        ops_per_producer: args.ops,
        ..Default::default()
    };

    let baseline = ALLOC.live.load(Ordering::Relaxed);
    ALLOC.peak.store(baseline, Ordering::Relaxed);
    let report = run_overload(args.seed, &cfg);
    let peak_delta = ALLOC.peak.load(Ordering::Relaxed).saturating_sub(baseline);
    let residue = ALLOC.live.load(Ordering::Relaxed).saturating_sub(baseline);

    let mut violations = report.violations.clone();
    if peak_delta > PEAK_BOUND {
        violations.push(format!(
            "process peak {peak_delta} bytes over the run exceeded the {PEAK_BOUND}-byte bound"
        ));
    }
    if residue > LEAK_ENVELOPE {
        violations.push(format!(
            "process leak: {residue} live bytes remain after the service was dropped \
             (envelope {LEAK_ENVELOPE})"
        ));
    }

    if args.verbose || !violations.is_empty() {
        println!(
            "ops: {}  ok: {}  shed: {}  expired: {}  other-coded: {}",
            report.ops, report.ok, report.shed, report.expired, report.other_coded
        );
        println!(
            "ledger: peak-sampled {}  peak {}  transitions {}  process: peak-delta {}  residue {}",
            report.peak_sampled, report.peak_ledger, report.transitions, peak_delta, residue
        );
    }

    if !violations.is_empty() {
        println!("\n=== OVERLOAD VIOLATION ===");
        println!(
            "replay:    overload --seed {} --producers {} --ops {} --ceiling {}",
            args.seed, args.producers, args.ops, args.ceiling
        );
        for v in &violations {
            println!("violation: {v}");
        }
        return ExitCode::FAILURE;
    }

    println!(
        "ops: {}  ok: {}  shed: {}  expired: {}  other-coded: {}  ledger peak: {}  \
         pressure transitions: {}",
        report.ops,
        report.ok,
        report.shed,
        report.expired,
        report.other_coded,
        report.peak_ledger,
        report.transitions
    );
    println!("no violations.");
    ExitCode::SUCCESS
}
