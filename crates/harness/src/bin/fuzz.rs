//! Differential fuzzing driver.
//!
//! ```text
//! fuzz [--seed N] [--cases N] [--mutate] [--verbose]
//! ```
//!
//! Runs `--cases` random (query, document) pairs through the oracle's
//! configuration lattice. On divergence the case is shrunk, a replay
//! line is printed (`--seed S+i --cases 1` reproduces case `i` of seed
//! `S` exactly), and the process exits 1.
//!
//! `--mutate` switches on the deliberate constant-folding miscompile in
//! the optimized legs and *inverts* the exit code: the run succeeds
//! (exit 0) only if the oracle catches the planted bug, and fails
//! (exit 1) if the whole run passes — a blind oracle is a broken
//! oracle. See EXPERIMENTS.md (E14).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::process::ExitCode;
use xqr_harness::gen::{GenConfig, QueryGen};
use xqr_harness::oracle::{Oracle, Verdict};
use xqr_harness::report::RunReport;
use xqr_harness::{case_seed, shrink};
use xqr_xmlgen::{random_tree, RandomTreeConfig};

struct Args {
    seed: u64,
    cases: u64,
    mutate: bool,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        cases: 200,
        mutate: false,
        verbose: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need_value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--seed" => {
                args.seed = need_value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--cases" => {
                args.cases = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?;
                i += 2;
            }
            "--mutate" => {
                args.mutate = true;
                i += 1;
            }
            "--verbose" => {
                args.verbose = true;
                i += 1;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Build the document config for one case from its derived seed.
fn doc_config(rng: &mut StdRng, seed: u64) -> RandomTreeConfig {
    RandomTreeConfig {
        seed,
        nodes: rng.gen_range(20usize..200),
        max_depth: rng.gen_range(3usize..9),
        alphabet: 4,
        p_ancestor: 0.15,
        p_descendant: 0.2,
        p_text: 0.3,
        p_attribute: 0.25,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            eprintln!("usage: fuzz [--seed N] [--cases N] [--mutate] [--verbose]");
            return ExitCode::from(2);
        }
    };

    println!(
        "xqr differential fuzz: seed={} cases={}{}",
        args.seed,
        args.cases,
        if args.mutate {
            "  [MUTATE: deliberate constant-folding miscompile active]"
        } else {
            ""
        }
    );

    let mut oracle = Oracle::new(args.mutate);
    let mut report = RunReport::default();

    for i in 0..args.cases {
        let cseed = case_seed(args.seed, i);
        let mut rng = StdRng::seed_from_u64(cseed);
        let dcfg = doc_config(&mut rng, cseed ^ 0xD0C);
        let xml = random_tree(&dcfg);
        let q = QueryGen::new(&mut rng, GenConfig::default()).generate();
        if args.verbose {
            println!("case {i}: {}", q.text.replace('\n', " "));
        }

        let result = oracle.run_case(&q.text, &xml);
        report.cases += 1;
        report.note_kinds(&q.kinds);
        report.note_rewrites(&result.rewrite_stats);
        if result.streamed {
            report.streamed += 1;
        }
        match result.verdict {
            Verdict::Agree => report.agreed += 1,
            Verdict::AgreeError(code) => {
                report.agreed_error += 1;
                report.note_error(code);
            }
            Verdict::Skipped(_) => report.skipped += 1,
            Verdict::Diverged(d) => {
                report.diverged += 1;
                println!("\n=== DIVERGENCE at case {i} (leg: {}) ===", d.leg);
                println!(
                    "replay:    fuzz --seed {} --cases 1{}",
                    args.seed.wrapping_add(i),
                    if args.mutate { " --mutate" } else { "" }
                );
                println!("query:\n{}", q.text);
                println!("reference: {:?}", d.reference);
                println!("actual:    {:?}", d.actual);
                let shrunk = shrink::shrink(&q.module, &xml, Some(&dcfg), args.mutate, 200);
                println!(
                    "shrunk ({} steps, {} query bytes, {} doc bytes):",
                    shrunk.steps,
                    shrunk.text.len(),
                    shrunk.xml.len()
                );
                println!("  query: {}", shrunk.text.replace('\n', " "));
                println!("  doc:   {}", truncate(&shrunk.xml, 400));
                println!("\n{}", report.render());
                return if args.mutate {
                    println!("mutation sanity check: PASS (planted bug caught at case {i})");
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                };
            }
        }
    }

    println!("\n{}", report.render());
    let stats = oracle.service_stats();
    println!(
        "service: served={} failed={} plan lookups={} hits={} misses={} evictions={}",
        stats.served,
        stats.failed,
        stats.plan_lookups,
        stats.plan_hits,
        stats.plan_misses,
        stats.plan_evictions
    );

    if args.mutate {
        println!(
            "mutation sanity check: FAIL (planted miscompile survived {} cases — the oracle is blind)",
            args.cases
        );
        ExitCode::FAILURE
    } else {
        println!("no divergences.");
        ExitCode::SUCCESS
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        // The generator only emits ASCII documents, so byte slicing is
        // char-safe here.
        &s[..n]
    }
}
