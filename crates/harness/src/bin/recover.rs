//! Kill-and-recover driver for the durable segment store.
//!
//! ```text
//! recover [--seed N] [--rounds N] [--verbose]
//! ```
//!
//! Each round sweeps every segment-persistence faultpoint site
//! (`segment.write`, `segment.fsync`, `segment.rename`,
//! `manifest.append`, `segment.mmap`, `segment.verify`) with both a
//! panic and an error-return crash, plus one single-byte-flip
//! corruption case. A case loads three documents into a persistent
//! service with the crash armed, drops the service with no cleanup, and
//! reopens the directory. The invariant: every document is either fully
//! queryable with byte-identical results, or cleanly absent/quarantined
//! with a coded error — never a wrong answer, a partial answer, or a
//! panic; and an *acknowledged* load must always survive the restart.
//! On violation a replay line is printed and the process exits 1.

use std::process::ExitCode;
use xqr_harness::case_seed;
use xqr_harness::recover::{run_case, run_corruption_case, DocEnd, RecoverCase, SEGMENT_SITES};

struct Args {
    seed: u64,
    rounds: u64,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        rounds: 3,
        verbose: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need_value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--seed" => {
                args.seed = need_value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--rounds" => {
                args.rounds = need_value(i)?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
                i += 2;
            }
            "--verbose" => {
                args.verbose = true;
                i += 1;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn report(case: &RecoverCase, seed: u64, verbose: bool) -> bool {
    if verbose {
        let ends: Vec<&str> = case
            .ends
            .iter()
            .map(|e| match e {
                DocEnd::Correct => "correct",
                DocEnd::Absent => "absent",
                DocEnd::Quarantined => "quarantined",
            })
            .collect();
        println!(
            "seed {seed} site {} kind {}: fired={} acked={} ends={ends:?}",
            case.site, case.kind, case.fired, case.acked
        );
    }
    if case.violations.is_empty() {
        return true;
    }
    println!(
        "\n=== RECOVERY VIOLATION (site {} kind {}) ===",
        case.site, case.kind
    );
    println!("replay:    recover --seed {seed} --rounds 1");
    for v in &case.violations {
        println!("leg {}: {}", v.leg, v.detail);
    }
    false
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("recover: {e}");
            eprintln!("usage: recover [--seed N] [--rounds N] [--verbose]");
            return ExitCode::from(2);
        }
    };

    if !xqr_faults::compiled_with_failpoints() {
        eprintln!("recover: built without the `failpoints` feature — nothing to inject");
        return ExitCode::from(2);
    }

    println!(
        "xqr recover: seed={} rounds={} sites={}",
        args.seed,
        args.rounds,
        SEGMENT_SITES.len()
    );

    // Injected panics are expected traffic: silence the default hook's
    // backtraces while a schedule is armed.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !xqr_faults::armed() {
            default_hook(info);
        }
    }));

    let (mut cases, mut fired, mut acked, mut quarantined) = (0u64, 0u64, 0u64, 0u64);
    for round in 0..args.rounds {
        let rseed = case_seed(args.seed, round);
        for (s, site) in SEGMENT_SITES.iter().enumerate() {
            for panic_kind in [false, true] {
                let cseed = case_seed(rseed, s as u64 * 2 + panic_kind as u64);
                let case = run_case(cseed, site, panic_kind);
                cases += 1;
                fired += case.fired;
                acked += case.acked as u64;
                quarantined += case
                    .ends
                    .iter()
                    .filter(|e| **e == DocEnd::Quarantined)
                    .count() as u64;
                if !report(&case, args.seed, args.verbose) {
                    return ExitCode::FAILURE;
                }
            }
        }
        let case = run_corruption_case(case_seed(rseed, 1000));
        cases += 1;
        quarantined += case
            .ends
            .iter()
            .filter(|e| **e == DocEnd::Quarantined)
            .count() as u64;
        if !report(&case, args.seed, args.verbose) {
            return ExitCode::FAILURE;
        }
    }

    println!(
        "cases: {cases}  crashes fired: {fired}  loads acknowledged: {acked}  \
         quarantines observed: {quarantined}"
    );
    println!("no violations.");
    ExitCode::SUCCESS
}
