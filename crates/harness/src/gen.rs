//! Grammar-based random query generation.
//!
//! Queries are built directly as `xqr_xqparser` ASTs — never as text —
//! so every generated case is syntactically valid by construction and
//! the printed form round-trips through the parser (the printer's
//! fixpoint property). Generation is *sort-directed*: each subexpression
//! is asked for as one of four sorts (numbers, strings, booleans, node
//! sequences) and the generator only composes operators whose operand
//! sorts it can supply, which keeps the static-error rate low without
//! eliminating runtime errors (those are part of what the oracle
//! checks).
//!
//! Deliberately *not* generated, because they are legal but
//! nondeterministic across configurations and would drown the oracle in
//! false divergences:
//!
//! * `fn:current-dateTime()` / `current-date` / `current-time` — fixed
//!   per [`xqr_runtime::DynamicContext`], and each configuration builds
//!   its own context;
//! * `fn:position()` / `fn:last()` outside predicates — the top-level
//!   focus is unspecified;
//! * floating-point literals (NaN/Inf serialization corner cases are
//!   covered by the directed conformance suite instead);
//! * the `namespace` axis and `unordered {}` (the one annotation that
//!   *licenses* the optimizer to change observable order).

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;
use xqr_xdm::{AtomicValue, QName};
use xqr_xqparser::ast::*;

/// The sort (static value family) a generated expression produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sort {
    Num,
    Str,
    Bool,
    Nodes,
}

/// Generator tuning knobs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum expression nesting depth.
    pub max_depth: usize,
    /// Element names the document generator uses (`xqr-xmlgen` emits
    /// `a`, `d` and `t0..t{alphabet}` tags plus `k` attributes).
    pub doc_tags: Vec<String>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 5,
            doc_tags: vec![
                "a".into(),
                "d".into(),
                "t0".into(),
                "t1".into(),
                "t2".into(),
                "t3".into(),
            ],
        }
    }
}

/// A generated case body plus the coverage counters gathered while
/// building it.
pub struct GeneratedQuery {
    pub module: Module,
    pub text: String,
    /// How many times each expression kind was emitted.
    pub kinds: BTreeMap<&'static str, usize>,
}

pub struct QueryGen<'r> {
    rng: &'r mut StdRng,
    config: GenConfig,
    /// In-scope variables with their sorts (FLWOR/quantifier binders).
    scope: Vec<(QName, Sort)>,
    /// `position()`/`last()` are only legal where a focus is
    /// well-defined; we restrict them to predicates.
    in_predicate: bool,
    next_var: usize,
    kinds: BTreeMap<&'static str, usize>,
}

/// All axes the engine implements, with generation weights (forward
/// child/descendant paths dominate real queries; backward and sibling
/// axes still need steady coverage). `namespace` is intentionally
/// absent.
const AXES: &[(AxisName, u32)] = &[
    (AxisName::Child, 8),
    (AxisName::Descendant, 5),
    (AxisName::DescendantOrSelf, 2),
    (AxisName::Attribute, 2),
    (AxisName::SelfAxis, 1),
    (AxisName::Parent, 2),
    (AxisName::Ancestor, 2),
    (AxisName::AncestorOrSelf, 1),
    (AxisName::FollowingSibling, 2),
    (AxisName::PrecedingSibling, 2),
    (AxisName::Following, 1),
    (AxisName::Preceding, 1),
];

impl<'r> QueryGen<'r> {
    pub fn new(rng: &'r mut StdRng, config: GenConfig) -> Self {
        QueryGen {
            rng,
            config,
            scope: Vec::new(),
            in_predicate: false,
            next_var: 0,
            kinds: BTreeMap::new(),
        }
    }

    /// Generate one full query module.
    pub fn generate(mut self) -> GeneratedQuery {
        let body = match self.rng.gen_range(0u32..100) {
            0..=39 => self.nodes(0),
            40..=59 => self.flwor(0, Sort::Nodes),
            60..=74 => self.num(0),
            75..=84 => self.bool_expr(0),
            85..=92 => self.str_expr(0),
            _ => self.constructor(0),
        };
        let module = Module {
            prolog: Prolog::default(),
            body,
        };
        let text = xqr_xqparser::printer::print_module(&module);
        GeneratedQuery {
            module,
            text,
            kinds: self.kinds,
        }
    }

    fn count(&mut self, kind: &'static str) {
        *self.kinds.entry(kind).or_insert(0) += 1;
    }

    fn fresh_var(&mut self, sort: Sort) -> QName {
        let q = QName::local(&format!("v{}", self.next_var));
        self.next_var += 1;
        self.scope.push((q.clone(), sort));
        q
    }

    fn var_of(&mut self, sort: Sort) -> Option<QName> {
        let candidates: Vec<QName> = self
            .scope
            .iter()
            .filter(|(_, s)| *s == sort)
            .map(|(q, _)| q.clone())
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..candidates.len());
        Some(candidates[i].clone())
    }

    fn doc_tag(&mut self) -> QName {
        let i = self.rng.gen_range(0..self.config.doc_tags.len());
        QName::local(&self.config.doc_tags[i].clone())
    }

    fn int_lit(&mut self, lo: i64, hi: i64) -> Expr {
        Expr::Literal(AtomicValue::Integer(self.rng.gen_range(lo..hi)), 0)
    }

    /// Dispatch on sort.
    pub fn expr(&mut self, sort: Sort, depth: usize) -> Expr {
        match sort {
            Sort::Num => self.num(depth),
            Sort::Str => self.str_expr(depth),
            Sort::Bool => self.bool_expr(depth),
            Sort::Nodes => self.nodes(depth),
        }
    }

    fn call(&mut self, name: &str, args: Vec<Expr>) -> Expr {
        Expr::FunctionCall(QName::local(name), args, 0)
    }

    // ---- numbers -------------------------------------------------------

    fn num(&mut self, depth: usize) -> Expr {
        if depth >= self.config.max_depth {
            self.count("literal");
            return self.int_lit(-9, 100);
        }
        match self.rng.gen_range(0u32..100) {
            0..=29 => {
                self.count("literal");
                self.int_lit(-9, 100)
            }
            30..=54 => {
                self.count("arith");
                // idiv/mod keep the result in xs:integer; div produces
                // xs:decimal. Division by a zero *literal* is generated
                // too — FOAR0001 must be raised identically everywhere.
                let op = [
                    ArithOp::Add,
                    ArithOp::Sub,
                    ArithOp::Sub, // extra weight: the mutation target
                    ArithOp::Mul,
                    ArithOp::IDiv,
                    ArithOp::Mod,
                ][self.rng.gen_range(0usize..6)];
                let a = self.num(depth + 1);
                let b = self.num(depth + 1);
                Expr::Arith(op, Box::new(a), Box::new(b), 0)
            }
            55..=69 => {
                self.count("count");
                let n = self.nodes(depth + 1);
                self.call("count", vec![n])
            }
            70..=77 => {
                self.count("neg");
                let a = self.num(depth + 1);
                Expr::Neg(Box::new(a), 0)
            }
            78..=85 => {
                self.count("string-length");
                let s = self.str_expr(depth + 1);
                self.call("string-length", vec![s])
            }
            86..=92 => {
                self.count("if");
                let c = self.bool_expr(depth + 1);
                let t = self.num(depth + 1);
                let e = self.num(depth + 1);
                Expr::If {
                    cond: Box::new(c),
                    then_branch: Box::new(t),
                    else_branch: Box::new(e),
                    pos: 0,
                }
            }
            93..=96 => {
                if let Some(v) = self.var_of(Sort::Num) {
                    self.count("var-ref");
                    Expr::VarRef(v, 0)
                } else {
                    self.count("literal");
                    self.int_lit(0, 10)
                }
            }
            _ => {
                if self.in_predicate {
                    let name = if self.rng.gen_bool(0.5) {
                        "position"
                    } else {
                        "last"
                    };
                    self.count(if name == "position" {
                        "position"
                    } else {
                        "last"
                    });
                    self.call(name, vec![])
                } else {
                    self.count("literal");
                    self.int_lit(1, 5)
                }
            }
        }
    }

    // ---- strings -------------------------------------------------------

    fn str_expr(&mut self, depth: usize) -> Expr {
        const LITS: &[&str] = &["x", "a", "b", "42", "", "xx"];
        if depth >= self.config.max_depth {
            self.count("literal");
            let s = LITS[self.rng.gen_range(0..LITS.len())];
            return Expr::Literal(AtomicValue::string(s), 0);
        }
        match self.rng.gen_range(0u32..100) {
            0..=39 => {
                self.count("literal");
                let s = LITS[self.rng.gen_range(0..LITS.len())];
                Expr::Literal(AtomicValue::string(s), 0)
            }
            40..=59 => {
                self.count("concat");
                let a = self.str_expr(depth + 1);
                let b = self.str_expr(depth + 1);
                self.call("concat", vec![a, b])
            }
            60..=79 => {
                // string() needs a singleton (or empty) argument:
                // `(nodes)[1]` guarantees that shape.
                self.count("string-of-node");
                let n = self.nodes(depth + 1);
                let first = Expr::Filter(Box::new(n), vec![self.int_lit(1, 2)], 0);
                self.call("string", vec![first])
            }
            80..=89 => {
                self.count("string-of-num");
                let n = self.num(depth + 1);
                self.call("string", vec![n])
            }
            _ => {
                self.count("upper-case");
                let s = self.str_expr(depth + 1);
                self.call("upper-case", vec![s])
            }
        }
    }

    // ---- booleans ------------------------------------------------------

    fn bool_expr(&mut self, depth: usize) -> Expr {
        if depth >= self.config.max_depth {
            self.count("comparison");
            let a = self.int_lit(0, 10);
            let b = self.int_lit(0, 10);
            return Expr::Comparison(CompOp::GenEq, Box::new(a), Box::new(b), 0);
        }
        match self.rng.gen_range(0u32..100) {
            0..=24 => {
                self.count("comparison");
                let op = [
                    CompOp::ValEq,
                    CompOp::ValNe,
                    CompOp::ValLt,
                    CompOp::ValGe,
                    CompOp::GenEq,
                    CompOp::GenNe,
                    CompOp::GenLt,
                    CompOp::GenGt,
                ][self.rng.gen_range(0usize..8)];
                let a = self.num(depth + 1);
                let b = self.num(depth + 1);
                Expr::Comparison(op, Box::new(a), Box::new(b), 0)
            }
            25..=39 => {
                // General comparison against a node sequence: the
                // existential + coercion semantics from the paper's
                // comparison table. Untyped content coerces to the
                // other operand's family, so comparing against a string
                // is always safe while comparing against a number can
                // raise FORG0001 — both are deterministic.
                self.count("node-comparison");
                let n = self.nodes(depth + 1);
                let rhs = if self.rng.gen_bool(0.7) {
                    Expr::Literal(
                        AtomicValue::string(["x", "a", "xx"][self.rng.gen_range(0usize..3)]),
                        0,
                    )
                } else {
                    self.int_lit(0, 5)
                };
                let op = [CompOp::GenEq, CompOp::GenNe][self.rng.gen_range(0usize..2)];
                Expr::Comparison(op, Box::new(n), Box::new(rhs), 0)
            }
            40..=54 => {
                let use_and = self.rng.gen_bool(0.5);
                self.count(if use_and { "and" } else { "or" });
                let a = self.bool_expr(depth + 1);
                let b = self.bool_expr(depth + 1);
                if use_and {
                    Expr::And(Box::new(a), Box::new(b), 0)
                } else {
                    Expr::Or(Box::new(a), Box::new(b), 0)
                }
            }
            55..=69 => {
                let name = if self.rng.gen_bool(0.5) {
                    "exists"
                } else {
                    "empty"
                };
                self.count(if name == "exists" { "exists" } else { "empty" });
                let n = self.nodes(depth + 1);
                self.call(name, vec![n])
            }
            70..=79 => {
                self.count("not");
                let b = self.bool_expr(depth + 1);
                self.call("not", vec![b])
            }
            _ => {
                self.count("quantified");
                let every = self.rng.gen_bool(0.4);
                let source = self.nodes(depth + 1);
                let mark = self.scope.len();
                let v = self.fresh_var(Sort::Nodes);
                let satisfies = self.bool_expr(depth + 1);
                self.scope.truncate(mark);
                Expr::Quantified {
                    every,
                    bindings: vec![(v, None, source)],
                    satisfies: Box::new(satisfies),
                    pos: 0,
                }
            }
        }
    }

    // ---- node sequences ------------------------------------------------

    /// A path origin: the document root, the context item, or an
    /// in-scope node variable.
    fn path_origin(&mut self) -> Expr {
        match self.rng.gen_range(0u32..10) {
            0..=4 => {
                self.count("root");
                Expr::Root(0)
            }
            5..=6 => {
                self.count("context-item");
                Expr::ContextItem(0)
            }
            _ => {
                if let Some(v) = self.var_of(Sort::Nodes) {
                    self.count("var-ref");
                    Expr::VarRef(v, 0)
                } else {
                    self.count("root");
                    Expr::Root(0)
                }
            }
        }
    }

    fn axis_step(&mut self, depth: usize) -> Expr {
        let total: u32 = AXES.iter().map(|(_, w)| w).sum();
        let mut roll = self.rng.gen_range(0..total);
        let mut axis = AxisName::Child;
        for (a, w) in AXES {
            if roll < *w {
                axis = *a;
                break;
            }
            roll -= w;
        }
        self.count(match axis {
            AxisName::Child => "axis-child",
            AxisName::Descendant => "axis-descendant",
            AxisName::DescendantOrSelf => "axis-descendant-or-self",
            AxisName::Attribute => "axis-attribute",
            AxisName::SelfAxis => "axis-self",
            AxisName::Parent => "axis-parent",
            AxisName::Ancestor => "axis-ancestor",
            AxisName::AncestorOrSelf => "axis-ancestor-or-self",
            AxisName::FollowingSibling => "axis-following-sibling",
            AxisName::PrecedingSibling => "axis-preceding-sibling",
            AxisName::Following => "axis-following",
            AxisName::Preceding => "axis-preceding",
            AxisName::Namespace => unreachable!("namespace axis is never generated"),
        });
        let test = if axis == AxisName::Attribute {
            if self.rng.gen_bool(0.6) {
                NodeTest::Name(QName::local("k"))
            } else {
                NodeTest::AnyName
            }
        } else {
            match self.rng.gen_range(0u32..10) {
                0..=5 => NodeTest::Name(self.doc_tag()),
                6..=7 => NodeTest::AnyName,
                8 => NodeTest::Text,
                _ => NodeTest::AnyKind,
            }
        };
        let n_preds = match self.rng.gen_range(0u32..10) {
            0..=5 => 0,
            6..=8 => 1,
            _ => 2,
        };
        let predicates = (0..n_preds).map(|_| self.predicate(depth)).collect();
        Expr::AxisStep {
            axis,
            test,
            predicates,
            pos: 0,
        }
    }

    fn predicate(&mut self, depth: usize) -> Expr {
        let was = self.in_predicate;
        self.in_predicate = true;
        let p = match self.rng.gen_range(0u32..10) {
            0..=2 => {
                self.count("positional-predicate");
                self.int_lit(1, 4)
            }
            3..=4 => {
                self.count("positional-predicate");
                let pos = self.call("position", vec![]);
                let op = [CompOp::GenLt, CompOp::GenLe, CompOp::GenGt, CompOp::ValEq]
                    [self.rng.gen_range(0usize..4)];
                let n = self.int_lit(1, 4);
                Expr::Comparison(op, Box::new(pos), Box::new(n), 0)
            }
            5 => {
                self.count("positional-predicate");
                self.call("last", vec![])
            }
            6..=7 => self.bool_expr(depth + 1),
            _ => {
                self.count("existence-predicate");
                self.nodes(depth + 1)
            }
        };
        self.in_predicate = was;
        p
    }

    fn nodes(&mut self, depth: usize) -> Expr {
        if depth >= self.config.max_depth {
            let origin = self.path_origin();
            let step = self.axis_step(depth);
            self.count("path");
            return Expr::Path(Box::new(origin), Box::new(step), 0);
        }
        match self.rng.gen_range(0u32..100) {
            0..=44 => {
                self.count("path");
                let lhs = if self.rng.gen_bool(0.45) {
                    self.nodes(depth + 1)
                } else {
                    self.path_origin()
                };
                let step = self.axis_step(depth + 1);
                Expr::Path(Box::new(lhs), Box::new(step), 0)
            }
            45..=54 => {
                let which = self.rng.gen_range(0u32..4);
                let a = self.nodes(depth + 1);
                let b = self.nodes(depth + 1);
                match which {
                    0 | 1 => {
                        self.count("union");
                        Expr::Union(Box::new(a), Box::new(b), 0)
                    }
                    2 => {
                        self.count("intersect");
                        Expr::Intersect(Box::new(a), Box::new(b), 0)
                    }
                    _ => {
                        self.count("except");
                        Expr::Except(Box::new(a), Box::new(b), 0)
                    }
                }
            }
            55..=69 => self.flwor(depth + 1, Sort::Nodes),
            70..=79 => {
                self.count("filter");
                let base = self.nodes(depth + 1);
                let n_preds = 1 + usize::from(self.rng.gen_bool(0.3));
                let preds = (0..n_preds).map(|_| self.predicate(depth + 1)).collect();
                Expr::Filter(Box::new(base), preds, 0)
            }
            80..=86 => {
                self.count("if");
                let c = self.bool_expr(depth + 1);
                let t = self.nodes(depth + 1);
                let e = if self.rng.gen_bool(0.5) {
                    self.nodes(depth + 1)
                } else {
                    Expr::empty(0)
                };
                Expr::If {
                    cond: Box::new(c),
                    then_branch: Box::new(t),
                    else_branch: Box::new(e),
                    pos: 0,
                }
            }
            87..=92 => {
                self.count("sequence");
                let a = self.nodes(depth + 1);
                let b = self.nodes(depth + 1);
                Expr::Sequence(vec![a, b], 0)
            }
            93..=96 => {
                self.count("subsequence");
                let n = self.nodes(depth + 1);
                let start = self.int_lit(1, 3);
                let len = self.int_lit(1, 5);
                self.call("subsequence", vec![n, start, len])
            }
            _ => self.constructor(depth + 1),
        }
    }

    // ---- FLWOR ---------------------------------------------------------

    fn flwor(&mut self, depth: usize, sort: Sort) -> Expr {
        self.count("flwor");
        let mark = self.scope.len();
        let n_clauses = 1 + self.rng.gen_range(0usize..3);
        let mut clauses = Vec::with_capacity(n_clauses);
        let mut last_for_var: Option<QName> = None;
        for i in 0..n_clauses {
            // The first clause is always a `for` so the FLWOR iterates.
            if i == 0 || self.rng.gen_bool(0.6) {
                let source = self.nodes(depth + 1);
                let position = if self.rng.gen_bool(0.2) {
                    self.count("positional-for");
                    Some(self.fresh_var(Sort::Num))
                } else {
                    None
                };
                let var = self.fresh_var(Sort::Nodes);
                last_for_var = Some(var.clone());
                clauses.push(FlworClause::For {
                    var,
                    position,
                    ty: None,
                    source,
                });
            } else {
                self.count("let");
                let sort = [Sort::Num, Sort::Str, Sort::Nodes][self.rng.gen_range(0usize..3)];
                let value = self.expr(sort, depth + 1);
                let var = self.fresh_var(sort);
                clauses.push(FlworClause::Let {
                    var,
                    ty: None,
                    value,
                });
            }
        }
        let where_clause = if self.rng.gen_bool(0.4) {
            self.count("where");
            Some(Box::new(self.bool_expr(depth + 1)))
        } else {
            None
        };
        // `order by` keys must be singleton-or-empty per iteration:
        // `string($v)` over a single bound node always is. Always
        // `stable` so tie order is defined and comparable across
        // configurations.
        let order_by = match &last_for_var {
            Some(v) if self.rng.gen_bool(0.25) => {
                self.count("order-by");
                vec![OrderSpec {
                    key: self.call("string", vec![Expr::VarRef(v.clone(), 0)]),
                    descending: self.rng.gen_bool(0.5),
                    empty_least: None,
                }]
            }
            _ => Vec::new(),
        };
        let return_clause = self.expr(sort, depth + 1);
        self.scope.truncate(mark);
        Expr::Flwor {
            clauses,
            where_clause,
            order_by,
            stable: true,
            return_clause: Box::new(return_clause),
            pos: 0,
        }
    }

    // ---- constructors --------------------------------------------------

    fn constructor(&mut self, depth: usize) -> Expr {
        match self.rng.gen_range(0u32..10) {
            0..=5 => {
                self.count("direct-element");
                let name = QName::local(["r", "item", "out"][self.rng.gen_range(0usize..3)]);
                let attributes = if self.rng.gen_bool(0.4) {
                    let n = self.num(depth + 1);
                    vec![(
                        QName::local("n"),
                        vec![AttrPart::Text("p".into()), AttrPart::Enclosed(n)],
                    )]
                } else {
                    Vec::new()
                };
                let mut content = Vec::new();
                if self.rng.gen_bool(0.5) {
                    content.push(DirContent::Text("t".into()));
                }
                content.push(DirContent::Enclosed(self.nodes(depth + 1)));
                Expr::DirectElement {
                    name,
                    attributes,
                    namespaces: Vec::new(),
                    content,
                    pos: 0,
                }
            }
            6..=7 => {
                self.count("computed-element");
                let sort = [Sort::Nodes, Sort::Num, Sort::Str][self.rng.gen_range(0usize..3)];
                let body = self.expr(sort, depth + 1);
                Expr::ComputedElement {
                    name: Box::new(NameOrExpr::Name(QName::local("c"))),
                    content: Some(Box::new(body)),
                    pos: 0,
                }
            }
            _ => {
                self.count("computed-text");
                let s = self.str_expr(depth + 1);
                Expr::ComputedText(Box::new(s), 0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generated_queries_parse_back() {
        // The structural guarantee the whole harness rests on: printed
        // generated ASTs are valid query text.
        for seed in 0..200u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let q = QueryGen::new(&mut rng, GenConfig::default()).generate();
            let parsed = xqr_xqparser::parse_query(&q.text);
            assert!(
                parsed.is_ok(),
                "seed {seed}: {}\n{:?}",
                q.text,
                parsed.err()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen_one = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            QueryGen::new(&mut rng, GenConfig::default())
                .generate()
                .text
        };
        assert_eq!(gen_one(7), gen_one(7));
        assert_ne!(gen_one(7), gen_one(8));
    }

    #[test]
    fn coverage_spans_expression_kinds() {
        // Across a few hundred seeds the generator should exercise the
        // major expression families and most axes.
        let mut all: BTreeMap<&'static str, usize> = BTreeMap::new();
        for seed in 0..300u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let q = QueryGen::new(&mut rng, GenConfig::default()).generate();
            for (k, v) in q.kinds {
                *all.entry(k).or_insert(0) += v;
            }
        }
        for kind in [
            "path",
            "flwor",
            "quantified",
            "comparison",
            "arith",
            "direct-element",
            "positional-predicate",
            "union",
            "axis-child",
            "axis-descendant",
            "axis-parent",
            "axis-ancestor",
            "axis-preceding-sibling",
            "order-by",
        ] {
            assert!(all.contains_key(kind), "never generated: {kind}\n{all:?}");
        }
    }
}
