//! The pub/sub leg of the oracle: standing subscriptions vs one-shot
//! queries.
//!
//! The invariant `xqr-subscribe` must uphold, with and without injected
//! faults:
//!
//! > **N standing subscriptions over a document stream ≡ N independent
//! > one-shot queries per document** — byte-for-byte, or the same
//! > stable coded error, never cross-contamination.
//!
//! Each case derives a subscription set (a mix of random path
//! expressions, which ride the shared combined-automaton pass, and
//! grammar-generated queries, which mostly fall back to one-shot
//! evaluation) and a small document stream from one seed. The reference
//! outcome for every `(subscription, document)` pair is computed
//! un-faulted via [`Engine::query_xml`]; then every document is
//! published at the whole set and the per-subscription outcomes are
//! compared.
//!
//! In faulted mode a seeded [`FaultSchedule`] (weighted toward the
//! `subscribe.deliver` site) is installed around the publishes, and the
//! judgement switches to the chaos rules: each subscription ends
//! **correct or coded** — a different successful answer is a violation,
//! `err:XQRL0000` requires a scheduled panic, and an injected delivery
//! fault may degrade its victim subscription but never the pass, a
//! neighbour, or the store (leak-checked after every case).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

use crate::gen::{GenConfig, QueryGen};
use xqr_core::{contain_panic, Engine};
use xqr_faults::{FaultKind, FaultRule, FaultSchedule};
use xqr_subscribe::{CollectingSink, SubId, SubscriptionRegistry};
use xqr_xdm::{ErrorCode, Limits};
use xqr_xmlgen::{random_tree, RandomTreeConfig};

/// Faultpoint sites on the publish path, `subscribe.deliver` first —
/// the schedule generator picks it half the time so delivery isolation
/// is exercised constantly, not occasionally.
pub const PUBSUB_SITES: &[&str] = &[
    "subscribe.deliver",
    "xml.read",
    "tokens.buffer",
    "store.load",
    "store.read",
    "index.build",
    "eval.next",
];

/// An invariant violation — the suite's only failure mode.
#[derive(Debug, Clone)]
pub struct Violation {
    /// `(subscription index, document index)` or a case-wide marker.
    pub at: String,
    pub detail: String,
}

/// Everything one pub/sub case reports.
#[derive(Debug)]
pub struct PubsubCase {
    pub seed: u64,
    pub faulted: bool,
    pub subscriptions: usize,
    pub documents: usize,
    /// Subscriptions on the shared combined-automaton pass (last
    /// publish).
    pub shared_pass: usize,
    /// Subscriptions on the one-shot fallback (last publish).
    pub fallback: usize,
    /// Injections that fired (faulted mode).
    pub fired: u64,
    /// `(sub, doc)` comparisons that ended byte-identical.
    pub agreed: u64,
    /// Comparisons that ended in matching (or fault-coded) errors.
    pub coded: u64,
    /// Comparisons skipped on timing-dependent resource verdicts.
    pub skipped: u64,
    pub violations: Vec<Violation>,
}

/// Budgets for pub/sub cases: bounded so a pathological generated query
/// cannot wedge the suite, generous enough that resource trips stay
/// rare (each one skips a comparison).
pub(crate) fn case_limits() -> Limits {
    Limits::unlimited()
        .with_deadline(Duration::from_secs(10))
        .with_max_items(200_000)
        .with_max_output_bytes(4 * 1024 * 1024)
}

pub(crate) fn doc_config(rng: &mut StdRng, seed: u64) -> RandomTreeConfig {
    RandomTreeConfig {
        seed,
        nodes: rng.gen_range(20usize..120),
        max_depth: rng.gen_range(3usize..8),
        alphabet: 4,
        p_ancestor: 0.15,
        p_descendant: 0.2,
        p_text: 0.3,
        p_attribute: 0.25,
    }
}

/// A random path expression over the tag alphabet `random_tree` emits.
/// These are the queries that ride the shared pass: child/descendant
/// steps, wildcards included.
pub(crate) fn random_path(rng: &mut StdRng) -> String {
    const NAMES: &[&str] = &["root", "a", "d", "t0", "t1", "t2", "t3", "*"];
    let steps = rng.gen_range(1usize..5);
    let mut q = String::new();
    for _ in 0..steps {
        q.push_str(if rng.gen_bool(0.4) { "//" } else { "/" });
        q.push_str(NAMES[rng.gen_range(0..NAMES.len())]);
    }
    q
}

/// Derive a fault schedule for the publish path: one or two rules, the
/// first over `subscribe.deliver` half the time.
pub fn gen_schedule(rng: &mut StdRng, seed: u64) -> FaultSchedule {
    let mut schedule = FaultSchedule::new(seed);
    for rule_no in 0..rng.gen_range(1..3u32) {
        let site = if rule_no == 0 && rng.gen_bool(0.5) {
            PUBSUB_SITES[0]
        } else {
            PUBSUB_SITES[rng.gen_range(0..PUBSUB_SITES.len())]
        };
        let kind = match rng.gen_range(0..10u32) {
            0..=4 => FaultKind::ErrorReturn,
            5 | 6 => FaultKind::Panic,
            7 => FaultKind::Delay(Duration::from_millis(rng.gen_range(1..4))),
            8 => FaultKind::Cancel,
            _ => FaultKind::BudgetTrip,
        };
        let mut rule = FaultRule::new(site, kind)
            .one_in(rng.gen_range(1..6))
            .skip_first(rng.gen_range(0..8));
        if rng.gen_range(0..4u32) > 0 {
            rule = rule.max_fires(rng.gen_range(1..4));
        }
        schedule = schedule.rule(rule);
    }
    schedule
}

/// Timing-dependent resource verdicts (mirrors the chaos skip class).
fn is_resource(code: ErrorCode) -> bool {
    matches!(
        code,
        ErrorCode::Limit
            | ErrorCode::Timeout
            | ErrorCode::Cancelled
            | ErrorCode::Overloaded
            | ErrorCode::Unavailable
    )
}

type Outcome = Result<String, (ErrorCode, String)>;

fn outcome(r: xqr_xdm::Result<String>) -> Outcome {
    r.map_err(|e| (e.code, e.to_string()))
}

/// Run one seeded case. `faulted` installs a derived schedule around
/// the publishes (requires the `failpoints` feature to do anything).
pub fn run_case(seed: u64, faulted: bool) -> PubsubCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let engine = Engine::new();

    let n_docs = rng.gen_range(1usize..4);
    let docs: Vec<String> = (0..n_docs)
        .map(|i| random_tree(&doc_config(&mut rng, seed ^ (0xD0C + i as u64))))
        .collect();

    let n_subs = rng.gen_range(1usize..7);
    let queries: Vec<String> = (0..n_subs)
        .map(|_| {
            if rng.gen_bool(0.5) {
                random_path(&mut rng)
            } else {
                QueryGen::new(&mut rng, GenConfig::default())
                    .generate()
                    .text
            }
        })
        .collect();

    let mut case = PubsubCase {
        seed,
        faulted,
        subscriptions: n_subs,
        documents: n_docs,
        shared_pass: 0,
        fallback: 0,
        fired: 0,
        agreed: 0,
        coded: 0,
        skipped: 0,
        violations: Vec::new(),
    };

    // Reference outcomes, un-faulted: one independent one-shot query
    // per (subscription, document) pair.
    let reference: Vec<Vec<Outcome>> = queries
        .iter()
        .map(|q| {
            docs.iter()
                .map(|d| outcome(contain_panic(|| engine.query_xml(d, q))))
                .collect()
        })
        .collect();

    // Register the set. A query the subscribe path refuses to compile
    // must be one the one-shot path refuses identically.
    let reg = SubscriptionRegistry::new();
    let mut subs: Vec<Option<(SubId, Arc<CollectingSink>)>> = Vec::new();
    for (si, q) in queries.iter().enumerate() {
        match engine.compile_shared(q) {
            Ok(plan) => {
                let sink = CollectingSink::new();
                let id = reg.register(q, plan, case_limits(), Some(sink.clone()));
                subs.push(Some((id, sink)));
            }
            Err(e) => {
                for (di, r) in reference[si].iter().enumerate() {
                    if !matches!(r, Err((code, _)) if *code == e.code) {
                        case.violations.push(Violation {
                            at: format!("sub {si} doc {di}"),
                            detail: format!(
                                "subscribe rejected {q:?} with {} but one-shot said {r:?}",
                                e.code.as_str()
                            ),
                        });
                    }
                }
                subs.push(None);
            }
        }
    }

    let schedule = faulted.then(|| gen_schedule(&mut rng, seed));
    let panics_scheduled = schedule
        .as_ref()
        .is_some_and(|s| s.rules.iter().any(|r| matches!(r.kind, FaultKind::Panic)));

    {
        let _guard = schedule.map(xqr_faults::install);
        for (di, xml) in docs.iter().enumerate() {
            let report =
                contain_panic(|| reg.publish(&engine, &format!("doc-{di}"), xml, case_limits()));
            let report = match report {
                Ok(r) => r,
                Err(e) => {
                    // The whole publish failed (the document itself was
                    // unreadable under injection). Acceptable only as a
                    // coded fault, and only when faults are installed.
                    if !faulted {
                        case.violations.push(Violation {
                            at: format!("doc {di}"),
                            detail: format!("publish failed without faults: {e}"),
                        });
                    } else if e.code == ErrorCode::Internal && !panics_scheduled {
                        case.violations.push(Violation {
                            at: format!("doc {di}"),
                            detail: format!("XQRL0000 without a scheduled panic: {e}"),
                        });
                    } else {
                        case.coded += subs.iter().flatten().count() as u64;
                    }
                    continue;
                }
            };
            case.shared_pass = report.shared_pass;
            case.fallback = report.fallback;
            for (si, entry) in subs.iter().enumerate() {
                let Some((id, sink)) = entry else { continue };
                let got = match report.result_for(*id) {
                    Some(r) => outcome(r.clone()),
                    None => {
                        case.violations.push(Violation {
                            at: format!("sub {si} doc {di}"),
                            detail: "live subscription missing from the report".into(),
                        });
                        continue;
                    }
                };
                judge(
                    &mut case,
                    si,
                    di,
                    &reference[si][di],
                    got,
                    faulted,
                    panics_scheduled,
                );
                // Sink agreement: un-faulted, every publish delivers
                // exactly one outcome and it equals the report's.
                if !faulted {
                    let received = sink.take();
                    if received.len() != 1
                        || outcome(received[0].1.clone()) != outcome_of(&report, *id)
                    {
                        case.violations.push(Violation {
                            at: format!("sub {si} doc {di}"),
                            detail: format!(
                                "sink saw {:?}, report says {:?}",
                                received,
                                report.result_for(*id)
                            ),
                        });
                    }
                }
            }
        }
        case.fired = xqr_faults::fires();
        // Guard drops here; the leak check below runs un-faulted.
    }

    // No publish may leak a fallback materialization into the store.
    if engine.store().doc_count() != 0 {
        case.violations.push(Violation {
            at: "store".into(),
            detail: format!(
                "publish leaked {} document(s) into the store",
                engine.store().doc_count()
            ),
        });
    }
    case
}

fn outcome_of(report: &xqr_subscribe::PublishReport, id: SubId) -> Outcome {
    outcome(report.result_for(id).expect("checked present").clone())
}

/// Compare one `(subscription, document)` outcome against its one-shot
/// reference. Un-faulted the rules are strict equivalence (modulo
/// resource verdicts); faulted they relax to the chaos invariant:
/// correct or coded, no wrong answers, no unexplained `Internal`.
fn judge(
    case: &mut PubsubCase,
    si: usize,
    di: usize,
    reference: &Outcome,
    got: Outcome,
    faulted: bool,
    panics_scheduled: bool,
) {
    let at = format!("sub {si} doc {di}");
    match (reference, got) {
        (Ok(want), Ok(got)) => {
            if *want == got {
                case.agreed += 1;
            } else {
                case.violations.push(Violation {
                    at,
                    detail: format!("wrong answer: one-shot {want:?}, subscription {got:?}"),
                });
            }
        }
        (Err((code, _)), Ok(got)) => {
            if is_resource(*code) {
                case.skipped += 1;
            } else {
                case.violations.push(Violation {
                    at,
                    detail: format!(
                        "one-shot failed deterministically with {} but the \
                         subscription succeeded with {got:?}",
                        code.as_str()
                    ),
                });
            }
        }
        (reference, Err((code, msg))) => {
            if code == ErrorCode::Internal && !panics_scheduled {
                case.violations.push(Violation {
                    at,
                    detail: format!("err:XQRL0000 without a scheduled panic: {msg}"),
                });
            } else if faulted {
                // Under injection any coded error is a legal ending.
                case.coded += 1;
            } else {
                match reference {
                    Err((want, _)) if *want == code => case.coded += 1,
                    Err((want, _)) if is_resource(*want) || is_resource(code) => case.skipped += 1,
                    Ok(_) if is_resource(code) => case.skipped += 1,
                    other => case.violations.push(Violation {
                        at,
                        detail: format!(
                            "error mismatch without faults: one-shot {other:?}, \
                             subscription failed with {} ({msg})",
                            code.as_str()
                        ),
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_unfaulted_case_agrees() {
        let case = run_case(1, false);
        assert!(case.violations.is_empty(), "{:?}", case.violations);
        assert!(case.agreed + case.coded + case.skipped > 0);
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let mk = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = gen_schedule(&mut rng, seed);
            s.rules
                .iter()
                .map(|r| (r.site.clone(), r.one_in, r.skip_first, r.max_fires))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(11), mk(11));
        assert_ne!(mk(11), mk(12));
    }
}
