//! Greedy structural shrinking of divergent cases.
//!
//! When the oracle flags a case, the raw query is typically a deep
//! random expression over a thousand-node document. The shrinker
//! reduces both, preserving the divergence at every step:
//!
//! * **query**: repeatedly try replacing the body (or any subexpression,
//!   found by a top-down pass) with one of its children, dropping FLWOR
//!   clauses / predicates / sequence items, or substituting trivial
//!   leaves — keep a candidate only if the shrunken case still
//!   diverges;
//! * **document**: regenerate from the same [`RandomTreeConfig`] with
//!   the node budget halved and the depth reduced, as long as the
//!   divergence survives.
//!
//! Shrinking uses fresh oracles per probe (never the run's main oracle)
//! so probe traffic does not pollute the run's service statistics.

use crate::oracle::{Oracle, Verdict};
use xqr_xmlgen::RandomTreeConfig;
use xqr_xqparser::ast::{Expr, FlworClause, Module};
use xqr_xqparser::printer::print_module;

/// Does this (query, document) pair still diverge?
fn still_diverges(module: &Module, xml: &str, mutate: bool) -> bool {
    let text = print_module(module);
    let mut oracle = Oracle::new(mutate);
    matches!(oracle.run_case(&text, xml).verdict, Verdict::Diverged(_))
}

/// Candidate single-step reductions of an expression: every child
/// subexpression (of any sort — all print as valid queries), plus
/// structurally smaller versions of the same node.
fn reductions(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    match e {
        Expr::Arith(_, a, b, _)
        | Expr::Comparison(_, a, b, _)
        | Expr::And(a, b, _)
        | Expr::Or(a, b, _)
        | Expr::Union(a, b, _)
        | Expr::Intersect(a, b, _)
        | Expr::Except(a, b, _)
        | Expr::Path(a, b, _)
        | Expr::Range(a, b, _) => {
            out.push((**a).clone());
            out.push((**b).clone());
        }
        Expr::Neg(a, _)
        | Expr::Ordered(a, _)
        | Expr::Unordered(a, _)
        | Expr::ComputedText(a, _)
        | Expr::ComputedComment(a, _)
        | Expr::ComputedDocument(a, _)
        | Expr::InstanceOf(a, _, _)
        | Expr::CastAs(a, _, _)
        | Expr::CastableAs(a, _, _)
        | Expr::TreatAs(a, _, _) => out.push((**a).clone()),
        Expr::Sequence(items, pos) => {
            out.extend(items.iter().cloned());
            for i in 0..items.len() {
                let mut fewer = items.clone();
                fewer.remove(i);
                out.push(Expr::Sequence(fewer, *pos));
            }
        }
        Expr::Filter(base, preds, pos) => {
            out.push((**base).clone());
            for i in 0..preds.len() {
                let mut fewer = preds.clone();
                fewer.remove(i);
                out.push(Expr::Filter(base.clone(), fewer, *pos));
            }
        }
        Expr::AxisStep {
            axis,
            test,
            predicates,
            pos,
        } if !predicates.is_empty() => {
            for i in 0..predicates.len() {
                let mut fewer = predicates.clone();
                fewer.remove(i);
                out.push(Expr::AxisStep {
                    axis: *axis,
                    test: test.clone(),
                    predicates: fewer,
                    pos: *pos,
                });
            }
        }
        Expr::FunctionCall(_, args, _) => out.extend(args.iter().cloned()),
        Expr::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            out.push((**cond).clone());
            out.push((**then_branch).clone());
            out.push((**else_branch).clone());
        }
        Expr::Flwor {
            clauses,
            where_clause,
            order_by,
            stable,
            return_clause,
            pos,
        } => {
            out.push((**return_clause).clone());
            for c in clauses {
                match c {
                    FlworClause::For { source, .. } => out.push(source.clone()),
                    FlworClause::Let { value, .. } => out.push(value.clone()),
                }
            }
            // Drop one clause at a time. A dropped binder whose variable
            // is still referenced makes the probe fail to compile — the
            // divergence predicate then rejects the candidate, which is
            // exactly the behaviour we want.
            for i in 0..clauses.len() {
                if clauses.len() == 1 {
                    break; // a FLWOR needs at least one clause
                }
                let mut fewer = clauses.clone();
                fewer.remove(i);
                out.push(Expr::Flwor {
                    clauses: fewer,
                    where_clause: where_clause.clone(),
                    order_by: order_by.clone(),
                    stable: *stable,
                    return_clause: return_clause.clone(),
                    pos: *pos,
                });
            }
            if where_clause.is_some() || !order_by.is_empty() {
                out.push(Expr::Flwor {
                    clauses: clauses.clone(),
                    where_clause: None,
                    order_by: Vec::new(),
                    stable: *stable,
                    return_clause: return_clause.clone(),
                    pos: *pos,
                });
            }
        }
        Expr::Quantified {
            bindings,
            satisfies,
            ..
        } => {
            out.push((**satisfies).clone());
            for (_, _, src) in bindings {
                out.push(src.clone());
            }
        }
        Expr::DirectElement { content, .. } => {
            for c in content {
                match c {
                    xqr_xqparser::ast::DirContent::Enclosed(e)
                    | xqr_xqparser::ast::DirContent::Child(e) => out.push(e.clone()),
                    xqr_xqparser::ast::DirContent::Text(_) => {}
                }
            }
        }
        Expr::ComputedElement {
            content: Some(body),
            ..
        }
        | Expr::ComputedAttribute {
            content: Some(body),
            ..
        } => out.push((**body).clone()),
        _ => {}
    }
    out
}

/// Rewrite the first subexpression (pre-order) for which `replace`
/// yields a candidate; used to apply reductions below the root.
fn map_first<F: FnMut(&Expr) -> Option<Expr>>(e: &Expr, replace: &mut F) -> Option<Expr> {
    if let Some(new) = replace(e) {
        return Some(new);
    }
    // Only recurse into the shapes the generator emits with nested
    // expression positions that matter for shrinking.
    match e {
        Expr::Path(a, b, pos) => {
            if let Some(na) = map_first(a, replace) {
                return Some(Expr::Path(Box::new(na), b.clone(), *pos));
            }
            map_first(b, replace).map(|nb| Expr::Path(a.clone(), Box::new(nb), *pos))
        }
        Expr::Filter(base, preds, pos) => {
            map_first(base, replace).map(|nb| Expr::Filter(Box::new(nb), preds.clone(), *pos))
        }
        Expr::Flwor {
            clauses,
            where_clause,
            order_by,
            stable,
            return_clause,
            pos,
        } => map_first(return_clause, replace).map(|nr| Expr::Flwor {
            clauses: clauses.clone(),
            where_clause: where_clause.clone(),
            order_by: order_by.clone(),
            stable: *stable,
            return_clause: Box::new(nr),
            pos: *pos,
        }),
        _ => None,
    }
}

/// The shrunken form of a divergent case.
pub struct Shrunk {
    pub module: Module,
    pub text: String,
    pub xml: String,
    /// Reduction steps that were accepted.
    pub steps: usize,
}

/// Greedily shrink a divergent case. `probes` bounds the number of
/// oracle invocations (each probe runs the full lattice).
pub fn shrink(
    module: &Module,
    xml: &str,
    doc_config: Option<&RandomTreeConfig>,
    mutate: bool,
    probes: usize,
) -> Shrunk {
    let mut best = module.clone();
    let mut best_xml = xml.to_string();
    let mut steps = 0usize;
    let mut budget = probes;

    // Document first: a smaller tree makes every query probe cheaper.
    if let Some(cfg) = doc_config {
        let mut cfg = cfg.clone();
        while cfg.nodes > 4 && budget > 0 {
            let smaller = RandomTreeConfig {
                nodes: cfg.nodes / 2,
                max_depth: cfg.max_depth.saturating_sub(1).max(2),
                ..cfg.clone()
            };
            let candidate = xqr_xmlgen::random_tree(&smaller);
            budget -= 1;
            if still_diverges(&best, &candidate, mutate) {
                best_xml = candidate;
                cfg = smaller;
                steps += 1;
            } else {
                break;
            }
        }
    }

    // Query: root reductions first, then one level down via `map_first`.
    'outer: while budget > 0 {
        let mut candidates: Vec<Module> = reductions(&best.body)
            .into_iter()
            .map(|body| Module {
                prolog: best.prolog.clone(),
                body,
            })
            .collect();
        // Second-tier candidates: apply each child's reductions in place.
        let root_reds = reductions(&best.body);
        for c in &root_reds {
            for r in reductions(c) {
                let mut replace = |e: &Expr| if *e == *c { Some(r.clone()) } else { None };
                if let Some(body) = map_first(&best.body, &mut replace) {
                    candidates.push(Module {
                        prolog: best.prolog.clone(),
                        body,
                    });
                }
            }
        }

        for cand in candidates {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if still_diverges(&cand, &best_xml, mutate) {
                best = cand;
                steps += 1;
                continue 'outer; // restart from the new, smaller body
            }
        }
        break; // no candidate preserved the divergence — fixpoint
    }

    let text = print_module(&best);
    Shrunk {
        module: best,
        text,
        xml: best_xml,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_xqparser::parse_query;

    #[test]
    fn shrinks_mutated_divergence_to_the_subtraction() {
        // Under the deliberate miscompile, a query embedding `7 - 3`
        // inside noise shrinks toward the constant subtraction.
        let module = parse_query("(//a, <r>{ (7 - 3) + count(//d) }</r>)").unwrap();
        let xml = "<root><a/><d/><d/></root>";
        assert!(still_diverges(&module, xml, true));
        let shrunk = shrink(&module, xml, None, true, 60);
        assert!(shrunk.steps > 0, "no reduction accepted");
        assert!(
            shrunk.text.len() < xqr_xqparser::print_module(&module).len(),
            "did not get smaller: {}",
            shrunk.text
        );
        // The shrunken case must itself still diverge.
        assert!(still_diverges(&shrunk.module, &shrunk.xml, true));
    }

    #[test]
    fn document_shrinking_respects_divergence() {
        let module = parse_query("5 - 2").unwrap();
        let cfg = RandomTreeConfig {
            nodes: 200,
            ..Default::default()
        };
        let xml = xqr_xmlgen::random_tree(&cfg);
        let shrunk = shrink(&module, &xml, Some(&cfg), true, 30);
        assert!(shrunk.xml.len() < xml.len(), "document did not shrink");
        assert!(still_diverges(&shrunk.module, &shrunk.xml, true));
    }
}
