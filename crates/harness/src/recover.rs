//! The kill-and-recover leg of the oracle: crash the persistence path
//! at every faultpoint site mid-persist, reopen the segment store, and
//! hold the catalog to the durability invariant.
//!
//! Where the chaos runner ([`crate::chaos`]) asks "does a *running*
//! service misbehave when its substrate fails?", this leg asks "does a
//! *restarted* service lie about what survived?" Each case opens a
//! persistent [`QueryService`] over a scratch directory, loads three
//! documents while a seeded fault (panic or error-return) is armed at
//! one segment-persistence site, then simulates a kill: the service is
//! dropped with no cleanup, and a fresh incarnation reopens whatever
//! bytes actually reached the directory.
//!
//! The invariant the recovered service must uphold:
//!
//! 1. **acknowledged ⇒ readable** — a document whose load returned `Ok`
//!    was durably persisted; after restart it must be fully queryable
//!    with a byte-identical serialization;
//! 2. **unacknowledged ⇒ cleanly absent** — a load that failed (or
//!    panicked) may leave temp files or torn manifest tails, but never a
//!    document that answers queries with partial or stale content: the
//!    restarted catalog reports `err:XQRL0001 DocumentNotFound`;
//! 3. **corruption ⇒ quarantine** — flipping any single byte of a
//!    segment file makes the first touch fail with `err:XQRL0006
//!    CorruptSegment`; the document is never served and *stays*
//!    quarantined on later touches, while sibling documents are
//!    unaffected;
//! 4. **no panic escapes** a public API in any phase, and recovery-time
//!    injection (at `segment.mmap` / `segment.verify`) may only produce
//!    the correct answer or a stable coded error — once disarmed, the
//!    next touch must succeed.
//!
//! Determinism: document content, the crash site's hit index, and the
//! flipped byte all derive from the case seed, so a failure replays
//! from `(seed, site, kind)` alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use crate::chaos::Violation;
use xqr_faults::{FaultKind, FaultRule, FaultSchedule};
use xqr_service::{QueryService, ServiceConfig};
use xqr_xdm::ErrorCode;
use xqr_xmlgen::{random_tree, RandomTreeConfig};

/// The six persistence faultpoint sites, in pipeline order. The first
/// four fire while a document is being persisted; the last two fire
/// while a restarted catalog reloads one.
pub const SEGMENT_SITES: &[&str] = &[
    "segment.write",
    "segment.fsync",
    "segment.rename",
    "manifest.append",
    "segment.mmap",
    "segment.verify",
];

/// Documents per case — enough that a mid-sequence crash leaves both
/// acknowledged and unacknowledged documents behind.
pub const DOCS_PER_CASE: usize = 3;

/// What one document looked like after recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocEnd {
    /// Byte-identical to the pre-crash serialization.
    Correct,
    /// Cleanly absent: `err:XQRL0001`.
    Absent,
    /// Quarantined: `err:XQRL0006`.
    Quarantined,
}

/// Everything one kill-and-recover case reports.
#[derive(Debug)]
pub struct RecoverCase {
    pub seed: u64,
    pub site: &'static str,
    pub kind: &'static str,
    /// Injections that actually fired.
    pub fired: u64,
    /// Loads acknowledged (returned `Ok`) before the simulated kill.
    pub acked: usize,
    /// Per-document endings after recovery.
    pub ends: Vec<DocEnd>,
    pub violations: Vec<Violation>,
}

fn scratch(seed: u64, tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("xqr-recover-{}-{tag}-{seed}", std::process::id()))
}

fn config(dir: &Path) -> ServiceConfig {
    ServiceConfig {
        persist_dir: Some(dir.to_path_buf()),
        ..Default::default()
    }
}

fn case_docs(seed: u64) -> Vec<(String, String)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..DOCS_PER_CASE)
        .map(|i| {
            let xml = random_tree(&RandomTreeConfig {
                seed: seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9),
                nodes: rng.gen_range(20usize..80),
                max_depth: rng.gen_range(3usize..6),
                alphabet: 4,
                p_text: 0.3,
                p_attribute: 0.25,
                ..Default::default()
            });
            (format!("d{i}.xml"), xml)
        })
        .collect()
}

/// The un-faulted serialization of each document, via a throwaway
/// in-memory service running the exact query the recovered side runs.
fn references(docs: &[(String, String)]) -> Vec<String> {
    let service = QueryService::new(ServiceConfig::default());
    docs.iter()
        .map(|(name, xml)| {
            service.load_document(name, xml).expect("reference load");
            service
                .run(&format!("doc(\"{name}\")"))
                .expect("reference query")
        })
        .collect()
}

/// Touch one document on the recovered service and classify the ending.
/// `None` means the touch produced neither a correct answer nor an
/// allowed coded error; the violation has already been recorded.
fn touch(
    service: &QueryService,
    name: &str,
    want: &str,
    allow_transient: bool,
    violations: &mut Vec<Violation>,
) -> Option<DocEnd> {
    let run = catch_unwind(AssertUnwindSafe(|| {
        service.run(&format!("doc(\"{name}\")"))
    }));
    match run {
        Err(_) => {
            violations.push(Violation {
                leg: "recover",
                detail: format!("panic escaped while touching {name} after restart"),
            });
            None
        }
        Ok(Ok(got)) if got == want => Some(DocEnd::Correct),
        Ok(Ok(got)) => {
            violations.push(Violation {
                leg: "recover",
                detail: format!(
                    "wrong answer after restart for {name}: want {want:?}, got {got:?}"
                ),
            });
            None
        }
        Ok(Err(e)) if e.code == ErrorCode::DocumentNotFound => Some(DocEnd::Absent),
        Ok(Err(e)) if e.code == ErrorCode::CorruptSegment => Some(DocEnd::Quarantined),
        // While recovery-side injection is armed, transient coded errors
        // (and contained panics) are legal intermediate outcomes.
        Ok(Err(_)) if allow_transient => None,
        Ok(Err(e)) => {
            violations.push(Violation {
                leg: "recover",
                detail: format!("unexpected error after restart for {name}: {e}"),
            });
            None
        }
    }
}

/// Crash the persistence pipeline at `site` and hold recovery to the
/// invariant. `panic_kind` selects `FaultKind::Panic` over
/// `FaultKind::ErrorReturn`.
pub fn run_case(seed: u64, site: &'static str, panic_kind: bool) -> RecoverCase {
    let kind_name = if panic_kind { "panic" } else { "error" };
    let dir = scratch(seed, &format!("{}-{kind_name}", site.replace('.', "-")));
    let _ = std::fs::remove_dir_all(&dir);

    let docs = case_docs(seed);
    let refs = references(&docs);
    let mut case = RecoverCase {
        seed,
        site,
        kind: kind_name,
        fired: 0,
        acked: 0,
        ends: Vec::new(),
        violations: Vec::new(),
    };
    // The crash fires on a seed-chosen hit of the site, so across seeds
    // every document position gets to be the victim.
    let kind = if panic_kind {
        FaultKind::Panic
    } else {
        FaultKind::ErrorReturn
    };
    let schedule = FaultSchedule::new(seed).rule(
        FaultRule::new(site, kind)
            .one_in(1)
            .skip_first(seed % DOCS_PER_CASE as u64)
            .max_fires(1),
    );
    let persist_side = !matches!(site, "segment.mmap" | "segment.verify");

    // Phase 1: load under injection (for persist-side sites), then kill.
    let mut acked = vec![false; docs.len()];
    {
        let service = match QueryService::open(config(&dir)) {
            Ok(s) => s,
            Err(e) => {
                case.violations.push(Violation {
                    leg: "recover",
                    detail: format!("fresh open failed: {e}"),
                });
                return case;
            }
        };
        let guard = persist_side.then(|| xqr_faults::install(schedule.clone()));
        for (i, (name, xml)) in docs.iter().enumerate() {
            // load_document contains panics; an escape is a violation.
            match catch_unwind(AssertUnwindSafe(|| service.load_document(name, xml))) {
                Ok(outcome) => acked[i] = outcome.is_ok(),
                Err(_) => case.violations.push(Violation {
                    leg: "recover",
                    detail: format!("panic escaped load_document({name})"),
                }),
            }
        }
        if persist_side {
            case.fired = xqr_faults::fires();
        }
        drop(guard);
        // The kill: drop with no shutdown courtesy. Whatever bytes the
        // directory holds are what recovery gets.
        drop(service);
    }
    case.acked = acked.iter().filter(|a| **a).count();

    // Phase 2: reopen. Open is O(manifest) and must succeed — the crash
    // left at worst a torn manifest tail and orphan temp files.
    let service = match QueryService::open(config(&dir)) {
        Ok(s) => s,
        Err(e) => {
            case.violations.push(Violation {
                leg: "recover",
                detail: format!("reopen after crash at {site} failed: {e}"),
            });
            return case;
        }
    };

    // Phase 3: for recovery-side sites, touch once with the fault armed
    // (correct or coded, never wrong), then disarm for the verdict pass.
    if !persist_side {
        let _guard = xqr_faults::install(schedule);
        for (i, (name, _)) in docs.iter().enumerate() {
            touch(&service, name, &refs[i], true, &mut case.violations);
        }
        case.fired = xqr_faults::fires();
    }

    // Phase 4: the verdict pass, un-faulted. Every document must land in
    // a stable end state, and acknowledged loads must have survived.
    for (i, (name, _)) in docs.iter().enumerate() {
        let Some(end) = touch(&service, name, &refs[i], false, &mut case.violations) else {
            continue;
        };
        case.ends.push(end);
        if acked[i] && end != DocEnd::Correct {
            case.violations.push(Violation {
                leg: "recover",
                detail: format!(
                    "durability lie: load of {name} was acknowledged but after \
                     restart it is {end:?}"
                ),
            });
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    case
}

/// Flip one seed-chosen byte of one persisted segment file, reopen, and
/// require quarantine: the victim fails with `err:XQRL0006` on every
/// touch and is never served; the other documents are unaffected.
pub fn run_corruption_case(seed: u64) -> RecoverCase {
    let dir = scratch(seed, "bitflip");
    let _ = std::fs::remove_dir_all(&dir);
    let docs = case_docs(seed);
    let refs = references(&docs);
    let mut case = RecoverCase {
        seed,
        site: "bitflip",
        kind: "corruption",
        fired: 0,
        acked: 0,
        ends: Vec::new(),
        violations: Vec::new(),
    };

    {
        let service = QueryService::open(config(&dir)).expect("fresh open");
        for (name, xml) in &docs {
            service.load_document(name, xml).expect("clean load");
        }
        case.acked = docs.len();
    }

    // Pick a victim segment and a byte offset from the seed, flip it.
    let mut segs: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read segment dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .collect();
    segs.sort();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB17F11B);
    let victim = &segs[rng.gen_range(0..segs.len())];
    let mut bytes = std::fs::read(victim).expect("read victim");
    let at = rng.gen_range(0..bytes.len());
    bytes[at] ^= 1 << rng.gen_range(0..8u32);
    std::fs::write(victim, &bytes).expect("write flipped victim");
    let victim_gen: usize = segs.iter().position(|p| p == victim).expect("victim idx");

    let service = QueryService::open(config(&dir)).expect("reopen after flip");
    // Segments are written in load order, so position == document index.
    for (i, (name, _)) in docs.iter().enumerate() {
        // Two touches: quarantine must be sticky, not a one-shot error.
        for pass in 0..2 {
            let end = touch(&service, name, &refs[i], false, &mut case.violations);
            match end {
                Some(e) => case.ends.push(e),
                None => continue,
            }
            let expect = if i == victim_gen {
                DocEnd::Quarantined
            } else {
                DocEnd::Correct
            };
            if end != Some(expect) {
                case.violations.push(Violation {
                    leg: "recover",
                    detail: format!(
                        "byte {at} flipped in segment {victim_gen}: document {name} \
                         pass {pass} ended {end:?}, expected {expect:?}"
                    ),
                });
            }
        }
    }
    let stats = service.stats();
    if stats.segments_quarantined == 0 {
        case.violations.push(Violation {
            leg: "recover",
            detail: "byte flip produced no quarantine counter".into(),
        });
    }

    let _ = std::fs::remove_dir_all(&dir);
    case
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_single_kill_case_upholds_the_invariant() {
        // The recover bin sweeps all sites × kinds × seeds; this checks
        // one persist-side and one recovery-side case end to end.
        for site in ["segment.rename", "segment.verify"] {
            let case = run_case(3, site, false);
            assert!(case.violations.is_empty(), "{:?}", case.violations);
            assert_eq!(case.ends.len(), DOCS_PER_CASE, "{case:?}");
        }
    }

    #[test]
    fn a_single_byte_flip_is_quarantined() {
        let case = run_corruption_case(5);
        assert!(case.violations.is_empty(), "{:?}", case.violations);
        assert!(case.ends.contains(&DocEnd::Quarantined), "{case:?}");
    }
}
