//! Differential fuzzing harness for the query engine.
//!
//! The idea: the same query over the same document must mean the same
//! thing no matter *how* it is executed. This crate generates random
//! well-typed queries at the AST level (so every case is syntactically
//! valid by construction), prints them through the parser's
//! printer (a tested print→parse→print fixpoint), pairs each with a
//! random document from `xqr-xmlgen`, and runs the pair through a
//! lattice of engine configurations:
//!
//! * the **reference**: a plain [`xqr_core::Engine`] with
//!   [`xqr_compiler::RewriteConfig::none()`] — fully materialized,
//!   unoptimized evaluation;
//! * an optimized engine with `RewriteConfig::all()`;
//! * the [`xqr_service::QueryService`] (sharded plan cache, document
//!   catalog, worker pool), run **twice** per case so the second run is
//!   served from the plan cache;
//! * the token-streaming matcher, whenever the optimized plan reports
//!   `is_streamable() && streaming_is_exact()`.
//!
//! The oracle's contract mirrors the optimizer's documented one (see
//! `tests/proptest_semantics.rs`): the optimizer may **avoid** errors —
//! lazy two-valued logic, dead-code elimination — but may never
//! **introduce** them, and may never change a successful result.
//! Concretely, with the reference outcome on the left:
//!
//! * `Ok(a)` vs `Ok(b)` — divergence unless `a == b` byte-for-byte;
//! * `Ok(_)` vs `Err(_)` — divergence (an optimization introduced an
//!   error), except resource verdicts (`XQRL0001`/`0002`/`0003`/
//!   `0004`), which are timing-dependent and mark the case *skipped*;
//! * `Err(_)` vs `Ok(_)` — agreement (the optimizer avoided the error);
//! * `Err(a)` vs `Err(b)` — agreement even when the codes differ:
//!   rewrites legally reorder evaluation, so *which* of several
//!   pending errors fires first may change. The codes are still
//!   recorded in the run report.
//! * `err:XQRL0000 Internal` anywhere — always a divergence: that code
//!   is the engine's "this is a bug" verdict (contained panics,
//!   broken invariants), never a legitimate query outcome.
//!
//! Divergent cases are auto-shrunk ([`shrink`]) by structural greedy
//! reduction of both the query AST and the document, and every case is
//! replayable from the printed seed: case `i` of a run with master seed
//! `S` is exactly case `0` of a run with `--seed S+i`.

pub mod chaos;
pub mod gen;
pub mod ingest;
pub mod oracle;
pub mod overload;
pub mod pubsub;
pub mod recover;
pub mod report;
pub mod shrink;

/// The per-case seed derivation: case `i` under master seed `s` uses
/// `splitmix64(s + i)`, so `--seed s+i --cases 1` replays exactly case
/// `i` of the larger run.
pub fn case_seed(master: u64, index: u64) -> u64 {
    splitmix64(master.wrapping_add(index))
}

/// SplitMix64 — the standard 64-bit seed scrambler. Keeps neighbouring
/// master seeds from producing correlated case streams.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seed_replays_as_shifted_master() {
        // The replay identity the fuzz binary prints on divergence.
        for master in [0u64, 1, 42, u64::MAX - 10] {
            for i in 0..20u64 {
                assert_eq!(case_seed(master, i), case_seed(master.wrapping_add(i), 0));
            }
        }
    }

    #[test]
    fn splitmix_scrambles_neighbours() {
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10, "{a:x} vs {b:x}");
    }
}
