//! Open-loop overload runner: a ceiling-governed [`QueryService`]
//! under a seeded mixed workload offered at roughly 10× its capacity.
//!
//! Where the chaos leg ([`crate::chaos`]) injects *faults* into a
//! lightly loaded service, this runner injects *load* into a healthy
//! one and asserts the overload-governance contract end to end:
//!
//! 1. **bounded memory** — a watcher thread samples the memory ledger
//!    throughout the run; the sampled total never exceeds
//!    `ceiling + slack` (the slack absorbs in-flight charges that were
//!    admitted just below a watermark);
//! 2. **correct or coded** — every operation either succeeds or fails
//!    with a stable coded error from the documented overload set
//!    (`XQRL0004` sheds, `XQRL0002` deadline drops, `XQRL0001`/
//!    `XQRL0003`/`XQRL0005` budgets and faults, `FODC0002` for a
//!    document a sibling thread removed); `err:XQRL0000 Internal`
//!    or a panic is always a violation;
//! 3. **accounting closes** — after the run drains,
//!    `dropped_expired + executed == admitted` at the service level;
//! 4. **return to Green** — once load stops, the pressure state walks
//!    back to Green and every transient ledger category (sessions,
//!    channels, query output, publish buffers, morsels) drains to
//!    zero bytes. Brownout is a mode, not a ratchet.
//!
//! Hangs are covered operationally, like the chaos suite: a wedged run
//! blows the CI timeout. Leak detection at the *process* level (a
//! counting allocator) lives in the binary (`src/bin/overload.rs`),
//! because a `#[global_allocator]` must be installed by the final
//! artifact, not a library.
//!
//! Determinism: each producer thread derives its op stream from
//! `case_seed(seed, thread_index)`, so a failing run replays from its
//! printed seed. Interleaving is scheduler-dependent — the invariants
//! above are exactly the ones that hold under *every* interleaving.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crate::case_seed;
use xqr_pressure::{Category, PressureConfig, PressureState};
use xqr_service::{QueryService, ServiceConfig};
use xqr_xdm::{Error, ErrorCode, Limits};

/// Shape of one overload run.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Ledger ceiling handed to [`PressureConfig::with_ceiling`].
    pub ceiling: u64,
    /// Producer threads hammering the service concurrently. With
    /// `max_concurrent` worker threads below, offered query load is
    /// `producers / max_concurrent` times capacity before counting the
    /// publish/ingest/batch traffic each producer interleaves.
    pub producers: usize,
    /// Operations each producer performs before stopping.
    pub ops_per_producer: usize,
    /// Worker threads in the service pool (the "capacity").
    pub max_concurrent: usize,
    /// Allowed overshoot of the sampled ledger total past the ceiling:
    /// `charge` is deliberately non-blocking for admitted work, so
    /// charges racing a transition can land just past a watermark.
    pub slack: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            // Sized against the fixed-seed workload's natural footprint
            // so the run actually crosses Yellow and Red watermarks and
            // recovers, rather than idling in Green.
            ceiling: 128 << 10,
            producers: 20,
            ops_per_producer: 150,
            max_concurrent: 2,
            slack: 512 * 1024,
        }
    }
}

/// Outcome tallies and violations from one overload run.
#[derive(Debug, Default)]
pub struct OverloadReport {
    /// Operations attempted across all producers.
    pub ops: u64,
    /// Operations that completed successfully.
    pub ok: u64,
    /// `XQRL0004` sheds (admission control or pressure Red).
    pub shed: u64,
    /// `XQRL0002` deadline expiries (queued or mid-run).
    pub expired: u64,
    /// Other acceptable coded errors (limits, not-found races, …).
    pub other_coded: u64,
    /// Highest ledger total the watcher sampled during the run.
    pub peak_sampled: u64,
    /// Ledger's own all-time peak (catches spikes between samples).
    pub peak_ledger: u64,
    /// Pressure transitions observed (into Yellow + into Red).
    pub transitions: u64,
    /// Contract breaches; empty means the run passed.
    pub violations: Vec<String>,
}

impl OverloadReport {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Error codes an overloaded-but-correct service may return. Anything
/// else — above all `Internal` — is a violation.
fn acceptable(err: &Error) -> bool {
    matches!(
        err.code,
        ErrorCode::Limit
            | ErrorCode::Timeout
            | ErrorCode::Cancelled
            | ErrorCode::Overloaded
            | ErrorCode::Unavailable
            | ErrorCode::DocumentNotFound
    )
}

/// Ledger categories that must drain to zero once load stops. Resident
/// state (catalog documents, cached plans) legitimately persists.
const TRANSIENT: &[Category] = &[
    Category::ChunkSessions,
    Category::IngestChannels,
    Category::Subscriptions,
    Category::MorselBuffers,
    Category::QueryOutput,
];

/// Queries the producers draw from: a mix of cheap lookups, indexable
/// path scans, and output-heavy joins so the pool, the plan cache and
/// the output charges all see traffic.
const QUERIES: &[&str] = &[
    "1 + 1",
    "count(doc(\"base0.xml\")//item)",
    "doc(\"base1.xml\")//item[@k = \"3\"]",
    "string-join(for $i in 1 to 400 return \"x\", \"\")",
    "sum(for $i in 1 to 2000 return $i)",
    "doc(\"base0.xml\")//item[position() <= 2]",
];

fn doc_xml(items: usize) -> String {
    let mut xml = String::from("<r>");
    for i in 0..items {
        xml.push_str(&format!("<item k=\"{i}\">payload {i}</item>"));
    }
    xml.push_str("</r>");
    xml
}

/// Run one seeded overload session and check every invariant the
/// governance stack promises. See the module docs for the contract.
pub fn run_overload(seed: u64, cfg: &OverloadConfig) -> OverloadReport {
    let svc = Arc::new(QueryService::new(ServiceConfig {
        max_concurrent: cfg.max_concurrent,
        max_queued: 8,
        max_chunk_sessions: 8,
        plan_cache_capacity: 64,
        per_query_limits: Limits::unlimited().with_deadline(Duration::from_millis(250)),
        pressure: PressureConfig::with_ceiling(cfg.ceiling),
        ..Default::default()
    }));

    // Resident base state: documents the queries target and standing
    // subscriptions so publishes do real matching work.
    for i in 0..3 {
        svc.load_document(&format!("base{i}.xml"), &doc_xml(8))
            .unwrap();
    }
    svc.subscribe("/r/item").unwrap();
    svc.subscribe("//item[@k = \"2\"]").unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let tallies: Arc<[AtomicU64; 5]> = Arc::new(Default::default());
    const OPS: usize = 0;
    const OK: usize = 1;
    const SHED: usize = 2;
    const EXPIRED: usize = 3;
    const OTHER: usize = 4;

    let mut report = OverloadReport::default();
    let violations: Arc<std::sync::Mutex<Vec<String>>> = Arc::new(Default::default());

    // Watcher: sample the ledger total against ceiling + slack while
    // the producers run.
    let watcher = {
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        let violations = Arc::clone(&violations);
        let (ceiling, slack) = (cfg.ceiling, cfg.slack);
        thread::spawn(move || {
            let mut peak = 0u64;
            let mut breached = false;
            while !stop.load(Ordering::Relaxed) {
                let total = svc.ledger().total();
                peak = peak.max(total);
                if total > ceiling + slack && !breached {
                    breached = true;
                    violations.lock().unwrap().push(format!(
                        "ledger total {total} exceeded ceiling {ceiling} + slack {slack}"
                    ));
                }
                thread::sleep(Duration::from_micros(500));
            }
            peak
        })
    };

    let producers: Vec<_> = (0..cfg.producers)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let tallies = Arc::clone(&tallies);
            let violations = Arc::clone(&violations);
            let ops = cfg.ops_per_producer;
            let tseed = case_seed(seed, t as u64);
            thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(tseed);
                for _ in 0..ops {
                    tallies[OPS].fetch_add(1, Ordering::Relaxed);
                    let outcome: Result<(), Error> = match rng.gen_range(0..10u32) {
                        // Queries dominate the mix, as they would in a
                        // real overload: ~half the traffic.
                        0..=4 => {
                            let q = QUERIES[rng.gen_range(0..QUERIES.len())];
                            svc.submit(q, Default::default())
                                .and_then(|t| t.wait())
                                .map(drop)
                        }
                        5 => {
                            let name = format!("pub{}.xml", rng.gen_range(0..4u32));
                            svc.publish(&name, &doc_xml(rng.gen_range(1..20))).map(drop)
                        }
                        6 => {
                            svc.run_batch("base0.xml", &["count(//item)", "1 + 1"])
                                .map(|results| {
                                    for r in results {
                                        if let Err(e) = r {
                                            if !acceptable(&e) {
                                                violations
                                                    .lock()
                                                    .unwrap()
                                                    .push(format!("batch entry: unacceptable {e}"));
                                            }
                                        }
                                    }
                                })
                        }
                        7 => svc.open_chunk_session("chunked").and_then(|id| {
                            let payload = doc_xml(rng.gen_range(1..30));
                            let fed = payload
                                .as_bytes()
                                .chunks(64)
                                .try_for_each(|chunk| svc.feed_chunk(id, chunk))
                                .and_then(|()| svc.finish_chunk_session(id).map(drop));
                            if fed.is_err() {
                                // A failed session must not hold its
                                // slot (or its ledger bytes) hostage.
                                svc.abort_chunk_session(id);
                            }
                            fed
                        }),
                        8 => svc.open_stream_query("/r/item").and_then(|mut q| {
                            let payload = doc_xml(rng.gen_range(1..15));
                            for chunk in payload.as_bytes().chunks(64) {
                                q.feed(chunk)?;
                            }
                            q.finish().map(drop)
                        }),
                        // Churn resident state: load a scratch document
                        // and remove it so catalog charges move both
                        // ways under load.
                        _ => {
                            let name = format!("scratch{t}.xml");
                            let r = svc
                                .load_document(&name, &doc_xml(rng.gen_range(1..10)))
                                .map(drop);
                            svc.remove_document(&name);
                            r
                        }
                    };
                    match outcome {
                        Ok(()) => drop(tallies[OK].fetch_add(1, Ordering::Relaxed)),
                        Err(e) if e.code == ErrorCode::Overloaded => {
                            tallies[SHED].fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.code == ErrorCode::Timeout => {
                            tallies[EXPIRED].fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if acceptable(&e) => {
                            tallies[OTHER].fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => violations
                            .lock()
                            .unwrap()
                            .push(format!("unacceptable error: {e}")),
                    }
                }
            })
        })
        .collect();

    for (i, p) in producers.into_iter().enumerate() {
        if p.join().is_err() {
            violations
                .lock()
                .unwrap()
                .push(format!("producer {i} panicked"));
        }
    }
    stop.store(true, Ordering::Relaxed);
    report.peak_sampled = watcher.join().unwrap_or(0);

    // Load has stopped: the ledger must walk back to Green and every
    // transient category must drain. Charges are released by RAII on
    // paths we just joined, so this converges quickly; the deadline
    // only bounds a genuine leak.
    let drained = |svc: &QueryService| {
        let snap = svc.ledger().snapshot();
        snap.state == PressureState::Green
            && TRANSIENT.iter().all(|&c| snap.category(c).current == 0)
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while !drained(&svc) && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    let snap = svc.ledger().snapshot();
    if snap.state != PressureState::Green {
        report.violations.push(format!(
            "pressure did not return to Green after load stopped: {} ({} bytes held)",
            snap.state.as_str(),
            snap.total
        ));
    }
    for &c in TRANSIENT {
        let held = snap.category(c).current;
        if held != 0 {
            report.violations.push(format!(
                "transient category {} leaked {held} bytes after drain",
                c.as_str()
            ));
        }
    }

    // Service-level accounting must close now that every ticket has
    // been waited on: a queued query either executed (and recorded a
    // latency) or was dropped at its deadline — never both, never
    // neither.
    let stats = svc.stats();
    if stats.dropped_expired + stats.latency_count != stats.admitted {
        report.violations.push(format!(
            "admission accounting leak: dropped {} + executed {} != admitted {}",
            stats.dropped_expired, stats.latency_count, stats.admitted
        ));
    }

    report.ops = tallies[OPS].load(Ordering::Relaxed);
    report.ok = tallies[OK].load(Ordering::Relaxed);
    report.shed = tallies[SHED].load(Ordering::Relaxed);
    report.expired = tallies[EXPIRED].load(Ordering::Relaxed);
    report.other_coded = tallies[OTHER].load(Ordering::Relaxed);
    report.peak_ledger = snap.peak;
    report.transitions = stats.pressure_to_yellow + stats.pressure_to_red;
    report
        .violations
        .extend(violations.lock().unwrap().drain(..));

    // Sanity on the tally algebra itself.
    if report.ok
        + report.shed
        + report.expired
        + report.other_coded
        + report
            .violations
            .iter()
            .filter(|v| v.contains("unacceptable"))
            .count() as u64
        > report.ops
    {
        report
            .violations
            .push("tally overflow: more outcomes than operations".into());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature run — the CI smoke drives the full-size one.
    #[test]
    fn small_overload_run_holds_every_invariant() {
        let report = run_overload(
            7,
            &OverloadConfig {
                producers: 6,
                ops_per_producer: 25,
                ..Default::default()
            },
        );
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(report.ops, 6 * 25);
        assert!(report.ok > 0, "some work must get through: {report:?}");
    }
}
