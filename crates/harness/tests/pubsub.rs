//! The pub/sub suite: fixed seeds, one invariant — N standing
//! subscriptions over a document stream ≡ N independent one-shot
//! queries per document, byte-for-byte or the same coded error, with
//! and without injected delivery faults.
//!
//! All cases run inside ONE test function because `install()` holds a
//! process-wide exclusive lock (see tests/chaos.rs for the rationale).
//! A failing seed replays standalone via
//! `cargo run -p xqr-harness --bin pubsub -- --seed <s> --cases 1`.

use xqr_harness::case_seed;
use xqr_harness::pubsub::run_case;

const MASTER_SEED: u64 = 0x5B5C;
const CASES: u64 = 120;

#[test]
fn pubsub_suite_matches_one_shot_across_fixed_seeds() {
    assert!(
        xqr_faults::compiled_with_failpoints(),
        "the pubsub suite requires the failpoints feature (harness dev graph turns it on)"
    );

    // Injected panics are expected traffic while a schedule is armed.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !xqr_faults::armed() {
            default_hook(info);
        }
    }));

    let (mut agreed, mut shared, mut fallback, mut fired) = (0u64, 0u64, 0u64, 0u64);
    let mut violations = Vec::new();
    for i in 0..CASES {
        let seed = case_seed(MASTER_SEED, i);
        for faulted in [false, true] {
            let case = run_case(seed, faulted);
            agreed += case.agreed;
            shared += case.shared_pass as u64;
            fallback += case.fallback as u64;
            fired += case.fired;
            for v in case.violations {
                violations.push(format!(
                    "case {i}{} (replay: pubsub --seed {} --cases 1) {}: {}",
                    if faulted { " [faulted]" } else { "" },
                    MASTER_SEED.wrapping_add(i),
                    v.at,
                    v.detail
                ));
            }
        }
    }

    assert!(
        violations.is_empty(),
        "{} invariant violations:\n{}",
        violations.len(),
        violations.join("\n")
    );

    // The suite must exercise what it claims to: both routes ran, some
    // comparisons agreed byte-for-byte, and faults actually fired.
    assert!(agreed > 0, "no comparison ever agreed across {CASES} cases");
    assert!(shared > 0, "no case ever used the shared combined pass");
    assert!(fallback > 0, "no case ever used the one-shot fallback");
    assert!(fired > 0, "no injections fired in the faulted legs");
}
