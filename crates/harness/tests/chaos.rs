//! The chaos suite: fixed-seed fault schedules against the whole stack.
//!
//! One test, many seeds, one invariant: every injected fault yields a
//! correct result (after retry or degradation) or a stable coded error
//! — never a wrong answer, an escaped panic, or a leaked store
//! document. The seeds are fixed so the suite is exactly reproducible;
//! a failing seed replays standalone via
//! `cargo run -p xqr-harness --bin chaos -- --seed <s> --cases 1`.
//!
//! All cases run inside ONE test function on purpose: `install()` holds
//! a process-wide exclusive lock, so splitting cases across `#[test]`
//! functions would serialize them anyway while multiplying runner
//! setup. Directed regression tests that need their own schedule live
//! in the service/faults crates (separate processes).

use xqr_harness::case_seed;
use xqr_harness::chaos::ChaosRunner;

const MASTER_SEED: u64 = 0xC4405;
const CASES: u64 = 220;

#[test]
fn chaos_suite_holds_the_invariant_across_fixed_seeds() {
    assert!(
        xqr_faults::compiled_with_failpoints(),
        "the chaos suite requires the failpoints feature (harness dev graph turns it on)"
    );

    // Injected panics are expected traffic: silence the default hook's
    // backtraces while a schedule is armed. Assertion failures in this
    // test run unarmed and still print normally.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !xqr_faults::armed() {
            default_hook(info);
        }
    }));

    let mut runner = ChaosRunner::new();
    let mut fired = 0u64;
    let mut survived = 0u64;
    let mut coded = 0u64;
    let mut violations = Vec::new();

    for i in 0..CASES {
        let seed = case_seed(MASTER_SEED, i);
        let case = runner.run_case(seed);
        fired += case.fired;
        coded += case
            .legs
            .iter()
            .filter(|(_, e)| matches!(e, xqr_harness::chaos::LegEnd::Coded(_)))
            .count() as u64;
        if case.survived_injection() {
            survived += 1;
        }
        for v in case.violations {
            violations.push(format!(
                "case {i} (replay: chaos --seed {} --cases 1) leg {}: {}",
                MASTER_SEED.wrapping_add(i),
                v.leg,
                v.detail
            ));
        }
    }

    assert!(
        violations.is_empty(),
        "{} invariant violations:\n{}",
        violations.len(),
        violations.join("\n")
    );

    // The suite must not be a silent no-op: faults actually fired, some
    // legs absorbed them and still answered correctly, and some legs
    // surfaced stable coded errors.
    assert!(fired > 0, "no injections fired across {CASES} cases");
    assert!(
        survived > 0,
        "no case survived an injection with a correct answer — retry/degradation never engaged"
    );
    assert!(coded > 0, "no leg ever surfaced a coded error");

    // Resilience machinery engaged somewhere across the run.
    let stats = runner.service_stats();
    assert!(
        stats.retries + stats.degraded_cache_only + stats.degraded_no_index + stats.failed > 0,
        "service never exercised retry or degradation: {stats:?}"
    );
}
