//! Property tests for skip() correctness across all three iterator
//! implementations: skipping a subtree must land exactly where reading
//! it would have, on arbitrary documents and at arbitrary positions.

use proptest::prelude::*;
use std::sync::Arc;
use xqr_tokenstream::{BufferFactory, ParserTokenIterator, Token, TokenIterator, TokenStream};
use xqr_xdm::NamePool;
use xqr_xmlgen::{random_tree, RandomTreeConfig};

fn arb_xml() -> impl Strategy<Value = String> {
    (any::<u64>(), 10usize..200).prop_map(|(seed, nodes)| {
        random_tree(&RandomTreeConfig {
            seed,
            nodes,
            ..Default::default()
        })
    })
}

/// Read tokens, skipping at the `k`-th opener; return the token list
/// observed after the skip.
fn skip_at<I: TokenIterator>(mut it: I, k: usize) -> Vec<Token> {
    let mut openers = 0usize;
    loop {
        match it.next_token().unwrap() {
            None => return Vec::new(),
            Some(t) if t.opens() => {
                openers += 1;
                if openers == k {
                    it.skip_subtree().unwrap();
                    break;
                }
            }
            Some(_) => {}
        }
    }
    let mut rest = Vec::new();
    while let Some(t) = it.next_token().unwrap() {
        rest.push(t);
    }
    rest
}

/// Oracle: read tokens *through* the k-th opener's subtree.
fn read_through(stream: &TokenStream, k: usize) -> Vec<Token> {
    let mut openers = 0usize;
    let mut depth = 0usize;
    let mut skipping = false;
    let mut rest = Vec::new();
    for &t in stream.tokens() {
        if skipping {
            if t.opens() {
                depth += 1;
            } else if t.closes() {
                depth -= 1;
                if depth == 0 {
                    skipping = false;
                }
            }
            continue;
        }
        if t.opens() {
            openers += 1;
            if openers == k {
                skipping = true;
                depth = 1;
                continue;
            }
        }
        if openers >= k {
            rest.push(t);
        }
    }
    rest
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn skip_agrees_across_implementations(xml in arb_xml(), k in 1usize..20) {
        let names = Arc::new(NamePool::new());
        let stream = TokenStream::from_xml(&xml, names.clone()).unwrap();
        let total_openers = stream.tokens().iter().filter(|t| t.opens()).count();
        prop_assume!(k <= total_openers);

        let want = read_through(&stream, k);

        // Materialized stream iterator (O(1) skip links).
        let got_stream = skip_at(stream.iter(), k);
        prop_assert_eq!(&got_stream, &want, "stream iterator");

        // Live parser iterator (depth-counting skip). Token ids differ
        // between pools; compare shapes + resolved names.
        let got_parser = skip_at(ParserTokenIterator::new(&xml, names.clone()), k);
        prop_assert_eq!(got_parser.len(), want.len(), "parser iterator length");

        // Buffered consumer.
        let factory = BufferFactory::new(ParserTokenIterator::new(&xml, names.clone()));
        let got_buffered = skip_at(factory.consumer(), k);
        prop_assert_eq!(got_buffered.len(), want.len(), "buffered iterator length");
    }

    #[test]
    fn skip_preserves_balance(xml in arb_xml(), k in 1usize..12) {
        // After any skip, the remaining stream still balances.
        let names = Arc::new(NamePool::new());
        let stream = TokenStream::from_xml(&xml, names).unwrap();
        let total_openers = stream.tokens().iter().filter(|t| t.opens()).count();
        prop_assume!(k <= total_openers);
        let rest = skip_at(stream.iter(), k);
        let mut depth: i64 = 0;
        for t in &rest {
            if t.opens() {
                depth += 1;
            } else if t.closes() {
                depth -= 1;
            }
        }
        // Remaining stream closes everything that was open at the skip
        // point: net depth equals -(open depth at that point).
        prop_assert!(depth <= 0);
    }
}
