//! Corruption hardening for the binary token-stream codec: `decode` must
//! never panic on hostile input — truncated, bit-flipped, or arbitrary
//! bytes all come back as `Ok` (when the damage happens to stay
//! well-formed) or a coded `Err`, never an abort. The durable segment
//! layer relies on this: its CRCs catch corruption first, but the decoder
//! is the last line of defence and must hold on its own.

use bytes::Bytes;
use proptest::prelude::*;
use std::sync::Arc;
use xqr_tokenstream::{decode, encode, TokenStream};
use xqr_xdm::NamePool;
use xqr_xmlgen::{random_tree, RandomTreeConfig};

fn arb_encoding() -> impl Strategy<Value = Vec<u8>> {
    (any::<u64>(), 5usize..120, any::<bool>()).prop_map(|(seed, nodes, pooled)| {
        let xml = random_tree(&RandomTreeConfig {
            seed,
            nodes,
            ..Default::default()
        });
        let stream = TokenStream::from_xml(&xml, Arc::new(NamePool::new())).unwrap();
        encode(&stream, pooled).to_vec()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn truncation_never_panics(bytes in arb_encoding(), cut in 0usize..4096) {
        let mut bytes = bytes;
        bytes.truncate(cut % (bytes.len() + 1));
        // Ok (a shorter prefix can still balance) or a coded Err —
        // reaching either without a panic is the property.
        let _ = decode(Bytes::from(bytes), Arc::new(NamePool::new()));
    }

    #[test]
    fn bit_flips_never_panic(bytes in arb_encoding(), pos in 0usize..4096, bit in 0u8..8) {
        let mut bytes = bytes;
        let i = pos % bytes.len();
        bytes[i] ^= 1 << bit;
        let _ = decode(Bytes::from(bytes), Arc::new(NamePool::new()));
    }

    #[test]
    fn multi_byte_corruption_never_panics(
        bytes in arb_encoding(),
        edits in proptest::collection::vec((0usize..4096, any::<u8>()), 1..16),
    ) {
        let mut bytes = bytes;
        for (pos, val) in edits {
            let i = pos % bytes.len();
            bytes[i] = val;
        }
        let _ = decode(Bytes::from(bytes), Arc::new(NamePool::new()));
    }

    #[test]
    fn arbitrary_garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(Bytes::from(bytes), Arc::new(NamePool::new()));
    }
}
