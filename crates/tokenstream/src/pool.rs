//! String pooling — the TokenStream's dictionary compression.
//!
//! "Pooling: store strings only once (dictionary-based compression);
//! works for all QNames (names and types) and text." Interning is
//! hash-based; [`StrId`]s are dense, so the wire encoder can emit each
//! string definition once and reference it by id afterwards.

use crate::token::StrId;
use std::collections::HashMap;
use std::sync::Arc;

/// An append-only interning pool of strings. Not thread-safe by design:
/// one pool belongs to one `TokenStream` under construction.
///
/// Streaming consumers that resolve every id before pulling the next
/// token can additionally call [`StringPool::recycle`] between tokens,
/// capping the pool at a working window instead of every unique string
/// in the document.
#[derive(Debug, Default, Clone)]
pub struct StringPool {
    strings: Vec<Arc<str>>,
    index: HashMap<Arc<str>, StrId>,
    /// Id of `strings[0]`; ids below it were recycled away.
    base: u32,
    /// Cached sum of pooled string lengths, so byte-budget checks are
    /// O(1) on the streaming hot path.
    payload: usize,
}

impl StringPool {
    pub fn new() -> Self {
        Self::default()
    }

    fn idx(&self, id: StrId) -> usize {
        id.0.checked_sub(self.base)
            .expect("stale StrId: the pooled string was recycled") as usize
    }

    /// Intern a string, returning its dense id.
    pub fn intern(&mut self, s: &str) -> StrId {
        if let Some(id) = self.index.get(s) {
            return *id;
        }
        let arc: Arc<str> = Arc::from(s);
        let id = StrId(
            self.base
                .checked_add(self.strings.len() as u32)
                .expect("string pool id space exhausted"),
        );
        self.payload += arc.len();
        self.strings.push(arc.clone());
        self.index.insert(arc, id);
        id
    }

    pub fn get(&self, id: StrId) -> &str {
        &self.strings[self.idx(id)]
    }

    pub fn get_arc(&self, id: StrId) -> Arc<str> {
        self.strings[self.idx(id)].clone()
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Total bytes of pooled payload (for the pooling experiment E4).
    pub fn payload_bytes(&self) -> usize {
        self.payload
    }

    /// Drop every pooled string and advance the id watermark: ids
    /// issued before the call become invalid, and resolving one panics
    /// instead of silently aliasing a newer string. Streaming
    /// tokenizers call this between tokens — their consumers resolve
    /// ids before pulling the next token — so that pooled memory stays
    /// O(working window) on unbounded documents rather than O(every
    /// unique string seen).
    pub fn recycle(&mut self) {
        self.base = self
            .base
            .checked_add(self.strings.len() as u32)
            .expect("string pool id space exhausted");
        self.strings.clear();
        self.index.clear();
        self.payload = 0;
    }

    /// Rebuild a pool from its dumped string list (segment load path).
    /// Ids are assigned in order, so a pool dumped via [`StringPool::iter`]
    /// and rebuilt here preserves every `StrId`. Duplicate entries keep
    /// the first id, matching intern semantics.
    pub fn from_strings<I, S>(strings: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut pool = StringPool::new();
        for s in strings {
            let s = s.as_ref();
            let arc: Arc<str> = Arc::from(s);
            let id = StrId(pool.strings.len() as u32);
            pool.payload += arc.len();
            pool.strings.push(arc.clone());
            pool.index.entry(arc).or_insert(id);
        }
        pool
    }

    pub fn iter(&self) -> impl Iterator<Item = (StrId, &str)> {
        let base = self.base;
        self.strings
            .iter()
            .enumerate()
            .map(move |(i, s)| (StrId(base + i as u32), &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups() {
        let mut p = StringPool::new();
        let a = p.intern("hello");
        let b = p.intern("world");
        let c = p.intern("hello");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(a), "hello");
        assert_eq!(p.get(b), "world");
    }

    #[test]
    fn payload_counts_unique_only() {
        let mut p = StringPool::new();
        p.intern("aaaa");
        p.intern("aaaa");
        p.intern("bb");
        assert_eq!(p.payload_bytes(), 6);
    }

    #[test]
    fn recycle_frees_strings_and_invalidates_old_ids() {
        let mut p = StringPool::new();
        let a = p.intern("hello");
        p.intern("world");
        assert_eq!(p.payload_bytes(), 10);

        p.recycle();
        assert!(p.is_empty());
        assert_eq!(p.payload_bytes(), 0);

        // New ids live above the watermark; the old id is dead, not
        // aliased.
        let b = p.intern("fresh");
        assert_eq!(p.get(b), "fresh");
        assert_ne!(a, b);
        assert!(std::panic::catch_unwind(|| p.get(a)).is_err());
    }

    #[test]
    fn empty_string_is_a_value() {
        let mut p = StringPool::new();
        let e = p.intern("");
        assert_eq!(p.get(e), "");
        assert_eq!(p.len(), 1);
    }
}
