//! String pooling — the TokenStream's dictionary compression.
//!
//! "Pooling: store strings only once (dictionary-based compression);
//! works for all QNames (names and types) and text." Interning is
//! hash-based; [`StrId`]s are dense, so the wire encoder can emit each
//! string definition once and reference it by id afterwards.

use crate::token::StrId;
use std::collections::HashMap;
use std::sync::Arc;

/// An append-only interning pool of strings. Not thread-safe by design:
/// one pool belongs to one `TokenStream` under construction.
#[derive(Debug, Default, Clone)]
pub struct StringPool {
    strings: Vec<Arc<str>>,
    index: HashMap<Arc<str>, StrId>,
}

impl StringPool {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string, returning its dense id.
    pub fn intern(&mut self, s: &str) -> StrId {
        if let Some(id) = self.index.get(s) {
            return *id;
        }
        let arc: Arc<str> = Arc::from(s);
        let id = StrId(self.strings.len() as u32);
        self.strings.push(arc.clone());
        self.index.insert(arc, id);
        id
    }

    pub fn get(&self, id: StrId) -> &str {
        &self.strings[id.0 as usize]
    }

    pub fn get_arc(&self, id: StrId) -> Arc<str> {
        self.strings[id.0 as usize].clone()
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Total bytes of pooled payload (for the pooling experiment E4).
    pub fn payload_bytes(&self) -> usize {
        self.strings.iter().map(|s| s.len()).sum()
    }

    /// Rebuild a pool from its dumped string list (segment load path).
    /// Ids are assigned in order, so a pool dumped via [`StringPool::iter`]
    /// and rebuilt here preserves every `StrId`. Duplicate entries keep
    /// the first id, matching intern semantics.
    pub fn from_strings<I, S>(strings: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut pool = StringPool::new();
        for s in strings {
            let s = s.as_ref();
            let arc: Arc<str> = Arc::from(s);
            let id = StrId(pool.strings.len() as u32);
            pool.strings.push(arc.clone());
            pool.index.entry(arc).or_insert(id);
        }
        pool
    }

    pub fn iter(&self) -> impl Iterator<Item = (StrId, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (StrId(i as u32), &**s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups() {
        let mut p = StringPool::new();
        let a = p.intern("hello");
        let b = p.intern("world");
        let c = p.intern("hello");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(a), "hello");
        assert_eq!(p.get(b), "world");
    }

    #[test]
    fn payload_counts_unique_only() {
        let mut p = StringPool::new();
        p.intern("aaaa");
        p.intern("aaaa");
        p.intern("bb");
        assert_eq!(p.payload_bytes(), 6);
    }

    #[test]
    fn empty_string_is_a_value() {
        let mut p = StringPool::new();
        let e = p.intern("");
        assert_eq!(p.get(e), "");
        assert_eq!(p.len(), 1);
    }
}
