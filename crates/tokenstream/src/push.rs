//! Push-mode tokenization: the resumable lexer as a token source.
//!
//! [`PushTokenizer`] is the chunked counterpart of
//! [`ParserTokenIterator`](crate::ParserTokenIterator): callers *push*
//! arbitrary byte chunks in with [`PushTokenizer::feed`] and drain
//! whatever tokens completed with [`PushTokenizer::poll_token`]. Both
//! adapters run the same event→token mapping, so a document fed in
//! chunks produces the exact token sequence (ids aside) the pull
//! adapter produces from the whole string — the invariant the chunked
//! differential oracle enforces.

use crate::adapter::event_to_tokens;
use crate::iterator::TokenResolve;
use crate::pool::StringPool;
use crate::token::{StrId, Token};
use std::collections::VecDeque;
use std::sync::Arc;
use xqr_xdm::{Error, NameId, NamePool, QName, QueryGuard, Result};
use xqr_xmlparse::XmlReader;

/// Pooled payload bytes a streaming tokenizer carries before recycling
/// its pool at the next safe point (drained queue). Big enough that
/// recurring names/values of a typical document stay interned between
/// recycles, small enough that unbounded unique text stays O(window).
const POOL_RECYCLE_BYTES: usize = 64 * 1024;

/// Chunk-fed XML tokenizer. Errors are sticky: once `feed`, `finish` or
/// `poll_token` fails, every later call returns the same error — a
/// half-tokenized document must not look like a short valid one.
pub struct PushTokenizer {
    reader: XmlReader<'static>,
    pool: StringPool,
    names: Arc<NamePool>,
    queue: VecDeque<Token>,
    /// EndDocument has been enqueued; the token stream is complete.
    done: bool,
    /// All tokens (including EndDocument) have been handed out.
    drained: bool,
    failed: Option<Error>,
    guard: Option<QueryGuard>,
}

impl PushTokenizer {
    pub fn new(names: Arc<NamePool>) -> Self {
        PushTokenizer {
            reader: XmlReader::incremental(),
            pool: StringPool::new(),
            names,
            queue: VecDeque::new(),
            done: false,
            drained: false,
            failed: None,
            guard: None,
        }
    }

    /// Guarded construction: the reader enforces depth/size limits and
    /// every token delivered charges the token budget (which also polls
    /// cancellation and the deadline), mirroring the pull adapter.
    pub fn with_guard(names: Arc<NamePool>, guard: QueryGuard) -> Self {
        let mut t = PushTokenizer::new(names);
        t.reader = XmlReader::incremental().with_guard(guard.clone());
        t.guard = Some(guard);
        t
    }

    fn check_failed(&self) -> Result<()> {
        match &self.failed {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    fn fail<T>(&mut self, e: Error) -> Result<T> {
        self.failed = Some(e.clone());
        Err(e)
    }

    /// Append a chunk of document bytes (any boundary, including inside
    /// a multi-byte UTF-8 sequence). Cheap: no parsing happens here.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<()> {
        self.check_failed()?;
        match self.reader.feed(chunk) {
            Ok(()) => Ok(()),
            Err(e) => self.fail(e),
        }
    }

    /// Declare end-of-input; constructs waiting for more bytes resolve.
    pub fn finish(&mut self) -> Result<()> {
        self.check_failed()?;
        match self.reader.finish() {
            Ok(()) => Ok(()),
            Err(e) => self.fail(e),
        }
    }

    /// Next completed token. `Ok(None)` means either "need more input"
    /// (see [`PushTokenizer::is_done`]) or, after the `EndDocument`
    /// token has been delivered, end of stream.
    pub fn poll_token(&mut self) -> Result<Option<Token>> {
        self.check_failed()?;
        // With the queue drained, no outstanding token can reference
        // the pool (callers resolve ids before polling again), so a
        // grown pool is recycled here instead of being carried for the
        // rest of the document — pooled memory stays O(window) even
        // when every text node is unique.
        if self.queue.is_empty() && self.pool.payload_bytes() > POOL_RECYCLE_BYTES {
            self.pool.recycle();
        }
        while self.queue.is_empty() {
            if self.done {
                self.drained = true;
                return Ok(None);
            }
            match self.reader.poll_event() {
                Ok(Some(ev)) => {
                    if event_to_tokens(&ev, &self.names, &mut self.pool, &mut self.queue) {
                        self.done = true;
                    }
                }
                Ok(None) => return Ok(None),
                Err(e) => return self.fail(e),
            }
        }
        let t = self.queue.pop_front();
        if t.is_some() {
            if let Some(guard) = &self.guard {
                if let Err(e) = guard.note_tokens(1) {
                    return self.fail(e);
                }
            }
        }
        Ok(t)
    }

    /// The document's final token has been produced (and, once
    /// `poll_token` has returned it, the stream is fully drained).
    pub fn is_done(&self) -> bool {
        self.done && self.queue.is_empty()
    }

    /// The stream ended cleanly and every token was handed out.
    pub fn is_drained(&self) -> bool {
        self.drained
    }

    /// Absolute bytes of input consumed by completed events.
    pub fn bytes_consumed(&self) -> usize {
        self.reader.position()
    }

    /// Bytes buffered awaiting a complete syntactic unit.
    pub fn buffered_bytes(&self) -> usize {
        self.reader.buffered_bytes()
    }

    pub fn names(&self) -> &Arc<NamePool> {
        &self.names
    }
}

impl TokenResolve for PushTokenizer {
    fn pooled_str(&self, id: StrId) -> Arc<str> {
        self.pool.get_arc(id)
    }

    fn name(&self, id: NameId) -> QName {
        self.names.resolve(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::ParserTokenIterator;
    use crate::iterator::TokenIterator;

    const DOC: &str =
        r#"<order id="4711"><date>2003-08-19</date><lineitem xmlns="www.boo.com"/></order>"#;

    fn pull_tokens(doc: &str) -> Vec<String> {
        let names = Arc::new(NamePool::new());
        let mut it = ParserTokenIterator::new(doc, names);
        let mut out = Vec::new();
        while let Some(t) = it.next_token().unwrap() {
            out.push(render(&t, &it));
        }
        out
    }

    fn render(t: &Token, r: &impl TokenResolve) -> String {
        match t {
            Token::StartDocument => "SD".into(),
            Token::EndDocument => "ED".into(),
            Token::StartElement(n) => format!("SE({})", r.name(*n)),
            Token::EndElement => "EE".into(),
            Token::Attribute(n, v) => format!("A({}={})", r.name(*n), r.pooled_str(*v)),
            Token::NamespaceDecl(p, u) => {
                format!("NS({}={})", r.pooled_str(*p), r.pooled_str(*u))
            }
            Token::Text(s) => format!("T({})", r.pooled_str(*s)),
            Token::Comment(c) => format!("C({})", r.pooled_str(*c)),
            Token::ProcessingInstruction(n, d) => {
                format!("PI({} {})", r.name(*n), r.pooled_str(*d))
            }
        }
    }

    fn push_tokens(doc: &str, chunk: usize) -> Vec<String> {
        let mut t = PushTokenizer::new(Arc::new(NamePool::new()));
        let mut out = Vec::new();
        for c in doc.as_bytes().chunks(chunk.max(1)) {
            t.feed(c).unwrap();
            while let Some(tok) = t.poll_token().unwrap() {
                out.push(render(&tok, &t));
            }
        }
        t.finish().unwrap();
        while let Some(tok) = t.poll_token().unwrap() {
            out.push(render(&tok, &t));
        }
        assert!(t.is_done());
        out
    }

    #[test]
    fn push_equals_pull_at_any_chunk_size() {
        let want = pull_tokens(DOC);
        for chunk in [1, 2, 3, 7, 16, DOC.len()] {
            assert_eq!(push_tokens(DOC, chunk), want, "chunk size {chunk}");
        }
    }

    #[test]
    fn errors_are_sticky() {
        let mut t = PushTokenizer::new(Arc::new(NamePool::new()));
        t.feed(b"<a></b>").unwrap();
        let e1 = loop {
            match t.poll_token() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("should fail on mismatched tag"),
                Err(e) => break e,
            }
        };
        let e2 = t.poll_token().unwrap_err();
        assert_eq!(e1, e2);
        assert!(t.feed(b"<more/>").is_err());
    }

    #[test]
    fn token_budget_is_charged() {
        use xqr_xdm::{ErrorCode, Limits};
        let guard = QueryGuard::new(Limits::unlimited().with_max_tokens(3));
        let mut t = PushTokenizer::with_guard(Arc::new(NamePool::new()), guard);
        t.feed(b"<a><b/><c/></a>").unwrap();
        t.finish().unwrap();
        let err = loop {
            match t.poll_token() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("budget should trip before exhaustion"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.code, ErrorCode::Limit);
    }
}
