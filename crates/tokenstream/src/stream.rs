//! The materialized TokenStream and its O(1)-skip iterator.
//!
//! "Main memory: object representation ... special tokens represent whole
//! sub-trees" — we go one better than a special token: a side array of
//! skip links gives every `StartElement` the index just past its matching
//! `EndElement`, so `skip()` is a single assignment (exercised by
//! experiment E10).

use crate::iterator::TokenIterator;
use crate::pool::StringPool;
use crate::token::{StrId, Token};
use std::sync::Arc;
use xqr_xdm::{Error, NameId, NamePool, QName, Result};

/// A fully materialized token sequence with its string pool and the
/// shared name pool it was built against.
pub struct TokenStream {
    pub names: Arc<NamePool>,
    pool: StringPool,
    tokens: Vec<Token>,
    /// `skips[i]` = index just past the subtree opened at `i`
    /// (meaningful only where `tokens[i].opens()`).
    skips: Vec<u32>,
}

impl TokenStream {
    pub fn builder(names: Arc<NamePool>) -> TokenStreamBuilder {
        TokenStreamBuilder {
            stream: TokenStream {
                names,
                pool: StringPool::new(),
                tokens: Vec::new(),
                skips: Vec::new(),
            },
            open: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    pub fn pool(&self) -> &StringPool {
        &self.pool
    }

    pub fn get(&self, idx: usize) -> Option<Token> {
        self.tokens.get(idx).copied()
    }

    pub fn str(&self, id: StrId) -> &str {
        self.pool.get(id)
    }

    pub fn name(&self, id: NameId) -> QName {
        self.names.resolve(id)
    }

    /// Index just past the subtree opened at `idx`.
    pub fn skip_target(&self, idx: usize) -> usize {
        self.skips[idx] as usize
    }

    /// Iterate from the beginning.
    pub fn iter(&self) -> StreamIterator<'_> {
        StreamIterator {
            stream: self,
            pos: 0,
            last: None,
        }
    }

    /// Iterate a sub-range (used by buffered re-reads).
    pub fn iter_from(&self, pos: usize) -> StreamIterator<'_> {
        StreamIterator {
            stream: self,
            pos,
            last: None,
        }
    }

    /// Approximate in-memory footprint in bytes (tokens + pooled strings
    /// + skip links); used by the representation experiment E3.
    pub fn memory_bytes(&self) -> usize {
        self.tokens.len() * std::mem::size_of::<Token>()
            + self.skips.len() * 4
            + self.pool.payload_bytes()
    }
}

impl std::fmt::Debug for TokenStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TokenStream({} tokens, {} pooled strings)",
            self.tokens.len(),
            self.pool.len()
        )
    }
}

/// Incremental builder that maintains the skip links.
pub struct TokenStreamBuilder {
    stream: TokenStream,
    open: Vec<usize>,
}

impl TokenStreamBuilder {
    pub fn intern_str(&mut self, s: &str) -> StrId {
        self.stream.pool.intern(s)
    }

    pub fn intern_name(&mut self, q: &QName) -> NameId {
        self.stream.names.intern(q)
    }

    pub fn push(&mut self, token: Token) {
        let idx = self.stream.tokens.len();
        self.stream.tokens.push(token);
        self.stream.skips.push(idx as u32 + 1);
        if token.opens() {
            self.open.push(idx);
        } else if token.closes() {
            if let Some(start) = self.open.pop() {
                self.stream.skips[start] = idx as u32 + 1;
            }
        }
    }

    /// Convenience for pushing a text token.
    pub fn text(&mut self, s: &str) {
        let id = self.intern_str(s);
        self.push(Token::Text(id));
    }

    pub fn start_element(&mut self, name: &QName) {
        let id = self.intern_name(name);
        self.push(Token::StartElement(id));
    }

    pub fn end_element(&mut self) {
        self.push(Token::EndElement);
    }

    pub fn attribute(&mut self, name: &QName, value: &str) {
        let n = self.intern_name(name);
        let v = self.intern_str(value);
        self.push(Token::Attribute(n, v));
    }

    pub fn finish(self) -> Result<TokenStream> {
        if !self.open.is_empty() {
            return Err(Error::internal(
                "unbalanced token stream: unclosed subtrees",
            ));
        }
        Ok(self.stream)
    }
}

/// Iterator over a materialized stream; `skip()` is O(1) via skip links.
pub struct StreamIterator<'s> {
    stream: &'s TokenStream,
    pos: usize,
    /// Index of the token most recently returned (skip applies to it).
    last: Option<usize>,
}

impl<'s> StreamIterator<'s> {
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl<'s> TokenIterator for StreamIterator<'s> {
    fn next_token(&mut self) -> Result<Option<Token>> {
        match self.stream.get(self.pos) {
            Some(t) => {
                self.last = Some(self.pos);
                self.pos += 1;
                Ok(Some(t))
            }
            None => Ok(None),
        }
    }

    fn skip_subtree(&mut self) -> Result<usize> {
        // Skip from the last-returned opener to just past its close.
        if let Some(last) = self.last {
            if self.stream.tokens[last].opens() {
                let target = self.stream.skip_target(last);
                let skipped = target.saturating_sub(self.pos);
                self.pos = target;
                return Ok(skipped);
            }
        }
        Ok(0)
    }

    fn pooled_str(&self, id: StrId) -> Arc<str> {
        self.stream.pool.get_arc(id)
    }

    fn name(&self, id: NameId) -> QName {
        self.stream.names.resolve(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TokenStream {
        // <a><b>x</b><c/></a>
        let mut b = TokenStream::builder(Arc::new(NamePool::new()));
        b.push(Token::StartDocument);
        b.start_element(&QName::local("a"));
        b.start_element(&QName::local("b"));
        b.text("x");
        b.end_element();
        b.start_element(&QName::local("c"));
        b.end_element();
        b.end_element();
        b.push(Token::EndDocument);
        b.finish().unwrap()
    }

    #[test]
    fn builder_produces_balanced_stream() {
        let s = sample();
        assert_eq!(s.len(), 9);
        let opens = s.tokens().iter().filter(|t| t.opens()).count();
        let closes = s.tokens().iter().filter(|t| t.closes()).count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn unbalanced_stream_fails_finish() {
        let mut b = TokenStream::builder(Arc::new(NamePool::new()));
        b.start_element(&QName::local("a"));
        assert!(b.finish().is_err());
    }

    #[test]
    fn skip_links_point_past_subtree() {
        let s = sample();
        // token 1 is <a>: skip to index 8 (EndDocument)
        assert_eq!(s.skip_target(1), 8);
        // token 2 is <b>: subtree is tokens 2..=4, target 5
        assert_eq!(s.skip_target(2), 5);
        // token 0 is StartDocument: whole stream
        assert_eq!(s.skip_target(0), 9);
    }

    #[test]
    fn iterator_walks_all_tokens() {
        let s = sample();
        let mut it = s.iter();
        let mut count = 0;
        while it.next_token().unwrap().is_some() {
            count += 1;
        }
        assert_eq!(count, 9);
    }

    #[test]
    fn skip_jumps_over_subtree() {
        let s = sample();
        let mut it = s.iter();
        it.next_token().unwrap(); // StartDocument
        it.next_token().unwrap(); // <a>
        let t = it.next_token().unwrap().unwrap(); // <b>
        assert!(matches!(t, Token::StartElement(_)));
        let skipped = it.skip_subtree().unwrap();
        assert_eq!(skipped, 2); // text + EndElement
                                // Next is <c>
        let t = it.next_token().unwrap().unwrap();
        match t {
            Token::StartElement(n) => assert_eq!(s.name(n).local_name(), "c"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn skip_after_non_opener_is_noop() {
        let s = sample();
        let mut it = s.iter();
        it.next_token().unwrap(); // StartDocument
        it.next_token().unwrap(); // <a>
        it.next_token().unwrap(); // <b>
        it.next_token().unwrap(); // text
        assert_eq!(it.skip_subtree().unwrap(), 0);
    }

    #[test]
    fn memory_accounting_reflects_pooling() {
        let mut b = TokenStream::builder(Arc::new(NamePool::new()));
        b.push(Token::StartDocument);
        b.start_element(&QName::local("a"));
        for _ in 0..100 {
            b.text("same-text-repeated");
        }
        b.end_element();
        b.push(Token::EndDocument);
        let s = b.finish().unwrap();
        // 100 text tokens but one pooled payload.
        assert_eq!(s.pool().len(), 1);
        assert!(s.memory_bytes() < 104 * 16 + 100);
    }
}
