//! The buffer iterator factory — the talk's mechanism for common
//! sub-expressions and multiple consumers:
//!
//! "Buffer Iterator Factory ... result of common sub-expression, or
//! multiple occurrences of the same variable" — one upstream iterator is
//! pulled lazily; any number of consumers replay the buffered prefix and
//! extend the buffer on demand. Also demonstrates "materialization +
//! streaming possible": the buffer *is* a materialization point the
//! stream flows through.

use crate::iterator::TokenIterator;
use crate::token::{StrId, Token};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use xqr_xdm::{NameId, QName, QueryGuard, Result};

struct Shared<I: TokenIterator> {
    upstream: I,
    buf: Vec<Token>,
    done: bool,
    /// How many tokens were pulled from upstream (== buf.len(); kept for
    /// instrumentation symmetry).
    pulled: usize,
    /// Optional budget: each token held in the buffer charges the token
    /// budget — the buffer is where unbounded memory would accumulate.
    guard: Option<QueryGuard>,
}

impl<I: TokenIterator> Shared<I> {
    /// Ensure the buffer holds at least `n+1` tokens (or upstream is
    /// exhausted); returns the token at `n` if any.
    fn fill_to(&mut self, n: usize) -> Result<Option<Token>> {
        xqr_faults::faultpoint!("tokens.buffer");
        while self.buf.len() <= n && !self.done {
            match self.upstream.next_token()? {
                Some(t) => {
                    if let Some(guard) = &self.guard {
                        guard.note_tokens(1)?;
                    }
                    self.buf.push(t);
                    self.pulled += 1;
                }
                None => self.done = true,
            }
        }
        Ok(self.buf.get(n).copied())
    }
}

/// Factory handing out any number of replayable consumers of one
/// upstream token source.
pub struct BufferFactory<I: TokenIterator> {
    shared: Rc<RefCell<Shared<I>>>,
}

impl<I: TokenIterator> BufferFactory<I> {
    pub fn new(upstream: I) -> Self {
        BufferFactory {
            shared: Rc::new(RefCell::new(Shared {
                upstream,
                buf: Vec::new(),
                done: false,
                pulled: 0,
                guard: None,
            })),
        }
    }

    /// Guarded construction: every token retained in the shared buffer
    /// charges `guard`'s token budget. Use when the upstream iterator is
    /// not itself guarded, or to bound buffer growth specifically.
    pub fn with_guard(upstream: I, guard: QueryGuard) -> Self {
        let f = BufferFactory::new(upstream);
        f.shared.borrow_mut().guard = Some(guard);
        f
    }

    /// A fresh consumer starting at the beginning of the stream.
    pub fn consumer(&self) -> BufferedIterator<I> {
        BufferedIterator {
            shared: self.shared.clone(),
            pos: 0,
            last: None,
        }
    }

    /// Tokens pulled from upstream so far — the memoization experiment
    /// (E12) asserts this stays at one stream's worth however many
    /// consumers run.
    pub fn upstream_pulled(&self) -> usize {
        self.shared.borrow().pulled
    }

    /// Current buffered token count.
    pub fn buffered(&self) -> usize {
        self.shared.borrow().buf.len()
    }
}

/// One consumer's cursor over the shared buffer.
pub struct BufferedIterator<I: TokenIterator> {
    shared: Rc<RefCell<Shared<I>>>,
    pos: usize,
    last: Option<usize>,
}

impl<I: TokenIterator> TokenIterator for BufferedIterator<I> {
    fn next_token(&mut self) -> Result<Option<Token>> {
        let t = self.shared.borrow_mut().fill_to(self.pos)?;
        if t.is_some() {
            self.last = Some(self.pos);
            self.pos += 1;
        }
        Ok(t)
    }

    fn skip_subtree(&mut self) -> Result<usize> {
        let opened = match self.last {
            Some(i) => {
                let shared = self.shared.borrow();
                shared.buf.get(i).map(|t| t.opens()).unwrap_or(false)
            }
            None => false,
        };
        if !opened {
            return Ok(0);
        }
        let mut depth = 1usize;
        let mut skipped = 0usize;
        loop {
            let t = self.shared.borrow_mut().fill_to(self.pos)?;
            let t = match t {
                Some(t) => t,
                None => return Ok(skipped),
            };
            self.pos += 1;
            skipped += 1;
            if t.opens() {
                depth += 1;
            } else if t.closes() {
                depth -= 1;
                if depth == 0 {
                    self.last = None;
                    return Ok(skipped);
                }
            }
        }
    }

    fn pooled_str(&self, id: StrId) -> Arc<str> {
        self.shared.borrow().upstream.pooled_str(id)
    }

    fn name(&self, id: NameId) -> QName {
        self.shared.borrow().upstream.name(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::ParserTokenIterator;
    use crate::iterator::drain;
    use xqr_xdm::NamePool;

    const DOC: &str = "<a><b>x</b><c>y</c></a>";

    fn factory(doc: &str) -> BufferFactory<ParserTokenIterator<'_>> {
        BufferFactory::new(ParserTokenIterator::new(doc, Arc::new(NamePool::new())))
    }

    #[test]
    fn two_consumers_share_one_upstream_pass() {
        let f = factory(DOC);
        let mut c1 = f.consumer();
        let mut c2 = f.consumer();
        let n1 = drain(&mut c1).unwrap();
        let n2 = drain(&mut c2).unwrap();
        assert_eq!(n1, n2);
        assert_eq!(f.upstream_pulled(), n1, "upstream read exactly once");
    }

    #[test]
    fn interleaved_consumers_see_identical_streams() {
        let f = factory(DOC);
        let mut c1 = f.consumer();
        let mut c2 = f.consumer();
        loop {
            let a = c1.next_token().unwrap();
            let b = c2.next_token().unwrap();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn lazy_fill_only_buffers_what_is_read() {
        let f = factory(DOC);
        let mut c1 = f.consumer();
        c1.next_token().unwrap();
        c1.next_token().unwrap();
        assert_eq!(f.buffered(), 2);
    }

    #[test]
    fn skip_works_through_buffer() {
        let f = factory(DOC);
        let mut c = f.consumer();
        c.next_token().unwrap(); // SD
        c.next_token().unwrap(); // <a>
        c.next_token().unwrap(); // <b>
        let skipped = c.skip_subtree().unwrap();
        assert_eq!(skipped, 2); // x, </b>
        let t = c.next_token().unwrap().unwrap();
        match t {
            Token::StartElement(n) => assert_eq!(c.name(n).local_name(), "c"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn late_consumer_replays_from_start() {
        let f = factory(DOC);
        let mut c1 = f.consumer();
        drain(&mut c1).unwrap();
        let mut c2 = f.consumer();
        let first = c2.next_token().unwrap().unwrap();
        assert_eq!(first, Token::StartDocument);
    }

    #[test]
    fn token_budget_bounds_buffer_growth() {
        use xqr_xdm::{ErrorCode, Limits, QueryGuard};
        let guard = QueryGuard::new(Limits::unlimited().with_max_tokens(4));
        let f = BufferFactory::with_guard(
            ParserTokenIterator::new(DOC, Arc::new(NamePool::new())),
            guard.clone(),
        );
        let mut c = f.consumer();
        let err = loop {
            match c.next_token() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("budget should trip before exhaustion"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.code, ErrorCode::Limit);
        assert_eq!(guard.usage().tokens, 5);
        // Replaying the buffered prefix charges nothing new.
        let mut c2 = f.consumer();
        for _ in 0..4 {
            c2.next_token().unwrap();
        }
        assert_eq!(guard.usage().tokens, 5);
    }
}
