//! # xqr-tokenstream — the TokenStream/TokenIterator substrate
//!
//! The paper's central representation decision: an XML data-model
//! instance is "a sequence of tokens/events" (an array), not a tree.
//! This crate provides:
//!
//! * [`Token`]/[`StrId`] — the compact event vocabulary with pooled
//!   strings and interned names (dictionary compression);
//! * [`TokenStream`] — the materialized array with O(1) `skip()` links;
//! * [`TokenIterator`] — the pull interface (`next`/`skip`), the
//!   execution substrate of the whole engine;
//! * [`ParserTokenIterator`] — SAX-parser-as-TokenIterator (streaming);
//! * [`BufferFactory`] — buffered sharing for common sub-expressions and
//!   multiply-used variables;
//! * [`encode()`](encode())/[`decode`] — the binary wire format with pragma-token
//!   dictionary compression (pooled) or naive inlining (unpooled).
//!
//! ```
//! use std::sync::Arc;
//! use xqr_tokenstream::{TokenStream, TokenIterator, Token};
//! use xqr_xdm::NamePool;
//!
//! let s = TokenStream::from_xml("<a><b>x</b><c/></a>", Arc::new(NamePool::new())).unwrap();
//! let mut it = s.iter();
//! it.next_token().unwrap(); // StartDocument
//! it.next_token().unwrap(); // <a>
//! it.next_token().unwrap(); // <b>
//! let skipped = it.skip_subtree().unwrap(); // O(1) jump past </b>
//! assert_eq!(skipped, 2);
//! assert!(matches!(it.next_token().unwrap(), Some(Token::StartElement(_)))); // <c>
//! ```

pub mod adapter;
pub mod buffer;
pub mod encode;
pub mod iterator;
pub mod pool;
pub mod push;
pub mod stream;
pub mod token;

pub use adapter::{
    event_to_tokens, materialize, push_event, tokens_to_events, tokens_to_xml, ParserTokenIterator,
};
pub use buffer::{BufferFactory, BufferedIterator};
pub use encode::{decode, encode};
pub use iterator::{drain, TokenIterator, TokenResolve};
pub use pool::StringPool;
pub use push::PushTokenizer;
pub use stream::{StreamIterator, TokenStream, TokenStreamBuilder};
pub use token::{StrId, Token};
