//! Binary (wire/disk) encoding of a TokenStream.
//!
//! "Disk: binary representation (compressed) ... serialization: use
//! special pragma tokens for compression; use special encodings for all
//! END tokens." The encoder emits a *definition* pragma the first time a
//! string or name is referenced and a varint id afterwards (pooled mode),
//! or inlines every occurrence (unpooled mode) — experiment E4 compares
//! the two.

use crate::stream::TokenStream;
use crate::token::{StrId, Token};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashMap;
use std::sync::Arc;
use xqr_xdm::{Error, NameId, NamePool, QName, Result};

const MAGIC: &[u8; 4] = b"XQTS";
const VERSION: u8 = 1;

// Token opcodes. END tokens get the smallest encodings (one byte).
const OP_END_ELEMENT: u8 = 0;
const OP_END_DOCUMENT: u8 = 1;
const OP_START_DOCUMENT: u8 = 2;
const OP_START_ELEMENT: u8 = 3;
const OP_ATTRIBUTE: u8 = 4;
const OP_NAMESPACE: u8 = 5;
const OP_TEXT: u8 = 6;
const OP_COMMENT: u8 = 7;
const OP_PI: u8 = 8;
// Pooled-mode slot tags: a pooled string/name slot starts with one of
// these, making definitions unambiguous from references (a bare varint
// id would collide with the tag byte space — caught by the roundtrip
// property test).
const TAG_REF: u8 = 0;
const TAG_DEF: u8 = 1;

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(b);
            return;
        }
        buf.put_u8(b | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        if !buf.has_remaining() {
            return Err(Error::value("truncated varint in token stream"));
        }
        let b = buf.get_u8();
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(Error::value("varint overflow in token stream"));
        }
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(Error::value("truncated string in token stream"));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| Error::value("invalid UTF-8 in token stream"))
}

fn put_opt_str(buf: &mut BytesMut, s: Option<&str>) {
    match s {
        None => buf.put_u8(0),
        Some(s) => {
            buf.put_u8(1);
            put_str(buf, s);
        }
    }
}

fn get_opt_str(buf: &mut Bytes) -> Result<Option<String>> {
    if !buf.has_remaining() {
        return Err(Error::value("truncated option tag in token stream"));
    }
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(get_str(buf)?)),
        _ => Err(Error::value("bad option tag in token stream")),
    }
}

struct Encoder<'s> {
    stream: &'s TokenStream,
    out: BytesMut,
    pooled: bool,
    str_ids: HashMap<StrId, u64>,
    name_ids: HashMap<NameId, u64>,
}

impl<'s> Encoder<'s> {
    fn str_ref(&mut self, id: StrId) {
        if self.pooled {
            let next = self.str_ids.len() as u64;
            match self.str_ids.get(&id) {
                Some(wire) => {
                    self.out.put_u8(TAG_REF);
                    let w = *wire;
                    put_varint(&mut self.out, w)
                }
                None => {
                    self.out.put_u8(TAG_DEF);
                    put_str(&mut self.out, self.stream.str(id));
                    self.str_ids.insert(id, next);
                }
            }
        } else {
            put_str(&mut self.out, self.stream.str(id));
        }
    }

    fn name_ref(&mut self, id: NameId) {
        let q = self.stream.name(id);
        if self.pooled {
            let next = self.name_ids.len() as u64;
            match self.name_ids.get(&id) {
                Some(wire) => {
                    self.out.put_u8(TAG_REF);
                    let w = *wire;
                    put_varint(&mut self.out, w)
                }
                None => {
                    self.out.put_u8(TAG_DEF);
                    put_opt_str(&mut self.out, q.namespace());
                    put_opt_str(&mut self.out, q.prefix());
                    put_str(&mut self.out, q.local_name());
                    self.name_ids.insert(id, next);
                }
            }
        } else {
            put_opt_str(&mut self.out, q.namespace());
            put_opt_str(&mut self.out, q.prefix());
            put_str(&mut self.out, q.local_name());
        }
    }
}

/// Encode a stream. `pooled = false` reproduces the naive wire format for
/// the pooling experiment.
pub fn encode(stream: &TokenStream, pooled: bool) -> Bytes {
    let mut enc = Encoder {
        stream,
        out: BytesMut::with_capacity(stream.len() * 4),
        pooled,
        str_ids: HashMap::new(),
        name_ids: HashMap::new(),
    };
    enc.out.put_slice(MAGIC);
    enc.out.put_u8(VERSION);
    enc.out.put_u8(pooled as u8);
    for &t in stream.tokens() {
        match t {
            Token::EndElement => enc.out.put_u8(OP_END_ELEMENT),
            Token::EndDocument => enc.out.put_u8(OP_END_DOCUMENT),
            Token::StartDocument => enc.out.put_u8(OP_START_DOCUMENT),
            Token::StartElement(n) => {
                enc.out.put_u8(OP_START_ELEMENT);
                enc.name_ref(n);
            }
            Token::Attribute(n, v) => {
                enc.out.put_u8(OP_ATTRIBUTE);
                enc.name_ref(n);
                enc.str_ref(v);
            }
            Token::NamespaceDecl(p, u) => {
                enc.out.put_u8(OP_NAMESPACE);
                enc.str_ref(p);
                enc.str_ref(u);
            }
            Token::Text(s) => {
                enc.out.put_u8(OP_TEXT);
                enc.str_ref(s);
            }
            Token::Comment(s) => {
                enc.out.put_u8(OP_COMMENT);
                enc.str_ref(s);
            }
            Token::ProcessingInstruction(n, d) => {
                enc.out.put_u8(OP_PI);
                enc.name_ref(n);
                enc.str_ref(d);
            }
        }
    }
    enc.out.freeze()
}

struct Decoder {
    buf: Bytes,
    pooled: bool,
    strings: Vec<String>,
    names: Vec<QName>,
}

impl Decoder {
    fn read_str(&mut self) -> Result<String> {
        if self.pooled {
            if !self.buf.has_remaining() {
                return Err(Error::value("truncated pooled string slot"));
            }
            match self.buf.get_u8() {
                TAG_DEF => {
                    let s = get_str(&mut self.buf)?;
                    self.strings.push(s.clone());
                    Ok(s)
                }
                TAG_REF => {
                    let id = get_varint(&mut self.buf)? as usize;
                    self.strings
                        .get(id)
                        .cloned()
                        .ok_or_else(|| Error::value("dangling string id in token stream"))
                }
                _ => Err(Error::value("bad pooled string tag")),
            }
        } else {
            get_str(&mut self.buf)
        }
    }

    fn read_name(&mut self) -> Result<QName> {
        if self.pooled {
            if !self.buf.has_remaining() {
                return Err(Error::value("truncated pooled name slot"));
            }
            match self.buf.get_u8() {
                TAG_DEF => {
                    let q = Self::read_inline_name(&mut self.buf)?;
                    self.names.push(q.clone());
                    Ok(q)
                }
                TAG_REF => {
                    let id = get_varint(&mut self.buf)? as usize;
                    self.names
                        .get(id)
                        .cloned()
                        .ok_or_else(|| Error::value("dangling name id in token stream"))
                }
                _ => Err(Error::value("bad pooled name tag")),
            }
        } else {
            Self::read_inline_name(&mut self.buf)
        }
    }

    fn read_inline_name(buf: &mut Bytes) -> Result<QName> {
        let ns = get_opt_str(buf)?;
        let prefix = get_opt_str(buf)?;
        let local = get_str(buf)?;
        Ok(match (ns, prefix) {
            (Some(ns), Some(p)) => QName::prefixed(&ns, &p, &local),
            (Some(ns), None) => QName::ns(&ns, &local),
            (None, _) => QName::local(&local),
        })
    }
}

/// Decode bytes produced by [`encode`] into a fresh TokenStream.
pub fn decode(bytes: Bytes, names: Arc<NamePool>) -> Result<TokenStream> {
    let mut buf = bytes;
    if buf.remaining() < 6 {
        return Err(Error::value("truncated token stream header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(Error::value("bad token stream magic"));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(Error::value(format!(
            "unsupported token stream version {version}"
        )));
    }
    let pooled = buf.get_u8() != 0;
    let mut dec = Decoder {
        buf,
        pooled,
        strings: Vec::new(),
        names: Vec::new(),
    };
    let mut b = TokenStream::builder(names);
    while dec.buf.has_remaining() {
        let op = dec.buf.get_u8();
        match op {
            OP_END_ELEMENT => b.push(Token::EndElement),
            OP_END_DOCUMENT => b.push(Token::EndDocument),
            OP_START_DOCUMENT => b.push(Token::StartDocument),
            OP_START_ELEMENT => {
                let q = dec.read_name()?;
                b.start_element(&q);
            }
            OP_ATTRIBUTE => {
                let q = dec.read_name()?;
                let v = dec.read_str()?;
                b.attribute(&q, &v);
            }
            OP_NAMESPACE => {
                let p = dec.read_str()?;
                let u = dec.read_str()?;
                let p2 = b.intern_str(&p);
                let u2 = b.intern_str(&u);
                b.push(Token::NamespaceDecl(p2, u2));
            }
            OP_TEXT => {
                let s = dec.read_str()?;
                b.text(&s);
            }
            OP_COMMENT => {
                let s = dec.read_str()?;
                let id = b.intern_str(&s);
                b.push(Token::Comment(id));
            }
            OP_PI => {
                let q = dec.read_name()?;
                let d = dec.read_str()?;
                let n = b.intern_name(&q);
                let id = b.intern_str(&d);
                b.push(Token::ProcessingInstruction(n, id));
            }
            other => return Err(Error::value(format!("unknown token opcode {other}"))),
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(repeats: usize) -> TokenStream {
        let mut xml = String::from("<list>");
        for i in 0..repeats {
            xml.push_str(&format!(
                r#"<entry kind="book"><title>Common Title</title><n>{i}</n></entry>"#
            ));
        }
        xml.push_str("</list>");
        TokenStream::from_xml(&xml, Arc::new(NamePool::new())).unwrap()
    }

    #[test]
    fn roundtrip_pooled() {
        let s = sample(5);
        let bytes = encode(&s, true);
        let back = decode(bytes, Arc::new(NamePool::new())).unwrap();
        assert_eq!(s.len(), back.len());
        let a = crate::adapter::tokens_to_xml(&mut s.iter(), Default::default()).unwrap();
        let b = crate::adapter::tokens_to_xml(&mut back.iter(), Default::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_unpooled() {
        let s = sample(5);
        let bytes = encode(&s, false);
        let back = decode(bytes, Arc::new(NamePool::new())).unwrap();
        let a = crate::adapter::tokens_to_xml(&mut s.iter(), Default::default()).unwrap();
        let b = crate::adapter::tokens_to_xml(&mut back.iter(), Default::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pooling_shrinks_repetitive_documents() {
        let s = sample(200);
        let pooled = encode(&s, true).len();
        let unpooled = encode(&s, false).len();
        assert!(
            pooled * 2 < unpooled,
            "pooled={pooled} unpooled={unpooled}: expected at least 2x"
        );
    }

    #[test]
    fn end_tokens_are_one_byte() {
        // <a/> has SD, SE, EE, ED: encoding should spend 1 byte on each
        // END token.
        let s = TokenStream::from_xml("<a/>", Arc::new(NamePool::new())).unwrap();
        let bytes = encode(&s, true);
        // header(6) + SD(1) + SE(1 + tag(1) + none(1) + none(1) +
        // len("a")(1) + "a"(1)) + EE(1) + ED(1)
        assert_eq!(bytes.len(), 6 + 1 + 1 + 5 + 1 + 1);
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(decode(Bytes::from_static(b"nope"), Arc::new(NamePool::new())).is_err());
        assert!(decode(
            Bytes::from_static(b"XQTS\x09\x00"),
            Arc::new(NamePool::new())
        )
        .is_err());
        let s = sample(1);
        let mut bytes = encode(&s, true).to_vec();
        bytes.truncate(bytes.len() - 3);
        assert!(decode(Bytes::from(bytes), Arc::new(NamePool::new())).is_err());
    }

    #[test]
    fn namespaces_survive_roundtrip() {
        let xml = r#"<a xmlns="urn:d" xmlns:p="urn:p"><p:b p:x="1"/></a>"#;
        let s = TokenStream::from_xml(xml, Arc::new(NamePool::new())).unwrap();
        for pooled in [true, false] {
            let back = decode(encode(&s, pooled), Arc::new(NamePool::new())).unwrap();
            let out = crate::adapter::tokens_to_xml(&mut back.iter(), Default::default()).unwrap();
            assert_eq!(out, xml, "pooled={pooled}");
        }
    }
}
