//! Adapters between the three shapes of XML data: text, parser events,
//! and token streams.
//!
//! [`ParserTokenIterator`] is the "SAX parser as TokenIterator" slide: it
//! pulls events from the [`XmlReader`] on demand, so tokens flow before
//! the document is fully read — the property the streaming experiments
//! (E1) measure.

use crate::iterator::TokenIterator;
use crate::pool::StringPool;
use crate::stream::{TokenStream, TokenStreamBuilder};
use crate::token::{StrId, Token};
use std::collections::VecDeque;
use std::sync::Arc;
use xqr_xdm::{NameId, NamePool, QName, QueryGuard, Result};
use xqr_xmlparse::{WriterOptions, XmlEvent, XmlReader, XmlWriter};

/// Streaming adapter: XML text → tokens, one event at a time.
pub struct ParserTokenIterator<'a> {
    reader: XmlReader<'a>,
    pool: StringPool,
    names: Arc<NamePool>,
    queue: VecDeque<Token>,
    finished: bool,
    last_opened: bool,
    guard: Option<QueryGuard>,
}

impl<'a> ParserTokenIterator<'a> {
    pub fn new(input: &'a str, names: Arc<NamePool>) -> Self {
        ParserTokenIterator {
            reader: XmlReader::new(input),
            pool: StringPool::new(),
            names,
            queue: VecDeque::new(),
            finished: false,
            last_opened: false,
            guard: None,
        }
    }

    /// Guarded construction: the reader enforces depth/size limits and
    /// every token delivered (including skipped ones) charges the token
    /// budget, which also polls cancellation and the deadline.
    pub fn with_guard(input: &'a str, names: Arc<NamePool>, guard: QueryGuard) -> Self {
        let mut it = ParserTokenIterator::new(input, names);
        it.reader = XmlReader::new(input).with_guard(guard.clone());
        it.guard = Some(guard);
        it
    }

    /// Bytes of input consumed so far — lets tests assert that results
    /// appear before the input is exhausted.
    pub fn bytes_consumed(&self) -> usize {
        self.reader.position()
    }

    fn enqueue_event(&mut self, ev: XmlEvent) {
        if event_to_tokens(&ev, &self.names, &mut self.pool, &mut self.queue) {
            self.finished = true;
        }
    }
}

/// The one mapping from parser events to data-model tokens, shared by the
/// pull adapter above, the push tokenizer, and the chunked-ingestion
/// channel consumer — every path MUST produce identical token sequences
/// (the chunked-vs-whole differential oracle depends on it). Returns true
/// when the event ends the document.
pub fn event_to_tokens(
    ev: &XmlEvent,
    names: &NamePool,
    pool: &mut StringPool,
    queue: &mut VecDeque<Token>,
) -> bool {
    match ev {
        XmlEvent::StartDocument => queue.push_back(Token::StartDocument),
        XmlEvent::EndDocument => {
            queue.push_back(Token::EndDocument);
            return true;
        }
        XmlEvent::StartElement {
            name,
            attributes,
            namespaces,
            ..
        } => {
            let n = names.intern(name);
            queue.push_back(Token::StartElement(n));
            for d in namespaces {
                let p = pool.intern(d.prefix.as_deref().unwrap_or(""));
                let u = pool.intern(&d.uri);
                queue.push_back(Token::NamespaceDecl(p, u));
            }
            for a in attributes {
                let an = names.intern(&a.name);
                let av = pool.intern(&a.value);
                queue.push_back(Token::Attribute(an, av));
            }
        }
        XmlEvent::EndElement { .. } => queue.push_back(Token::EndElement),
        XmlEvent::Text(t) => {
            let id = pool.intern(t);
            queue.push_back(Token::Text(id));
        }
        XmlEvent::Comment(c) => {
            let id = pool.intern(c);
            queue.push_back(Token::Comment(id));
        }
        XmlEvent::ProcessingInstruction { target, data } => {
            let tn = names.intern(&QName::local(target));
            let dd = pool.intern(data);
            queue.push_back(Token::ProcessingInstruction(tn, dd));
        }
    }
    false
}

impl<'a> TokenIterator for ParserTokenIterator<'a> {
    fn next_token(&mut self) -> Result<Option<Token>> {
        while self.queue.is_empty() {
            if self.finished {
                return Ok(None);
            }
            let ev = self.reader.next_event()?;
            self.enqueue_event(ev);
        }
        let t = self.queue.pop_front();
        if t.is_some() {
            if let Some(guard) = &self.guard {
                guard.note_tokens(1)?;
            }
        }
        self.last_opened = t.map(|t| t.opens()).unwrap_or(false);
        Ok(t)
    }

    fn skip_subtree(&mut self) -> Result<usize> {
        if !self.last_opened {
            return Ok(0);
        }
        // No links in a live parse: consume tokens, tracking depth. Still
        // avoids handing content to the consumer.
        let mut depth = 1usize;
        let mut skipped = 0usize;
        loop {
            let t = match self.next_token()? {
                Some(t) => t,
                None => return Ok(skipped),
            };
            skipped += 1;
            if t.opens() {
                depth += 1;
            } else if t.closes() {
                depth -= 1;
                if depth == 0 {
                    self.last_opened = false;
                    return Ok(skipped);
                }
            }
        }
    }

    fn pooled_str(&self, id: StrId) -> Arc<str> {
        self.pool.get_arc(id)
    }

    fn name(&self, id: NameId) -> QName {
        self.names.resolve(id)
    }
}

impl TokenStream {
    /// Materialize a whole XML document into a token stream.
    pub fn from_xml(input: &str, names: Arc<NamePool>) -> Result<TokenStream> {
        let mut it = ParserTokenIterator::new(input, names.clone());
        let mut b = TokenStream::builder(names);
        while let Some(t) = it.next_token()? {
            // Re-intern through the builder's own pool so ids are dense in
            // this stream.
            let t = match t {
                Token::Attribute(n, v) => Token::Attribute(n, b.intern_str(&it.pooled_str(v))),
                Token::NamespaceDecl(p, u) => {
                    let p2 = b.intern_str(&it.pooled_str(p));
                    let u2 = b.intern_str(&it.pooled_str(u));
                    Token::NamespaceDecl(p2, u2)
                }
                Token::Text(s) => Token::Text(b.intern_str(&it.pooled_str(s))),
                Token::Comment(s) => Token::Comment(b.intern_str(&it.pooled_str(s))),
                Token::ProcessingInstruction(n, d) => {
                    Token::ProcessingInstruction(n, b.intern_str(&it.pooled_str(d)))
                }
                other => other,
            };
            b.push(t);
        }
        b.finish()
    }
}

/// Copy every token from `it` into a new materialized stream.
pub fn materialize(it: &mut dyn TokenIterator, names: Arc<NamePool>) -> Result<TokenStream> {
    let mut b = TokenStream::builder(names);
    while let Some(t) = it.next_token()? {
        let t = match t {
            Token::Attribute(n, v) => Token::Attribute(n, b.intern_str(&it.pooled_str(v))),
            Token::NamespaceDecl(p, u) => {
                let p2 = b.intern_str(&it.pooled_str(p));
                let u2 = b.intern_str(&it.pooled_str(u));
                Token::NamespaceDecl(p2, u2)
            }
            Token::Text(s) => Token::Text(b.intern_str(&it.pooled_str(s))),
            Token::Comment(s) => Token::Comment(b.intern_str(&it.pooled_str(s))),
            Token::ProcessingInstruction(n, d) => {
                Token::ProcessingInstruction(n, b.intern_str(&it.pooled_str(d)))
            }
            other => other,
        };
        b.push(t);
    }
    b.finish()
}

/// Convert a token iterator back into parser events (for serialization).
/// Groups trailing `Attribute`/`NamespaceDecl` tokens into their
/// `StartElement` event.
pub fn tokens_to_events(it: &mut dyn TokenIterator) -> Result<Vec<XmlEvent>> {
    let mut events: Vec<XmlEvent> = Vec::new();
    let mut pending: Option<(
        QName,
        Vec<xqr_xmlparse::Attribute>,
        Vec<xqr_xmlparse::NamespaceDecl>,
    )> = None;
    let mut names_stack: Vec<QName> = Vec::new();

    fn flush(
        events: &mut Vec<XmlEvent>,
        pending: &mut Option<(
            QName,
            Vec<xqr_xmlparse::Attribute>,
            Vec<xqr_xmlparse::NamespaceDecl>,
        )>,
    ) {
        if let Some((name, attributes, namespaces)) = pending.take() {
            events.push(XmlEvent::StartElement {
                name,
                attributes,
                namespaces,
                empty: false,
            });
        }
    }

    while let Some(t) = it.next_token()? {
        match t {
            Token::StartDocument => {
                flush(&mut events, &mut pending);
                events.push(XmlEvent::StartDocument);
            }
            Token::EndDocument => {
                flush(&mut events, &mut pending);
                events.push(XmlEvent::EndDocument);
            }
            Token::StartElement(n) => {
                flush(&mut events, &mut pending);
                let q = it.name(n);
                names_stack.push(q.clone());
                pending = Some((q, Vec::new(), Vec::new()));
            }
            Token::Attribute(n, v) => {
                if let Some((_, attrs, _)) = pending.as_mut() {
                    attrs.push(xqr_xmlparse::Attribute {
                        name: it.name(n),
                        value: it.pooled_str(v),
                    });
                }
            }
            Token::NamespaceDecl(p, u) => {
                if let Some((_, _, decls)) = pending.as_mut() {
                    let prefix = it.pooled_str(p);
                    decls.push(xqr_xmlparse::NamespaceDecl {
                        prefix: if prefix.is_empty() {
                            None
                        } else {
                            Some(prefix)
                        },
                        uri: it.pooled_str(u),
                    });
                }
            }
            Token::EndElement => {
                flush(&mut events, &mut pending);
                let name = names_stack.pop().unwrap_or_else(|| QName::local(""));
                events.push(XmlEvent::EndElement { name });
            }
            Token::Text(s) => {
                flush(&mut events, &mut pending);
                events.push(XmlEvent::Text(it.pooled_str(s)));
            }
            Token::Comment(s) => {
                flush(&mut events, &mut pending);
                events.push(XmlEvent::Comment(it.pooled_str(s)));
            }
            Token::ProcessingInstruction(n, d) => {
                flush(&mut events, &mut pending);
                events.push(XmlEvent::ProcessingInstruction {
                    target: Arc::from(it.name(n).local_name()),
                    data: it.pooled_str(d),
                });
            }
        }
    }
    flush(&mut events, &mut pending);
    Ok(events)
}

/// Serialize a token iterator to XML text.
pub fn tokens_to_xml(it: &mut dyn TokenIterator, opts: WriterOptions) -> Result<String> {
    let events = tokens_to_events(it)?;
    let mut w = XmlWriter::new(opts);
    for ev in &events {
        w.write(ev)?;
    }
    Ok(w.into_string())
}

/// Push events into an existing builder (used by tree→tokens paths).
pub fn push_event(b: &mut TokenStreamBuilder, ev: &XmlEvent) {
    match ev {
        XmlEvent::StartDocument => b.push(Token::StartDocument),
        XmlEvent::EndDocument => b.push(Token::EndDocument),
        XmlEvent::StartElement {
            name,
            attributes,
            namespaces,
            ..
        } => {
            b.start_element(name);
            for d in namespaces {
                let p = b.intern_str(d.prefix.as_deref().unwrap_or(""));
                let u = b.intern_str(&d.uri);
                b.push(Token::NamespaceDecl(p, u));
            }
            for a in attributes {
                b.attribute(&a.name, &a.value);
            }
        }
        XmlEvent::EndElement { .. } => b.end_element(),
        XmlEvent::Text(t) => b.text(t),
        XmlEvent::Comment(c) => {
            let id = b.intern_str(c);
            b.push(Token::Comment(id));
        }
        XmlEvent::ProcessingInstruction { target, data } => {
            let tn = b.intern_name(&QName::local(target));
            let dd = b.intern_str(data);
            b.push(Token::ProcessingInstruction(tn, dd));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterator::drain;

    const DOC: &str =
        r#"<order id="4711"><date>2003-08-19</date><lineitem xmlns="www.boo.com"/></order>"#;

    #[test]
    fn parser_iterator_yields_talk_example_tokens() {
        // The talk's "Example Token Stream" slide, minus schema types.
        let names = Arc::new(NamePool::new());
        let mut it = ParserTokenIterator::new(DOC, names);
        let mut kinds = Vec::new();
        while let Some(t) = it.next_token().unwrap() {
            kinds.push(match t {
                Token::StartDocument => "SD",
                Token::EndDocument => "ED",
                Token::StartElement(_) => "SE",
                Token::EndElement => "EE",
                Token::Attribute(..) => "A",
                Token::NamespaceDecl(..) => "NS",
                Token::Text(_) => "T",
                Token::Comment(_) => "C",
                Token::ProcessingInstruction(..) => "PI",
            });
        }
        assert_eq!(
            kinds,
            vec!["SD", "SE", "A", "SE", "T", "EE", "SE", "NS", "EE", "EE", "ED"]
        );
    }

    #[test]
    fn roundtrip_through_tokens() {
        let names = Arc::new(NamePool::new());
        let s = TokenStream::from_xml(DOC, names).unwrap();
        let mut it = s.iter();
        let xml = tokens_to_xml(&mut it, WriterOptions::default()).unwrap();
        assert_eq!(xml, DOC);
    }

    #[test]
    fn streaming_consumes_input_incrementally() {
        // Build a document with a large tail; after reading the first
        // element the parser must not have consumed the whole input.
        let mut doc = String::from("<r><first>x</first>");
        for i in 0..10_000 {
            doc.push_str(&format!("<item>{i}</item>"));
        }
        doc.push_str("</r>");
        let names = Arc::new(NamePool::new());
        let mut it = ParserTokenIterator::new(&doc, names);
        // Pull tokens until the first </first>.
        let mut seen_first_end = 0;
        while let Some(t) = it.next_token().unwrap() {
            if matches!(t, Token::EndElement) {
                seen_first_end += 1;
                break;
            }
        }
        assert_eq!(seen_first_end, 1);
        assert!(
            it.bytes_consumed() < doc.len() / 100,
            "consumed {} of {}",
            it.bytes_consumed(),
            doc.len()
        );
    }

    #[test]
    fn parser_skip_counts_descendant_tokens() {
        let names = Arc::new(NamePool::new());
        let mut it = ParserTokenIterator::new("<a><b><c/><d/></b><e/></a>", names);
        it.next_token().unwrap(); // SD
        it.next_token().unwrap(); // <a>
        it.next_token().unwrap(); // <b>
        let skipped = it.skip_subtree().unwrap();
        assert_eq!(skipped, 5); // <c/>, </c>, <d/>, </d>, </b>
        let t = it.next_token().unwrap().unwrap();
        match t {
            Token::StartElement(n) => assert_eq!(it.name(n).local_name(), "e"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn materialize_matches_direct_build() {
        let names = Arc::new(NamePool::new());
        let mut it = ParserTokenIterator::new(DOC, names.clone());
        let m = materialize(&mut it, names.clone()).unwrap();
        let d = TokenStream::from_xml(DOC, names).unwrap();
        assert_eq!(m.tokens(), d.tokens());
    }

    #[test]
    fn drain_counts() {
        let names = Arc::new(NamePool::new());
        let mut it = ParserTokenIterator::new("<a><b/></a>", names);
        assert_eq!(drain(&mut it).unwrap(), 6);
    }

    #[test]
    fn guarded_iterator_charges_every_token_including_skips() {
        use xqr_xdm::{ErrorCode, Limits, QueryGuard};
        let names = Arc::new(NamePool::new());
        let guard = QueryGuard::unlimited();
        let mut it =
            ParserTokenIterator::with_guard("<a><b><c/><d/></b><e/></a>", names, guard.clone());
        it.next_token().unwrap(); // SD
        it.next_token().unwrap(); // <a>
        it.next_token().unwrap(); // <b>
        it.skip_subtree().unwrap(); // 5 tokens consumed internally
        assert_eq!(guard.usage().tokens, 8);

        // And a tight budget trips mid-stream with the stable code.
        let names = Arc::new(NamePool::new());
        let guard = QueryGuard::new(Limits::unlimited().with_max_tokens(3));
        let mut it = ParserTokenIterator::with_guard("<a><b/><c/></a>", names, guard);
        let err = loop {
            match it.next_token() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("budget should trip before exhaustion"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.code, ErrorCode::Limit);
    }
}
