//! The token vocabulary: an XML data-model instance as a flat sequence of
//! small, copyable events — the talk's "array" representation ("each node
//! → sequence of tokens/events; linear representation of XML data;
//! pre-order traversal of the XML tree").
//!
//! Tokens reference pooled strings ([`StrId`]) and interned names
//! ([`NameId`]); the heavy data lives once in the pools (the talk's
//! "pooling: store strings only once — dictionary-based compression").

use xqr_xdm::NameId;

/// Index into a [`crate::pool::StringPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrId(pub u32);

/// One event of the linearized data model. `Copy` and 12 bytes: the whole
/// point of the array representation is that scanning is a tight loop
/// over these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Token {
    StartDocument,
    EndDocument,
    StartElement(NameId),
    /// End of the most recent unmatched `StartElement`.
    EndElement,
    /// Attribute of the immediately preceding `StartElement` (they appear
    /// between the start tag and its first child, like SAX).
    Attribute(NameId, StrId),
    /// Namespace binding on the preceding `StartElement`:
    /// (prefix string, uri string); prefix "" is the default namespace.
    NamespaceDecl(StrId, StrId),
    Text(StrId),
    Comment(StrId),
    /// (target name, data string).
    ProcessingInstruction(NameId, StrId),
}

impl Token {
    /// Does this token open a subtree that a matching `EndElement` /
    /// `EndDocument` closes?
    pub fn opens(self) -> bool {
        matches!(self, Token::StartElement(_) | Token::StartDocument)
    }

    pub fn closes(self) -> bool {
        matches!(self, Token::EndElement | Token::EndDocument)
    }

    /// Tokens that attach to the preceding start tag rather than being
    /// children.
    pub fn is_tag_extra(self) -> bool {
        matches!(self, Token::Attribute(..) | Token::NamespaceDecl(..))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_small() {
        // The array representation's "low overhead" claim rests on this.
        assert!(
            std::mem::size_of::<Token>() <= 12,
            "{}",
            std::mem::size_of::<Token>()
        );
    }

    #[test]
    fn classification() {
        assert!(Token::StartElement(NameId(1)).opens());
        assert!(Token::EndElement.closes());
        assert!(Token::Attribute(NameId(1), StrId(0)).is_tag_extra());
        assert!(!Token::Text(StrId(0)).is_tag_extra());
        assert!(!Token::Text(StrId(0)).opens());
    }
}
