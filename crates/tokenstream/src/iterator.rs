//! The pull interface — the talk's TokenIterator:
//! "`open()`: prepare execution; `next()`: return next token; `skip()`:
//! skip all tokens until first token of sibling; `close()`: release
//! resources. Conceptually the same as in RDBMS — pull-based — but more
//! fine-grained."
//!
//! In Rust, `open`/`close` map onto construction and drop; `next` and
//! `skip` are the trait methods. Implementations must also resolve pooled
//! ids, because consumers downstream of a pipe only hold the iterator.

use crate::token::{StrId, Token};
use std::sync::Arc;
use xqr_xdm::{NameId, QName, Result};

/// A pull source of data-model tokens.
pub trait TokenIterator {
    /// Return the next token, or `None` at end of stream.
    fn next_token(&mut self) -> Result<Option<Token>>;

    /// If the most recently returned token opened a subtree, advance past
    /// the matching close and return how many tokens were skipped.
    /// Otherwise a no-op returning 0.
    fn skip_subtree(&mut self) -> Result<usize>;

    /// Resolve a pooled string id from this stream.
    fn pooled_str(&self, id: StrId) -> Arc<str>;

    /// Resolve an interned name id.
    fn name(&self, id: NameId) -> QName;
}

/// Id resolution alone — the read-only half of [`TokenIterator`].
///
/// Push-mode consumers (the pub/sub automaton's resumable run, the
/// chunked-ingestion pipeline) receive tokens rather than pulling them,
/// so they can't be driven through `next_token`; they still need to
/// resolve pooled ids against whatever source produced the tokens. Every
/// `TokenIterator` is a `TokenResolve` via the blanket impl below, and
/// push sources (e.g. `PushTokenizer`) implement it directly.
pub trait TokenResolve {
    /// Resolve a pooled string id from this source.
    fn pooled_str(&self, id: StrId) -> Arc<str>;

    /// Resolve an interned name id.
    fn name(&self, id: NameId) -> QName;
}

impl<T: TokenIterator + ?Sized> TokenResolve for T {
    fn pooled_str(&self, id: StrId) -> Arc<str> {
        TokenIterator::pooled_str(self, id)
    }

    fn name(&self, id: NameId) -> QName {
        TokenIterator::name(self, id)
    }
}

/// Blanket impl so `Box<dyn TokenIterator>` composes.
impl<T: TokenIterator + ?Sized> TokenIterator for Box<T> {
    fn next_token(&mut self) -> Result<Option<Token>> {
        (**self).next_token()
    }

    fn skip_subtree(&mut self) -> Result<usize> {
        (**self).skip_subtree()
    }

    fn pooled_str(&self, id: StrId) -> Arc<str> {
        (**self).pooled_str(id)
    }

    fn name(&self, id: NameId) -> QName {
        (**self).name(id)
    }
}

/// Drain an iterator, counting tokens (test/bench helper).
pub fn drain(it: &mut dyn TokenIterator) -> Result<usize> {
    let mut n = 0;
    while it.next_token()?.is_some() {
        n += 1;
    }
    Ok(n)
}
