//! Normalization: AST → core expression tree.
//!
//! The talk's compilation step 2. What happens here:
//! * FLWOR decomposes into nested `For`/`Let` with an `If` for `where`
//!   (kept tupled only when `order by` is present);
//! * every path step gets an explicit `Ddo` wrapper (sort by document
//!   order + duplicate elimination), which the optimizer later proves
//!   away where the talk's semantic table allows;
//! * variables resolve to dense registers; functions to table indices;
//! * `xs:type(e)` constructor calls become casts, `fn:boolean` becomes
//!   the EBV primitive;
//! * constant positional predicates become `PositionConst` so the
//!   runtime can `skip()`.

use crate::builtins::is_builtin;
use crate::core_expr::*;
use std::collections::HashMap;
use xqr_xdm::{
    AtomicType, AtomicValue, Error, ErrorCode, ItemType, Occurrence, QName, Result, SequenceType,
};
use xqr_xqparser::ast::{self, AttrPart, DirContent, Expr, FlworClause, NameOrExpr};
use xqr_xqparser::{FN_NS, XS_NS};

struct Normalizer {
    next_var: u32,
    /// Lexical scope stack: name → register.
    scopes: Vec<HashMap<QName, VarId>>,
    /// Function signatures, pre-registered for mutual recursion.
    signatures: Vec<(QName, usize)>,
}

impl Normalizer {
    fn new() -> Self {
        Normalizer {
            next_var: 0,
            scopes: vec![HashMap::new()],
            signatures: Vec::new(),
        }
    }

    fn fresh(&mut self) -> VarId {
        let id = VarId(self.next_var);
        self.next_var += 1;
        id
    }

    fn bind(&mut self, name: &QName) -> VarId {
        let id = self.fresh();
        self.scopes
            .last_mut()
            .expect("scope stack non-empty")
            .insert(name.clone(), id);
        id
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn lookup(&self, name: &QName, pos: usize) -> Result<VarId> {
        for scope in self.scopes.iter().rev() {
            if let Some(id) = scope.get(name) {
                return Ok(*id);
            }
        }
        Err(Error::new(
            ErrorCode::UndefinedName,
            format!("undefined variable ${name}"),
        )
        .at(pos))
    }

    fn find_function(&self, name: &QName, arity: usize) -> Option<FuncId> {
        self.signatures
            .iter()
            .position(|(n, a)| n == name && *a == arity)
            .map(|i| FuncId(i as u32))
    }

    fn normalize(&mut self, e: &Expr) -> Result<Core> {
        Ok(match e {
            Expr::Literal(v, _) => Core::Const(v.clone()),
            Expr::VarRef(name, pos) => Core::Var(self.lookup(name, *pos)?),
            Expr::ContextItem(_) => Core::ContextItem,
            Expr::Root(_) => Core::Root,
            Expr::Sequence(items, _) => {
                if items.is_empty() {
                    Core::Empty
                } else {
                    Core::Seq(
                        items
                            .iter()
                            .map(|i| self.normalize(i))
                            .collect::<Result<_>>()?,
                    )
                }
            }
            Expr::Range(a, b, _) => {
                Core::Range(self.normalize(a)?.boxed(), self.normalize(b)?.boxed())
            }
            Expr::Arith(op, a, b, _) => {
                Core::Arith(*op, self.normalize(a)?.boxed(), self.normalize(b)?.boxed())
            }
            Expr::Neg(a, _) => Core::Neg(self.normalize(a)?.boxed()),
            Expr::Comparison(op, a, b, _) => {
                Core::Compare(*op, self.normalize(a)?.boxed(), self.normalize(b)?.boxed())
            }
            Expr::And(a, b, _) => Core::And(
                Core::Ebv(self.normalize(a)?.boxed()).boxed(),
                Core::Ebv(self.normalize(b)?.boxed()).boxed(),
            ),
            Expr::Or(a, b, _) => Core::Or(
                Core::Ebv(self.normalize(a)?.boxed()).boxed(),
                Core::Ebv(self.normalize(b)?.boxed()).boxed(),
            ),
            Expr::Union(a, b, _) => {
                Core::Union(self.normalize(a)?.boxed(), self.normalize(b)?.boxed())
            }
            Expr::Intersect(a, b, _) => {
                Core::Intersect(self.normalize(a)?.boxed(), self.normalize(b)?.boxed())
            }
            Expr::Except(a, b, _) => {
                Core::Except(self.normalize(a)?.boxed(), self.normalize(b)?.boxed())
            }
            Expr::Path(lhs, rhs, _) => {
                let input = self.normalize(lhs)?;
                let step = self.normalize(rhs)?;
                Core::Ddo(
                    Core::PathMap {
                        input: input.boxed(),
                        step: step.boxed(),
                    }
                    .boxed(),
                )
            }
            Expr::AxisStep {
                axis,
                test,
                predicates,
                ..
            } => {
                let mut out = Core::Step {
                    axis: *axis,
                    test: test.clone(),
                };
                for p in predicates {
                    out = self.normalize_predicate(out, p)?;
                }
                out
            }
            Expr::Filter(inner, predicates, _) => {
                let mut out = self.normalize(inner)?;
                for p in predicates {
                    out = self.normalize_predicate(out, p)?;
                }
                out
            }
            Expr::FunctionCall(name, args, pos) => self.normalize_call(name, args, *pos)?,
            Expr::Flwor {
                clauses,
                where_clause,
                order_by,
                stable,
                return_clause,
                ..
            } => self.normalize_flwor(clauses, where_clause, order_by, *stable, return_clause)?,
            Expr::Quantified {
                every,
                bindings,
                satisfies,
                ..
            } => self.normalize_quantified(*every, bindings, satisfies)?,
            Expr::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => Core::If {
                cond: Core::Ebv(self.normalize(cond)?.boxed()).boxed(),
                then_branch: self.normalize(then_branch)?.boxed(),
                else_branch: self.normalize(else_branch)?.boxed(),
            },
            Expr::Typeswitch {
                operand,
                cases,
                default_var,
                default_body,
                ..
            } => {
                let operand = self.normalize(operand)?.boxed();
                let mut core_cases = Vec::with_capacity(cases.len());
                for c in cases {
                    self.push_scope();
                    let var = c.var.as_ref().map(|v| self.bind(v));
                    let body = self.normalize(&c.body)?;
                    self.pop_scope();
                    core_cases.push(CoreCase {
                        var,
                        ty: c.ty.clone(),
                        body,
                    });
                }
                self.push_scope();
                let dvar = default_var.as_ref().map(|v| self.bind(v));
                let dbody = self.normalize(default_body)?.boxed();
                self.pop_scope();
                Core::Typeswitch {
                    operand,
                    cases: core_cases,
                    default_var: dvar,
                    default_body: dbody,
                }
            }
            Expr::InstanceOf(a, ty, _) => Core::InstanceOf(self.normalize(a)?.boxed(), ty.clone()),
            Expr::CastAs(a, ty, pos) => {
                let (at, opt) = atomic_of(ty, *pos)?;
                Core::CastAs(self.normalize(a)?.boxed(), at, opt)
            }
            Expr::CastableAs(a, ty, pos) => {
                let (at, opt) = atomic_of(ty, *pos)?;
                Core::CastableAs(self.normalize(a)?.boxed(), at, opt)
            }
            Expr::TreatAs(a, ty, _) => Core::TreatAs(self.normalize(a)?.boxed(), ty.clone()),
            Expr::DirectElement {
                name,
                attributes,
                namespaces,
                content,
                ..
            } => {
                let mut items = Vec::new();
                for (aname, parts) in attributes {
                    items.push(Core::AttrCtor {
                        name: CoreName::Const(aname.clone()),
                        value: self.normalize_attr_parts(parts)?,
                    });
                }
                for c in content {
                    match c {
                        DirContent::Text(t) => items.push(Core::TextCtor(
                            Core::Const(AtomicValue::string(t.as_str())).boxed(),
                        )),
                        DirContent::Enclosed(e) => items.push(self.normalize(e)?),
                        DirContent::Child(e) => items.push(self.normalize(e)?),
                    }
                }
                Core::ElemCtor {
                    name: CoreName::Const(name.clone()),
                    namespaces: namespaces.clone(),
                    content: items,
                }
            }
            Expr::ComputedElement { name, content, .. } => Core::ElemCtor {
                name: self.normalize_name(name)?,
                namespaces: Vec::new(),
                content: match content {
                    Some(c) => vec![self.normalize(c)?],
                    None => Vec::new(),
                },
            },
            Expr::ComputedAttribute { name, content, .. } => Core::AttrCtor {
                name: self.normalize_name(name)?,
                value: match content {
                    Some(c) => vec![self.normalize(c)?],
                    None => Vec::new(),
                },
            },
            Expr::ComputedText(e, _) => Core::TextCtor(self.normalize(e)?.boxed()),
            Expr::ComputedComment(e, _) => Core::CommentCtor(self.normalize(e)?.boxed()),
            Expr::ComputedPi {
                target, content, ..
            } => Core::PiCtor {
                target: self.normalize_name(target)?,
                value: match content {
                    Some(c) => self.normalize(c)?.boxed(),
                    None => Core::Empty.boxed(),
                },
            },
            Expr::ComputedDocument(e, _) => Core::DocCtor(self.normalize(e)?.boxed()),
            // `ordered {}` is the default mode; `unordered {}` becomes an
            // annotation via the unordered builtin (a rewrite hook).
            Expr::Ordered(e, _) => self.normalize(e)?,
            Expr::Unordered(e, _) => Core::Builtin("unordered", vec![self.normalize(e)?]),
        })
    }

    fn normalize_name(&mut self, n: &NameOrExpr) -> Result<CoreName> {
        Ok(match n {
            NameOrExpr::Name(q) => CoreName::Const(q.clone()),
            NameOrExpr::Expr(e) => CoreName::Computed(self.normalize(e)?.boxed()),
        })
    }

    fn normalize_attr_parts(&mut self, parts: &[AttrPart]) -> Result<Vec<Core>> {
        parts
            .iter()
            .map(|p| match p {
                AttrPart::Text(t) => Ok(Core::Const(AtomicValue::string(t.as_str()))),
                AttrPart::Enclosed(e) => self.normalize(e),
            })
            .collect()
    }

    fn normalize_predicate(&mut self, input: Core, pred: &Expr) -> Result<Core> {
        // A constant integer predicate is positional selection.
        if let Expr::Literal(AtomicValue::Integer(k), _) = pred {
            return Ok(Core::PositionConst {
                input: input.boxed(),
                position: *k,
            });
        }
        let p = self.normalize(pred)?;
        Ok(Core::Filter {
            input: input.boxed(),
            predicate: p.boxed(),
        })
    }

    fn normalize_call(&mut self, name: &QName, args: &[Expr], pos: usize) -> Result<Core> {
        let cargs: Vec<Core> = args
            .iter()
            .map(|a| self.normalize(a))
            .collect::<Result<_>>()?;
        // User-declared functions first (they may shadow nothing else —
        // fn: names resolve to the fn namespace, user names elsewhere).
        if let Some(id) = self.find_function(name, args.len()) {
            return Ok(Core::UserCall(id, cargs));
        }
        // xs:TYPE(value) constructor → cast (empty-preserving).
        if name.namespace() == Some(XS_NS) || name.namespace() == Some(xqr_xqparser::XDT_NS) {
            if let Some(at) = AtomicType::from_name(&format!("xs:{}", name.local_name())) {
                if cargs.len() == 1 {
                    let mut it = cargs.into_iter();
                    return Ok(Core::CastAs(it.next().expect("one arg").boxed(), at, true));
                }
            }
            return Err(Error::new(
                ErrorCode::UndefinedFunction,
                format!("unknown constructor function {name}"),
            )
            .at(pos));
        }
        if name.namespace() == Some(FN_NS) {
            if let Some(canonical) = is_builtin(name.local_name(), args.len()) {
                // fn:boolean is the EBV primitive.
                if canonical == "boolean" {
                    let mut it = cargs.into_iter();
                    return Ok(Core::Ebv(it.next().expect("one arg").boxed()));
                }
                return Ok(Core::Builtin(canonical, cargs));
            }
        }
        Err(Error::new(
            ErrorCode::UndefinedFunction,
            format!("unknown function {}#{}", name, args.len()),
        )
        .at(pos))
    }

    fn normalize_flwor(
        &mut self,
        clauses: &[FlworClause],
        where_clause: &Option<Box<Expr>>,
        order_by: &[ast::OrderSpec],
        stable: bool,
        return_clause: &Expr,
    ) -> Result<Core> {
        if order_by.is_empty() {
            return self.normalize_flwor_plain(clauses, where_clause, return_clause);
        }
        // Tupled form: sources normalize in sequence, each clause's
        // bindings visible to the next.
        self.push_scope();
        let mut core_clauses = Vec::with_capacity(clauses.len());
        for c in clauses {
            match c {
                FlworClause::For {
                    var,
                    position,
                    source,
                    ..
                } => {
                    let src = self.normalize(source)?;
                    let v = self.bind(var);
                    let p = position.as_ref().map(|p| self.bind(p));
                    core_clauses.push(CoreClause::For {
                        var: v,
                        position: p,
                        source: src,
                    });
                }
                FlworClause::Let { var, ty, value } => {
                    let mut val = self.normalize(value)?;
                    if let Some(t) = ty {
                        val = Core::TreatAs(val.boxed(), t.clone());
                    }
                    let v = self.bind(var);
                    core_clauses.push(CoreClause::Let { var: v, value: val });
                }
            }
        }
        let wc = match where_clause {
            Some(w) => Some(Core::Ebv(self.normalize(w)?.boxed()).boxed()),
            None => None,
        };
        let order = order_by
            .iter()
            .map(|o| {
                Ok(CoreOrderSpec {
                    key: self.normalize(&o.key)?,
                    descending: o.descending,
                    // Default empty handling: empty least.
                    empty_least: o.empty_least.unwrap_or(true),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let body = self.normalize(return_clause)?.boxed();
        self.pop_scope();
        Ok(Core::OrderedFlwor {
            clauses: core_clauses,
            where_clause: wc,
            order,
            stable,
            body,
        })
    }

    fn normalize_flwor_plain(
        &mut self,
        clauses: &[FlworClause],
        where_clause: &Option<Box<Expr>>,
        return_clause: &Expr,
    ) -> Result<Core> {
        // Recursive decomposition, innermost first:
        //   for $x in S ... return R  ≡  For x S { ... }
        // with `where C` becoming `if (ebv C) then R else ()`.
        match clauses.split_first() {
            None => {
                let inner = match where_clause {
                    Some(w) => {
                        let cond = Core::Ebv(self.normalize(w)?.boxed()).boxed();
                        Core::If {
                            cond,
                            then_branch: self.normalize(return_clause)?.boxed(),
                            else_branch: Core::Empty.boxed(),
                        }
                    }
                    None => self.normalize(return_clause)?,
                };
                Ok(inner)
            }
            Some((first, rest)) => match first {
                FlworClause::For {
                    var,
                    position,
                    source,
                    ..
                } => {
                    let src = self.normalize(source)?;
                    self.push_scope();
                    let v = self.bind(var);
                    let p = position.as_ref().map(|p| self.bind(p));
                    let body = self.normalize_flwor_plain(rest, where_clause, return_clause)?;
                    self.pop_scope();
                    Ok(Core::For {
                        var: v,
                        position: p,
                        source: src.boxed(),
                        body: body.boxed(),
                    })
                }
                FlworClause::Let { var, ty, value } => {
                    let mut val = self.normalize(value)?;
                    // Declared types are enforced (`treat as`); the
                    // type-rewrite family removes provably-satisfied ones.
                    if let Some(t) = ty {
                        val = Core::TreatAs(val.boxed(), t.clone());
                    }
                    self.push_scope();
                    let v = self.bind(var);
                    let body = self.normalize_flwor_plain(rest, where_clause, return_clause)?;
                    self.pop_scope();
                    Ok(Core::Let {
                        var: v,
                        value: val.boxed(),
                        body: body.boxed(),
                    })
                }
            },
        }
    }

    fn normalize_quantified(
        &mut self,
        every: bool,
        bindings: &[(QName, Option<SequenceType>, Expr)],
        satisfies: &Expr,
    ) -> Result<Core> {
        match bindings.split_first() {
            None => Ok(Core::Ebv(self.normalize(satisfies)?.boxed())),
            Some(((var, _ty, source), rest)) => {
                let src = self.normalize(source)?;
                self.push_scope();
                let v = self.bind(var);
                let inner = self.normalize_quantified(every, rest, satisfies)?;
                self.pop_scope();
                Ok(Core::Quantified {
                    every,
                    var: v,
                    source: src.boxed(),
                    satisfies: inner.boxed(),
                })
            }
        }
    }
}

fn atomic_of(ty: &SequenceType, pos: usize) -> Result<(AtomicType, bool)> {
    match ty {
        SequenceType::Of(ItemType::Atomic(at), occ) => Ok((*at, *occ == Occurrence::Optional)),
        other => Err(
            Error::type_error(format!("cast target must be an atomic type, got {other}")).at(pos),
        ),
    }
}

/// Normalize a parsed module into the core representation.
pub fn normalize_module(module: &ast::Module) -> Result<CoreModule> {
    let mut n = Normalizer::new();
    // Pass 1: function signatures (mutual recursion).
    for f in &module.prolog.functions {
        n.signatures.push((f.name.clone(), f.params.len()));
    }
    // Globals bind in order; later globals see earlier ones.
    let mut globals = Vec::new();
    for v in &module.prolog.variables {
        let value = match &v.value {
            Some(e) => Some(n.normalize(e)?),
            None => None,
        };
        let id = n.bind(&v.name);
        globals.push((v.name.clone(), id, value));
    }
    // Pass 2: function bodies (globals are in scope).
    let mut functions = Vec::new();
    for f in &module.prolog.functions {
        n.push_scope();
        let params: Vec<(VarId, Option<SequenceType>)> = f
            .params
            .iter()
            .map(|(pn, pt)| (n.bind(pn), pt.clone()))
            .collect();
        let body = match &f.body {
            Some(b) => n.normalize(b)?,
            None => {
                return Err(Error::new(
                    ErrorCode::UndefinedFunction,
                    format!("external function {} has no implementation", f.name),
                ))
            }
        };
        n.pop_scope();
        functions.push(CoreFunction {
            name: f.name.clone(),
            params,
            return_type: f.return_type.clone(),
            body,
        });
    }
    let body = n.normalize(&module.body)?;
    Ok(CoreModule {
        functions,
        globals,
        body,
        var_count: n.next_var,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_xqparser::parse_query;

    fn norm(src: &str) -> CoreModule {
        normalize_module(&parse_query(src).unwrap()).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    #[test]
    fn flwor_decomposes_to_for_if() {
        let m = norm("for $x in (1,2,3) where $x eq 2 return $x");
        match &m.body {
            Core::For { body, .. } => {
                assert!(matches!(&**body, Core::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn let_decomposes() {
        let m = norm("let $x := 1 return $x + 1");
        assert!(matches!(&m.body, Core::Let { .. }));
    }

    #[test]
    fn order_by_keeps_tupled_form() {
        let m = norm("for $x in (3,1,2) order by $x return $x");
        assert!(matches!(&m.body, Core::OrderedFlwor { .. }));
    }

    #[test]
    fn undefined_variable_is_an_error() {
        let e = normalize_module(&parse_query("$nope").unwrap()).unwrap_err();
        assert_eq!(e.code, ErrorCode::UndefinedName);
    }

    #[test]
    fn declared_paths_get_ddo() {
        let m = norm("declare variable $x := <a/>; $x/a/b");
        fn count_ddo(c: &Core) -> usize {
            let mut n = matches!(c, Core::Ddo(_)) as usize;
            c.for_each_child(&mut |ch| n += count_ddo(ch));
            n
        }
        assert_eq!(count_ddo(&m.body), 2);
    }

    #[test]
    fn positional_predicate_specializes() {
        let m = norm("declare variable $x := <a/>; $x/b[3]");
        fn find_pos(c: &Core) -> bool {
            if matches!(c, Core::PositionConst { position: 3, .. }) {
                return true;
            }
            let mut found = false;
            c.for_each_child(&mut |ch| found |= find_pos(ch));
            found
        }
        assert!(find_pos(&m.body));
    }

    #[test]
    fn xs_constructor_becomes_cast() {
        let m = norm(r#"xs:integer("42")"#);
        assert!(matches!(m.body, Core::CastAs(_, AtomicType::Integer, true)));
    }

    #[test]
    fn fn_boolean_becomes_ebv() {
        let m = norm("boolean(1)");
        assert!(matches!(m.body, Core::Ebv(_)));
    }

    #[test]
    fn unknown_function_is_an_error() {
        let e = normalize_module(&parse_query("nonsense(1)").unwrap()).unwrap_err();
        assert_eq!(e.code, ErrorCode::UndefinedFunction);
        // wrong arity too
        let e = normalize_module(&parse_query("count(1, 2)").unwrap()).unwrap_err();
        assert_eq!(e.code, ErrorCode::UndefinedFunction);
    }

    #[test]
    fn user_functions_resolve_with_recursion() {
        let m = norm(
            "declare function local:fib($n as xs:integer) as xs:integer {
               if ($n lt 2) then $n else local:fib($n - 1) + local:fib($n - 2)
             };
             local:fib(10)",
        );
        assert_eq!(m.functions.len(), 1);
        assert!(matches!(m.body, Core::UserCall(FuncId(0), _)));
        // body contains recursive calls to itself
        fn has_call(c: &Core) -> bool {
            if matches!(c, Core::UserCall(FuncId(0), _)) {
                return true;
            }
            let mut found = false;
            c.for_each_child(&mut |ch| found |= has_call(ch));
            found
        }
        assert!(has_call(&m.functions[0].body));
    }

    #[test]
    fn quantified_nests() {
        let m = norm("some $x in (1,2), $y in (3,4) satisfies $x eq $y");
        match &m.body {
            Core::Quantified { satisfies, .. } => {
                assert!(matches!(&**satisfies, Core::Quantified { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn variable_shadowing_gets_distinct_registers() {
        let m = norm("for $x in (1,2) return for $x in (3,4) return $x");
        fn inner_var(c: &Core) -> Option<VarId> {
            match c {
                Core::For { body, .. } => match &**body {
                    Core::For { var, body: b2, .. } => match &**b2 {
                        Core::Var(v) => {
                            assert_eq!(v, var);
                            Some(*v)
                        }
                        _ => None,
                    },
                    _ => None,
                },
                _ => None,
            }
        }
        let outer_var = match &m.body {
            Core::For { var, .. } => *var,
            other => panic!("{other:?}"),
        };
        let inner = inner_var(&m.body).expect("nested for");
        assert_ne!(outer_var, inner);
    }

    #[test]
    fn globals_and_externals() {
        let m = norm("declare variable $a := 1; declare variable $b external; $a + $b");
        assert_eq!(m.globals.len(), 2);
        assert!(m.globals[0].2.is_some());
        assert!(m.globals[1].2.is_none());
    }

    #[test]
    fn direct_constructor_content_normalizes() {
        let m = norm(r#"<a x="1">t{2}</a>"#);
        match &m.body {
            Core::ElemCtor { content, .. } => {
                assert_eq!(content.len(), 3); // attr, text, enclosed
                assert!(matches!(content[0], Core::AttrCtor { .. }));
                assert!(matches!(content[1], Core::TextCtor(_)));
            }
            other => panic!("{other:?}"),
        }
    }
}
