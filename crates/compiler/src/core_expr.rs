//! The core expression tree — the talk's "expression tree (for
//! optimization)" with its ~26 expression kinds.
//!
//! Differences from the AST: FLWOR is decomposed into nested `For`/`Let`
//! /`If` (the talk: "FLWR is syntactic sugar combining FOR, LET, IF"),
//! except when an `order by` forces the tupled [`Core::OrderedFlwor`]
//! form; `//` and predicates are already explicit; variables are
//! resolved to dense [`VarId`] registers; every path step sits under an
//! explicit [`Core::Ddo`] (distinct-document-order) node that the
//! optimizer tries to remove; user function calls reference a function
//! table by index.

use xqr_xdm::{AtomicType, AtomicValue, QName, SequenceType};

pub use xqr_xqparser::ast::{ArithOp, AxisName, CompOp, NodeTest};

/// A resolved variable register. Each binder in the query gets a unique
/// register, so shadowing is resolved at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Index into the compiled module's function table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FuncId(pub u32);

/// A binding clause inside an [`Core::OrderedFlwor`].
// Clause values live inside the enclosing FLWOR node, never in bulk
// arrays, so the size spread between variants is not worth boxing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum CoreClause {
    For {
        var: VarId,
        position: Option<VarId>,
        source: Core,
    },
    Let {
        var: VarId,
        value: Core,
    },
    /// A decorrelated let-bound join: the `inner` side is evaluated and
    /// hashed on `inner_key` **once per FLWOR evaluation**; per tuple,
    /// `outer_key` probes the table and the matches (mapped through
    /// `match_body` with `inner_var` bound) bind to `var`.
    GroupLet {
        var: VarId,
        inner_var: VarId,
        inner: Core,
        inner_key: Core,
        outer_key: Core,
        match_body: Core,
    },
}

/// One `order by` key.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreOrderSpec {
    pub key: Core,
    pub descending: bool,
    pub empty_least: bool,
}

/// Computed-constructor name: resolved or runtime expression.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreName {
    Const(QName),
    Computed(Box<Core>),
}

/// Grouped-join extension of [`Core::HashJoin`].
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSpec {
    /// The variable the matched-and-mapped sequence binds to.
    pub let_var: VarId,
    /// Evaluated per matching inner item (with the inner var bound).
    pub match_body: Box<Core>,
}

/// One case of a typeswitch.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreCase {
    pub var: Option<VarId>,
    pub ty: SequenceType,
    pub body: Core,
}

/// The core expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Core {
    /// A constant atomic value.
    Const(AtomicValue),
    /// The empty sequence.
    Empty,
    /// Sequence concatenation.
    Seq(Vec<Core>),
    /// `e1 to e2`.
    Range(Box<Core>, Box<Core>),
    Var(VarId),
    ContextItem,
    /// The root of the context node's tree (leading `/`).
    Root,
    /// Iteration: the MAP of the talk's redundant algebra. Binds `var`
    /// (and optionally a 1-based `position`) for each item of `source`.
    For {
        var: VarId,
        position: Option<VarId>,
        source: Box<Core>,
        body: Box<Core>,
    },
    Let {
        var: VarId,
        value: Box<Core>,
        body: Box<Core>,
    },
    /// FLWOR with `order by`: kept tupled because sorting needs the
    /// whole binding stream.
    OrderedFlwor {
        clauses: Vec<CoreClause>,
        where_clause: Option<Box<Core>>,
        order: Vec<CoreOrderSpec>,
        stable: bool,
        body: Box<Core>,
    },
    If {
        cond: Box<Core>,
        then_branch: Box<Core>,
        else_branch: Box<Core>,
    },
    /// `and`/`or` keep their non-deterministic short-circuit semantics.
    And(Box<Core>, Box<Core>),
    Or(Box<Core>, Box<Core>),
    /// Effective boolean value (normalization wraps conditions in this).
    Ebv(Box<Core>),
    Arith(ArithOp, Box<Core>, Box<Core>),
    Neg(Box<Core>),
    Compare(CompOp, Box<Core>, Box<Core>),
    /// `some/every $v in source satisfies body` (single binding; multi
    /// bindings normalize to nesting).
    Quantified {
        every: bool,
        var: VarId,
        source: Box<Core>,
        satisfies: Box<Core>,
    },
    Union(Box<Core>, Box<Core>),
    Intersect(Box<Core>, Box<Core>),
    Except(Box<Core>, Box<Core>),
    /// One axis step applied to the context item.
    Step {
        axis: AxisName,
        test: NodeTest,
    },
    /// `input/step`: evaluate `step` with each node of `input` as
    /// context; the result is NOT yet sorted/deduplicated — an enclosing
    /// [`Core::Ddo`] does that unless the optimizer removed it.
    PathMap {
        input: Box<Core>,
        step: Box<Core>,
    },
    /// Distinct-document-order (sort by doc order + dedup by identity).
    Ddo(Box<Core>),
    /// Predicate filter with position semantics (`e[pred]`).
    Filter {
        input: Box<Core>,
        predicate: Box<Core>,
    },
    /// Positional selection `e[k]` with a constant k — compiled
    /// specially so the runtime can skip (experiment E10).
    PositionConst {
        input: Box<Core>,
        position: i64,
    },
    /// Built-in function call, resolved by name (the runtime's library
    /// dispatches; unknown names were rejected at compile time).
    Builtin(&'static str, Vec<Core>),
    /// User-declared function call.
    UserCall(FuncId, Vec<Core>),
    InstanceOf(Box<Core>, SequenceType),
    CastAs(Box<Core>, AtomicType, bool /* optional (T?) */),
    CastableAs(Box<Core>, AtomicType, bool),
    TreatAs(Box<Core>, SequenceType),
    Typeswitch {
        operand: Box<Core>,
        cases: Vec<CoreCase>,
        default_var: Option<VarId>,
        default_body: Box<Core>,
    },
    ElemCtor {
        name: CoreName,
        /// Namespace declarations written on the constructor.
        namespaces: Vec<(Option<String>, String)>,
        content: Vec<Core>,
    },
    AttrCtor {
        name: CoreName,
        value: Vec<Core>,
    },
    TextCtor(Box<Core>),
    CommentCtor(Box<Core>),
    PiCtor {
        target: CoreName,
        value: Box<Core>,
    },
    DocCtor(Box<Core>),
    /// Value join detected by the optimizer: for each `outer` binding,
    /// probe `inner` by key equality (hash join at runtime). With
    /// `group` set, the matching inner items are mapped through the
    /// group's `match_body` and the concatenation is bound to the
    /// group's `let_var` for `body` (the let-bound join shape of XMark
    /// Q8/Q9 style queries).
    HashJoin {
        outer_var: VarId,
        outer: Box<Core>,
        inner_var: VarId,
        inner: Box<Core>,
        outer_key: Box<Core>,
        inner_key: Box<Core>,
        group: Option<GroupSpec>,
        body: Box<Core>,
    },
    /// An index-answerable absolute path/twig (planted by access-path
    /// selection, after all other rewrites). The runtime answers it from
    /// the anchored document's structural index when one is attached,
    /// and evaluates `fallback` — the original navigational subtree,
    /// semantically identical — otherwise.
    IndexScan {
        pattern: crate::access::AccessPattern,
        fallback: Box<Core>,
    },
}

impl Core {
    pub fn boxed(self) -> Box<Core> {
        Box::new(self)
    }

    /// Number of nodes in this expression tree (inlining heuristics).
    pub fn size(&self) -> usize {
        let mut n = 1;
        self.for_each_child(&mut |c| n += c.size());
        n
    }

    /// Visit direct children.
    pub fn for_each_child<'a>(&'a self, f: &mut dyn FnMut(&'a Core)) {
        use Core::*;
        match self {
            Const(_) | Empty | Var(_) | ContextItem | Root | Step { .. } => {}
            Seq(items) => {
                for c in items {
                    f(c)
                }
            }
            Range(a, b)
            | Arith(_, a, b)
            | Compare(_, a, b)
            | And(a, b)
            | Or(a, b)
            | Union(a, b)
            | Intersect(a, b)
            | Except(a, b) => {
                f(a);
                f(b);
            }
            Neg(a) | Ebv(a) | Ddo(a) | TextCtor(a) | CommentCtor(a) | DocCtor(a) => f(a),
            For { source, body, .. } => {
                f(source);
                f(body);
            }
            Let { value, body, .. } => {
                f(value);
                f(body);
            }
            OrderedFlwor {
                clauses,
                where_clause,
                order,
                body,
                ..
            } => {
                for c in clauses {
                    match c {
                        CoreClause::For { source, .. } => f(source),
                        CoreClause::Let { value, .. } => f(value),
                        CoreClause::GroupLet {
                            inner,
                            inner_key,
                            outer_key,
                            match_body,
                            ..
                        } => {
                            f(inner);
                            f(inner_key);
                            f(outer_key);
                            f(match_body);
                        }
                    }
                }
                if let Some(w) = where_clause {
                    f(w);
                }
                for o in order {
                    f(&o.key);
                }
                f(body);
            }
            If {
                cond,
                then_branch,
                else_branch,
            } => {
                f(cond);
                f(then_branch);
                f(else_branch);
            }
            Quantified {
                source, satisfies, ..
            } => {
                f(source);
                f(satisfies);
            }
            PathMap { input, step } => {
                f(input);
                f(step);
            }
            Filter { input, predicate } => {
                f(input);
                f(predicate);
            }
            PositionConst { input, .. } => f(input),
            Builtin(_, args) | UserCall(_, args) => {
                for c in args {
                    f(c)
                }
            }
            InstanceOf(a, _) | CastAs(a, _, _) | CastableAs(a, _, _) | TreatAs(a, _) => f(a),
            Typeswitch {
                operand,
                cases,
                default_body,
                ..
            } => {
                f(operand);
                for c in cases {
                    f(&c.body);
                }
                f(default_body);
            }
            ElemCtor { name, content, .. } => {
                if let CoreName::Computed(e) = name {
                    f(e);
                }
                for c in content {
                    f(c)
                }
            }
            AttrCtor { name, value } => {
                if let CoreName::Computed(e) = name {
                    f(e);
                }
                for c in value {
                    f(c)
                }
            }
            PiCtor { target, value } => {
                if let CoreName::Computed(e) = target {
                    f(e);
                }
                f(value);
            }
            HashJoin {
                outer,
                inner,
                outer_key,
                inner_key,
                group,
                body,
                ..
            } => {
                f(outer);
                f(inner);
                f(outer_key);
                f(inner_key);
                if let Some(g) = group {
                    f(&g.match_body);
                }
                f(body);
            }
            IndexScan { fallback, .. } => f(fallback),
        }
    }

    /// Visit direct children mutably.
    pub fn for_each_child_mut(&mut self, f: &mut dyn FnMut(&mut Core)) {
        use Core::*;
        match self {
            Const(_) | Empty | Var(_) | ContextItem | Root | Step { .. } => {}
            Seq(items) => {
                for c in items {
                    f(c)
                }
            }
            Range(a, b)
            | Arith(_, a, b)
            | Compare(_, a, b)
            | And(a, b)
            | Or(a, b)
            | Union(a, b)
            | Intersect(a, b)
            | Except(a, b) => {
                f(a);
                f(b);
            }
            Neg(a) | Ebv(a) | Ddo(a) | TextCtor(a) | CommentCtor(a) | DocCtor(a) => f(a),
            For { source, body, .. } => {
                f(source);
                f(body);
            }
            Let { value, body, .. } => {
                f(value);
                f(body);
            }
            OrderedFlwor {
                clauses,
                where_clause,
                order,
                body,
                ..
            } => {
                for c in clauses {
                    match c {
                        CoreClause::For { source, .. } => f(source),
                        CoreClause::Let { value, .. } => f(value),
                        CoreClause::GroupLet {
                            inner,
                            inner_key,
                            outer_key,
                            match_body,
                            ..
                        } => {
                            f(inner);
                            f(inner_key);
                            f(outer_key);
                            f(match_body);
                        }
                    }
                }
                if let Some(w) = where_clause {
                    f(w);
                }
                for o in order {
                    f(&mut o.key);
                }
                f(body);
            }
            If {
                cond,
                then_branch,
                else_branch,
            } => {
                f(cond);
                f(then_branch);
                f(else_branch);
            }
            Quantified {
                source, satisfies, ..
            } => {
                f(source);
                f(satisfies);
            }
            PathMap { input, step } => {
                f(input);
                f(step);
            }
            Filter { input, predicate } => {
                f(input);
                f(predicate);
            }
            PositionConst { input, .. } => f(input),
            Builtin(_, args) | UserCall(_, args) => {
                for c in args {
                    f(c)
                }
            }
            InstanceOf(a, _) | CastAs(a, _, _) | CastableAs(a, _, _) | TreatAs(a, _) => f(a),
            Typeswitch {
                operand,
                cases,
                default_body,
                ..
            } => {
                f(operand);
                for c in cases {
                    f(&mut c.body);
                }
                f(default_body);
            }
            ElemCtor { name, content, .. } => {
                if let CoreName::Computed(e) = name {
                    f(e);
                }
                for c in content {
                    f(c)
                }
            }
            AttrCtor { name, value } => {
                if let CoreName::Computed(e) = name {
                    f(e);
                }
                for c in value {
                    f(c)
                }
            }
            PiCtor { target, value } => {
                if let CoreName::Computed(e) = target {
                    f(e);
                }
                f(value);
            }
            HashJoin {
                outer,
                inner,
                outer_key,
                inner_key,
                group,
                body,
                ..
            } => {
                f(outer);
                f(inner);
                f(outer_key);
                f(inner_key);
                if let Some(g) = group {
                    f(&mut g.match_body);
                }
                f(body);
            }
            IndexScan { fallback, .. } => f(fallback),
        }
    }

    /// Which variables does this node *bind* for (parts of) its children?
    pub fn bound_vars(&self) -> Vec<VarId> {
        use Core::*;
        match self {
            For { var, position, .. } => {
                let mut v = vec![*var];
                if let Some(p) = position {
                    v.push(*p);
                }
                v
            }
            Let { var, .. } => vec![*var],
            Quantified { var, .. } => vec![*var],
            HashJoin {
                outer_var,
                inner_var,
                group,
                ..
            } => {
                let mut v = vec![*outer_var, *inner_var];
                if let Some(g) = group {
                    v.push(g.let_var);
                }
                v
            }
            OrderedFlwor { clauses, .. } => clauses
                .iter()
                .flat_map(|c| match c {
                    CoreClause::For { var, position, .. } => {
                        let mut v = vec![*var];
                        if let Some(p) = position {
                            v.push(*p);
                        }
                        v
                    }
                    CoreClause::Let { var, .. } => vec![*var],
                    CoreClause::GroupLet { var, inner_var, .. } => vec![*var, *inner_var],
                })
                .collect(),
            Typeswitch {
                cases, default_var, ..
            } => {
                let mut v: Vec<VarId> = cases.iter().filter_map(|c| c.var).collect();
                if let Some(d) = default_var {
                    v.push(*d);
                }
                v
            }
            _ => Vec::new(),
        }
    }
}

/// A compiled user function.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreFunction {
    pub name: QName,
    pub params: Vec<(VarId, Option<SequenceType>)>,
    pub return_type: Option<SequenceType>,
    pub body: Core,
}

/// A compiled module: function table, global variables and the body.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreModule {
    pub functions: Vec<CoreFunction>,
    /// Globals evaluated in order before the body; `None` value =
    /// external (must be supplied by the dynamic context).
    pub globals: Vec<(QName, VarId, Option<Core>)>,
    pub body: Core,
    /// Total registers allocated (frame size for the runtime).
    pub var_count: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_counts_nodes() {
        let e = Core::Arith(
            ArithOp::Add,
            Core::Const(AtomicValue::Integer(1)).boxed(),
            Core::Const(AtomicValue::Integer(2)).boxed(),
        );
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn bound_vars_of_binders() {
        let f = Core::For {
            var: VarId(0),
            position: Some(VarId(1)),
            source: Core::Empty.boxed(),
            body: Core::Var(VarId(0)).boxed(),
        };
        assert_eq!(f.bound_vars(), vec![VarId(0), VarId(1)]);
        assert!(Core::Empty.bound_vars().is_empty());
    }

    #[test]
    fn child_visitors_agree() {
        let mut e = Core::Seq(vec![
            Core::Const(AtomicValue::Integer(1)),
            Core::Ddo(Core::Root.boxed()),
        ]);
        let mut count = 0;
        e.for_each_child(&mut |_| count += 1);
        assert_eq!(count, 2);
        let mut count_mut = 0;
        e.for_each_child_mut(&mut |_| count_mut += 1);
        assert_eq!(count_mut, 2);
    }
}
