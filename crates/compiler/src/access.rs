//! Access-path selection: recognize absolute path/twig subtrees of the
//! optimized core tree and wrap them in [`Core::IndexScan`] so the
//! runtime can answer them from a document's structural index (tag/path
//! inverted lists + structural/twig joins) instead of navigating.
//!
//! The pass is *advisory*: the original navigational plan rides along as
//! the scan's `fallback`, and the runtime uses it whenever the anchored
//! document has no index (or there is no context node at all). That
//! keeps the rewrite semantics-free — the only thing the pattern
//! encodes is a query shape the index subsystem can answer exactly:
//!
//! * anchored at the context root (`/…`, `//…`) or a `fn:doc(<const>)`
//!   call;
//! * trunk steps along `child`/`descendant` axes with simple QName
//!   tests (including the uncollapsed `descendant-or-self::node()` +
//!   `child::t` spelling of `//t`), ending in an element or attribute;
//! * predicates that are pure relative existence paths of the same step
//!   shapes (they become twig branches — existence semantics is exactly
//!   the twig-join semantics);
//! * attribute steps only in leaf position (attributes have no
//!   children).
//!
//! Anything else — wildcards, positional or value predicates, reverse
//! axes, computed names — leaves the subtree untouched.

use crate::core_expr::{AxisName, Core, CoreModule, NodeTest};
use std::fmt;
use xqr_xdm::{AtomicValue, QName};

/// Where an access pattern is anchored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessAnchor {
    /// The root of the context node's tree (leading `/` or `//`).
    ContextRoot,
    /// `fn:doc("uri")` with a constant URI.
    Doc(String),
}

/// Edge from a pattern node to its parent (XPath `/` vs `//`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessEdge {
    Child,
    Descendant,
}

/// One node of the pattern twig.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessNode {
    pub name: QName,
    pub edge: AccessEdge,
    /// Parent node index; `None` for the first trunk step (relative to
    /// the anchor). Always less than the node's own index.
    pub parent: Option<usize>,
    /// An attribute test (`@name`); always a leaf.
    pub attribute: bool,
}

/// A path/twig shape the index subsystem can answer: a tree of named
/// steps with an output node (the trunk's last step). Branch nodes are
/// existence constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessPattern {
    pub anchor: AccessAnchor,
    pub nodes: Vec<AccessNode>,
    /// Index of the node whose matches the scan returns.
    pub output: usize,
}

impl AccessPattern {
    /// Is this a linear path (no branches)? Linear patterns are answered
    /// entirely from the path dictionary; branching ones run a twig join
    /// over path-filtered lists.
    pub fn is_linear(&self) -> bool {
        // Linear ⇔ every node's parent is the previous node AND the
        // output is the chain tip. `//a[d]` is structurally a chain
        // a→d but outputs `a`: the `[d]` branch is an existence
        // condition a pure dictionary lookup on `a` would drop, so it
        // must go through the twig join.
        self.output == self.nodes.len() - 1
            && self
                .nodes
                .iter()
                .enumerate()
                .all(|(i, n)| n.parent == i.checked_sub(1))
    }

    /// Children of node `i`, in insertion order.
    pub fn children_of(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(move |(_, n)| n.parent == Some(i))
            .map(|(c, _)| c)
    }

    /// Is node `i` on the trunk (the anchor→output chain)?
    fn on_trunk(&self, i: usize) -> bool {
        let mut cur = Some(self.output);
        while let Some(c) = cur {
            if c == i {
                return true;
            }
            cur = self.nodes[c].parent;
        }
        false
    }
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let AccessAnchor::Doc(uri) = &self.anchor {
            write!(f, "doc({uri:?})")?;
        }
        let root = self
            .nodes
            .iter()
            .position(|n| n.parent.is_none())
            .unwrap_or(0);
        self.fmt_node(f, root, false)
    }
}

impl AccessPattern {
    fn fmt_node(&self, f: &mut fmt::Formatter<'_>, i: usize, branch_root: bool) -> fmt::Result {
        let n = &self.nodes[i];
        // Branch roots are relative: `[author]`, `[.//last]`.
        f.write_str(match (n.edge, branch_root) {
            (AccessEdge::Child, false) => "/",
            (AccessEdge::Child, true) => "",
            (AccessEdge::Descendant, false) => "//",
            (AccessEdge::Descendant, true) => ".//",
        })?;
        if n.attribute {
            f.write_str("@")?;
        }
        write!(f, "{}", n.name)?;
        let mut trunk_child = None;
        for c in self.children_of(i) {
            if self.on_trunk(c) {
                trunk_child = Some(c);
            } else {
                f.write_str("[")?;
                self.fmt_node(f, c, true)?;
                f.write_str("]")?;
            }
        }
        if let Some(c) = trunk_child {
            self.fmt_node(f, c, false)?;
        }
        Ok(())
    }
}

/// Replace every maximal index-answerable subtree of the module with
/// [`Core::IndexScan`], keeping the original subtree as the runtime
/// fallback. Returns the number of scans planted.
pub fn select_access_paths(module: &mut CoreModule) -> usize {
    let mut count = 0;
    rewrite_expr(&mut module.body, &mut count);
    for func in &mut module.functions {
        rewrite_expr(&mut func.body, &mut count);
    }
    for (_, _, value) in &mut module.globals {
        if let Some(v) = value {
            rewrite_expr(v, &mut count);
        }
    }
    count
}

fn rewrite_expr(e: &mut Core, count: &mut usize) {
    if let Some(pattern) = extract_pattern(e) {
        let fallback = std::mem::replace(e, Core::Empty);
        *e = Core::IndexScan {
            pattern,
            fallback: fallback.boxed(),
        };
        *count += 1;
        return; // the fallback stays purely navigational
    }
    e.for_each_child_mut(&mut |c| rewrite_expr(c, count));
}

/// Try to read `e` as a complete access pattern.
pub fn extract_pattern(e: &Core) -> Option<AccessPattern> {
    let mut nodes = Vec::new();
    let (anchor, last, pending_gap) = trunk(e, &mut nodes)?;
    // The pattern must end on a named step (a trailing dos::node() would
    // select nodes of every kind — not index-answerable).
    if pending_gap {
        return None;
    }
    let output = last?;
    Some(AccessPattern {
        anchor,
        nodes,
        output,
    })
}

/// Parse state while walking a path chain: the node new steps attach to
/// (`None` = the anchor itself) and whether a `descendant-or-self::
/// node()` gap is pending (turning the next step's edge into `//`).
type ChainState = (Option<usize>, bool);

/// Parse the absolute trunk: anchor + step chain.
fn trunk(e: &Core, nodes: &mut Vec<AccessNode>) -> Option<(AccessAnchor, Option<usize>, bool)> {
    match e {
        Core::Ddo(inner) => trunk(inner, nodes),
        Core::Root => Some((AccessAnchor::ContextRoot, None, false)),
        Core::Builtin("doc", args) if args.len() == 1 => match &args[0] {
            Core::Const(AtomicValue::String(uri)) => {
                Some((AccessAnchor::Doc(uri.to_string()), None, false))
            }
            _ => None,
        },
        Core::PathMap { input, step } => {
            let (anchor, attach, gap) = trunk(input, nodes)?;
            let (attach, gap) = chain(step, nodes, (attach, gap))?;
            Some((anchor, attach, gap))
        }
        _ => None,
    }
}

/// Parse a (possibly nested) chain of step-position expressions.
fn chain(e: &Core, nodes: &mut Vec<AccessNode>, state: ChainState) -> Option<ChainState> {
    match e {
        Core::Ddo(inner) => chain(inner, nodes, state),
        Core::PathMap { input, step } => {
            let state = chain(input, nodes, state)?;
            chain(step, nodes, state)
        }
        Core::Step { axis, test } => apply_step(*axis, test, nodes, state),
        Core::Filter { input, predicate } => {
            let (attach, gap) = chain(input, nodes, state)?;
            // The predicate applies to a concrete step's matches.
            let filtered = attach?;
            if gap || nodes[filtered].attribute {
                return None;
            }
            branch(predicate, nodes, filtered)?;
            Some((Some(filtered), false))
        }
        _ => None,
    }
}

/// One axis step.
fn apply_step(
    axis: AxisName,
    test: &NodeTest,
    nodes: &mut Vec<AccessNode>,
    (attach, gap): ChainState,
) -> Option<ChainState> {
    // Attributes are leaves: nothing steps out of an attribute.
    if let Some(a) = attach {
        if nodes[a].attribute {
            return None;
        }
    }
    match (axis, test) {
        (AxisName::DescendantOrSelf, NodeTest::AnyKind) => Some((attach, true)),
        (AxisName::Child, NodeTest::Name(q)) => {
            let edge = if gap {
                AccessEdge::Descendant
            } else {
                AccessEdge::Child
            };
            Some((Some(push(nodes, q, edge, attach, false)), false))
        }
        (AxisName::Descendant, NodeTest::Name(q)) => Some((
            Some(push(nodes, q, AccessEdge::Descendant, attach, false)),
            false,
        )),
        (AxisName::Attribute, NodeTest::Name(q)) => {
            let edge = if gap {
                AccessEdge::Descendant
            } else {
                AccessEdge::Child
            };
            Some((Some(push(nodes, q, edge, attach, true)), false))
        }
        _ => None,
    }
}

fn push(
    nodes: &mut Vec<AccessNode>,
    name: &QName,
    edge: AccessEdge,
    parent: Option<usize>,
    attribute: bool,
) -> usize {
    nodes.push(AccessNode {
        name: name.clone(),
        edge,
        parent,
        attribute,
    });
    nodes.len() - 1
}

/// Parse a predicate as a relative existence path hanging off `parent`.
fn branch(e: &Core, nodes: &mut Vec<AccessNode>, parent: usize) -> Option<()> {
    let (last, gap) = chain(e, nodes, (Some(parent), false))?;
    // Must have added at least one named step and not end on a dangling
    // dos gap.
    if gap || last == Some(parent) || last.is_none() {
        return None;
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compile, CompileOptions};

    fn pattern_of(query: &str) -> Option<AccessPattern> {
        let opts = CompileOptions {
            access_paths: false, // extract by hand below
            ..Default::default()
        };
        let compiled = compile(query, &opts).unwrap();
        extract_pattern(&compiled.module.body)
    }

    #[test]
    fn linear_paths_extract() {
        let p = pattern_of("/site/people/person").unwrap();
        assert!(p.is_linear());
        assert_eq!(p.nodes.len(), 3);
        assert_eq!(p.anchor, AccessAnchor::ContextRoot);
        assert!(p.nodes.iter().all(|n| !n.attribute));
        assert_eq!(p.to_string(), "/site/people/person");

        let p = pattern_of("//book/title").unwrap();
        assert!(p.is_linear());
        assert_eq!(p.nodes[0].edge, AccessEdge::Descendant);
        assert_eq!(p.nodes[1].edge, AccessEdge::Child);
        assert_eq!(p.to_string(), "//book/title");

        let p = pattern_of("//a//b").unwrap();
        assert_eq!(p.nodes[1].edge, AccessEdge::Descendant);
    }

    #[test]
    fn twigs_with_existence_predicates_extract() {
        let p = pattern_of("//book[author]/title").unwrap();
        assert!(!p.is_linear());
        assert_eq!(p.nodes.len(), 3);
        // book (trunk) → author (branch), title (trunk)
        assert_eq!(p.nodes[0].name.local_name(), "book");
        assert_eq!(p.nodes[0].edge, AccessEdge::Descendant);
        assert_eq!(p.output, 2);
        assert_eq!(p.to_string(), "//book[author]/title");

        let p = pattern_of("//book[author/last]/price").unwrap();
        assert_eq!(p.nodes.len(), 4);
        let p = pattern_of("//a[b][c]/d").unwrap();
        assert_eq!(p.nodes.len(), 4);
        assert_eq!(p.output, 3);
    }

    #[test]
    fn attribute_steps_extract_in_leaf_position_only() {
        let p = pattern_of("//a/@id").unwrap();
        assert!(p.nodes[1].attribute);
        assert_eq!(p.output, 1);
        let p = pattern_of("//a[@k]/b").unwrap();
        assert!(p.nodes[1].attribute);
        assert!(!p.nodes[2].attribute);
        // No steps out of attributes.
        assert!(pattern_of("//a/@id/x").is_none());
    }

    #[test]
    fn doc_anchored_paths_extract() {
        let p = pattern_of("doc(\"bib.xml\")//book/title").unwrap();
        assert_eq!(p.anchor, AccessAnchor::Doc("bib.xml".into()));
        // Constant folding upstream still yields a constant anchor…
        let p = pattern_of("doc(concat(\"bib\", \".xml\"))//book").unwrap();
        assert_eq!(p.anchor, AccessAnchor::Doc("bib.xml".into()));
        // …but a genuinely runtime-dependent URI is not extractable.
        assert!(pattern_of("doc(string(/uri))//book").is_none());
    }

    #[test]
    fn unsupported_shapes_do_not_extract() {
        for q in [
            "//a/*",             // wildcard
            "//a[1]",            // positional predicate
            "//a[b = 1]/c",      // value predicate
            "//a/text()",        // kind test
            "//a/..",            // reverse axis
            "1 + 2",             // not a path
            "//a[count(b) > 0]", // function predicate
        ] {
            assert!(pattern_of(q).is_none(), "{q} should not extract");
        }
    }

    #[test]
    fn selection_plants_scans_inside_larger_queries() {
        let compiled = compile("count(//a/b)", &CompileOptions::default()).unwrap();
        let Core::Builtin("count", args) = &compiled.module.body else {
            panic!("expected count call, got {:?}", compiled.module.body);
        };
        assert!(matches!(args[0], Core::IndexScan { .. }));
        assert_eq!(compiled.stats.get("index-access-path"), Some(&1));
    }

    #[test]
    fn selection_respects_the_option() {
        let opts = CompileOptions {
            access_paths: false,
            ..Default::default()
        };
        let compiled = compile("//a/b", &opts).unwrap();
        assert!(!format!("{:?}", compiled.module.body).contains("IndexScan"));
    }
}
