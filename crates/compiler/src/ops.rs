//! Value-level arithmetic — the talk's operator rules, shared by the
//! optimizer's constant folder and the runtime:
//!
//! "atomize all operands; if either operand is (), => (); if an operand
//! is untyped, cast to xs:double; if the operand types differ but can be
//! promoted to a common type, do so; if the operator is consistent with
//! the types, apply it; else throw a type exception."

use xqr_xdm::{AtomicType, AtomicValue, Decimal, Duration, Error, ErrorCode, Result};
use xqr_xqparser::ast::ArithOp;

/// Apply a binary arithmetic operator to two single atomic values.
pub fn arith(op: ArithOp, a: &AtomicValue, b: &AtomicValue) -> Result<AtomicValue> {
    use AtomicValue as V;
    // Untyped operands cast to xs:double.
    let a = promote_untyped(a)?;
    let b = promote_untyped(b)?;

    // Date/time ± duration and duration arithmetic first.
    match (&a, &b, op) {
        (
            V::Date(d),
            V::Duration(u) | V::YearMonthDuration(u) | V::DayTimeDuration(u),
            ArithOp::Add,
        ) => {
            return Ok(V::Date(d.add_duration(*u)?));
        }
        (
            V::Date(d),
            V::Duration(u) | V::YearMonthDuration(u) | V::DayTimeDuration(u),
            ArithOp::Sub,
        ) => {
            return Ok(V::Date(d.add_duration(u.negate())?));
        }
        (
            V::DateTime(d),
            V::Duration(u) | V::YearMonthDuration(u) | V::DayTimeDuration(u),
            ArithOp::Add,
        ) => {
            return Ok(V::DateTime(d.add_duration(*u)?));
        }
        (
            V::DateTime(d),
            V::Duration(u) | V::YearMonthDuration(u) | V::DayTimeDuration(u),
            ArithOp::Sub,
        ) => {
            return Ok(V::DateTime(d.add_duration(u.negate())?));
        }
        (
            V::Duration(u) | V::YearMonthDuration(u) | V::DayTimeDuration(u),
            V::Date(d),
            ArithOp::Add,
        ) => {
            return Ok(V::Date(d.add_duration(*u)?));
        }
        (
            V::Duration(u) | V::YearMonthDuration(u) | V::DayTimeDuration(u),
            V::DateTime(d),
            ArithOp::Add,
        ) => {
            return Ok(V::DateTime(d.add_duration(*u)?));
        }
        (V::DateTime(x), V::DateTime(y), ArithOp::Sub) => {
            return Ok(V::DayTimeDuration(x.sub_datetime(y, 0)));
        }
        (V::Date(x), V::Date(y), ArithOp::Sub) => {
            return Ok(V::DayTimeDuration(
                x.to_datetime().sub_datetime(&y.to_datetime(), 0),
            ));
        }
        (
            V::Duration(x) | V::YearMonthDuration(x) | V::DayTimeDuration(x),
            V::Duration(y) | V::YearMonthDuration(y) | V::DayTimeDuration(y),
            ArithOp::Add,
        ) => {
            return duration_value(x.checked_add(*y)?);
        }
        (
            V::Duration(x) | V::YearMonthDuration(x) | V::DayTimeDuration(x),
            V::Duration(y) | V::YearMonthDuration(y) | V::DayTimeDuration(y),
            ArithOp::Sub,
        ) => {
            return duration_value(x.checked_add(y.negate())?);
        }
        (V::Duration(x) | V::YearMonthDuration(x) | V::DayTimeDuration(x), _, ArithOp::Mul)
            if b.is_numeric() =>
        {
            return duration_value(x.scale(b.to_double()?)?);
        }
        (_, V::Duration(y) | V::YearMonthDuration(y) | V::DayTimeDuration(y), ArithOp::Mul)
            if a.is_numeric() =>
        {
            return duration_value(y.scale(a.to_double()?)?);
        }
        (V::Duration(x) | V::YearMonthDuration(x) | V::DayTimeDuration(x), _, ArithOp::Div)
            if b.is_numeric() =>
        {
            let d = b.to_double()?;
            if d == 0.0 {
                return Err(Error::new(
                    ErrorCode::DivisionByZero,
                    "duration div by zero",
                ));
            }
            return duration_value(x.scale(1.0 / d)?);
        }
        _ => {}
    }

    if !a.is_numeric() || !b.is_numeric() {
        return Err(Error::type_error(format!(
            "operator {} not defined for {} and {}",
            op.symbol(),
            a.type_of().name(),
            b.type_of().name()
        )));
    }
    numeric_arith(op, &a, &b)
}

fn duration_value(d: Duration) -> Result<AtomicValue> {
    Ok(if d.is_year_month() && !d.is_day_time() {
        AtomicValue::YearMonthDuration(d)
    } else if (d.is_day_time() && !d.is_year_month()) || (d.months == 0 && d.millis == 0) {
        AtomicValue::DayTimeDuration(d)
    } else {
        AtomicValue::Duration(d)
    })
}

fn promote_untyped(v: &AtomicValue) -> Result<AtomicValue> {
    match v {
        AtomicValue::UntypedAtomic(s) => Ok(AtomicValue::Double(
            xqr_xdm::parse_double(s.trim())
                .map_err(|_| Error::value(format!("cannot promote untyped {s:?} to xs:double")))?,
        )),
        other => Ok(other.clone()),
    }
}

/// The promoted common numeric type of two numeric values.
fn common_numeric(a: AtomicType, b: AtomicType) -> AtomicType {
    use AtomicType::*;
    match (a, b) {
        (Double, _) | (_, Double) => Double,
        (Float, _) | (_, Float) => Float,
        (Decimal, _) | (_, Decimal) => Decimal,
        _ => Integer,
    }
}

fn numeric_arith(op: ArithOp, a: &AtomicValue, b: &AtomicValue) -> Result<AtomicValue> {
    use AtomicValue as V;
    let target = common_numeric(a.type_of(), b.type_of());
    // div on exact numerics yields decimal.
    let target = if op == ArithOp::Div && target == AtomicType::Integer {
        AtomicType::Decimal
    } else {
        target
    };
    match target {
        AtomicType::Integer => {
            let (x, y) = match (a, b) {
                (V::Integer(x), V::Integer(y)) => (*x, *y),
                _ => unreachable!("integer target implies integer operands"),
            };
            let r = match op {
                ArithOp::Add => x.checked_add(y),
                ArithOp::Sub => x.checked_sub(y),
                ArithOp::Mul => x.checked_mul(y),
                ArithOp::IDiv => {
                    if y == 0 {
                        return Err(Error::new(ErrorCode::DivisionByZero, "idiv by zero"));
                    }
                    x.checked_div(y)
                }
                ArithOp::Mod => {
                    if y == 0 {
                        return Err(Error::new(ErrorCode::DivisionByZero, "mod by zero"));
                    }
                    x.checked_rem(y)
                }
                ArithOp::Div => unreachable!("handled via decimal"),
            };
            r.map(V::Integer)
                .ok_or_else(|| Error::new(ErrorCode::Overflow, "integer overflow"))
        }
        AtomicType::Decimal => {
            let x = to_decimal(a)?;
            let y = to_decimal(b)?;
            Ok(match op {
                ArithOp::Add => V::Decimal(x.checked_add(y)?),
                ArithOp::Sub => V::Decimal(x.checked_sub(y)?),
                ArithOp::Mul => V::Decimal(x.checked_mul(y)?),
                ArithOp::Div => V::Decimal(x.checked_div(y)?),
                ArithOp::IDiv => {
                    let q = x.checked_idiv(y)?;
                    V::Integer(
                        i64::try_from(q)
                            .map_err(|_| Error::new(ErrorCode::Overflow, "idiv overflow"))?,
                    )
                }
                ArithOp::Mod => V::Decimal(x.checked_rem(y)?),
            })
        }
        AtomicType::Float => {
            let x = a.to_double()? as f32;
            let y = b.to_double()? as f32;
            float_arith(op, x as f64, y as f64).map(|d| V::Float(d as f32))
        }
        _ => {
            let x = a.to_double()?;
            let y = b.to_double()?;
            float_arith(op, x, y).map(V::Double)
        }
    }
}

fn float_arith(op: ArithOp, x: f64, y: f64) -> Result<f64> {
    Ok(match op {
        ArithOp::Add => x + y,
        ArithOp::Sub => x - y,
        ArithOp::Mul => x * y,
        ArithOp::Div => x / y, // IEEE: yields ±INF / NaN, no error
        ArithOp::IDiv => {
            if y == 0.0 {
                return Err(Error::new(ErrorCode::DivisionByZero, "idiv by zero"));
            }
            if x.is_nan() || x.is_infinite() {
                return Err(Error::value("idiv of non-finite value"));
            }
            (x / y).trunc()
        }
        ArithOp::Mod => {
            if y == 0.0 {
                f64::NAN
            } else {
                x % y
            }
        }
    })
}

fn to_decimal(v: &AtomicValue) -> Result<Decimal> {
    match v {
        AtomicValue::Decimal(d) => Ok(*d),
        AtomicValue::Integer(i) => Ok(Decimal::from_i64(*i)),
        other => Decimal::from_f64(other.to_double()?),
    }
}

/// Unary minus.
pub fn negate(v: &AtomicValue) -> Result<AtomicValue> {
    use AtomicValue as V;
    match promote_untyped(v)? {
        V::Integer(i) => i
            .checked_neg()
            .map(V::Integer)
            .ok_or_else(|| Error::new(ErrorCode::Overflow, "integer overflow")),
        V::Decimal(d) => Ok(V::Decimal(d.checked_neg()?)),
        V::Double(d) => Ok(V::Double(-d)),
        V::Float(f) => Ok(V::Float(-f)),
        other => Err(Error::type_error(format!(
            "unary minus not defined for {}",
            other.type_of().name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_xdm::AtomicValue as V;

    fn int(i: i64) -> V {
        V::Integer(i)
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(arith(ArithOp::Add, &int(1), &int(4)).unwrap(), int(5));
        assert_eq!(arith(ArithOp::Mul, &int(4), &int(8)).unwrap(), int(32));
        assert_eq!(arith(ArithOp::IDiv, &int(7), &int(2)).unwrap(), int(3));
        assert_eq!(arith(ArithOp::Mod, &int(-7), &int(3)).unwrap(), int(-1));
    }

    #[test]
    fn integer_div_yields_decimal() {
        let r = arith(ArithOp::Div, &int(5), &int(6)).unwrap();
        assert_eq!(r.type_of(), AtomicType::Decimal);
        let r = arith(ArithOp::Div, &int(5), &int(2)).unwrap();
        assert_eq!(r.string_value(), "2.5");
    }

    #[test]
    fn promotion_ladder() {
        let d = V::Decimal(Decimal::parse("1.5").unwrap());
        assert_eq!(
            arith(ArithOp::Add, &int(1), &d).unwrap().type_of(),
            AtomicType::Decimal
        );
        let f = V::Double(1.0);
        assert_eq!(
            arith(ArithOp::Add, &d, &f).unwrap().type_of(),
            AtomicType::Double
        );
    }

    #[test]
    fn untyped_promotes_to_double() {
        // The talk: <a>42</a> + 1 works (untyped → double); <a>baz</a> + 1 errors.
        let u = V::untyped("42");
        assert_eq!(arith(ArithOp::Add, &u, &int(1)).unwrap(), V::Double(43.0));
        let bad = V::untyped("baz");
        assert!(arith(ArithOp::Add, &bad, &int(1)).is_err());
    }

    #[test]
    fn double_division_is_ieee() {
        let r = arith(ArithOp::Div, &V::Double(1.0), &V::Double(0.0)).unwrap();
        assert_eq!(r, V::Double(f64::INFINITY));
        // but exact numerics error
        assert_eq!(
            arith(ArithOp::Div, &int(1), &int(0)).unwrap_err().code,
            ErrorCode::DivisionByZero
        );
        assert_eq!(
            arith(ArithOp::IDiv, &int(1), &int(0)).unwrap_err().code,
            ErrorCode::DivisionByZero
        );
    }

    #[test]
    fn strings_do_not_add() {
        let s = V::string("x");
        let e = arith(ArithOp::Add, &s, &int(1)).unwrap_err();
        assert_eq!(e.code, ErrorCode::Type);
    }

    #[test]
    fn date_plus_duration() {
        let d = AtomicValue::parse_as("2002-05-20", AtomicType::Date).unwrap();
        let dur = AtomicValue::parse_as("P1M", AtomicType::YearMonthDuration).unwrap();
        let r = arith(ArithOp::Add, &d, &dur).unwrap();
        assert_eq!(r.string_value(), "2002-06-20");
        let r = arith(ArithOp::Sub, &d, &dur).unwrap();
        assert_eq!(r.string_value(), "2002-04-20");
    }

    #[test]
    fn datetime_difference() {
        let a = AtomicValue::parse_as("2004-01-02T00:00:00Z", AtomicType::DateTime).unwrap();
        let b = AtomicValue::parse_as("2004-01-01T00:00:00Z", AtomicType::DateTime).unwrap();
        let r = arith(ArithOp::Sub, &a, &b).unwrap();
        assert_eq!(r.string_value(), "P1D");
    }

    #[test]
    fn duration_scaling() {
        let dur = AtomicValue::parse_as("PT2H", AtomicType::DayTimeDuration).unwrap();
        let r = arith(ArithOp::Mul, &dur, &V::Double(1.5)).unwrap();
        assert_eq!(r.string_value(), "PT3H");
        let r = arith(ArithOp::Div, &dur, &int(2)).unwrap();
        assert_eq!(r.string_value(), "PT1H");
    }

    #[test]
    fn negate_values() {
        assert_eq!(negate(&int(5)).unwrap(), int(-5));
        assert_eq!(negate(&V::Double(2.5)).unwrap(), V::Double(-2.5));
        assert!(negate(&V::string("x")).is_err());
        assert_eq!(negate(&V::untyped("3")).unwrap(), V::Double(-3.0));
    }
}
