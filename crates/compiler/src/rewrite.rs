//! The rewrite-rule optimizer — the talk's "library of rewriting rules
//! (~100), and a hard-coded strategy".
//!
//! Rules fire bottom-up to a fixpoint (bounded pass count). Every rule
//! respects the contract from the talk: the rewritten expression has a
//! subtype of the original's type and no new free variables; rules with
//! side-condition subtleties (LET folding vs. node construction,
//! where-hoisting vs. errors, ddo-elimination vs. the ordering table)
//! cite their slide in a comment.
//!
//! [`RewriteConfig`] switches whole rule families on/off so the ablation
//! experiment (E7) can measure each family's contribution.

use crate::analysis::{
    can_raise_error, creates_nodes, order_facts_with, var_use, OrderFacts, UseCount,
};
use crate::core_expr::*;
use crate::ops;
use crate::typing::{infer, TypeEnv};
use std::collections::HashMap;
use xqr_xdm::{AtomicValue, SequenceType};
use xqr_xqparser::ast::{ArithOp, AxisName, CompOp, NodeTest};

/// Which rule families run. `all()` is the production default; the
/// ablation benches switch families off one at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteConfig {
    pub constant_folding: bool,
    pub let_folding: bool,
    pub for_simplification: bool,
    pub where_hoisting: bool,
    /// Hoist loop-invariant sub-expressions out of `for` bodies (the
    /// talk's "LET clause unfolding").
    pub loop_hoisting: bool,
    pub ddo_elimination: bool,
    pub path_rewrites: bool,
    pub function_inlining: bool,
    pub cse: bool,
    pub join_detection: bool,
    pub type_rewrites: bool,
    pub boolean_rewrites: bool,
    /// Upper bound on full bottom-up passes.
    pub max_passes: usize,
    /// Test-only fault injection for the differential fuzz harness's
    /// mutation sanity check: constant folding of an integer `a - b`
    /// deliberately computes `b - a`. A correct differential oracle must
    /// flag this miscompile within a few hundred generated cases. Never
    /// set outside the harness.
    pub debug_miscompile_sub: bool,
}

impl RewriteConfig {
    pub fn all() -> Self {
        RewriteConfig {
            constant_folding: true,
            let_folding: true,
            for_simplification: true,
            where_hoisting: true,
            loop_hoisting: true,
            ddo_elimination: true,
            path_rewrites: true,
            function_inlining: true,
            cse: true,
            join_detection: true,
            type_rewrites: true,
            boolean_rewrites: true,
            max_passes: 8,
            debug_miscompile_sub: false,
        }
    }

    pub fn none() -> Self {
        RewriteConfig {
            constant_folding: false,
            let_folding: false,
            for_simplification: false,
            where_hoisting: false,
            loop_hoisting: false,
            ddo_elimination: false,
            path_rewrites: false,
            function_inlining: false,
            cse: false,
            join_detection: false,
            type_rewrites: false,
            boolean_rewrites: false,
            max_passes: 1,
            debug_miscompile_sub: false,
        }
    }

    /// `all()` with one named family disabled (ablation helper).
    pub fn without(family: &str) -> Self {
        let mut c = Self::all();
        match family {
            "constant_folding" => c.constant_folding = false,
            "let_folding" => c.let_folding = false,
            "for_simplification" => c.for_simplification = false,
            "where_hoisting" => c.where_hoisting = false,
            "loop_hoisting" => c.loop_hoisting = false,
            "ddo_elimination" => c.ddo_elimination = false,
            "path_rewrites" => c.path_rewrites = false,
            "function_inlining" => c.function_inlining = false,
            "cse" => c.cse = false,
            "join_detection" => c.join_detection = false,
            "type_rewrites" => c.type_rewrites = false,
            "boolean_rewrites" => c.boolean_rewrites = false,
            other => panic!("unknown rule family {other:?}"),
        }
        c
    }
}

/// Per-rule firing counts (drives `explain` output and the E7 tables).
pub type RewriteStats = HashMap<&'static str, usize>;

pub struct Optimizer<'a> {
    config: RewriteConfig,
    functions: &'a [CoreFunction],
    /// Function indices that (transitively) call themselves — not
    /// inlineable.
    recursive: Vec<bool>,
    next_var: u32,
    /// Ordering facts for in-scope variables (globals seeded by
    /// `optimize_module`; binders push/pop during the pass). `for`-bound
    /// variables are single items, which is what lets per-item `Ddo`s in
    /// loop bodies disappear.
    var_facts: HashMap<VarId, OrderFacts>,
    pub stats: RewriteStats,
}

impl<'a> Optimizer<'a> {
    pub fn new(config: RewriteConfig, functions: &'a [CoreFunction], next_var: u32) -> Self {
        let recursive = compute_recursive(functions);
        Optimizer {
            config,
            functions,
            recursive,
            next_var,
            var_facts: HashMap::new(),
            stats: HashMap::new(),
        }
    }

    /// Seed facts for a variable bound outside the tree being optimized
    /// (globals, function parameters).
    pub fn seed_var_facts(&mut self, var: VarId, facts: OrderFacts) {
        self.var_facts.insert(var, facts);
    }

    pub fn var_count(&self) -> u32 {
        self.next_var
    }

    fn fresh(&mut self) -> VarId {
        let id = VarId(self.next_var);
        self.next_var += 1;
        id
    }

    fn fired(&mut self, rule: &'static str) {
        *self.stats.entry(rule).or_insert(0) += 1;
    }

    /// Optimize one expression tree to a fixpoint.
    pub fn run(&mut self, e: Core) -> Core {
        let mut cur = e;
        for _ in 0..self.config.max_passes {
            let (next, changed) = self.pass(cur);
            cur = next;
            if !changed {
                break;
            }
        }
        cur
    }

    /// One bottom-up pass; returns (expr, changed).
    fn pass(&mut self, mut e: Core) -> (Core, bool) {
        let mut changed = false;
        // Record binder facts for the children we are about to visit.
        let bound: Vec<(VarId, Option<OrderFacts>)> = match &e {
            Core::For {
                var,
                position,
                source,
                ..
            } => {
                let mut v = vec![(*var, self.var_facts.insert(*var, OrderFacts::SINGLE))];
                let _ = source;
                if let Some(p) = position {
                    v.push((*p, self.var_facts.insert(*p, OrderFacts::SINGLE)));
                }
                v
            }
            Core::Quantified { var, .. } => {
                vec![(*var, self.var_facts.insert(*var, OrderFacts::SINGLE))]
            }
            Core::Let { var, value, .. } => {
                let f = order_facts_with(value, &self.var_facts);
                vec![(*var, self.var_facts.insert(*var, f))]
            }
            _ => Vec::new(),
        };
        // Children first.
        e.for_each_child_mut(&mut |c| {
            let taken = std::mem::replace(c, Core::Empty);
            let (new, ch) = self.pass(taken);
            *c = new;
            changed |= ch;
        });
        for (v, old) in bound.into_iter().rev() {
            match old {
                Some(f) => {
                    self.var_facts.insert(v, f);
                }
                None => {
                    self.var_facts.remove(&v);
                }
            }
        }
        // Then this node, repeatedly while rules fire.
        loop {
            match self.apply_here(&e) {
                Some(new) => {
                    e = new;
                    changed = true;
                }
                None => return (e, changed),
            }
        }
    }

    fn apply_here(&mut self, e: &Core) -> Option<Core> {
        if self.config.constant_folding {
            if let Some(n) = self.constant_fold(e) {
                return Some(n);
            }
        }
        if self.config.boolean_rewrites {
            if let Some(n) = self.boolean_simplify(e) {
                return Some(n);
            }
        }
        if self.config.let_folding {
            if let Some(n) = self.let_fold(e) {
                return Some(n);
            }
        }
        if self.config.for_simplification {
            if let Some(n) = self.for_simplify(e) {
                return Some(n);
            }
        }
        if self.config.where_hoisting {
            if let Some(n) = self.where_hoist(e) {
                return Some(n);
            }
        }
        if self.config.loop_hoisting {
            if let Some(n) = self.loop_hoist(e) {
                return Some(n);
            }
        }
        if self.config.path_rewrites {
            if let Some(n) = self.path_rewrite(e) {
                return Some(n);
            }
        }
        if self.config.ddo_elimination {
            if let Some(n) = self.ddo_eliminate(e) {
                return Some(n);
            }
        }
        if self.config.function_inlining {
            if let Some(n) = self.inline_function(e) {
                return Some(n);
            }
        }
        if self.config.join_detection {
            if let Some(n) = self.detect_join(e) {
                return Some(n);
            }
            if let Some(n) = self.detect_group_join(e) {
                return Some(n);
            }
            if let Some(n) = self.decorrelate_flwor(e) {
                return Some(n);
            }
        }
        if self.config.cse {
            if let Some(n) = self.factor_common(e) {
                return Some(n);
            }
        }
        if self.config.type_rewrites {
            if let Some(n) = self.type_rewrite(e) {
                return Some(n);
            }
        }
        None
    }

    // ---- constant folding ----------------------------------------------------

    fn constant_fold(&mut self, e: &Core) -> Option<Core> {
        match e {
            Core::Arith(op, a, b) => {
                if let (Core::Const(x), Core::Const(y)) = (&**a, &**b) {
                    // The harness's mutation sanity check: fold integer
                    // subtraction with the operands swapped.
                    let (x, y) = if self.config.debug_miscompile_sub
                        && *op == ArithOp::Sub
                        && matches!((x, y), (AtomicValue::Integer(_), AtomicValue::Integer(_)))
                    {
                        (y, x)
                    } else {
                        (x, y)
                    };
                    // Fold only when the operation succeeds; a constant
                    // error stays for the runtime to raise (lazily).
                    if let Ok(v) = ops::arith(*op, x, y) {
                        self.fired("constant-fold-arith");
                        return Some(Core::Const(v));
                    }
                }
                None
            }
            Core::Neg(a) => {
                if let Core::Const(x) = &**a {
                    if let Ok(v) = ops::negate(x) {
                        self.fired("constant-fold-neg");
                        return Some(Core::Const(v));
                    }
                }
                None
            }
            Core::Compare(op, a, b) if op.is_value() || op.is_general() => {
                if let (Core::Const(x), Core::Const(y)) = (&**a, &**b) {
                    // Untyped constants behave differently under general
                    // comparison; fold only typed constants.
                    if !matches!(x, AtomicValue::UntypedAtomic(_))
                        && !matches!(y, AtomicValue::UntypedAtomic(_))
                    {
                        if let Ok(ord) = x.value_compare(y, 0) {
                            let b = match (op, ord) {
                                (_, None) => false, // NaN
                                (CompOp::ValEq | CompOp::GenEq, Some(o)) => o.is_eq(),
                                (CompOp::ValNe | CompOp::GenNe, Some(o)) => !o.is_eq(),
                                (CompOp::ValLt | CompOp::GenLt, Some(o)) => o.is_lt(),
                                (CompOp::ValLe | CompOp::GenLe, Some(o)) => o.is_le(),
                                (CompOp::ValGt | CompOp::GenGt, Some(o)) => o.is_gt(),
                                (CompOp::ValGe | CompOp::GenGe, Some(o)) => o.is_ge(),
                                _ => return None,
                            };
                            self.fired("constant-fold-compare");
                            return Some(Core::Const(AtomicValue::Boolean(b)));
                        }
                    }
                }
                None
            }
            Core::Ebv(inner) => match &**inner {
                Core::Const(v) => {
                    if let Ok(b) = v.effective_boolean_value() {
                        self.fired("constant-fold-ebv");
                        return Some(Core::Const(AtomicValue::Boolean(b)));
                    }
                    None
                }
                Core::Empty => {
                    self.fired("constant-fold-ebv");
                    Some(Core::Const(AtomicValue::Boolean(false)))
                }
                _ => None,
            },
            Core::If {
                cond,
                then_branch,
                else_branch,
            } => match &**cond {
                Core::Const(AtomicValue::Boolean(true)) => {
                    self.fired("constant-fold-if");
                    Some((**then_branch).clone())
                }
                Core::Const(AtomicValue::Boolean(false)) => {
                    self.fired("constant-fold-if");
                    Some((**else_branch).clone())
                }
                _ => None,
            },
            Core::Seq(items) => {
                // Flatten nested sequences, drop empties, unwrap singles.
                if items
                    .iter()
                    .any(|i| matches!(i, Core::Seq(_) | Core::Empty))
                {
                    let mut flat = Vec::with_capacity(items.len());
                    for i in items {
                        match i {
                            Core::Seq(inner) => flat.extend(inner.iter().cloned()),
                            Core::Empty => {}
                            other => flat.push(other.clone()),
                        }
                    }
                    self.fired("sequence-flatten");
                    return Some(match flat.len() {
                        0 => Core::Empty,
                        1 => flat.into_iter().next().expect("one element"),
                        _ => Core::Seq(flat),
                    });
                }
                None
            }
            Core::Builtin(name, args) => self.fold_builtin(name, args),
            Core::CastAs(inner, ty, _) => {
                if let Core::Const(v) = &**inner {
                    if let Ok(cast) = v.cast_to(*ty) {
                        self.fired("constant-fold-cast");
                        return Some(Core::Const(cast));
                    }
                }
                None
            }
            Core::CastableAs(inner, ty, _) => {
                if let Core::Const(v) = &**inner {
                    self.fired("constant-fold-castable");
                    return Some(Core::Const(AtomicValue::Boolean(v.castable_to(*ty))));
                }
                None
            }
            _ => None,
        }
    }

    fn fold_builtin(&mut self, name: &'static str, args: &[Core]) -> Option<Core> {
        let all_const = |e: &Core| -> Option<usize> {
            match e {
                Core::Empty => Some(0),
                Core::Const(_) => Some(1),
                Core::Seq(items) if items.iter().all(|i| matches!(i, Core::Const(_))) => {
                    Some(items.len())
                }
                _ => None,
            }
        };
        match name {
            "count" => {
                let n = all_const(args.first()?)?;
                self.fired("constant-fold-builtin");
                Some(Core::Const(AtomicValue::Integer(n as i64)))
            }
            "empty" | "exists" => {
                let n = all_const(args.first()?)?;
                self.fired("constant-fold-builtin");
                let b = if name == "empty" { n == 0 } else { n > 0 };
                Some(Core::Const(AtomicValue::Boolean(b)))
            }
            "not" => {
                if let Core::Const(v) = args.first()? {
                    if let Ok(b) = v.effective_boolean_value() {
                        self.fired("constant-fold-builtin");
                        return Some(Core::Const(AtomicValue::Boolean(!b)));
                    }
                }
                None
            }
            "true" => {
                self.fired("constant-fold-builtin");
                Some(Core::Const(AtomicValue::Boolean(true)))
            }
            "false" => {
                self.fired("constant-fold-builtin");
                Some(Core::Const(AtomicValue::Boolean(false)))
            }
            "concat" => {
                if args
                    .iter()
                    .all(|a| matches!(a, Core::Const(_) | Core::Empty))
                {
                    let mut s = String::new();
                    for a in args {
                        if let Core::Const(v) = a {
                            s.push_str(&v.string_value());
                        }
                    }
                    self.fired("constant-fold-builtin");
                    return Some(Core::Const(AtomicValue::string(s.as_str())));
                }
                None
            }
            "string" => {
                if let Some(Core::Const(v)) = args.first() {
                    self.fired("constant-fold-builtin");
                    return Some(Core::Const(AtomicValue::string(v.string_value().as_str())));
                }
                None
            }
            // `unordered { e }` licenses dropping order constraints: a
            // `Ddo` directly below only needs to deduplicate, so if the
            // input is provably distinct the whole Ddo goes ("the
            // annotation exploited during optimization", per the talk).
            "unordered" => {
                let inner = args.first()?;
                if let Core::Ddo(d) = inner {
                    let f = order_facts_with(d, &self.var_facts);
                    if f.distinct || f.max_one {
                        self.fired("unordered-ddo-relax");
                        return Some((**d).clone());
                    }
                }
                self.fired("unordered-unwrap");
                Some(inner.clone())
            }
            _ => None,
        }
    }

    // ---- boolean simplification -------------------------------------------------

    fn boolean_simplify(&mut self, e: &Core) -> Option<Core> {
        match e {
            // The talk: `false and error => false` is allowed (non-
            // deterministic logic), so short-circuiting constants is
            // sound even when the other side may error.
            Core::And(a, b) => match (&**a, &**b) {
                (Core::Const(AtomicValue::Boolean(false)), _)
                | (_, Core::Const(AtomicValue::Boolean(false))) => {
                    self.fired("and-short-circuit");
                    Some(Core::Const(AtomicValue::Boolean(false)))
                }
                (Core::Const(AtomicValue::Boolean(true)), other)
                | (other, Core::Const(AtomicValue::Boolean(true))) => {
                    self.fired("and-identity");
                    Some(other.clone())
                }
                _ => None,
            },
            Core::Or(a, b) => match (&**a, &**b) {
                (Core::Const(AtomicValue::Boolean(true)), _)
                | (_, Core::Const(AtomicValue::Boolean(true))) => {
                    self.fired("or-short-circuit");
                    Some(Core::Const(AtomicValue::Boolean(true)))
                }
                (Core::Const(AtomicValue::Boolean(false)), other)
                | (other, Core::Const(AtomicValue::Boolean(false))) => {
                    self.fired("or-identity");
                    Some(other.clone())
                }
                _ => None,
            },
            Core::Ebv(inner) => match &**inner {
                // EBV of an always-boolean-single expression is identity.
                Core::Ebv(_)
                | Core::And(..)
                | Core::Or(..)
                | Core::Quantified { .. }
                | Core::InstanceOf(..)
                | Core::CastableAs(..) => {
                    self.fired("ebv-unwrap");
                    Some((**inner).clone())
                }
                Core::Compare(op, _, _) if op.is_general() => {
                    self.fired("ebv-unwrap");
                    Some((**inner).clone())
                }
                Core::Builtin(n, _)
                    if matches!(
                        *n,
                        "not"
                            | "empty"
                            | "exists"
                            | "contains"
                            | "starts-with"
                            | "ends-with"
                            | "deep-equal"
                            | "true"
                            | "false"
                    ) =>
                {
                    self.fired("ebv-unwrap");
                    Some((**inner).clone())
                }
                _ => None,
            },
            Core::Builtin("not", args) => match args.first()? {
                Core::Builtin("not", inner_args) => {
                    // not(not(e)) → ebv(e)
                    self.fired("double-negation");
                    Some(Core::Ebv(inner_args.first()?.clone().boxed()))
                }
                Core::Builtin("empty", inner_args) => {
                    self.fired("not-empty-to-exists");
                    Some(Core::Builtin("exists", inner_args.clone()))
                }
                Core::Builtin("exists", inner_args) => {
                    self.fired("not-exists-to-empty");
                    Some(Core::Builtin("empty", inner_args.clone()))
                }
                _ => None,
            },
            _ => None,
        }
    }

    // ---- LET folding ----------------------------------------------------------

    /// The talk's "LET clause folding" with its two safety conditions:
    /// never inline node constructors ("NO! Side effects."); inline
    /// trivially or when used once outside a loop.
    fn let_fold(&mut self, e: &Core) -> Option<Core> {
        let Core::Let { var, value, body } = e else {
            return None;
        };
        // A let whose value is a filtered inner loop keyed on a free
        // variable is a group-join candidate: leave it for
        // `detect_group_join` (which fires at the enclosing `for`).
        if self.config.join_detection && is_join_candidate_value(value) {
            return None;
        }
        let uses = var_use(body, *var);
        // Dead binding: drop if the value can't error or construct.
        if uses == UseCount::Zero {
            if !can_raise_error(value) && !creates_nodes(value) {
                self.fired("let-eliminate-dead");
                return Some((**body).clone());
            }
            return None;
        }
        let trivial = matches!(&**value, Core::Const(_) | Core::Var(_) | Core::Empty);
        let inline = trivial || (uses == UseCount::Once && !creates_nodes(value));
        if inline && !creates_nodes(value) {
            self.fired("let-fold");
            return Some(substitute(body, *var, value));
        }
        None
    }

    // ---- FOR simplification ------------------------------------------------------

    fn for_simplify(&mut self, e: &Core) -> Option<Core> {
        let Core::For {
            var,
            position,
            source,
            body,
        } = e
        else {
            return None;
        };
        match &**source {
            Core::Empty => {
                self.fired("for-over-empty");
                return Some(Core::Empty);
            }
            // Single-item source → Let (plus position = 1).
            Core::Const(_) => {
                self.fired("for-single-to-let");
                let mut out = Core::Let {
                    var: *var,
                    value: source.clone(),
                    body: body.clone(),
                };
                if let Some(p) = position {
                    out = match out {
                        Core::Let { var, value, body } => Core::Let {
                            var,
                            value,
                            body: Core::Let {
                                var: *p,
                                value: Core::Const(AtomicValue::Integer(1)).boxed(),
                                body,
                            }
                            .boxed(),
                        },
                        _ => unreachable!(),
                    };
                }
                return Some(out);
            }
            // for $x in (for $y in S return B) return C
            //   → for $y in S return (for $x in B return C)
            Core::For {
                var: v2,
                position: None,
                source: s2,
                body: b2,
            } => {
                self.fired("for-unnest");
                return Some(Core::For {
                    var: *v2,
                    position: None,
                    source: s2.clone(),
                    body: Core::For {
                        var: *var,
                        position: *position,
                        source: b2.clone(),
                        body: body.clone(),
                    }
                    .boxed(),
                });
            }
            // for $x in (let $y := V return B) → let $y := V for $x in B
            Core::Let {
                var: v2,
                value,
                body: b2,
            } => {
                self.fired("for-source-let-hoist");
                return Some(Core::Let {
                    var: *v2,
                    value: value.clone(),
                    body: Core::For {
                        var: *var,
                        position: *position,
                        source: b2.clone(),
                        body: body.clone(),
                    }
                    .boxed(),
                });
            }
            _ => {}
        }
        if position.is_none() {
            // Identity map: for $x in S return $x  →  S.
            if matches!(&**body, Core::Var(v) if v == var) {
                self.fired("for-identity");
                return Some((**source).clone());
            }
            // Map fusion into a path: for $x in S return $x/child-step
            // ≡ S/child-step (PathMap *is* the per-node map).
            if let Core::PathMap { input, step } = &**body {
                if matches!(&**input, Core::Var(v) if v == var)
                    && !uses_var(step, *var)
                    && matches!(
                        &**step,
                        Core::Step {
                            axis: AxisName::Child | AxisName::Attribute | AxisName::SelfAxis,
                            ..
                        }
                    )
                {
                    self.fired("for-to-path");
                    return Some(Core::PathMap {
                        input: source.clone(),
                        step: step.clone(),
                    });
                }
            }
        }
        None
    }

    // ---- where hoisting -----------------------------------------------------------

    /// Loop-invariant condition: `for $x in S return if C then B else ()`
    /// with C independent of `$x` → `if C then (for $x in S return B)`.
    /// The talk's caveat: hoisting *evaluates* C even when S is empty, so
    /// C must be provably error-free and side-effect-free.
    fn where_hoist(&mut self, e: &Core) -> Option<Core> {
        let Core::For {
            var,
            position,
            source,
            body,
        } = e
        else {
            return None;
        };
        let Core::If {
            cond,
            then_branch,
            else_branch,
        } = &**body
        else {
            return None;
        };
        if !matches!(&**else_branch, Core::Empty) {
            return None;
        }
        let loop_vars: Vec<VarId> = {
            let mut v = vec![*var];
            if let Some(p) = position {
                v.push(*p);
            }
            v
        };
        if loop_vars.iter().any(|lv| uses_var(cond, *lv)) {
            return None;
        }
        if can_raise_error(cond) || creates_nodes(cond) {
            return None;
        }
        self.fired("where-hoist");
        Some(Core::If {
            cond: cond.clone(),
            then_branch: Core::For {
                var: *var,
                position: *position,
                source: source.clone(),
                body: then_branch.clone(),
            }
            .boxed(),
            else_branch: Core::Empty.boxed(),
        })
    }

    // ---- loop-invariant hoisting ---------------------------------------------------

    const HOIST_MIN_SIZE: usize = 4;

    /// The talk's "LET clause unfolding": a pure sub-expression of a
    /// `for` body that does not depend on the loop variable evaluates
    /// once, bound in a `let` above the loop. Safety per the talk's
    /// slide: no side effects (node construction) and no errors, because
    /// hoisting evaluates the expression even when the loop is empty
    /// ("guaranteed only if runtime implements consistently lazy
    /// evaluation — otherwise dataflow analysis and error analysis
    /// required" — we do the analysis).
    fn loop_hoist(&mut self, e: &Core) -> Option<Core> {
        let Core::For {
            var,
            position,
            source,
            body,
        } = e
        else {
            return None;
        };
        let mut loop_vars = vec![*var];
        if let Some(p) = position {
            loop_vars.push(*p);
        }
        // Find the largest hoistable sub-expression of the body.
        let mut candidates: Vec<(&Core, usize)> = Vec::new();
        collect_subexprs(body, &mut candidates);
        let inner_bound = all_bound_vars(body);
        let mut best: Option<&Core> = None;
        for (sub, _) in &candidates {
            if sub.size() < Self::HOIST_MIN_SIZE {
                continue;
            }
            if matches!(sub, Core::Var(_) | Core::Const(_) | Core::Empty) {
                continue;
            }
            if loop_vars.iter().any(|v| uses_var(sub, *v)) {
                continue;
            }
            // Expressions using variables bound *inside* the body (other
            // binders) cannot move above them.
            if inner_bound.iter().any(|v| uses_var(sub, *v)) {
                continue;
            }
            if creates_nodes(sub) || can_raise_error(sub) || uses_context(sub) {
                continue;
            }
            match best {
                Some(b) if b.size() >= sub.size() => {}
                _ => best = Some(sub),
            }
        }
        let sub = best?.clone();
        let nv = self.fresh();
        let new_body = replace_subexpr_whole(body, &sub, nv);
        self.fired("loop-invariant-hoist");
        Some(Core::Let {
            var: nv,
            value: sub.boxed(),
            body: Core::For {
                var: *var,
                position: *position,
                source: source.clone(),
                body: new_body.boxed(),
            }
            .boxed(),
        })
    }

    // ---- path rewrites ---------------------------------------------------------------

    fn path_rewrite(&mut self, e: &Core) -> Option<Core> {
        // (1) `//name` collapse: PathMap(Ddo(PathMap(x, dos::node())), child::t)
        //     → PathMap(x, descendant::t). Sound because every PathMap
        //     created by normalization is consumed under a Ddo, and both
        //     forms denote the same node *set*.
        if let Core::PathMap { input, step } = e {
            if let Core::Step {
                axis: AxisName::Child,
                test,
            } = &**step
            {
                let inner = match &**input {
                    Core::Ddo(i) => i,
                    other => other,
                };
                if let Core::PathMap {
                    input: x,
                    step: dos,
                } = inner
                {
                    if matches!(
                        &**dos,
                        Core::Step {
                            axis: AxisName::DescendantOrSelf,
                            test: NodeTest::AnyKind
                        }
                    ) {
                        self.fired("dos-collapse");
                        return Some(Core::PathMap {
                            input: x.clone(),
                            step: Core::Step {
                                axis: AxisName::Descendant,
                                test: test.clone(),
                            }
                            .boxed(),
                        });
                    }
                }
            }
            // (2) parent-after-child collapse ("dealing with backwards
            //     navigation"): x/child::t/parent::node() → x[child::t].
            if let Core::Step {
                axis: AxisName::Parent,
                test: NodeTest::AnyKind,
            } = &**step
            {
                let inner = match &**input {
                    Core::Ddo(i) => i,
                    other => other,
                };
                if let Core::PathMap {
                    input: x,
                    step: child,
                } = inner
                {
                    if matches!(
                        &**child,
                        Core::Step {
                            axis: AxisName::Child,
                            ..
                        }
                    ) {
                        self.fired("parent-collapse");
                        return Some(Core::Filter {
                            input: x.clone(),
                            predicate: child.clone(),
                        });
                    }
                }
            }
        }
        None
    }

    // ---- ddo elimination ----------------------------------------------------------

    fn ddo_eliminate(&mut self, e: &Core) -> Option<Core> {
        let Core::Ddo(inner) = e else { return None };
        if let Core::Ddo(_) = &**inner {
            self.fired("ddo-dedup");
            return Some((**inner).clone());
        }
        if order_facts_with(inner, &self.var_facts).ddo_redundant() {
            self.fired("ddo-eliminate");
            return Some((**inner).clone());
        }
        None
    }

    // ---- function inlining -----------------------------------------------------------

    const INLINE_SIZE_LIMIT: usize = 60;

    fn inline_function(&mut self, e: &Core) -> Option<Core> {
        let Core::UserCall(fid, args) = e else {
            return None;
        };
        if self.recursive.get(fid.0 as usize).copied().unwrap_or(true) {
            return None;
        }
        let f = self.functions.get(fid.0 as usize)?;
        if f.body.size() > Self::INLINE_SIZE_LIMIT {
            return None;
        }
        // Context-sensitive bodies must not inline: a function body has
        // no focus, but inlined code would inherit the call site's (the
        // talk's "is the evaluation of an expression context-sensitive?"
        // analysis).
        if uses_context(&f.body) {
            return None;
        }
        // element-constructor namespace scoping makes inlining across
        // constructor boundaries unsafe in general; our names are
        // resolved at parse time, so it is safe here (the talk's caveat
        // applies to lexically scoped namespaces, resolved already).
        self.fired("function-inline");
        // Declared types stay enforced across inlining via `treat as`
        // (the type-rewrite family removes provably-satisfied ones).
        let mut out = match &f.return_type {
            Some(ty) => Core::TreatAs(f.body.clone().boxed(), ty.clone()),
            None => f.body.clone(),
        };
        // Bind parameters via Lets (value-once semantics); LetFold will
        // inline further when safe.
        for ((pvar, pty), arg) in f.params.iter().zip(args).rev() {
            let value = match pty {
                Some(ty) => Core::TreatAs(arg.clone().boxed(), ty.clone()),
                None => arg.clone(),
            };
            out = Core::Let {
                var: *pvar,
                value: value.boxed(),
                body: out.boxed(),
            };
        }
        Some(out)
    }

    // ---- join detection -----------------------------------------------------------------

    /// `for $x in A return for $y in B return if ($k1 = $k2) then R else ()`
    /// with B independent of `$x`, `$k1` over `$x`, `$k2` over `$y`
    /// → hash join (the talk's "join ordering" family).
    fn detect_join(&mut self, e: &Core) -> Option<Core> {
        let Core::For {
            var: x,
            position: None,
            source: a,
            body,
        } = e
        else {
            return None;
        };
        let Core::For {
            var: y,
            position: None,
            source: b,
            body: inner,
        } = &**body
        else {
            return None;
        };
        if uses_var(b, *x) {
            return None;
        }
        let Core::If {
            cond,
            then_branch,
            else_branch,
        } = &**inner
        else {
            return None;
        };
        if !matches!(&**else_branch, Core::Empty) {
            return None;
        }
        // The condition may be an `and`-tree: find one equi-conjunct
        // splitting on (x, y); the rest stays as a residual filter.
        // Reordering conjuncts is licensed by the talk's non-deterministic
        // two-value logic for `and`.
        let mut conjuncts: Vec<&Core> = Vec::new();
        collect_conjuncts(cond, &mut conjuncts);
        let mut key: Option<(&Core, &Core)> = None;
        let mut residual: Vec<&Core> = Vec::new();
        for c in conjuncts {
            if key.is_none() {
                let cmp = match c {
                    Core::Ebv(inner) => &**inner,
                    other => other,
                };
                if let Core::Compare(op, k1, k2) = cmp {
                    if matches!(op, CompOp::GenEq | CompOp::ValEq) {
                        if uses_var(k1, *x)
                            && !uses_var(k1, *y)
                            && uses_var(k2, *y)
                            && !uses_var(k2, *x)
                        {
                            key = Some((k1, k2));
                            continue;
                        }
                        if uses_var(k2, *x)
                            && !uses_var(k2, *y)
                            && uses_var(k1, *y)
                            && !uses_var(k1, *x)
                        {
                            key = Some((k2, k1));
                            continue;
                        }
                    }
                }
            }
            residual.push(c);
        }
        let (okey, ikey) = key?;
        if creates_nodes(okey) || creates_nodes(ikey) || creates_nodes(b) {
            return None;
        }
        // Residual conjuncts may error; evaluating them only for
        // key-matching pairs evaluates *fewer* conditions than the
        // original, which lazy two-value logic permits.
        let body_core = if residual.is_empty() {
            then_branch.clone()
        } else {
            let mut cond_iter = residual.into_iter().cloned();
            let first = cond_iter.next().expect("non-empty residual");
            let combined = cond_iter.fold(first, |acc, c| Core::And(acc.boxed(), c.boxed()));
            Core::If {
                cond: combined.boxed(),
                then_branch: then_branch.clone(),
                else_branch: Core::Empty.boxed(),
            }
            .boxed()
        };
        self.fired("join-detect");
        Some(Core::HashJoin {
            outer_var: *x,
            outer: a.clone(),
            inner_var: *y,
            inner: b.clone(),
            outer_key: okey.clone().boxed(),
            inner_key: ikey.clone().boxed(),
            group: None,
            body: body_core,
        })
    }

    /// The let-bound join (XMark Q8/Q9 shape):
    /// `for $p in P let $a := (for $t in T return if (k(t) = k(p)) then R else ()) return B`
    /// becomes a hash **group** join: T is scanned and hashed once, the
    /// matches (mapped through R) bind to `$a` per outer item.
    fn detect_group_join(&mut self, e: &Core) -> Option<Core> {
        let Core::For {
            var: p,
            position: None,
            source: outer_src,
            body,
        } = e
        else {
            return None;
        };
        let Core::Let {
            var: a,
            value,
            body: let_body,
        } = &**body
        else {
            return None;
        };
        let Core::For {
            var: t,
            position: None,
            source: inner_src,
            body: inner_body,
        } = &**value
        else {
            return None;
        };
        if uses_var(inner_src, *p) {
            return None;
        }
        let Core::If {
            cond,
            then_branch,
            else_branch,
        } = &**inner_body
        else {
            return None;
        };
        if !matches!(&**else_branch, Core::Empty) {
            return None;
        }
        let cmp = match &**cond {
            Core::Ebv(c) => &**c,
            other => other,
        };
        let Core::Compare(op, k1, k2) = cmp else {
            return None;
        };
        if !matches!(op, CompOp::GenEq | CompOp::ValEq) {
            return None;
        }
        let (okey, ikey) =
            if uses_var(k1, *p) && !uses_var(k1, *t) && uses_var(k2, *t) && !uses_var(k2, *p) {
                (k1, k2)
            } else if uses_var(k2, *p) && !uses_var(k2, *t) && uses_var(k1, *t) && !uses_var(k1, *p)
            {
                (k2, k1)
            } else {
                return None;
            };
        if creates_nodes(okey) || creates_nodes(ikey) || creates_nodes(inner_src) {
            return None;
        }
        // The per-match body must not depend on the outer variable,
        // otherwise it cannot be shared across outer bindings… it is
        // still evaluated per (outer, match) pair, so dependence is fine;
        // only node construction inside changes identity semantics — the
        // original also constructed per pair, so that is preserved too.
        self.fired("group-join-detect");
        // The hash table over the inner side is built once, above the
        // outer iteration — that is the whole point.
        Some(Core::HashJoin {
            outer_var: *p,
            outer: outer_src.clone(),
            inner_var: *t,
            inner: inner_src.clone(),
            outer_key: okey.clone().boxed(),
            inner_key: ikey.clone().boxed(),
            group: Some(GroupSpec {
                let_var: *a,
                match_body: then_branch.clone(),
            }),
            body: let_body.clone(),
        })
    }

    /// Decorrelate joinable Let clauses inside a tupled (`order by`)
    /// FLWOR into [`CoreClause::GroupLet`] — the runtime then builds the
    /// inner hash table once per FLWOR evaluation instead of rescanning
    /// per tuple.
    fn decorrelate_flwor(&mut self, e: &Core) -> Option<Core> {
        let Core::OrderedFlwor {
            clauses,
            where_clause,
            order,
            stable,
            body,
        } = e
        else {
            return None;
        };
        // Variables bound by this FLWOR's clauses (the inner side must
        // be independent of all of them).
        let flwor_vars: Vec<VarId> = clauses
            .iter()
            .flat_map(|c| match c {
                CoreClause::For { var, position, .. } => {
                    let mut v = vec![*var];
                    if let Some(p) = position {
                        v.push(*p);
                    }
                    v
                }
                CoreClause::Let { var, .. } => vec![*var],
                CoreClause::GroupLet { var, inner_var, .. } => vec![*var, *inner_var],
            })
            .collect();
        let mut changed = false;
        let mut new_clauses: Vec<CoreClause> = Vec::with_capacity(clauses.len());
        for c in clauses {
            let push_original = || c.clone();
            let CoreClause::Let { var, value } = c else {
                new_clauses.push(push_original());
                continue;
            };
            // Loop-invariant hoisting may have wrapped the joinable For
            // in Lets (e.g. the outer key); lift those into ordinary Let
            // clauses ahead of the GroupLet.
            let mut lifted: Vec<(VarId, Core)> = Vec::new();
            let mut cursor: &Core = value;
            while let Core::Let {
                var: lv,
                value: lval,
                body: lbody,
            } = cursor
            {
                lifted.push((*lv, (**lval).clone()));
                cursor = lbody;
            }
            let Core::For {
                var: t,
                position: None,
                source: inner_src,
                body: inner_body,
            } = cursor
            else {
                new_clauses.push(push_original());
                continue;
            };
            if flwor_vars.iter().any(|v| uses_var(inner_src, *v))
                || lifted.iter().any(|(lv, _)| uses_var(inner_src, *lv))
            {
                new_clauses.push(push_original());
                continue;
            }
            let Core::If {
                cond,
                then_branch,
                else_branch,
            } = &**inner_body
            else {
                new_clauses.push(push_original());
                continue;
            };
            if !matches!(&**else_branch, Core::Empty) {
                new_clauses.push(push_original());
                continue;
            }
            let cmp = match &**cond {
                Core::Ebv(inner) => &**inner,
                other => other,
            };
            let Core::Compare(op, k1, k2) = cmp else {
                new_clauses.push(push_original());
                continue;
            };
            if !matches!(op, CompOp::GenEq | CompOp::ValEq) {
                new_clauses.push(push_original());
                continue;
            }
            let t_in_k1 = uses_var(k1, *t);
            let t_in_k2 = uses_var(k2, *t);
            let (okey, ikey) = if t_in_k2 && !t_in_k1 {
                (k1, k2)
            } else if t_in_k1 && !t_in_k2 {
                (k2, k1)
            } else {
                new_clauses.push(push_original());
                continue;
            };
            // The inner key must not lean on the lifted (per-tuple) lets.
            if lifted.iter().any(|(lv, _)| uses_var(ikey, *lv)) {
                new_clauses.push(push_original());
                continue;
            }
            if creates_nodes(okey) || creates_nodes(ikey) || creates_nodes(inner_src) {
                new_clauses.push(push_original());
                continue;
            }
            changed = true;
            self.fired("flwor-decorrelate");
            for (lv, lval) in lifted {
                new_clauses.push(CoreClause::Let {
                    var: lv,
                    value: lval,
                });
            }
            new_clauses.push(CoreClause::GroupLet {
                var: *var,
                inner_var: *t,
                inner: (**inner_src).clone(),
                inner_key: (**ikey).clone(),
                outer_key: (**okey).clone(),
                match_body: (**then_branch).clone(),
            });
        }
        if !changed {
            return None;
        }
        Some(Core::OrderedFlwor {
            clauses: new_clauses,
            where_clause: where_clause.clone(),
            order: order.clone(),
            stable: *stable,
            body: body.clone(),
        })
    }

    // ---- common sub-expression factorization ------------------------------------------------

    const CSE_MIN_SIZE: usize = 5;

    /// Factor a repeated pure sub-expression out of a binder body (the
    /// talk's "common sub-expression factorization" with its questions:
    /// same expression? same context? side effects? errors?).
    fn factor_common(&mut self, e: &Core) -> Option<Core> {
        // Anchor at binders only, so a fixpoint is reached quickly.
        if !matches!(e, Core::Let { .. } | Core::For { .. } | Core::If { .. }) {
            return None;
        }
        let bound = all_bound_vars(e);
        let mut counts: Vec<(&Core, usize)> = Vec::new();
        collect_subexprs(e, &mut counts);
        let mut best: Option<(&Core, usize)> = None;
        for &(sub, n) in &counts {
            if n < 2 || sub.size() < Self::CSE_MIN_SIZE {
                continue;
            }
            if creates_nodes(sub) || can_raise_error(sub) {
                continue;
            }
            if uses_context(sub) {
                continue; // context-sensitive: "same context?" — skip
            }
            // Every free variable of the candidate must be bound outside
            // `e`, otherwise hoisting breaks scoping.
            if bound.iter().any(|v| uses_var(sub, *v)) {
                continue;
            }
            if matches!(sub, Core::Var(_) | Core::Const(_) | Core::Empty) {
                continue;
            }
            match best {
                Some((b, bn)) if b.size() * bn >= sub.size() * n => {}
                _ => best = Some((sub, n)),
            }
        }
        let sub = best?.0.clone();
        let nv = self.fresh();
        let replaced = replace_subexpr(e, &sub, nv);
        self.fired("cse-factor");
        Some(Core::Let {
            var: nv,
            value: sub.boxed(),
            body: replaced.boxed(),
        })
    }

    // ---- type-based rewrites ---------------------------------------------------------------------

    fn type_rewrite(&mut self, e: &Core) -> Option<Core> {
        match e {
            Core::InstanceOf(inner, ty) => {
                let mut env = TypeEnv::new(self.functions);
                let got = infer(inner, &mut env);
                if got.is_subtype_of(ty) && !can_raise_error(inner) && !creates_nodes(inner) {
                    self.fired("instance-of-fold");
                    return Some(Core::Const(AtomicValue::Boolean(true)));
                }
                // Provably false: non-empty value whose item type cannot
                // intersect the target's.
                if let (SequenceType::Of(gi, go), SequenceType::Of(ti, _)) = (&got, ty) {
                    if gi.intersect(ti).is_none()
                        && !go.allows_empty()
                        && !can_raise_error(inner)
                        && !creates_nodes(inner)
                    {
                        self.fired("instance-of-fold");
                        return Some(Core::Const(AtomicValue::Boolean(false)));
                    }
                }
                None
            }
            Core::TreatAs(inner, ty) => {
                let mut env = TypeEnv::new(self.functions);
                let got = infer(inner, &mut env);
                if got.is_subtype_of(ty) {
                    self.fired("treat-eliminate");
                    return Some((**inner).clone());
                }
                None
            }
            Core::CastAs(inner, ty, _) => {
                let mut env = TypeEnv::new(self.functions);
                let got = infer(inner, &mut env);
                if got == SequenceType::atomic(*ty) {
                    self.fired("cast-identity");
                    return Some((**inner).clone());
                }
                None
            }
            _ => None,
        }
    }
}

/// Does `e` reference the context item / position / size?
fn uses_context(e: &Core) -> bool {
    match e {
        Core::ContextItem | Core::Root | Core::Step { .. } => true,
        Core::Builtin(n, args) => {
            matches!(
                *n,
                "position"
                    | "last"
                    | "string"
                    | "number"
                    | "name"
                    | "local-name"
                    | "namespace-uri"
                    | "normalize-space"
                    | "string-length"
            ) && args.is_empty()
                || args.iter().any(uses_context)
        }
        // PathMap/Filter rebind the context for their step/predicate;
        // only the input's context sensitivity leaks out.
        Core::PathMap { input, .. }
        | Core::Filter { input, .. }
        | Core::PositionConst { input, .. } => uses_context(input),
        _ => {
            let mut any = false;
            e.for_each_child(&mut |c| any |= uses_context(c));
            any
        }
    }
}

/// Is this let-value the inner side of a potential group join:
/// `for $t in T return if (k1 = k2) then R else ()` with the equality
/// splitting between `$t` and some free variable?
fn is_join_candidate_value(value: &Core) -> bool {
    let Core::For {
        var: t,
        position: None,
        body,
        ..
    } = value
    else {
        return false;
    };
    let Core::If {
        cond, else_branch, ..
    } = &**body
    else {
        return false;
    };
    if !matches!(&**else_branch, Core::Empty) {
        return false;
    }
    let cmp = match &**cond {
        Core::Ebv(c) => &**c,
        other => other,
    };
    let Core::Compare(op, k1, k2) = cmp else {
        return false;
    };
    if !matches!(op, CompOp::GenEq | CompOp::ValEq) {
        return false;
    }
    uses_var(k1, *t) != uses_var(k2, *t)
}

/// Flatten an `and`-tree (possibly wrapped in Ebv) into conjuncts.
fn collect_conjuncts<'e>(e: &'e Core, out: &mut Vec<&'e Core>) {
    match e {
        Core::And(a, b) => {
            collect_conjuncts(a, out);
            collect_conjuncts(b, out);
        }
        Core::Ebv(inner) if matches!(&**inner, Core::And(..)) => collect_conjuncts(inner, out),
        other => out.push(other),
    }
}

fn uses_var(e: &Core, var: VarId) -> bool {
    var_use(e, var) != UseCount::Zero
}

/// All variables bound anywhere inside `e`.
fn all_bound_vars(e: &Core) -> Vec<VarId> {
    let mut out = e.bound_vars();
    e.for_each_child(&mut |c| out.extend(all_bound_vars(c)));
    out
}

/// Count structural occurrences of candidate sub-expressions (linear
/// association list: `Core` holds floats, so no `Eq`/`Hash`).
fn collect_subexprs<'e>(e: &'e Core, counts: &mut Vec<(&'e Core, usize)>) {
    e.for_each_child(&mut |c| {
        match counts.iter_mut().find(|(k, _)| *k == c) {
            Some((_, n)) => *n += 1,
            None => counts.push((c, 1)),
        }
        collect_subexprs(c, counts);
    });
}

/// Substitute `Var(var)` by `value` throughout (capture-free because all
/// registers are globally unique).
pub fn substitute(e: &Core, var: VarId, value: &Core) -> Core {
    match e {
        Core::Var(v) if *v == var => value.clone(),
        other => {
            let mut out = other.clone();
            out.for_each_child_mut(&mut |c| {
                let taken = std::mem::replace(c, Core::Empty);
                *c = substitute(&taken, var, value);
            });
            out
        }
    }
}

/// Like [`replace_subexpr`] but also replaces the root itself.
fn replace_subexpr_whole(e: &Core, target: &Core, var: VarId) -> Core {
    if e == target {
        return Core::Var(var);
    }
    replace_subexpr(e, target, var)
}

/// Replace every occurrence of `target` (structural equality) by a
/// variable reference.
fn replace_subexpr(e: &Core, target: &Core, var: VarId) -> Core {
    let mut out = e.clone();
    out.for_each_child_mut(&mut |c| {
        if c == target {
            *c = Core::Var(var);
        } else {
            let taken = std::mem::replace(c, Core::Empty);
            *c = replace_subexpr(&taken, target, var);
        }
    });
    out
}

/// Which functions are (mutually) recursive?
fn compute_recursive(functions: &[CoreFunction]) -> Vec<bool> {
    let n = functions.len();
    // callees[i] = set of functions i calls.
    let mut reach: Vec<Vec<bool>> = vec![vec![false; n]; n];
    for (i, f) in functions.iter().enumerate() {
        fn visit(e: &Core, row: &mut [bool]) {
            if let Core::UserCall(fid, _) = e {
                if let Some(slot) = row.get_mut(fid.0 as usize) {
                    *slot = true;
                }
            }
            e.for_each_child(&mut |c| visit(c, row));
        }
        visit(&f.body, &mut reach[i]);
    }
    // Transitive closure (n is tiny).
    #[allow(clippy::needless_range_loop)] // reach[i] and reach[k] alias the same vec
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                for j in 0..n {
                    if reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
    }
    (0..n).map(|i| reach[i][i]).collect()
}

/// Optimize a whole module in place; returns firing stats.
pub fn optimize_module(module: &mut CoreModule, config: &RewriteConfig) -> RewriteStats {
    let functions = module.functions.clone();
    let mut opt = Optimizer::new(config.clone(), &functions, module.var_count);
    // Globals' ordering facts are visible to everything after them.
    for (_, var, value) in &module.globals {
        if let Some(v) = value {
            let f = order_facts_with(v, &HashMap::new());
            opt.seed_var_facts(*var, f);
        }
    }
    for f in &mut module.functions {
        let body = std::mem::replace(&mut f.body, Core::Empty);
        f.body = opt.run(body);
    }
    for (_, _, value) in &mut module.globals {
        if let Some(v) = value {
            let taken = std::mem::replace(v, Core::Empty);
            *v = opt.run(taken);
        }
    }
    let body = std::mem::replace(&mut module.body, Core::Empty);
    module.body = opt.run(body);
    module.var_count = opt.var_count();
    opt.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize_module;
    use xqr_xqparser::parse_query;

    fn opt(src: &str) -> (Core, RewriteStats) {
        let mut m = normalize_module(&parse_query(src).unwrap()).unwrap();
        let stats = optimize_module(&mut m, &RewriteConfig::all());
        (m.body, stats)
    }

    fn opt_with(src: &str, cfg: &RewriteConfig) -> Core {
        let mut m = normalize_module(&parse_query(src).unwrap()).unwrap();
        optimize_module(&mut m, cfg);
        m.body
    }

    #[test]
    fn constant_folding_examples() {
        let (e, _) = opt("1 + 4");
        assert_eq!(e, Core::Const(AtomicValue::Integer(5)));
        let (e, _) = opt("1 - 4 * 8.5");
        assert_eq!(e.size(), 1);
        let (e, _) = opt("if (1 eq 1) then \"y\" else \"n\"");
        assert_eq!(e, Core::Const(AtomicValue::string("y")));
        let (e, _) = opt("count((1, 2, 3))");
        assert_eq!(e, Core::Const(AtomicValue::Integer(3)));
    }

    #[test]
    fn erroring_constants_are_not_folded() {
        // 1 idiv 0 must raise at runtime (lazily), not at compile time.
        let (e, _) = opt("1 idiv 0");
        assert!(matches!(e, Core::Arith(..)));
    }

    #[test]
    fn let_folding_basic() {
        // The talk: let $x := 3 return $x + 2 → 5 (fold then const-fold).
        let (e, stats) = opt("let $x := 3 return $x + 2");
        assert_eq!(e, Core::Const(AtomicValue::Integer(5)));
        assert!(stats.contains_key("let-fold"));
    }

    #[test]
    fn let_folding_blocked_by_construction() {
        // The talk: let $x := <a/> return ($x, $x) ≠ (<a/>, <a/>).
        let (e, _) = opt("let $x := <a/> return ($x, $x)");
        assert!(matches!(e, Core::Let { .. }), "{e:?}");
    }

    #[test]
    fn dead_let_eliminated_only_when_safe() {
        let (e, _) = opt("let $x := (1, 2) return 7");
        assert_eq!(e, Core::Const(AtomicValue::Integer(7)));
        // value can error → keep
        let (e, _) = opt("let $x := 1 idiv 0 return 7");
        assert!(matches!(e, Core::Let { .. }));
    }

    #[test]
    fn for_identity_elimination() {
        let (e, _) = opt("declare variable $s external; for $x in $s return $x");
        assert!(matches!(e, Core::Var(_)), "{e:?}");
    }

    #[test]
    fn for_over_empty() {
        let (e, _) = opt("for $x in () return <a/>");
        assert_eq!(e, Core::Empty);
    }

    #[test]
    fn for_unnesting() {
        let (e, stats) = opt("declare variable $s external;
             for $x in (for $y in $s return $y) return $x");
        // collapses to $s eventually
        assert!(matches!(e, Core::Var(_)), "{e:?}");
        let _ = stats;
    }

    #[test]
    fn where_hoisting_fires_for_invariant_condition() {
        let (e, stats) = opt(
            "declare variable $s external; declare variable $flag external;
             for $x in $s where exists($flag) return $x",
        );
        assert!(stats.contains_key("where-hoist"), "{e:?} {stats:?}");
        assert!(matches!(e, Core::If { .. }), "{e:?}");
    }

    #[test]
    fn where_hoisting_blocked_by_errors() {
        let (_, stats) = opt("declare variable $s external; declare variable $n external;
             for $x in $s where (1 idiv $n) eq 1 return $x");
        assert!(!stats.contains_key("where-hoist"));
    }

    #[test]
    fn dos_collapse_rewrites_descendant_paths() {
        let (e, stats) = opt("//book");
        assert!(stats.contains_key("dos-collapse"), "{stats:?}");
        fn has_descendant(e: &Core) -> bool {
            if matches!(
                e,
                Core::Step {
                    axis: AxisName::Descendant,
                    ..
                }
            ) {
                return true;
            }
            let mut f = false;
            e.for_each_child(&mut |c| f |= has_descendant(c));
            f
        }
        assert!(has_descendant(&e), "{e:?}");
    }

    #[test]
    fn ddo_elimination_on_forward_paths() {
        let cfg_all = RewriteConfig::all();
        let e = opt_with("/a/b/c", &cfg_all);
        fn count_ddo(e: &Core) -> usize {
            let mut n = matches!(e, Core::Ddo(_)) as usize;
            e.for_each_child(&mut |c| n += count_ddo(c));
            n
        }
        assert_eq!(count_ddo(&e), 0, "{e:?}");
        // With the family off, ddos remain.
        let e = opt_with("/a/b/c", &RewriteConfig::without("ddo_elimination"));
        assert!(count_ddo(&e) > 0);
    }

    #[test]
    fn ddo_kept_when_order_unknown() {
        let e = opt_with(
            "declare variable $s external; $s//a//b",
            &RewriteConfig::all(),
        );
        fn count_ddo(e: &Core) -> usize {
            let mut n = matches!(e, Core::Ddo(_)) as usize;
            e.for_each_child(&mut |c| n += count_ddo(c));
            n
        }
        assert!(count_ddo(&e) > 0, "{e:?}");
    }

    #[test]
    fn parent_collapse() {
        let (e, stats) = opt("declare variable $s external; $s/e/..");
        assert!(stats.contains_key("parent-collapse"), "{e:?} {stats:?}");
        fn has_filter(e: &Core) -> bool {
            if matches!(e, Core::Filter { .. }) {
                return true;
            }
            let mut f = false;
            e.for_each_child(&mut |c| f |= has_filter(c));
            f
        }
        assert!(has_filter(&e));
    }

    #[test]
    fn function_inlining() {
        let (e, stats) = opt(
            "declare function local:inc($x as xs:integer) as xs:integer { $x + 1 };
             local:inc(4)",
        );
        assert!(stats.contains_key("function-inline"));
        assert_eq!(e, Core::Const(AtomicValue::Integer(5)));
    }

    #[test]
    fn recursive_functions_not_inlined() {
        let (e, stats) = opt("declare function local:f($n as xs:integer) as xs:integer {
               if ($n le 0) then 0 else local:f($n - 1)
             };
             local:f(3)");
        assert!(!stats.contains_key("function-inline"));
        assert!(matches!(e, Core::UserCall(..)));
    }

    #[test]
    fn join_detection() {
        let (e, stats) = opt(
            "declare variable $books external; declare variable $pubs external;
             for $b in $books/book
             return for $p in $pubs/publisher
                    return if ($b/publisher = $p/name) then ($b, $p) else ()",
        );
        assert!(stats.contains_key("join-detect"), "{stats:?}");
        fn has_join(e: &Core) -> bool {
            if matches!(e, Core::HashJoin { .. }) {
                return true;
            }
            let mut f = false;
            e.for_each_child(&mut |c| f |= has_join(c));
            f
        }
        assert!(has_join(&e), "{e:?}");
    }

    #[test]
    fn loop_invariant_hoisting() {
        // The talk's unfolding example: ($input + 2) moves out of the loop.
        let (e, stats) = opt("declare variable $input external;
             for $x in (1 to 10) return count(($input, $input, $input)) + $x");
        assert!(
            stats.contains_key("loop-invariant-hoist"),
            "{stats:?}\n{e:?}"
        );
        // Result shape: Let above the For.
        fn let_above_for(e: &Core) -> bool {
            match e {
                Core::Let { body, .. } => {
                    matches!(&**body, Core::For { .. }) || let_above_for(body)
                }
                _ => {
                    let mut f = false;
                    e.for_each_child(&mut |c| f |= let_above_for(c));
                    f
                }
            }
        }
        assert!(let_above_for(&e), "{e:?}");
    }

    #[test]
    fn loop_hoisting_blocked_by_errors_and_loop_vars() {
        // Errors must not be speculated.
        let (_, stats) = opt("declare variable $input external;
             for $x in (1 to 10) return ($input idiv 0) + $x");
        assert!(!stats.contains_key("loop-invariant-hoist"), "{stats:?}");
        // Sub-expressions using the loop variable stay put.
        let (_, stats) = opt("declare variable $input external;
             for $x in (1 to 10) return count(($input, $x, $input, $x, $input))");
        assert!(!stats.contains_key("loop-invariant-hoist"), "{stats:?}");
    }

    #[test]
    fn unordered_relaxes_ddo_to_distinctness() {
        // /descendant::a/b is distinct but not ordered: inside
        // unordered{}, the ddo can go entirely.
        let (_, stats) = opt("unordered { /descendant::a/b }");
        assert!(stats.contains_key("unordered-ddo-relax"), "{stats:?}");
        // //a//b is neither ordered nor distinct: ddo must stay.
        let (e, stats) = opt("unordered { /descendant::a/descendant::b }");
        assert!(!stats.contains_key("unordered-ddo-relax"), "{stats:?}");
        fn has_ddo(e: &Core) -> bool {
            if matches!(e, Core::Ddo(_)) {
                return true;
            }
            let mut f = false;
            e.for_each_child(&mut |c| f |= has_ddo(c));
            f
        }
        assert!(has_ddo(&e));
    }

    #[test]
    fn join_detection_with_conjunct_residue() {
        // The customer query's triple-join shape: one equi-conjunct
        // becomes the hash key, the rest stays as a residual filter.
        let (e, stats) = opt(
            "declare variable $dcs external; declare variable $des external;
             for $dc in $dcs
             return for $de in $des
                    return if ($dc/@document-exchange-name = $de/@name
                               and $de/@business-protocol-name = \"ebXML\")
                           then ($dc, $de) else ()",
        );
        assert!(stats.contains_key("join-detect"), "{stats:?}");
        fn join_with_residual(e: &Core) -> bool {
            if let Core::HashJoin { body, .. } = e {
                return matches!(&**body, Core::If { .. });
            }
            let mut f = false;
            e.for_each_child(&mut |c| f |= join_with_residual(c));
            f
        }
        assert!(join_with_residual(&e), "{e:?}");
    }

    #[test]
    fn group_join_detection() {
        // The XMark Q8 shape: let-bound filtered inner loop.
        let (e, stats) = opt(
            "declare variable $people external; declare variable $sales external;
             for $p in $people
             let $a := (for $t in $sales return if ($t/buyer = $p/id) then $t else ())
             return count($a)",
        );
        assert!(stats.contains_key("group-join-detect"), "{stats:?}\n{e:?}");
        fn has_group_join(e: &Core) -> bool {
            if matches!(e, Core::HashJoin { group: Some(_), .. }) {
                return true;
            }
            let mut f = false;
            e.for_each_child(&mut |c| f |= has_group_join(c));
            f
        }
        assert!(has_group_join(&e), "{e:?}");
    }

    #[test]
    fn flwor_decorrelation_with_order_by() {
        let (e, stats) = opt(
            "declare variable $people external; declare variable $sales external;
             for $p in $people
             let $a := (for $t in $sales return if ($t/buyer = $p/id) then $t else ())
             order by count($a)
             return count($a)",
        );
        assert!(stats.contains_key("flwor-decorrelate"), "{stats:?}\n{e:?}");
        fn has_group_let(e: &Core) -> bool {
            if let Core::OrderedFlwor { clauses, .. } = e {
                if clauses
                    .iter()
                    .any(|c| matches!(c, CoreClause::GroupLet { .. }))
                {
                    return true;
                }
            }
            let mut f = false;
            e.for_each_child(&mut |c| f |= has_group_let(c));
            f
        }
        assert!(has_group_let(&e), "{e:?}");
    }

    #[test]
    fn cse_factors_repeated_subexpression() {
        let (e, stats) = opt("declare variable $d external;
             if (count($d/a/b) gt 1) then count($d/a/b) else 0");
        assert!(stats.contains_key("cse-factor"), "{stats:?}\n{e:?}");
        assert!(matches!(e, Core::Let { .. }), "{e:?}");
    }

    #[test]
    fn instance_of_folding() {
        let (e, _) = opt("5 instance of xs:integer");
        assert_eq!(e, Core::Const(AtomicValue::Boolean(true)));
        let (e, _) = opt("\"x\" instance of xs:integer");
        assert_eq!(e, Core::Const(AtomicValue::Boolean(false)));
    }

    #[test]
    fn boolean_shortcuts() {
        let (e, _) = opt("1 eq 1 and 2 eq 2");
        assert_eq!(e, Core::Const(AtomicValue::Boolean(true)));
        // The talk: false and error → false is permitted.
        let (e, _) = opt("1 eq 2 and (1 idiv 0 eq 1)");
        assert_eq!(e, Core::Const(AtomicValue::Boolean(false)));
    }

    #[test]
    fn disabled_config_is_inert() {
        let e = opt_with("1 + 1", &RewriteConfig::none());
        assert!(matches!(e, Core::Arith(..)));
    }

    #[test]
    fn stats_reported_per_rule() {
        let (_, stats) = opt("1 + 1 + 2");
        assert!(stats.get("constant-fold-arith").copied().unwrap_or(0) >= 2);
    }
}
