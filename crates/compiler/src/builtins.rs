//! The built-in function signatures the compiler accepts — the engine's
//! "F&O" library contract. The runtime crate implements every entry;
//! its tests assert the two lists stay in sync.

/// (local name in the `fn:` namespace, min arity, max arity).
pub const BUILTINS: &[(&str, usize, usize)] = &[
    // Accessors & context.
    ("string", 0, 1),
    ("data", 1, 1),
    ("node-name", 1, 1),
    ("local-name", 0, 1),
    ("name", 0, 1),
    ("namespace-uri", 0, 1),
    ("root", 0, 1),
    ("base-uri", 0, 1),
    ("document-uri", 1, 1),
    ("position", 0, 0),
    ("last", 0, 0),
    // Documents.
    ("doc", 1, 1),
    ("document", 1, 1), // the talk's spelling
    ("collection", 0, 1),
    // Sequences.
    ("empty", 1, 1),
    ("exists", 1, 1),
    ("count", 1, 1),
    ("distinct-values", 1, 1),
    ("distinct-nodes", 1, 1),
    ("reverse", 1, 1),
    ("subsequence", 2, 3),
    ("insert-before", 3, 3),
    ("remove", 2, 2),
    ("index-of", 2, 2),
    ("zero-or-one", 1, 1),
    ("one-or-more", 1, 1),
    ("exactly-one", 1, 1),
    ("unordered", 1, 1),
    ("deep-equal", 2, 2),
    // Aggregates.
    ("sum", 1, 2),
    ("avg", 1, 1),
    ("min", 1, 1),
    ("max", 1, 1),
    // Booleans.
    ("boolean", 1, 1),
    ("not", 1, 1),
    ("true", 0, 0),
    ("false", 0, 0),
    // Numbers.
    ("number", 0, 1),
    ("abs", 1, 1),
    ("ceiling", 1, 1),
    ("floor", 1, 1),
    ("round", 1, 1),
    ("round-half-to-even", 1, 2),
    // Strings.
    ("concat", 2, 64),
    ("string-join", 2, 2),
    ("string-length", 0, 1),
    ("substring", 2, 3),
    ("upper-case", 1, 1),
    ("lower-case", 1, 1),
    ("contains", 2, 2),
    ("starts-with", 2, 2),
    ("ends-with", 2, 2),
    ("substring-before", 2, 2),
    ("substring-after", 2, 2),
    ("normalize-space", 0, 1),
    ("translate", 3, 3),
    ("tokenize", 2, 2),
    ("matches", 2, 2),
    ("replace", 3, 3),
    ("string-to-codepoints", 1, 1),
    ("codepoints-to-string", 1, 1),
    ("compare", 2, 2),
    // Dates.
    ("current-dateTime", 0, 0),
    ("current-date", 0, 0),
    ("current-time", 0, 0),
    ("implicit-timezone", 0, 0),
    ("year-from-date", 1, 1),
    ("month-from-date", 1, 1),
    ("day-from-date", 1, 1),
    ("year-from-dateTime", 1, 1),
    ("month-from-dateTime", 1, 1),
    ("day-from-dateTime", 1, 1),
    ("hours-from-dateTime", 1, 1),
    ("minutes-from-dateTime", 1, 1),
    ("seconds-from-dateTime", 1, 1),
    ("add-date", 2, 2), // the talk's sampler lists it
    ("years-from-duration", 1, 1),
    ("months-from-duration", 1, 1),
    ("days-from-duration", 1, 1),
    ("hours-from-duration", 1, 1),
    ("minutes-from-duration", 1, 1),
    ("seconds-from-duration", 1, 1),
    // Errors & debugging.
    ("error", 0, 2),
    ("trace", 2, 2),
];

/// Is `(local, arity)` a known built-in in the `fn:` namespace?
pub fn is_builtin(local: &str, arity: usize) -> Option<&'static str> {
    BUILTINS
        .iter()
        .find(|(n, lo, hi)| *n == local && (*lo..=*hi).contains(&arity))
        .map(|(n, _, _)| *n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_respects_arity() {
        assert_eq!(is_builtin("count", 1), Some("count"));
        assert_eq!(is_builtin("count", 2), None);
        assert_eq!(is_builtin("substring", 2), Some("substring"));
        assert_eq!(is_builtin("substring", 3), Some("substring"));
        assert_eq!(is_builtin("substring", 4), None);
        assert_eq!(is_builtin("nonsense", 1), None);
    }

    #[test]
    fn no_duplicate_names() {
        let mut names: Vec<&str> = BUILTINS.iter().map(|(n, _, _)| *n).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
