//! Expression analysis — the talk's "XQuery expression analysis" slide,
//! verbatim: "How many times does an expression use a variable? Is an
//! expression using a variable as part of a loop? Can the result contain
//! newly created nodes? Can an expression raise user errors? Is an
//! expression guaranteed to return results in doc order / distinct
//! results?"
//!
//! Every rewrite rule consults these predicates for its safety
//! conditions, so they are deliberately conservative: `false`/`Many`
//! answers are always sound.

use crate::core_expr::{Core, CoreClause, VarId};
use std::collections::HashMap;
use xqr_xqparser::ast::AxisName;

/// How often a variable is used (loop-aware).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseCount {
    Zero,
    /// Exactly one use, not inside a loop/function argument position.
    Once,
    /// More than once, or at least once under a loop.
    Many,
}

impl UseCount {
    fn add(self, other: UseCount) -> UseCount {
        use UseCount::*;
        match (self, other) {
            (Zero, x) | (x, Zero) => x,
            _ => Many,
        }
    }

    fn under_loop(self) -> UseCount {
        match self {
            UseCount::Zero => UseCount::Zero,
            _ => UseCount::Many,
        }
    }
}

/// Count the uses of `var` in `e` — the LET-folding precondition
/// "(a) only once and (b) not part of a loop".
pub fn var_use(e: &Core, var: VarId) -> UseCount {
    match e {
        Core::Var(v) if *v == var => UseCount::Once,
        Core::For { source, body, .. }
        | Core::Quantified {
            source,
            satisfies: body,
            ..
        } => {
            // Body runs once per binding: uses inside count as Many.
            var_use(source, var).add(var_use(body, var).under_loop())
        }
        Core::OrderedFlwor {
            clauses,
            where_clause,
            order,
            body,
            ..
        } => {
            let mut n = UseCount::Zero;
            for c in clauses {
                n = n.add(match c {
                    CoreClause::For { source, .. } => var_use(source, var),
                    CoreClause::Let { value, .. } => var_use(value, var),
                    CoreClause::GroupLet {
                        inner,
                        inner_key,
                        outer_key,
                        match_body,
                        ..
                    } => var_use(inner, var)
                        .add(var_use(inner_key, var).under_loop())
                        .add(var_use(outer_key, var).under_loop())
                        .add(var_use(match_body, var).under_loop()),
                });
            }
            if let Some(w) = where_clause {
                n = n.add(var_use(w, var).under_loop());
            }
            for o in order {
                n = n.add(var_use(&o.key, var).under_loop());
            }
            n.add(var_use(body, var).under_loop())
        }
        Core::Filter { input, predicate } => {
            // Predicate runs once per item.
            var_use(input, var).add(var_use(predicate, var).under_loop())
        }
        Core::PathMap { input, step } => var_use(input, var).add(var_use(step, var).under_loop()),
        Core::UserCall(_, args) => {
            // Function bodies may use parameters many times; do not
            // inline through calls.
            let mut n = UseCount::Zero;
            for a in args {
                n = n.add(var_use(a, var).under_loop());
            }
            n
        }
        _ => {
            let mut n = UseCount::Zero;
            e.for_each_child(&mut |c| n = n.add(var_use(c, var)));
            n
        }
    }
}

/// Does evaluating `e` construct new nodes? (XQuery's only side effect;
/// gates LET folding, CSE and loop hoisting.)
pub fn creates_nodes(e: &Core) -> bool {
    match e {
        Core::ElemCtor { .. }
        | Core::AttrCtor { .. }
        | Core::TextCtor(_)
        | Core::CommentCtor(_)
        | Core::PiCtor { .. }
        | Core::DocCtor(_) => true,
        // Calls may construct in the callee; conservative.
        Core::UserCall(..) => true,
        // fn:doc/collection return *stable* existing documents (the doc
        // cache guarantees one identity per URI), so they do not count
        // as node construction.
        Core::Builtin(_, args) => args.iter().any(creates_nodes),
        _ => {
            let mut any = false;
            e.for_each_child(&mut |c| any |= creates_nodes(c));
            any
        }
    }
}

/// Can evaluating `e` raise a dynamic error? Conservative: only
/// obviously-safe shapes return `false`. Gates speculation (hoisting a
/// `where` out of a loop evaluates it even when the loop is empty).
pub fn can_raise_error(e: &Core) -> bool {
    match e {
        Core::Const(_) | Core::Empty | Core::Var(_) | Core::Root | Core::ContextItem => false,
        Core::Step { .. } => false,
        Core::Seq(items) => items.iter().any(can_raise_error),
        Core::Ddo(inner) | Core::Ebv(inner) => can_raise_error(inner),
        Core::PathMap { input, step } => can_raise_error(input) || can_raise_error(step),
        Core::Filter { input, predicate } => can_raise_error(input) || can_raise_error(predicate),
        Core::PositionConst { input, .. } => can_raise_error(input),
        Core::For { source, body, .. } => can_raise_error(source) || can_raise_error(body),
        Core::Let { value, body, .. } => can_raise_error(value) || can_raise_error(body),
        Core::If {
            cond,
            then_branch,
            else_branch,
        } => can_raise_error(cond) || can_raise_error(then_branch) || can_raise_error(else_branch),
        Core::And(a, b)
        | Core::Or(a, b)
        | Core::Union(a, b)
        | Core::Intersect(a, b)
        | Core::Except(a, b) => can_raise_error(a) || can_raise_error(b),
        Core::ElemCtor { name, content, .. } => {
            matches!(name, crate::core_expr::CoreName::Computed(_))
                || content.iter().any(can_raise_error)
        }
        Core::TextCtor(inner) | Core::CommentCtor(inner) | Core::DocCtor(inner) => {
            can_raise_error(inner)
        }
        Core::Builtin(name, args) => {
            // A few builtins are total on any input.
            let total = matches!(
                *name,
                "count"
                    | "empty"
                    | "exists"
                    | "true"
                    | "false"
                    | "not"
                    | "position"
                    | "last"
                    | "string"
                    | "concat"
                    | "reverse"
                    | "trace"
                    | "unordered"
            );
            !total || args.iter().any(can_raise_error)
        }
        // Arithmetic (division by zero, type errors), comparisons (type
        // errors), casts, user calls, quantifiers over erroring sources…
        _ => true,
    }
}

/// Ordering/distinctness facts about a node-sequence expression — the
/// talk's semantic table for path expressions:
///
/// * `/a/b/c` — ordered & distinct;
/// * `/a//b` — ordered & distinct;
/// * `//a/b` — **not** ordered, but distinct;
/// * `//a//b` — nothing guaranteed.
///
/// `non_nesting` is the auxiliary fact that makes the table compute:
/// a set of nodes none of which is an ancestor of another.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderFacts {
    pub ordered: bool,
    pub distinct: bool,
    pub non_nesting: bool,
    /// At most one item (stronger than ordered+distinct).
    pub max_one: bool,
}

impl OrderFacts {
    pub const UNKNOWN: OrderFacts = OrderFacts {
        ordered: false,
        distinct: false,
        non_nesting: false,
        max_one: false,
    };

    pub const SINGLE: OrderFacts = OrderFacts {
        ordered: true,
        distinct: true,
        non_nesting: true,
        max_one: true,
    };

    /// Is a ddo on top of an expression with these facts redundant?
    pub fn ddo_redundant(&self) -> bool {
        (self.ordered && self.distinct) || self.max_one
    }
}

/// Facts for one axis step applied to a source with `src` facts.
fn step_facts(axis: AxisName, src: OrderFacts) -> OrderFacts {
    match axis {
        AxisName::SelfAxis => src,
        AxisName::Child | AxisName::Attribute | AxisName::Namespace => OrderFacts {
            // Children of nested sources interleave out of order.
            ordered: src.ordered && src.non_nesting,
            distinct: src.distinct,
            // Children of disjoint subtrees are disjoint; children of a
            // single node are siblings.
            non_nesting: src.non_nesting,
            max_one: false,
        },
        AxisName::Descendant | AxisName::DescendantOrSelf => OrderFacts {
            ordered: src.ordered && src.non_nesting,
            distinct: src.distinct && src.non_nesting,
            non_nesting: false,
            max_one: false,
        },
        AxisName::Parent => OrderFacts {
            ordered: src.ordered,
            // Two siblings share a parent.
            distinct: src.max_one,
            non_nesting: src.max_one,
            max_one: src.max_one,
        },
        _ => OrderFacts::UNKNOWN,
    }
}

/// Compute ordering facts for `e` with no variable knowledge.
pub fn order_facts(e: &Core) -> OrderFacts {
    order_facts_with(e, &HashMap::new())
}

/// Compute ordering facts for `e`. Context items and `for`-bound
/// variables are single items; other variables take their facts from
/// `vars` (the optimizer seeds globals and binders), defaulting to
/// unknown.
pub fn order_facts_with(e: &Core, vars: &HashMap<VarId, OrderFacts>) -> OrderFacts {
    match e {
        Core::Root | Core::ContextItem | Core::Const(_) => OrderFacts::SINGLE,
        Core::Empty => OrderFacts {
            ordered: true,
            distinct: true,
            non_nesting: true,
            max_one: true,
        },
        Core::Var(v) => vars.get(v).copied().unwrap_or(OrderFacts::UNKNOWN),
        // doc()/document() return at most one document node.
        Core::Builtin(name, _) if matches!(*name, "doc" | "document" | "root") => {
            OrderFacts::SINGLE
        }
        Core::Ddo(inner) => {
            let f = order_facts_with(inner, vars);
            OrderFacts {
                ordered: true,
                distinct: true,
                non_nesting: f.non_nesting,
                max_one: f.max_one,
            }
        }
        Core::Step { axis, .. } => step_facts(*axis, OrderFacts::SINGLE),
        Core::PathMap { input, step } => {
            let src = order_facts_with(input, vars);
            match &**step {
                Core::Step { axis, .. } => step_facts(*axis, src),
                // Steps that are themselves paths from the context item:
                // compose facts step by step.
                Core::PathMap { .. }
                | Core::Ddo(_)
                | Core::Filter { .. }
                | Core::PositionConst { .. } => compose_context_facts(src, step),
                _ => OrderFacts::UNKNOWN,
            }
        }
        Core::Filter { input, .. } => {
            let f = order_facts_with(input, vars);
            // Filtering preserves order/distinctness/non-nesting.
            OrderFacts {
                max_one: false,
                ..f
            }
        }
        Core::PositionConst { .. } => OrderFacts::SINGLE,
        Core::If {
            then_branch,
            else_branch,
            ..
        } => {
            let t = order_facts_with(then_branch, vars);
            let f = order_facts_with(else_branch, vars);
            OrderFacts {
                ordered: t.ordered && f.ordered,
                distinct: t.distinct && f.distinct,
                non_nesting: t.non_nesting && f.non_nesting,
                max_one: t.max_one && f.max_one,
            }
        }
        Core::Let { var, value, body } => {
            let mut inner = vars.clone();
            inner.insert(*var, order_facts_with(value, vars));
            order_facts_with(body, &inner)
        }
        _ => OrderFacts::UNKNOWN,
    }
}

/// Facts for an expression evaluated with a context of facts `src`
/// (each context item is a single node; the per-item results
/// concatenate in src order).
fn compose_context_facts(src: OrderFacts, e: &Core) -> OrderFacts {
    match e {
        Core::ContextItem => src,
        Core::Step { axis, .. } => step_facts(*axis, src),
        Core::PathMap { input, step } => {
            let inner = compose_context_facts(src, input);
            match &**step {
                Core::Step { axis, .. } => step_facts(*axis, inner),
                other => compose_context_facts(inner, other),
            }
        }
        Core::Ddo(inner) => {
            let f = compose_context_facts(src, inner);
            // Per-item ddo does NOT globally sort; facts stay as computed
            // except per-context-item order which we cannot exploit.
            f
        }
        Core::Filter { input, .. } => {
            let f = compose_context_facts(src, input);
            OrderFacts {
                max_one: false,
                ..f
            }
        }
        _ => OrderFacts::UNKNOWN,
    }
}

/// Does the query anywhere require node identity (the talk's on-demand
/// node-id analysis, experiment E11)? Identity is needed by `is`,
/// `<<`/`>>`, `union/intersect/except`, ddo, parent/ancestor access and
/// `distinct-nodes`; plain construct-and-serialize pipelines do not
/// need it.
pub fn needs_node_identity(e: &Core) -> bool {
    use xqr_xqparser::ast::CompOp;
    match e {
        Core::Compare(CompOp::Is | CompOp::Before | CompOp::After, _, _) => true,
        Core::Union(..) | Core::Intersect(..) | Core::Except(..) | Core::Ddo(_) => true,
        Core::Builtin(name, args) => {
            *name == "distinct-nodes" || args.iter().any(needs_node_identity)
        }
        Core::Step { axis, .. } => {
            matches!(
                axis,
                AxisName::Parent | AxisName::Ancestor | AxisName::AncestorOrSelf
            )
        }
        _ => {
            let mut any = false;
            e.for_each_child(&mut |c| any |= needs_node_identity(c));
            any
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize_module;
    use xqr_xqparser::parse_query;

    fn body(src: &str) -> Core {
        normalize_module(&parse_query(src).unwrap()).unwrap().body
    }

    #[test]
    fn var_use_counts() {
        // let $x := 1 return $x + $x  → Many
        let e = body("let $x := 1 return $x + $x");
        match &e {
            Core::Let { var, body, .. } => assert_eq!(var_use(body, *var), UseCount::Many),
            other => panic!("{other:?}"),
        }
        let e = body("let $x := 1 return $x + 2");
        match &e {
            Core::Let { var, body, .. } => assert_eq!(var_use(body, *var), UseCount::Once),
            other => panic!("{other:?}"),
        }
        let e = body("let $x := 1 return 2");
        match &e {
            Core::Let { var, body, .. } => assert_eq!(var_use(body, *var), UseCount::Zero),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn var_use_under_loop_is_many() {
        let e = body("let $y := 1 return for $x in (1,2) return $y");
        match &e {
            Core::Let { var, body, .. } => assert_eq!(var_use(body, *var), UseCount::Many),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn node_creation_detection() {
        assert!(creates_nodes(&body("<a/>")));
        assert!(creates_nodes(&body("for $x in (1,2) return <a/>")));
        assert!(!creates_nodes(&body("1 + 2")));
        assert!(!creates_nodes(&body("let $x := 1 return ($x, $x)")));
        assert!(creates_nodes(&body("element foo { 1 }")));
    }

    #[test]
    fn error_capability() {
        assert!(!can_raise_error(&body("()")));
        assert!(!can_raise_error(&body("(1, 2, 3)")));
        assert!(can_raise_error(&body("1 idiv 0")));
        assert!(can_raise_error(&body("1 + 2"))); // arithmetic conservative
        assert!(!can_raise_error(&body("count((1,2))")));
    }

    #[test]
    fn path_order_facts_match_talk_table() {
        // The talk's table assumes the classic `//x → descendant::x`
        // rewrite (see `rewrite::DosCollapse`); these are the post-
        // rewrite shapes.
        // /a/b/c — ordered & distinct
        let e = strip_ddo(&body("/a/b/c"));
        let f = order_facts(&e);
        assert!(f.ordered && f.distinct, "{f:?}");
        // /a//b ≡ /a/descendant::b — ordered & distinct
        let e = strip_ddo(&body("/a/descendant::b"));
        let f = order_facts(&e);
        assert!(f.ordered && f.distinct, "{f:?}");
        // //a/b ≡ /descendant::a/b — not ordered, but distinct
        let e = strip_ddo(&body("/descendant::a/b"));
        let f = order_facts(&e);
        assert!(!f.ordered, "{f:?}");
        assert!(f.distinct, "{f:?}");
        // //a//b — nothing guaranteed
        let e = strip_ddo(&body("/descendant::a/descendant::b"));
        let f = order_facts(&e);
        assert!(!f.ordered && !f.distinct, "{f:?}");
    }

    #[test]
    fn raw_double_slash_form_is_distinct_only() {
        // Without the rewrite, `/a//b` is dos::node()/child::b — the
        // child step from a nesting context loses the order guarantee
        // but keeps distinctness.
        let e = strip_ddo(&body("/a//b"));
        let f = order_facts(&e);
        assert!(f.distinct, "{f:?}");
    }

    /// Peel the outermost Ddo (and the Let for the variable decl) to look
    /// at the raw path facts.
    fn strip_ddo(e: &Core) -> Core {
        match e {
            Core::Ddo(inner) => strip_ddo(inner),
            other => other.clone(),
        }
    }

    #[test]
    fn node_identity_analysis() {
        assert!(needs_node_identity(&body(
            "declare variable $a := <a/>; $a is $a"
        )));
        assert!(needs_node_identity(&body(
            "declare variable $a := <a/>; $a/b union $a/c"
        )));
        // A pure construct-and-return pipeline: paths require ddo → id.
        assert!(needs_node_identity(&body(
            "declare variable $a := <a/>; $a/b"
        )));
        // Constructed output with no path/identity ops does not.
        assert!(!needs_node_identity(&body("<a>{1 + 2}</a>")));
        assert!(!needs_node_identity(&body(
            "for $x in (1,2) return <v>{$x}</v>"
        )));
    }
}
