//! # xqr-compiler — normalization, analysis, typing, rewrite optimizer
//!
//! The talk's compilation pipeline over the core expression tree:
//!
//! 1. [`normalize`] — AST → core tree (FLWOR decomposition, explicit
//!    `Ddo`, register allocation, function resolution);
//! 2. [`typing`] — static type inference with an optional strict mode
//!    (the "static typing feature");
//! 3. [`analysis`] — variable-use counts, node-creation, error
//!    capability, ordering/distinctness facts, node-identity demand;
//! 4. [`rewrite`] — the rewrite-rule library with per-family switches
//!    and firing statistics;
//! 5. [`pipeline`] — ties it together into [`pipeline::compile`].

pub mod access;
pub mod analysis;
pub mod builtins;
pub mod core_expr;
pub mod normalize;
pub mod ops;
pub mod pipeline;
pub mod rewrite;
pub mod typing;

pub use access::{AccessAnchor, AccessEdge, AccessNode, AccessPattern};
pub use core_expr::*;
pub use normalize::normalize_module;
pub use pipeline::{compile, CompileOptions, CompiledQuery};
pub use rewrite::{optimize_module, RewriteConfig, RewriteStats};
