//! The compilation pipeline: parse → normalize → (type-check) →
//! (optimize). The talk's "major compilation steps" with code generation
//! deferred to the runtime (which interprets the annotated core tree).

use crate::access::select_access_paths;
use crate::analysis::needs_node_identity;
use crate::core_expr::CoreModule;
use crate::normalize::normalize_module;
use crate::rewrite::{optimize_module, RewriteConfig, RewriteStats};
use crate::typing::check_module;
use xqr_xdm::{Result, SequenceType};

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Run the rewrite optimizer (and with which families).
    pub rewrite: RewriteConfig,
    /// Enforce the static typing feature (strict mode).
    pub static_typing: bool,
    /// Run access-path selection after the rewrites: absolute path/twig
    /// subtrees become [`crate::core_expr::Core::IndexScan`] candidates
    /// the runtime answers from a structural index when one is attached
    /// (falling back to navigation otherwise).
    pub access_paths: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            rewrite: RewriteConfig::all(),
            static_typing: false,
            access_paths: true,
        }
    }
}

/// The compiled artifact handed to the runtime.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    pub module: CoreModule,
    /// Inferred static type of the body.
    pub body_type: SequenceType,
    /// Optimizer firing counts (empty when optimization was off).
    pub stats: RewriteStats,
    /// Whether any operator requires node identity — when false, the
    /// runtime may construct id-free output (experiment E11).
    pub needs_node_ids: bool,
}

/// Compile query text.
pub fn compile(source: &str, options: &CompileOptions) -> Result<CompiledQuery> {
    let ast = xqr_xqparser::parse_query(source)?;
    let mut module = normalize_module(&ast)?;
    // Type-check before optimization so user-visible static errors do
    // not depend on which rewrites fired.
    let body_type = check_module(&module, options.static_typing)?;
    let mut stats = optimize_module(&mut module, &options.rewrite);
    if options.access_paths {
        // After every rewrite: selection wants the collapsed/simplified
        // path shapes, and no rewrite needs to understand IndexScan.
        let planted = select_access_paths(&mut module);
        if planted > 0 {
            *stats.entry("index-access-path").or_insert(0) += planted;
        }
    }
    let needs_node_ids = needs_node_identity(&module.body)
        || module
            .functions
            .iter()
            .any(|f| needs_node_identity(&f.body))
        || module
            .globals
            .iter()
            .any(|(_, _, v)| v.as_ref().map(needs_node_identity).unwrap_or(false));
    Ok(CompiledQuery {
        module,
        body_type,
        stats,
        needs_node_ids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_and_reports_type() {
        let q = compile("1 + 2", &CompileOptions::default()).unwrap();
        assert_eq!(q.body_type.to_string(), "xs:integer");
        assert!(!q.needs_node_ids);
    }

    #[test]
    fn optimization_can_be_disabled() {
        let off = CompileOptions {
            rewrite: RewriteConfig::none(),
            ..Default::default()
        };
        let q = compile("1 + 2", &off).unwrap();
        assert!(q.stats.is_empty());
    }

    #[test]
    fn node_id_analysis_propagates() {
        let q = compile("<a/> is <b/>", &CompileOptions::default()).unwrap();
        assert!(q.needs_node_ids);
        let q = compile("<a>{1+2}</a>", &CompileOptions::default()).unwrap();
        assert!(!q.needs_node_ids);
    }

    #[test]
    fn static_typing_strict_errors() {
        let strict = CompileOptions {
            static_typing: true,
            ..Default::default()
        };
        assert!(compile("\"a\" + 1", &strict).is_err());
        assert!(compile("\"a\" + 1", &CompileOptions::default()).is_ok());
    }

    #[test]
    fn syntax_errors_surface() {
        assert!(compile("1 +", &CompileOptions::default()).is_err());
    }
}
