//! Static type inference over the core tree — the talk's compilation
//! step 3 and the basis of the type-based rewrites ("inferred types for
//! expressions very useful for optimization").
//!
//! Untyped-data semantics (no schema import): element content is
//! `xdt:untypedAtomic`, so the inferred types are structural
//! (node kinds, occurrence) plus exact atomic types for literals and
//! casts. Inference never fails on dynamic-only concerns; the optional
//! strict mode reports provable type errors (the talk's goal 1: "detect
//! statically errors in the queries").

use crate::core_expr::*;
use std::collections::HashMap;
use xqr_xdm::{AtomicType, Error, ItemType, NameTest, NodeKind, Occurrence, Result, SequenceType};
use xqr_xqparser::ast::{AxisName, CompOp, NodeTest};

/// Typing environment: register types plus the function table.
pub struct TypeEnv<'a> {
    pub functions: &'a [CoreFunction],
    vars: HashMap<VarId, SequenceType>,
    /// Errors found in strict mode.
    pub errors: Vec<Error>,
    pub strict: bool,
}

impl<'a> TypeEnv<'a> {
    pub fn new(functions: &'a [CoreFunction]) -> Self {
        TypeEnv {
            functions,
            vars: HashMap::new(),
            errors: Vec::new(),
            strict: false,
        }
    }

    pub fn strict(functions: &'a [CoreFunction]) -> Self {
        TypeEnv {
            functions,
            vars: HashMap::new(),
            errors: Vec::new(),
            strict: true,
        }
    }

    pub fn bind(&mut self, var: VarId, ty: SequenceType) {
        self.vars.insert(var, ty);
    }

    fn var_type(&self, var: VarId) -> SequenceType {
        self.vars.get(&var).cloned().unwrap_or(SequenceType::ANY)
    }
}

fn atomic(t: AtomicType) -> SequenceType {
    SequenceType::atomic(t)
}

fn boolean() -> SequenceType {
    atomic(AtomicType::Boolean)
}

/// Numeric promotion for arithmetic results.
fn numeric_lub(a: AtomicType, b: AtomicType) -> AtomicType {
    use AtomicType::*;
    match (a, b) {
        (Double, _) | (_, Double) => Double,
        (Float, _) | (_, Float) => Float,
        (Decimal, _) | (_, Decimal) => Decimal,
        _ => Integer,
    }
}

/// The atomized type of a sequence type (`fn:data` result).
fn atomized(ty: &SequenceType) -> SequenceType {
    match ty {
        SequenceType::Empty => SequenceType::Empty,
        SequenceType::Of(item, occ) => {
            let at = match item {
                ItemType::Atomic(a) => *a,
                // Untyped data model: node typed-values are untyped.
                _ => AtomicType::UntypedAtomic,
            };
            SequenceType::Of(ItemType::Atomic(at), *occ)
        }
    }
}

fn step_item_type(axis: AxisName, test: &NodeTest) -> ItemType {
    let kind = match axis {
        AxisName::Attribute => NodeKind::Attribute,
        AxisName::Namespace => NodeKind::Namespace,
        _ => NodeKind::Element,
    };
    match test {
        NodeTest::Name(q) => ItemType::Kind(kind, NameTest::Name(q.clone())),
        NodeTest::AnyName | NodeTest::NamespaceWildcard(_) | NodeTest::LocalWildcard(_) => {
            ItemType::Kind(kind, NameTest::Any)
        }
        NodeTest::AnyKind => ItemType::AnyNode,
        NodeTest::Text => ItemType::Kind(NodeKind::Text, NameTest::Any),
        NodeTest::Comment => ItemType::Kind(NodeKind::Comment, NameTest::Any),
        NodeTest::Pi(_) => ItemType::Kind(NodeKind::ProcessingInstruction, NameTest::Any),
        NodeTest::Document => ItemType::Kind(NodeKind::Document, NameTest::Any),
        NodeTest::Element(n) => ItemType::Kind(
            NodeKind::Element,
            n.clone().map_or(NameTest::Any, NameTest::Name),
        ),
        NodeTest::Attribute(n) => ItemType::Kind(
            NodeKind::Attribute,
            n.clone().map_or(NameTest::Any, NameTest::Name),
        ),
    }
}

/// Infer the static type of `e` under `env`.
pub fn infer(e: &Core, env: &mut TypeEnv<'_>) -> SequenceType {
    use Core::*;
    match e {
        Const(v) => atomic(v.type_of()),
        Empty => SequenceType::Empty,
        Seq(items) => {
            let mut ty = SequenceType::Empty;
            for i in items {
                let t = infer(i, env);
                ty = ty.concat(&t);
            }
            ty
        }
        Range(_, _) => SequenceType::zero_or_more(ItemType::Atomic(AtomicType::Integer)),
        Var(v) => env.var_type(*v),
        ContextItem => SequenceType::one(ItemType::AnyItem),
        Root => SequenceType::one(ItemType::Kind(NodeKind::Document, NameTest::Any)),
        For {
            var,
            position,
            source,
            body,
        } => {
            let src = infer(source, env);
            env.bind(*var, src.item_one());
            if let Some(p) = position {
                env.bind(*p, atomic(AtomicType::Integer));
            }
            let b = infer(body, env);
            src.for_loop(&b)
        }
        Let { var, value, body } => {
            let v = infer(value, env);
            env.bind(*var, v);
            infer(body, env)
        }
        OrderedFlwor { clauses, body, .. } => {
            let mut multiplier = Occurrence::One;
            for c in clauses {
                match c {
                    CoreClause::For {
                        var,
                        position,
                        source,
                    } => {
                        let src = infer(source, env);
                        env.bind(*var, src.item_one());
                        if let Some(p) = position {
                            env.bind(*p, atomic(AtomicType::Integer));
                        }
                        if let Some(o) = src.occurrence() {
                            multiplier = multiplier.for_loop(o);
                        } else {
                            return SequenceType::Empty;
                        }
                    }
                    CoreClause::Let { var, value } => {
                        let v = infer(value, env);
                        env.bind(*var, v);
                    }
                    CoreClause::GroupLet {
                        var,
                        inner_var,
                        inner,
                        match_body,
                        ..
                    } => {
                        let it = infer(inner, env);
                        env.bind(*inner_var, it.item_one());
                        let mt = infer(match_body, env);
                        let grouped = match mt {
                            SequenceType::Empty => SequenceType::Empty,
                            SequenceType::Of(item, _) => SequenceType::zero_or_more(item),
                        };
                        env.bind(*var, grouped);
                    }
                }
            }
            let b = infer(body, env);
            // `where` can drop tuples; loosen to allow empty.
            match b {
                SequenceType::Empty => SequenceType::Empty,
                SequenceType::Of(item, _) => SequenceType::zero_or_more(item),
            }
        }
        If {
            then_branch,
            else_branch,
            ..
        } => {
            let t = infer(then_branch, env);
            let f = infer(else_branch, env);
            t.union(&f)
        }
        And(..) | Or(..) | Ebv(_) | Quantified { .. } | InstanceOf(..) | CastableAs(..) => {
            boolean()
        }
        Arith(_, a, b) => {
            let ta = atomized(&infer(a, env));
            let tb = atomized(&infer(b, env));
            if env.strict {
                for t in [&ta, &tb] {
                    if let SequenceType::Of(ItemType::Atomic(at), _) = t {
                        if !at.is_numeric()
                            && !matches!(
                                at,
                                AtomicType::UntypedAtomic
                                    | AtomicType::AnyAtomic
                                    | AtomicType::Date
                                    | AtomicType::Time
                                    | AtomicType::DateTime
                                    | AtomicType::Duration
                                    | AtomicType::YearMonthDuration
                                    | AtomicType::DayTimeDuration
                            )
                        {
                            env.errors.push(Error::type_error(format!(
                                "arithmetic on non-numeric type {}",
                                at.name()
                            )));
                        }
                    }
                }
            }
            let result_item = match (&ta, &tb) {
                (
                    SequenceType::Of(ItemType::Atomic(x), _),
                    SequenceType::Of(ItemType::Atomic(y), _),
                ) if x.is_numeric() && y.is_numeric() => ItemType::Atomic(numeric_lub(*x, *y)),
                _ => ItemType::Atomic(AtomicType::AnyAtomic),
            };
            // Empty operand → empty result: occurrence optional unless
            // both sides are exactly-one.
            let occ = match (ta.occurrence(), tb.occurrence()) {
                (Some(Occurrence::One), Some(Occurrence::One)) => Occurrence::One,
                (None, _) | (_, None) => return SequenceType::Empty,
                _ => Occurrence::Optional,
            };
            SequenceType::Of(result_item, occ)
        }
        Neg(a) => {
            let t = atomized(&infer(a, env));
            match t {
                SequenceType::Empty => SequenceType::Empty,
                SequenceType::Of(ItemType::Atomic(at), occ) if at.is_numeric() => {
                    SequenceType::Of(ItemType::Atomic(at), occ)
                }
                _ => SequenceType::optional(ItemType::Atomic(AtomicType::AnyAtomic)),
            }
        }
        Compare(op, a, b) => {
            let ta = infer(a, env);
            let tb = infer(b, env);
            if op.is_general() || matches!(op, CompOp::Is | CompOp::Before | CompOp::After) {
                boolean()
            } else {
                // Value comparisons are empty-preserving.
                if ta.allows_empty() || tb.allows_empty() {
                    SequenceType::optional(ItemType::Atomic(AtomicType::Boolean))
                } else {
                    boolean()
                }
            }
        }
        Union(a, b) | Intersect(a, b) | Except(a, b) => {
            let ta = infer(a, env);
            let tb = infer(b, env);
            let item = match (ta.item_type(), tb.item_type()) {
                (Some(x), Some(y)) if x == y => x.clone(),
                _ => ItemType::AnyNode,
            };
            SequenceType::zero_or_more(item)
        }
        Step { axis, test } => {
            let item = step_item_type(*axis, test);
            match axis {
                AxisName::SelfAxis | AxisName::Parent => SequenceType::optional(item),
                _ => SequenceType::zero_or_more(item),
            }
        }
        PathMap { input, step } => {
            let src = infer(input, env);
            let st = infer(step, env);
            src.for_loop(&st)
        }
        Ddo(inner) => {
            let t = infer(inner, env);
            match t {
                SequenceType::Empty => SequenceType::Empty,
                SequenceType::Of(item, occ) => {
                    let item = if item.is_node_type() {
                        item
                    } else {
                        ItemType::AnyNode
                    };
                    SequenceType::Of(item, occ)
                }
            }
        }
        Filter { input, .. } => {
            let t = infer(input, env);
            match t {
                SequenceType::Empty => SequenceType::Empty,
                SequenceType::Of(item, _) => SequenceType::zero_or_more(item),
            }
        }
        PositionConst { input, .. } => {
            let t = infer(input, env);
            match t {
                SequenceType::Empty => SequenceType::Empty,
                SequenceType::Of(item, _) => SequenceType::optional(item),
            }
        }
        Builtin(name, args) => builtin_type(name, args, env),
        UserCall(f, args) => {
            for a in args {
                infer(a, env);
            }
            env.functions
                .get(f.0 as usize)
                .and_then(|f| f.return_type.clone())
                .unwrap_or(SequenceType::ANY)
        }
        CastAs(inner, ty, optional) => {
            let t = infer(inner, env);
            if *optional && t.allows_empty() {
                SequenceType::optional(ItemType::Atomic(*ty))
            } else {
                atomic(*ty)
            }
        }
        TreatAs(_, ty) => ty.clone(),
        Typeswitch {
            operand,
            cases,
            default_var,
            default_body,
        } => {
            let op_ty = infer(operand, env);
            let mut result: Option<SequenceType> = None;
            for c in cases {
                if let Some(v) = c.var {
                    env.bind(v, c.ty.clone());
                }
                let t = infer(&c.body, env);
                result = Some(match result {
                    Some(r) => r.union(&t),
                    None => t,
                });
            }
            if let Some(v) = default_var {
                env.bind(*v, op_ty);
            }
            let d = infer(default_body, env);
            match result {
                Some(r) => r.union(&d),
                None => d,
            }
        }
        ElemCtor { .. } => SequenceType::one(ItemType::element(None)),
        AttrCtor { .. } => SequenceType::one(ItemType::attribute(None)),
        TextCtor(_) => SequenceType::one(ItemType::Kind(NodeKind::Text, NameTest::Any)),
        CommentCtor(_) => SequenceType::one(ItemType::Kind(NodeKind::Comment, NameTest::Any)),
        PiCtor { .. } => SequenceType::one(ItemType::Kind(
            NodeKind::ProcessingInstruction,
            NameTest::Any,
        )),
        DocCtor(_) => SequenceType::one(ItemType::Kind(NodeKind::Document, NameTest::Any)),
        HashJoin {
            outer_var,
            outer,
            inner_var,
            inner,
            group,
            body,
            ..
        } => {
            let ot = infer(outer, env);
            env.bind(*outer_var, ot.item_one());
            let it = infer(inner, env);
            env.bind(*inner_var, it.item_one());
            if let Some(g) = group {
                let mt = infer(&g.match_body, env);
                let grouped = match mt {
                    SequenceType::Empty => SequenceType::Empty,
                    SequenceType::Of(item, _) => SequenceType::zero_or_more(item),
                };
                env.bind(g.let_var, grouped);
            }
            let b = infer(body, env);
            match b {
                SequenceType::Empty => SequenceType::Empty,
                SequenceType::Of(item, _) => SequenceType::zero_or_more(item),
            }
        }
        // Planted after typing; semantically identical to its fallback.
        IndexScan { fallback, .. } => infer(fallback, env),
    }
}

fn builtin_type(name: &str, args: &[Core], env: &mut TypeEnv<'_>) -> SequenceType {
    let arg_types: Vec<SequenceType> = args.iter().map(|a| infer(a, env)).collect();
    use AtomicType::*;
    match name {
        "count" | "string-length" | "position" | "last" => atomic(Integer),
        "string"
        | "name"
        | "local-name"
        | "namespace-uri"
        | "concat"
        | "string-join"
        | "upper-case"
        | "lower-case"
        | "normalize-space"
        | "translate"
        | "substring"
        | "substring-before"
        | "substring-after"
        | "codepoints-to-string"
        | "replace" => atomic(String),
        "empty" | "exists" | "not" | "true" | "false" | "contains" | "starts-with"
        | "ends-with" | "deep-equal" | "boolean" | "matches" => atomic(Boolean),
        "abs" | "ceiling" | "floor" | "round" | "round-half-to-even" => match arg_types.first() {
            Some(SequenceType::Of(ItemType::Atomic(a), occ)) if a.is_numeric() => {
                SequenceType::Of(ItemType::Atomic(*a), *occ)
            }
            _ => SequenceType::optional(ItemType::Atomic(AnyAtomic)),
        },
        "number" => atomic(Double),
        "sum" => match arg_types.first() {
            Some(SequenceType::Of(ItemType::Atomic(a), _)) if a.is_numeric() => atomic(*a),
            _ => atomic(AnyAtomic),
        },
        "avg" | "min" | "max" => SequenceType::optional(ItemType::Atomic(AnyAtomic)),
        "doc" | "document" => {
            SequenceType::optional(ItemType::Kind(NodeKind::Document, NameTest::Any))
        }
        "collection" => {
            SequenceType::zero_or_more(ItemType::Kind(NodeKind::Document, NameTest::Any))
        }
        "root" => SequenceType::one(ItemType::AnyNode),
        "data" => atomized(arg_types.first().unwrap_or(&SequenceType::ANY)),
        "distinct-values" | "tokenize" | "string-to-codepoints" | "index-of" => {
            SequenceType::zero_or_more(ItemType::Atomic(AnyAtomic))
        }
        "distinct-nodes" => SequenceType::zero_or_more(ItemType::AnyNode),
        "reverse" | "subsequence" | "insert-before" | "remove" | "unordered" | "trace" => {
            match arg_types.first() {
                Some(SequenceType::Of(item, _)) => SequenceType::zero_or_more(item.clone()),
                _ => SequenceType::ANY,
            }
        }
        "zero-or-one" => match arg_types.first() {
            Some(SequenceType::Of(item, _)) => SequenceType::optional(item.clone()),
            _ => SequenceType::optional(ItemType::AnyItem),
        },
        "one-or-more" => match arg_types.first() {
            Some(SequenceType::Of(item, _)) => SequenceType::one_or_more(item.clone()),
            _ => SequenceType::one_or_more(ItemType::AnyItem),
        },
        "exactly-one" => match arg_types.first() {
            Some(SequenceType::Of(item, _)) => SequenceType::one(item.clone()),
            _ => SequenceType::one(ItemType::AnyItem),
        },
        "current-date" => atomic(Date),
        "current-time" => atomic(Time),
        "current-dateTime" => atomic(DateTime),
        "implicit-timezone" => atomic(DayTimeDuration),
        "year-from-date"
        | "month-from-date"
        | "day-from-date"
        | "year-from-dateTime"
        | "month-from-dateTime"
        | "day-from-dateTime"
        | "hours-from-dateTime"
        | "minutes-from-dateTime"
        | "years-from-duration"
        | "months-from-duration"
        | "days-from-duration"
        | "hours-from-duration"
        | "minutes-from-duration" => atomic(Integer),
        "seconds-from-duration" => atomic(Decimal),
        "seconds-from-dateTime" => atomic(Decimal),
        "add-date" => atomic(Date),
        "compare" => SequenceType::optional(ItemType::Atomic(Integer)),
        "node-name" => SequenceType::optional(ItemType::Atomic(QName)),
        "base-uri" | "document-uri" => SequenceType::optional(ItemType::Atomic(AnyUri)),
        "error" => SequenceType::Empty,
        _ => SequenceType::ANY,
    }
}

/// Type-check a whole module; returns the body type (strict mode
/// accumulates errors in the env).
pub fn check_module(module: &CoreModule, strict: bool) -> Result<SequenceType> {
    let mut env = if strict {
        TypeEnv::strict(&module.functions)
    } else {
        TypeEnv::new(&module.functions)
    };
    for (_, var, value) in &module.globals {
        let ty = match value {
            Some(v) => infer(v, &mut env),
            None => SequenceType::ANY,
        };
        env.bind(*var, ty);
    }
    for f in &module.functions {
        for (p, pty) in &f.params {
            env.bind(*p, pty.clone().unwrap_or(SequenceType::ANY));
        }
        let got = infer(&f.body, &mut env);
        if strict {
            if let Some(want) = &f.return_type {
                if !got.is_subtype_of(want) && !want.is_subtype_of(&got) {
                    env.errors.push(Error::type_error(format!(
                        "function {} declares {want} but its body has type {got}",
                        f.name
                    )));
                }
            }
        }
    }
    let ty = infer(&module.body, &mut env);
    if let Some(first) = env.errors.into_iter().next() {
        return Err(first);
    }
    Ok(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize_module;
    use xqr_xqparser::parse_query;

    fn ty(src: &str) -> SequenceType {
        let m = normalize_module(&parse_query(src).unwrap()).unwrap();
        check_module(&m, false).unwrap()
    }

    #[test]
    fn literal_types() {
        assert_eq!(ty("42"), atomic(AtomicType::Integer));
        assert_eq!(ty("42.5"), atomic(AtomicType::Decimal));
        assert_eq!(ty("\"x\""), atomic(AtomicType::String));
        assert_eq!(ty("()"), SequenceType::Empty);
    }

    #[test]
    fn arithmetic_promotes() {
        assert_eq!(ty("1 + 2"), atomic(AtomicType::Integer));
        assert_eq!(ty("1 + 2.5"), atomic(AtomicType::Decimal));
        assert_eq!(ty("1 + 2.5e0"), atomic(AtomicType::Double));
    }

    #[test]
    fn sequence_and_flwor_types() {
        assert_eq!(
            ty("(1, 2, 3)"),
            SequenceType::one_or_more(ItemType::Atomic(AtomicType::Integer))
        );
        assert_eq!(
            ty("for $x in (1, 2) return $x * 2"),
            SequenceType::one_or_more(ItemType::Atomic(AtomicType::Integer))
        );
        assert_eq!(ty("let $x := 5 return $x"), atomic(AtomicType::Integer));
    }

    #[test]
    fn comparison_types() {
        assert_eq!(ty("1 eq 2"), atomic(AtomicType::Boolean));
        assert_eq!(ty("(1, 2) = 2"), atomic(AtomicType::Boolean));
        assert_eq!(ty("1 and 0"), atomic(AtomicType::Boolean));
    }

    #[test]
    fn path_types_are_node_kinds() {
        let t = ty("/book/title");
        match t {
            SequenceType::Of(ItemType::Kind(NodeKind::Element, NameTest::Name(q)), _) => {
                assert_eq!(q.local_name(), "title");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn constructor_types() {
        assert_eq!(ty("<a/>"), SequenceType::one(ItemType::element(None)));
        assert_eq!(
            ty("attribute x { 1 }"),
            SequenceType::one(ItemType::attribute(None))
        );
    }

    #[test]
    fn builtin_types() {
        assert_eq!(ty("count((1,2))"), atomic(AtomicType::Integer));
        assert_eq!(ty("string(1)"), atomic(AtomicType::String));
        assert_eq!(ty("empty(())"), atomic(AtomicType::Boolean));
    }

    #[test]
    fn if_union() {
        assert_eq!(ty("if (1) then 1 else 2"), atomic(AtomicType::Integer));
        let t = ty("if (1) then 1 else \"x\"");
        assert_eq!(t, atomic(AtomicType::AnyAtomic));
        let t = ty("if (1) then 1 else ()");
        assert_eq!(
            t,
            SequenceType::optional(ItemType::Atomic(AtomicType::Integer))
        );
    }

    #[test]
    fn strict_mode_catches_arith_on_string() {
        let m = normalize_module(&parse_query(r#""a" + 1"#).unwrap()).unwrap();
        assert!(check_module(&m, true).is_err());
        // but untyped data stays allowed
        let m = normalize_module(&parse_query("<a>3</a> + 1").unwrap()).unwrap();
        assert!(check_module(&m, true).is_ok());
    }

    #[test]
    fn function_return_types() {
        let t =
            ty("declare function local:f($x as xs:integer) as xs:integer { $x + 1 }; local:f(1)");
        assert_eq!(t, atomic(AtomicType::Integer));
    }

    #[test]
    fn strict_checks_function_body_against_signature() {
        let m = normalize_module(
            &parse_query("declare function local:f() as xs:integer { \"str\" }; local:f()")
                .unwrap(),
        )
        .unwrap();
        assert!(check_module(&m, true).is_err());
    }

    #[test]
    fn cast_types() {
        assert_eq!(ty("\"5\" cast as xs:integer"), atomic(AtomicType::Integer));
        assert_eq!(ty("5 instance of xs:integer"), atomic(AtomicType::Boolean));
    }
}
