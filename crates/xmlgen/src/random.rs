//! Parameterized random trees — the workload for the structural-join
//! experiments, where ancestor/descendant selectivity and nesting depth
//! are the variables the algorithms are sensitive to.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-tree parameters.
#[derive(Debug, Clone)]
pub struct RandomTreeConfig {
    pub seed: u64,
    /// Total number of elements to generate (approximate).
    pub nodes: usize,
    /// Maximum nesting depth.
    pub max_depth: usize,
    /// Tag alphabet: tags are `t0..t{alphabet}`.
    pub alphabet: usize,
    /// Probability that a generated element is named `a` (the join's
    /// ancestor tag) — controls ancestor selectivity.
    pub p_ancestor: f64,
    /// Probability that a generated element is named `d` (descendant
    /// tag).
    pub p_descendant: f64,
    /// Probability a node gets a short text child.
    pub p_text: f64,
    /// Probability a node gets a small numeric `k="…"` attribute. Zero
    /// (the default) draws nothing from the RNG, so documents generated
    /// by older configs are byte-identical under the same seed.
    pub p_attribute: f64,
}

impl Default for RandomTreeConfig {
    fn default() -> Self {
        RandomTreeConfig {
            seed: 7,
            nodes: 1000,
            max_depth: 12,
            alphabet: 8,
            p_ancestor: 0.1,
            p_descendant: 0.2,
            p_text: 0.3,
            p_attribute: 0.0,
        }
    }
}

/// Generate a random tree with the given shape.
pub fn random_tree(config: &RandomTreeConfig) -> String {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = String::with_capacity(config.nodes * 16);
    out.push_str("<root>");
    let mut budget = config.nodes as isize;
    // Generate a forest of subtrees until the node budget is exhausted.
    while budget > 0 {
        gen_subtree(&mut rng, config, 1, &mut budget, &mut out);
    }
    out.push_str("</root>");
    out
}

fn tag(rng: &mut StdRng, config: &RandomTreeConfig) -> String {
    let roll: f64 = rng.gen();
    if roll < config.p_ancestor {
        "a".to_string()
    } else if roll < config.p_ancestor + config.p_descendant {
        "d".to_string()
    } else {
        format!("t{}", rng.gen_range(0..config.alphabet.max(1)))
    }
}

fn gen_subtree(
    rng: &mut StdRng,
    config: &RandomTreeConfig,
    depth: usize,
    budget: &mut isize,
    out: &mut String,
) {
    if *budget <= 0 {
        return;
    }
    *budget -= 1;
    let t = tag(rng, config);
    out.push('<');
    out.push_str(&t);
    if config.p_attribute > 0.0 && rng.gen_bool(config.p_attribute) {
        out.push_str(&format!(" k=\"{}\"", rng.gen_range(0..10)));
    }
    out.push('>');
    if rng.gen_bool(config.p_text) {
        out.push('x');
    }
    if depth < config.max_depth {
        let children = rng.gen_range(0..4);
        for _ in 0..children {
            gen_subtree(rng, config, depth + 1, budget, out);
        }
    }
    out.push_str("</");
    out.push_str(&t);
    out.push('>');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let c = RandomTreeConfig::default();
        assert_eq!(random_tree(&c), random_tree(&c));
    }

    #[test]
    fn respects_budget_roughly() {
        let c = RandomTreeConfig {
            nodes: 500,
            ..Default::default()
        };
        let x = random_tree(&c);
        let opens = x.matches('<').count();
        // opens counts both open and close tags; elements ≈ opens/2.
        let elements = opens / 2;
        assert!((400..=700).contains(&elements), "{elements}");
    }

    #[test]
    fn selectivity_parameters_steer_tag_frequencies() {
        let many_a = RandomTreeConfig {
            p_ancestor: 0.5,
            p_descendant: 0.1,
            ..Default::default()
        };
        let few_a = RandomTreeConfig {
            p_ancestor: 0.01,
            p_descendant: 0.1,
            ..Default::default()
        };
        let xa = random_tree(&many_a);
        let xf = random_tree(&few_a);
        assert!(xa.matches("<a>").count() > xf.matches("<a>").count() * 3);
    }

    #[test]
    fn attributes_appear_only_when_enabled() {
        let plain = RandomTreeConfig::default();
        assert!(!random_tree(&plain).contains(" k=\""));
        let with_attrs = RandomTreeConfig {
            p_attribute: 0.5,
            ..Default::default()
        };
        assert!(random_tree(&with_attrs).contains(" k=\""));
        // p_attribute: 0.0 draws nothing from the RNG: same bytes as
        // before the field existed.
        assert_eq!(
            random_tree(&plain),
            random_tree(&RandomTreeConfig::default())
        );
    }

    #[test]
    fn depth_bounded() {
        let c = RandomTreeConfig {
            max_depth: 3,
            nodes: 300,
            ..Default::default()
        };
        let x = random_tree(&c);
        let mut depth = 0usize;
        let mut max = 0usize;
        let mut i = 0;
        let b = x.as_bytes();
        while i < b.len() {
            if b[i] == b'<' {
                if b[i + 1] == b'/' {
                    depth -= 1;
                } else {
                    depth += 1;
                    max = max.max(depth);
                }
            }
            i += 1;
        }
        assert!(max <= 4, "{max}"); // root + 3
    }
}
