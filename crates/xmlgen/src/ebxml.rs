//! The ebXML trading-partner configuration document — the input of the
//! talk's "fraction of a real customer XQuery" (ebSample.xml). The
//! element vocabulary matches what that query navigates:
//! `wlc/trading-partner` with addresses, certificates, delivery
//! channels, document exchanges and transports, plus
//! `collaboration-agreement` and `conversation-definition` sections.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// Generate a configuration with `partners` trading partners.
pub fn trading_partners(seed: u64, partners: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = String::with_capacity(partners * 1200);
    x.push_str("<wlc>");
    for i in 0..partners {
        let ptype = if rng.gen_bool(0.5) { "LOCAL" } else { "REMOTE" };
        let protocol = if rng.gen_bool(0.7) {
            "ebXML"
        } else {
            "RosettaNet"
        };
        let transport_protocol = if rng.gen_bool(0.5) { "http" } else { "https" };
        let _ = write!(
            x,
            "<trading-partner name=\"tp{i}\" type=\"{ptype}\" email=\"tp{i}@example.org\" phone=\"555-{i:04}\" user-name=\"user{i}\" extended-property-set-name=\"eps{}\">",
            i % 4
        );
        let _ = write!(
            x,
            "<party-identifier business-id=\"biz-{i:05}\"/><address>{} Exchange Road</address>",
            rng.gen_range(1..999)
        );
        if rng.gen_bool(0.8) {
            let _ = write!(x, "<client-certificate name=\"cc{i}\"/>");
        }
        if ptype == "REMOTE" {
            let _ = write!(x, "<server-certificate name=\"sc{i}\"/>");
        }
        let _ = write!(x, "<signature-certificate name=\"sig{i}\"/>");
        if protocol == "RosettaNet" {
            let _ = write!(x, "<encryption-certificate name=\"enc{i}\"/>");
        }
        // Delivery channels + document exchanges + transports whose names
        // join up — exactly what the customer query's where-clause
        // equi-joins on. Several channels per partner make the triple
        // join genuinely n-way (the shape join detection pays off on).
        let channels = rng.gen_range(1..4usize);
        for k in 0..channels {
            let _ = write!(
                x,
                "<delivery-channel name=\"dc{i}_{k}\" document-exchange-name=\"de{i}_{k}\" transport-name=\"tr{i}_{k}\" nonrepudiation-of-origin=\"{}\" nonrepudiation-of-receipt=\"{}\"/>",
                rng.gen_bool(0.5),
                rng.gen_bool(0.5)
            );
        }
        for k in 1..channels {
            let _ = write!(
                x,
                "<document-exchange name=\"de{i}_{k}\" business-protocol-name=\"{protocol}\" protocol-version=\"2.0\"/>"
            );
            let _ = write!(
                x,
                "<transport name=\"tr{i}_{k}\" protocol=\"{transport_protocol}\" protocol-version=\"1.1\"><endpoint uri=\"{transport_protocol}://partner{i}.example.org/x{k}\"/></transport>"
            );
        }
        let _ = write!(
            x,
            "<document-exchange name=\"de{i}_0\" business-protocol-name=\"{protocol}\" protocol-version=\"2.0\">"
        );
        if protocol == "ebXML" {
            let _ = write!(
                x,
                "<EBXML-binding signature-certificate-name=\"sig{i}\" delivery-semantics=\"OnceAndOnlyOnce\""
            );
            if rng.gen_bool(0.6) {
                let _ = write!(x, " ttl=\"{}\"", rng.gen_range(1..120) * 1000);
            }
            if rng.gen_bool(0.6) {
                let _ = write!(x, " retries=\"{}\"", rng.gen_range(1..5));
            }
            if rng.gen_bool(0.6) {
                let _ = write!(x, " retry-interval=\"{}\"", rng.gen_range(1..60) * 1000);
            }
            x.push_str("/>");
        } else {
            let _ = write!(
                x,
                "<RosettaNet-binding signature-certificate-name=\"sig{i}\" encryption-certificate-name=\"enc{i}\" cipher-algorithm=\"RC5\" encryption-level=\"{}\"",
                rng.gen_range(0..3)
            );
            if rng.gen_bool(0.5) {
                let _ = write!(x, " retries=\"{}\"", rng.gen_range(1..5));
            }
            if rng.gen_bool(0.5) {
                let _ = write!(x, " retry-interval=\"{}\"", rng.gen_range(1..60) * 1000);
            }
            if rng.gen_bool(0.5) {
                let _ = write!(x, " time-out=\"{}\"", rng.gen_range(1..600) * 1000);
            }
            x.push_str("/>");
        }
        x.push_str("</document-exchange>");
        let _ = write!(
            x,
            "<transport name=\"tr{i}_0\" protocol=\"{transport_protocol}\" protocol-version=\"1.1\"><endpoint uri=\"{transport_protocol}://partner{i}.example.org/exchange\"/></transport>"
        );
        x.push_str("</trading-partner>");
    }
    // Collaboration agreements pair random partners' delivery channels.
    for i in 0..partners.max(1) / 2 {
        let a = rng.gen_range(0..partners.max(1));
        let b = rng.gen_range(0..partners.max(1));
        let _ = write!(
            x,
            "<collaboration-agreement name=\"ca{i}\"><party delivery-channel-name=\"dc{a}_0\" trading-partner-name=\"tp{a}\"/><party delivery-channel-name=\"dc{b}_0\" trading-partner-name=\"tp{b}\"/></collaboration-agreement>"
        );
    }
    // Conversation definitions with workflow roles.
    for i in 0..partners.max(1) / 3 + 1 {
        let protocol = if i % 2 == 0 { "ebXML" } else { "RosettaNet" };
        let _ = write!(
            x,
            "<conversation-definition name=\"cd{i}\" business-protocol-name=\"{protocol}\"><role name=\"initiator\" wlpi-template=\"flow{i}\" description=\"starts cd{i}\"/><role name=\"participant\" wlpi-template=\"\"/></conversation-definition>"
        );
    }
    for i in 0..4 {
        let _ = write!(x, "<extended-property-set name=\"eps{i}\"><property key=\"k{i}\">v{i}</property></extended-property-set>");
    }
    x.push_str("</wlc>");
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(trading_partners(3, 5), trading_partners(3, 5));
    }

    #[test]
    fn vocabulary_matches_customer_query() {
        let x = trading_partners(1, 8);
        for needle in [
            "trading-partner",
            "party-identifier",
            "delivery-channel",
            "document-exchange",
            "EBXML-binding",
            "collaboration-agreement",
            "conversation-definition",
            "extended-property-set",
            "endpoint uri=",
        ] {
            assert!(x.contains(needle), "{needle}");
        }
    }

    #[test]
    fn join_keys_line_up() {
        // dcN/deN/trN names must join.
        let x = trading_partners(1, 3);
        assert!(x.contains("document-exchange-name=\"de0_0\""));
        assert!(x.contains("<document-exchange name=\"de0_0\""));
        assert!(x.contains("<transport name=\"tr0_0\""));
    }
}
