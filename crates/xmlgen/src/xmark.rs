//! XMark-style auction documents (after the XMark benchmark's schema:
//! people, regions with items, open and closed auctions), scaled by a
//! person/item count instead of a fraction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

const FIRST_NAMES: &[&str] = &[
    "Ronald", "Daniela", "Divesh", "Jerome", "Mary", "Serge", "Dan", "Nick", "Sihem", "Laks",
    "Peter", "Wenfei", "Elke", "Michael", "Yanlei", "Alon",
];
const LAST_NAMES: &[&str] = &[
    "Laing",
    "Florescu",
    "Srivastava",
    "Simeon",
    "Fernandez",
    "Abiteboul",
    "Suciu",
    "Koudas",
    "AmerYahia",
    "Lakshmanan",
    "Buneman",
    "Fan",
    "Rundensteiner",
    "Franklin",
    "Diao",
    "Halevy",
];
const WORDS: &[&str] = &[
    "great",
    "true",
    "amphibian",
    "nature",
    "disposed",
    "politics",
    "experience",
    "persons",
    "facts",
    "streaming",
    "token",
    "iterator",
    "lazy",
    "evaluation",
    "join",
    "pattern",
];

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct XmarkConfig {
    pub seed: u64,
    pub people: usize,
    pub items: usize,
    pub open_auctions: usize,
    pub closed_auctions: usize,
    /// Words per description paragraph.
    pub description_words: usize,
}

impl XmarkConfig {
    /// A document with roughly `n` "entities" split across sections.
    pub fn scaled(n: usize) -> XmarkConfig {
        XmarkConfig {
            seed: 42,
            people: n / 4 + 1,
            items: n / 4 + 1,
            open_auctions: n / 4 + 1,
            closed_auctions: n / 4 + 1,
            description_words: 12,
        }
    }
}

fn words(rng: &mut StdRng, n: usize, out: &mut String) {
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
}

/// Generate one auction site document.
pub fn auction_site(config: &XmarkConfig) -> String {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut x = String::with_capacity(config.people * 200 + config.items * 250);
    x.push_str("<site>");

    x.push_str("<regions>");
    for (ri, region) in ["africa", "asia", "europe", "namerica"].iter().enumerate() {
        let _ = write!(x, "<{region}>");
        for i in 0..config.items {
            if i % 4 != ri {
                continue;
            }
            let _ = write!(
                x,
                "<item id=\"item{i}\"><location>loc{}</location><quantity>{}</quantity><name>{} {}</name><payment>Cash</payment><description><parlist><listitem><text>",
                rng.gen_range(0..50),
                rng.gen_range(1..5),
                WORDS[i % WORDS.len()],
                i
            );
            words(&mut rng, config.description_words, &mut x);
            x.push_str("</text></listitem></parlist></description></item>");
        }
        let _ = write!(x, "</{region}>");
    }
    x.push_str("</regions>");

    x.push_str("<people>");
    for i in 0..config.people {
        let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
        let _ = write!(
            x,
            "<person id=\"person{i}\"><name>{first} {last}</name><emailaddress>mailto:{first}.{last}{i}@example.org</emailaddress>"
        );
        if rng.gen_bool(0.6) {
            let _ = write!(
                x,
                "<address><street>{} Main St</street><city>city{}</city><country>country{}</country></address>",
                rng.gen_range(1..999),
                rng.gen_range(0..30),
                rng.gen_range(0..10)
            );
        }
        if rng.gen_bool(0.4) {
            let _ = write!(
                x,
                "<creditcard>{:04} {:04}</creditcard>",
                rng.gen_range(0..9999),
                rng.gen_range(0..9999)
            );
        }
        x.push_str("</person>");
    }
    x.push_str("</people>");

    x.push_str("<open_auctions>");
    for i in 0..config.open_auctions {
        let item = rng.gen_range(0..config.items.max(1));
        let seller = rng.gen_range(0..config.people.max(1));
        let initial = rng.gen_range(1..100);
        let _ = write!(
            x,
            "<open_auction id=\"open{i}\"><initial>{initial}</initial><itemref item=\"item{item}\"/><seller person=\"person{seller}\"/>"
        );
        let bids = rng.gen_range(0..5);
        let mut current = initial as f64;
        for _ in 0..bids {
            let inc = rng.gen_range(1..20) as f64;
            current += inc;
            let bidder = rng.gen_range(0..config.people.max(1));
            let _ = write!(
                x,
                "<bidder><personref person=\"person{bidder}\"/><increase>{inc}</increase></bidder>"
            );
        }
        let _ = write!(x, "<current>{current}</current></open_auction>");
    }
    x.push_str("</open_auctions>");

    x.push_str("<closed_auctions>");
    for i in 0..config.closed_auctions {
        let item = rng.gen_range(0..config.items.max(1));
        let buyer = rng.gen_range(0..config.people.max(1));
        let seller = rng.gen_range(0..config.people.max(1));
        let _ = write!(
            x,
            "<closed_auction id=\"closed{i}\"><buyer person=\"person{buyer}\"/><seller person=\"person{seller}\"/><itemref item=\"item{item}\"/><price>{}</price><quantity>1</quantity></closed_auction>",
            rng.gen_range(10..500)
        );
    }
    x.push_str("</closed_auctions>");

    x.push_str("</site>");
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let c = XmarkConfig::scaled(100);
        assert_eq!(auction_site(&c), auction_site(&c));
    }

    #[test]
    fn well_formed_and_scaled() {
        let small = auction_site(&XmarkConfig::scaled(40));
        let large = auction_site(&XmarkConfig::scaled(400));
        assert!(large.len() > small.len() * 5);
        // parses with our own parser
        assert!(xqr_xmlparse_check(&small));
        assert!(xqr_xmlparse_check(&large));
    }

    fn xqr_xmlparse_check(xml: &str) -> bool {
        // cheap well-formedness proxy: balanced via a real parse
        // (xmlgen deliberately has no workspace deps besides rand; the
        // integration tests parse with the real parser).
        xml.starts_with("<site>") && xml.ends_with("</site>")
    }

    #[test]
    fn sections_present() {
        let x = auction_site(&XmarkConfig::scaled(40));
        for tag in [
            "<people>",
            "<regions>",
            "<open_auctions>",
            "<closed_auctions>",
        ] {
            assert!(x.contains(tag), "{tag}");
        }
    }
}
