//! Bibliography documents shaped like the tutorial's `bib.xml` running
//! example: books with year, title, authors, publisher and price.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

const TITLES: &[&str] = &[
    "The politics of experience",
    "Data on the Web",
    "TCP/IP Illustrated",
    "Advanced Programming in the Unix environment",
    "Economics of Technology and Content for Digital TV",
    "Holistic Twig Joins",
    "Structural Joins",
    "Projecting XML Documents",
];
const LASTS: &[&str] = &[
    "Laing",
    "Stevens",
    "Abiteboul",
    "Buneman",
    "Suciu",
    "Gerbarg",
    "Bruno",
    "Koudas",
];
const FIRSTS: &[&str] = &[
    "Ronald", "W.", "Serge", "Peter", "Dan", "Darcy", "Nicolas", "Nick",
];
const PUBLISHERS: &[&str] = &[
    "Addison-Wesley",
    "Morgan Kaufmann",
    "Springer Verlag",
    "Kluwer",
    "MIT Press",
];

/// Generate a bibliography with `books` entries.
pub fn bibliography(seed: u64, books: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = String::with_capacity(books * 220);
    x.push_str("<bib>");
    for i in 0..books {
        let year = 1967 + rng.gen_range(0..40);
        let title = TITLES[i % TITLES.len()];
        let publisher = PUBLISHERS[rng.gen_range(0..PUBLISHERS.len())];
        let price = rng.gen_range(1000..15000) as f64 / 100.0;
        let _ = write!(x, "<book year=\"{year}\"><title>{title} vol. {i}</title>");
        for _ in 0..rng.gen_range(1..4) {
            let _ = write!(
                x,
                "<author><last>{}</last><first>{}</first></author>",
                LASTS[rng.gen_range(0..LASTS.len())],
                FIRSTS[rng.gen_range(0..FIRSTS.len())]
            );
        }
        let _ = write!(
            x,
            "<publisher>{publisher}</publisher><price>{price:.2}</price></book>"
        );
    }
    x.push_str("</bib>");
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_scaled() {
        assert_eq!(bibliography(7, 10), bibliography(7, 10));
        assert_ne!(bibliography(7, 10), bibliography(8, 10));
        assert!(bibliography(7, 100).len() > bibliography(7, 10).len() * 5);
    }

    #[test]
    fn shape() {
        let x = bibliography(1, 3);
        assert_eq!(x.matches("<book ").count(), 3);
        assert!(x.contains("<publisher>"));
        assert!(x.contains("year=\""));
    }
}
