//! # xqr-xmlgen — deterministic XML workload generators
//!
//! The talk's use cases need data: XMark-style auction sites (the
//! "large volumes of centralized textual data" scenario), `bib`
//! bibliographies (the tutorial's running query examples), the ebXML
//! trading-partner configuration the 60%-of-a-customer query consumes
//! (the "XML transformation in Web Services" scenario), and parameterized
//! random trees for the structural-join experiments. Everything is
//! seeded: the same parameters always produce the same document.

pub mod bib;
pub mod ebxml;
pub mod random;
pub mod xmark;

pub use bib::bibliography;
pub use ebxml::trading_partners;
pub use random::{random_tree, RandomTreeConfig};
pub use xmark::{auction_site, XmarkConfig};
