//! # xqr-joins — structural and holistic twig joins
//!
//! The algorithmic core the talk's "query evaluation, algorithms"
//! reading list surveys, implemented over the store's containment labels:
//!
//! * [`stacktree`] — Stack-Tree-Desc/-Anc binary structural joins,
//!   MPMGJN merge join, nested-loop oracle (Al-Khalifa et al.);
//! * [`pathstack`]/[`twigstack`] — holistic path/twig joins with
//!   bounded intermediate results (Bruno et al.);
//! * [`navigate`] — the navigational baseline and correctness oracle;
//! * [`twig`] — the twig pattern language shared by all of them.
//!
//! ```
//! use std::sync::Arc;
//! use xqr_joins::{element_list, stack_tree_desc, JoinKind};
//! use xqr_store::Document;
//! use xqr_xdm::{NamePool, QName};
//!
//! let names = Arc::new(NamePool::new());
//! let doc = Document::parse("<a><b/><a><b/></a></a>", names.clone()).unwrap();
//! let a = names.intern(&QName::local("a"));
//! let b = names.intern(&QName::local("b"));
//! let pairs = stack_tree_desc(
//!     &element_list(&doc, a),
//!     &element_list(&doc, b),
//!     JoinKind::AncestorDescendant,
//! );
//! assert_eq!(pairs.len(), 3); // outer a→2 b's, inner a→1
//! ```

pub mod label;
pub mod navigate;
pub mod pathstack;
pub mod stacktree;
pub mod twig;
pub mod twigstack;

pub use label::{all_elements_list, element_list, range_by_start, Labeled};
pub use navigate::{count_matches, enumerate_matches, matches_of_node};
pub use pathstack::{path_stack, path_stack_on, Tick};
pub use stacktree::{
    mpmgjn, nested_loop, normalize, stack_tree_anc, stack_tree_desc, JoinKind, Pair,
};
pub use twig::{EdgeKind, TwigNode, TwigPattern};
pub use twigstack::{twig_stack, twig_stack_on, TwigStats};
