//! Binary structural joins over containment-labeled lists.
//!
//! Implements the Stack-Tree family from Al-Khalifa et al. ("Structural
//! Joins: A Primitive for Efficient XML Query Pattern Matching"), plus
//! the naive nested-loop baseline and an MPMGJN-style merge join with
//! backtracking (Zhang et al.), which the Stack-Tree paper uses as its
//! comparison point. Experiment E5 races these against navigation.

use crate::label::Labeled;

/// A matched (ancestor, descendant) pair.
pub type Pair = (Labeled, Labeled);

/// Join condition: ancestor-descendant (`//`) or parent-child (`/`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    AncestorDescendant,
    ParentChild,
}

impl JoinKind {
    #[inline]
    fn matches(self, a: &Labeled, d: &Labeled) -> bool {
        match self {
            JoinKind::AncestorDescendant => a.contains(d),
            JoinKind::ParentChild => a.is_parent_of(d),
        }
    }
}

/// Stack-Tree-Desc: output sorted by descendant. Both inputs must be
/// sorted by `start`. Runs in O(|A| + |D| + |output|).
pub fn stack_tree_desc(alist: &[Labeled], dlist: &[Labeled], kind: JoinKind) -> Vec<Pair> {
    let mut out = Vec::new();
    let mut stack: Vec<Labeled> = Vec::new();
    let mut a = 0usize;
    let mut d = 0usize;
    while d < dlist.len() && (a < alist.len() || !stack.is_empty()) {
        if a < alist.len() && alist[a].start < dlist[d].start {
            // Next event is an ancestor-candidate start.
            while let Some(top) = stack.last() {
                if top.end < alist[a].start {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(alist[a]);
            a += 1;
        } else {
            while let Some(top) = stack.last() {
                if top.end < dlist[d].start {
                    stack.pop();
                } else {
                    break;
                }
            }
            // Every remaining stack entry contains dlist[d].
            for anc in &stack {
                if kind.matches(anc, &dlist[d]) {
                    out.push((*anc, dlist[d]));
                }
            }
            d += 1;
        }
    }
    out
}

/// Stack-Tree-Anc: output sorted by ancestor. Same inputs/complexity;
/// buffers per-stack-entry "inherit lists" so results can be emitted in
/// ancestor order when an entry pops.
pub fn stack_tree_anc(alist: &[Labeled], dlist: &[Labeled], kind: JoinKind) -> Vec<Pair> {
    struct Entry {
        anc: Labeled,
        /// Matches for this ancestor, plus matches inherited from popped
        /// descendants-in-stack below it.
        self_list: Vec<Pair>,
        inherit: Vec<Pair>,
    }
    let mut out = Vec::new();
    let mut stack: Vec<Entry> = Vec::new();
    let mut a = 0usize;
    let mut d = 0usize;

    fn pop(stack: &mut Vec<Entry>, out: &mut Vec<Pair>) {
        let e = stack.pop().expect("pop on non-empty stack");
        // Ancestor order: this entry's own pairs (smallest ancestor
        // start) precede pairs inherited from its popped descendants.
        let mut merged = e.self_list;
        merged.extend(e.inherit);
        if let Some(parent) = stack.last_mut() {
            parent.inherit.extend(merged);
        } else {
            out.extend(merged);
        }
    }

    while d < dlist.len() && (a < alist.len() || !stack.is_empty()) {
        if a < alist.len() && alist[a].start < dlist[d].start {
            while let Some(top) = stack.last() {
                if top.anc.end < alist[a].start {
                    pop(&mut stack, &mut out);
                } else {
                    break;
                }
            }
            stack.push(Entry {
                anc: alist[a],
                self_list: Vec::new(),
                inherit: Vec::new(),
            });
            a += 1;
        } else {
            while let Some(top) = stack.last() {
                if top.anc.end < dlist[d].start {
                    pop(&mut stack, &mut out);
                } else {
                    break;
                }
            }
            for e in stack.iter_mut() {
                if kind.matches(&e.anc, &dlist[d]) {
                    e.self_list.push((e.anc, dlist[d]));
                }
            }
            d += 1;
        }
    }
    while !stack.is_empty() {
        pop(&mut stack, &mut out);
    }
    out
}

/// MPMGJN-style merge join: like a sort-merge join on the interval
/// predicate, but must *backtrack* the descendant cursor for each new
/// ancestor (nested ancestors re-scan descendants), so it degrades on
/// deeply recursive data — exactly the weakness Stack-Tree fixes.
pub fn mpmgjn(alist: &[Labeled], dlist: &[Labeled], kind: JoinKind) -> Vec<Pair> {
    let mut out = Vec::new();
    let mut d_base = 0usize;
    for a in alist {
        // Advance the base past descendants that end before this ancestor
        // starts (they can never match later ancestors either).
        while d_base < dlist.len() && dlist[d_base].start < a.start {
            d_base += 1;
        }
        let mut d = d_base;
        while d < dlist.len() && dlist[d].start <= a.end {
            if kind.matches(a, &dlist[d]) {
                out.push((*a, dlist[d]));
            }
            d += 1;
        }
    }
    out
}

/// O(|A|·|D|) nested-loop baseline — the correctness oracle.
pub fn nested_loop(alist: &[Labeled], dlist: &[Labeled], kind: JoinKind) -> Vec<Pair> {
    let mut out = Vec::new();
    for a in alist {
        for d in dlist {
            if kind.matches(a, d) {
                out.push((*a, *d));
            }
        }
    }
    out
}

/// Sort pairs (descendant-major) for comparisons between algorithms.
pub fn normalize(mut pairs: Vec<Pair>) -> Vec<Pair> {
    pairs.sort_by_key(|(a, d)| (d.start, a.start));
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::element_list;
    use std::sync::Arc;
    use xqr_store::Document;
    use xqr_xdm::{NamePool, QName};

    fn lists(xml: &str, anc: &str, desc: &str) -> (Vec<Labeled>, Vec<Labeled>) {
        let names = Arc::new(NamePool::new());
        let d = Document::parse(xml, names.clone()).unwrap();
        let a = names.intern(&QName::local(anc));
        let b = names.intern(&QName::local(desc));
        (element_list(&d, a), element_list(&d, b))
    }

    const NESTED: &str = "<a><b/><a><b/><a><b/></a></a><c><b/></c></a>";

    #[test]
    fn stack_tree_desc_matches_oracle() {
        let (al, dl) = lists(NESTED, "a", "b");
        let got = normalize(stack_tree_desc(&al, &dl, JoinKind::AncestorDescendant));
        let want = normalize(nested_loop(&al, &dl, JoinKind::AncestorDescendant));
        assert_eq!(got, want);
        // 3 a's, 4 b's: outer a contains all 4, middle contains 2, inner 1 → 7? Check oracle count.
        assert_eq!(got.len(), want.len());
        assert!(got.len() >= 6);
    }

    #[test]
    fn stack_tree_anc_matches_oracle() {
        let (al, dl) = lists(NESTED, "a", "b");
        let got = normalize(stack_tree_anc(&al, &dl, JoinKind::AncestorDescendant));
        let want = normalize(nested_loop(&al, &dl, JoinKind::AncestorDescendant));
        assert_eq!(got, want);
    }

    #[test]
    fn anc_variant_emits_in_ancestor_order() {
        let (al, dl) = lists(NESTED, "a", "b");
        let got = stack_tree_anc(&al, &dl, JoinKind::AncestorDescendant);
        let ancs: Vec<u32> = got.iter().map(|(a, _)| a.start).collect();
        let mut sorted = ancs.clone();
        sorted.sort();
        assert_eq!(ancs, sorted);
    }

    #[test]
    fn desc_variant_emits_in_descendant_order() {
        let (al, dl) = lists(NESTED, "a", "b");
        let got = stack_tree_desc(&al, &dl, JoinKind::AncestorDescendant);
        let descs: Vec<u32> = got.iter().map(|(_, d)| d.start).collect();
        let mut sorted = descs.clone();
        sorted.sort();
        assert_eq!(descs, sorted);
    }

    #[test]
    fn parent_child_filters_levels() {
        let (al, dl) = lists(NESTED, "a", "b");
        let pc = normalize(stack_tree_desc(&al, &dl, JoinKind::ParentChild));
        let want = normalize(nested_loop(&al, &dl, JoinKind::ParentChild));
        assert_eq!(pc, want);
        let ad = stack_tree_desc(&al, &dl, JoinKind::AncestorDescendant);
        assert!(pc.len() < ad.len());
    }

    #[test]
    fn mpmgjn_matches_oracle() {
        let (al, dl) = lists(NESTED, "a", "b");
        for kind in [JoinKind::AncestorDescendant, JoinKind::ParentChild] {
            let got = normalize(mpmgjn(&al, &dl, kind));
            let want = normalize(nested_loop(&al, &dl, kind));
            assert_eq!(got, want, "{kind:?}");
        }
    }

    #[test]
    fn empty_inputs() {
        let (al, dl) = lists("<a><b/></a>", "a", "zzz");
        assert!(stack_tree_desc(&al, &dl, JoinKind::AncestorDescendant).is_empty());
        let (al2, dl2) = lists("<a><b/></a>", "zzz", "b");
        assert!(stack_tree_desc(&al2, &dl2, JoinKind::AncestorDescendant).is_empty());
        let _ = (al, dl, al2, dl2);
    }

    #[test]
    fn disjoint_siblings_do_not_match() {
        let (al, dl) = lists("<r><a/><b/><a/><b/></r>", "a", "b");
        assert!(stack_tree_desc(&al, &dl, JoinKind::AncestorDescendant).is_empty());
        assert!(stack_tree_anc(&al, &dl, JoinKind::AncestorDescendant).is_empty());
        assert!(mpmgjn(&al, &dl, JoinKind::AncestorDescendant).is_empty());
    }
}
