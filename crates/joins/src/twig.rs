//! Twig patterns: the tree-shaped queries that structural and holistic
//! joins evaluate ("From Tree Patterns to Generalized Tree Patterns",
//! "Holistic twig joins: optimal XML pattern matching" — both on the
//! talk's reading list).
//!
//! A twig is a small tree of name tests connected by child (`/`) or
//! descendant (`//`) edges. `//a//b[c]/d` becomes a four-node twig.

use xqr_xdm::{NameId, NamePool, QName, Result};

/// Edge type between a twig node and its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// `/` — parent-child.
    Child,
    /// `//` — ancestor-descendant.
    Descendant,
}

/// One node of a twig pattern.
#[derive(Debug, Clone)]
pub struct TwigNode {
    /// Element name to match.
    pub name: NameId,
    /// How this node connects to its parent (ignored for the root).
    pub edge: EdgeKind,
    /// Children in the pattern tree.
    pub children: Vec<usize>,
    /// Parent index; `None` for the root.
    pub parent: Option<usize>,
}

/// A parsed twig pattern. Node 0 is the root.
#[derive(Debug, Clone)]
pub struct TwigPattern {
    pub nodes: Vec<TwigNode>,
    /// Root edge: how the root relates to the document root.
    pub root_edge: EdgeKind,
}

impl TwigPattern {
    /// Build a linear path twig: `//a/b//c` style. `steps` are
    /// `(edge, name)` pairs applied in order.
    pub fn path(root_edge: EdgeKind, steps: &[(EdgeKind, NameId)]) -> TwigPattern {
        assert!(!steps.is_empty(), "a twig needs at least one node");
        let mut nodes = Vec::with_capacity(steps.len());
        for (i, &(edge, name)) in steps.iter().enumerate() {
            nodes.push(TwigNode {
                name,
                edge,
                children: if i + 1 < steps.len() {
                    vec![i + 1]
                } else {
                    vec![]
                },
                parent: if i == 0 { None } else { Some(i - 1) },
            });
        }
        TwigPattern {
            nodes,
            root_edge: if steps.len() == 1 {
                root_edge
            } else {
                steps[0].0
            },
        }
        .with_root_edge(root_edge)
    }

    fn with_root_edge(mut self, e: EdgeKind) -> Self {
        self.root_edge = e;
        self
    }

    /// Add a branch under `parent`, returning the new node's index.
    pub fn add_child(&mut self, parent: usize, edge: EdgeKind, name: NameId) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(TwigNode {
            name,
            edge,
            children: vec![],
            parent: Some(parent),
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    /// Parse a compact textual form: `//a/b[//c]/d` — name tests joined
    /// by `/` or `//`, with `[...]` branches. Only element names (the
    /// join experiments don't need more).
    pub fn parse(pattern: &str, names: &NamePool) -> Result<TwigPattern> {
        let mut p = Parser {
            src: pattern.as_bytes(),
            pos: 0,
            names,
        };
        p.parse_twig()
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Indices of leaf nodes.
    pub fn leaves(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].children.is_empty())
            .collect()
    }

    /// Is the pattern a pure path (no branching)?
    pub fn is_path(&self) -> bool {
        self.nodes.iter().all(|n| n.children.len() <= 1)
    }

    /// Root-to-node path of twig indices.
    pub fn path_to(&self, mut idx: usize) -> Vec<usize> {
        let mut path = vec![idx];
        while let Some(p) = self.nodes[idx].parent {
            path.push(p);
            idx = p;
        }
        path.reverse();
        path
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    names: &'a NamePool,
}

impl<'a> Parser<'a> {
    fn parse_twig(&mut self) -> Result<TwigPattern> {
        let root_edge = self.parse_edge()?;
        let mut twig = TwigPattern {
            nodes: Vec::new(),
            root_edge,
        };
        self.parse_steps(&mut twig, None)?;
        if twig.nodes.is_empty() {
            return Err(xqr_xdm::Error::syntax("empty twig pattern"));
        }
        if self.pos != self.src.len() {
            return Err(xqr_xdm::Error::syntax(format!(
                "trailing input in twig pattern at {}",
                self.pos
            )));
        }
        Ok(twig)
    }

    fn parse_edge(&mut self) -> Result<EdgeKind> {
        if self.eat(b"//") {
            Ok(EdgeKind::Descendant)
        } else if self.eat(b"/") {
            Ok(EdgeKind::Child)
        } else {
            Err(xqr_xdm::Error::syntax(
                "twig pattern must start with / or //",
            ))
        }
    }

    fn eat(&mut self, s: &[u8]) -> bool {
        if self.src[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn parse_steps(&mut self, twig: &mut TwigPattern, parent: Option<usize>) -> Result<()> {
        let mut parent = parent;
        let mut edge = if parent.is_none() {
            twig.root_edge
        } else {
            self.parse_edge()?
        };
        loop {
            let name = self.parse_name()?;
            let idx = twig.nodes.len();
            twig.nodes.push(TwigNode {
                name,
                edge,
                children: vec![],
                parent,
            });
            if let Some(p) = parent {
                twig.nodes[p].children.push(idx);
            }
            // Branches.
            while self.eat(b"[") {
                let branch_edge = self.parse_edge().unwrap_or(EdgeKind::Child);
                let saved = twig.root_edge;
                twig.root_edge = branch_edge;
                self.parse_branch(twig, idx, branch_edge)?;
                twig.root_edge = saved;
                if !self.eat(b"]") {
                    return Err(xqr_xdm::Error::syntax("unterminated twig branch"));
                }
            }
            if self.pos >= self.src.len() || self.src[self.pos] == b']' {
                return Ok(());
            }
            edge = self.parse_edge()?;
            parent = Some(idx);
        }
    }

    fn parse_branch(
        &mut self,
        twig: &mut TwigPattern,
        parent: usize,
        first_edge: EdgeKind,
    ) -> Result<()> {
        let mut parent = parent;
        let mut edge = first_edge;
        loop {
            let name = self.parse_name()?;
            let idx = twig.nodes.len();
            twig.nodes.push(TwigNode {
                name,
                edge,
                children: vec![],
                parent: Some(parent),
            });
            twig.nodes[parent].children.push(idx);
            while self.eat(b"[") {
                let branch_edge = self.parse_edge().unwrap_or(EdgeKind::Child);
                self.parse_branch(twig, idx, branch_edge)?;
                if !self.eat(b"]") {
                    return Err(xqr_xdm::Error::syntax("unterminated twig branch"));
                }
            }
            if self.pos >= self.src.len() || self.src[self.pos] == b']' {
                return Ok(());
            }
            edge = self.parse_edge()?;
            parent = idx;
        }
    }

    fn parse_name(&mut self) -> Result<NameId> {
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric()
                || matches!(self.src[self.pos], b'_' | b'-' | b'.'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(xqr_xdm::Error::syntax("expected a name in twig pattern"));
        }
        let local = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| xqr_xdm::Error::syntax("non-UTF8 twig pattern"))?;
        Ok(self.names.intern(&QName::local(local)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> NamePool {
        NamePool::new()
    }

    #[test]
    fn parse_linear_path() {
        let names = pool();
        let t = TwigPattern::parse("//a/b//c", &names).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.root_edge, EdgeKind::Descendant);
        assert_eq!(t.nodes[1].edge, EdgeKind::Child);
        assert_eq!(t.nodes[2].edge, EdgeKind::Descendant);
        assert!(t.is_path());
        assert_eq!(t.leaves(), vec![2]);
    }

    #[test]
    fn parse_branching_twig() {
        let names = pool();
        let t = TwigPattern::parse("//book[author]/title", &names).unwrap();
        assert_eq!(t.len(), 3);
        assert!(!t.is_path());
        assert_eq!(t.nodes[0].children.len(), 2);
        assert_eq!(t.leaves().len(), 2);
        // path_to title goes through book
        let title_idx = t
            .nodes
            .iter()
            .position(|n| names.resolve(n.name).local_name() == "title")
            .unwrap();
        assert_eq!(t.path_to(title_idx), vec![0, title_idx]);
    }

    #[test]
    fn parse_nested_branches() {
        let names = pool();
        let t = TwigPattern::parse("//a[b[//c]]/d", &names).unwrap();
        assert_eq!(t.len(), 4);
        let b = 1;
        assert_eq!(t.nodes[b].children.len(), 1);
        assert_eq!(t.nodes[t.nodes[b].children[0]].edge, EdgeKind::Descendant);
    }

    #[test]
    fn parse_rejects_garbage() {
        let names = pool();
        assert!(TwigPattern::parse("a/b", &names).is_err());
        assert!(TwigPattern::parse("//", &names).is_err());
        assert!(TwigPattern::parse("//a[b", &names).is_err());
        assert!(TwigPattern::parse("//a]b", &names).is_err());
        assert!(TwigPattern::parse("", &names).is_err());
    }

    #[test]
    fn programmatic_construction() {
        let names = pool();
        let a = names.intern(&QName::local("a"));
        let b = names.intern(&QName::local("b"));
        let c = names.intern(&QName::local("c"));
        let mut t = TwigPattern::path(EdgeKind::Descendant, &[(EdgeKind::Descendant, a)]);
        let bi = t.add_child(0, EdgeKind::Child, b);
        t.add_child(bi, EdgeKind::Descendant, c);
        assert_eq!(t.len(), 3);
        assert_eq!(t.path_to(2), vec![0, 1, 2]);
    }
}
