//! Containment labels as consumed by the join algorithms.
//!
//! The store assigns every node `(start, end, level)` (start = preorder
//! index); here we extract, per element name, the **sorted-by-start
//! inverted list** of labeled nodes that all structural join algorithms
//! take as input ("Structural Joins: A Primitive for Efficient XML Query
//! Pattern Matching", on the talk's reading list).

use xqr_store::{Document, NodeId};
use xqr_xdm::NameId;

/// A node with its containment label, detached from the store so join
/// kernels are pure functions over slices.
///
/// `repr(C)` pins the field order and layout: the segment layer writes
/// these records to disk (node, start, end, level, two zero pad bytes =
/// 16 bytes) and maps them back as zero-copy `&[Labeled]` slices, so the
/// in-memory layout must match the on-disk one exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct Labeled {
    pub node: NodeId,
    pub start: u32,
    pub end: u32,
    pub level: u16,
}

impl Labeled {
    /// Is `self` a (proper) ancestor of `d`?
    #[inline]
    pub fn contains(&self, d: &Labeled) -> bool {
        self.start < d.start && d.start <= self.end
    }

    /// Is `self` the parent of `d`?
    #[inline]
    pub fn is_parent_of(&self, d: &Labeled) -> bool {
        self.contains(d) && self.level + 1 == d.level
    }
}

/// The window of `list` (sorted by `start`) whose starts fall in
/// `[lo, hi]`, both ends inclusive, as a zero-copy subslice.
///
/// This is the range-splitting primitive of the parallel join executor:
/// containment labels guarantee that every non-root witness of a twig
/// match starts inside its root's `(start, end]` interval, so slicing
/// each input list to a root chunk's label window loses no match.
pub fn range_by_start(list: &[Labeled], lo: u32, hi: u32) -> &[Labeled] {
    let from = list.partition_point(|e| e.start < lo);
    let to = list.partition_point(|e| e.start <= hi);
    &list[from..to]
}

/// The inverted list for one element name, sorted by `start`.
pub fn element_list(doc: &Document, name: NameId) -> Vec<Labeled> {
    doc.elements_named(name)
        .iter()
        .map(|&i| {
            let n = NodeId(i);
            Labeled {
                node: n,
                start: doc.start(n),
                end: doc.end(n),
                level: doc.level(n),
            }
        })
        .collect()
}

/// Inverted list for every element (used for `*` tests).
pub fn all_elements_list(doc: &Document) -> Vec<Labeled> {
    doc.all_elements()
        .map(|n| Labeled {
            node: n,
            start: doc.start(n),
            end: doc.end(n),
            level: doc.level(n),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xqr_xdm::{NamePool, QName};

    #[test]
    fn lists_are_sorted_and_labeled() {
        let names = Arc::new(NamePool::new());
        let d = Document::parse("<a><b/><a><b/></a></a>", names.clone()).unwrap();
        let a = names.get(&QName::local("a")).unwrap();
        let b = names.get(&QName::local("b")).unwrap();
        let alist = element_list(&d, a);
        let blist = element_list(&d, b);
        assert_eq!(alist.len(), 2);
        assert_eq!(blist.len(), 2);
        assert!(alist.windows(2).all(|w| w[0].start < w[1].start));
        // outer a contains both b's, inner a contains only the second
        assert!(alist[0].contains(&blist[0]));
        assert!(alist[0].contains(&blist[1]));
        assert!(!alist[1].contains(&blist[0]));
        assert!(alist[1].contains(&blist[1]));
        // parenthood needs the level check
        assert!(alist[0].is_parent_of(&blist[0]));
        assert!(!alist[0].is_parent_of(&blist[1]));
        assert!(alist[1].is_parent_of(&blist[1]));
    }

    #[test]
    fn range_by_start_windows() {
        let l = |s: u32| Labeled {
            node: NodeId(s),
            start: s,
            end: s,
            level: 0,
        };
        let list: Vec<Labeled> = [1u32, 3, 5, 7, 9].iter().map(|&s| l(s)).collect();
        assert_eq!(range_by_start(&list, 3, 7).len(), 3);
        assert_eq!(range_by_start(&list, 0, 100).len(), 5);
        assert_eq!(range_by_start(&list, 4, 4).len(), 0);
        assert_eq!(range_by_start(&list, 9, 9).len(), 1);
        assert_eq!(range_by_start(&list, 10, 20).len(), 0);
        assert_eq!(range_by_start(&[], 0, 10).len(), 0);
    }
}
