//! PathStack (Bruno, Koudas, Srivastava: "Holistic twig joins: optimal
//! XML pattern matching") — evaluates a *linear* path pattern
//! `p1 → p2 → … → pn` over n sorted element lists with one linked stack
//! per pattern node, in O(Σ inputs + output) for ancestor-descendant
//! edges, never materializing binary-join intermediates.

use crate::label::Labeled;
use crate::twig::{EdgeKind, TwigPattern};
use xqr_store::NodeId;
use xqr_xdm::Result;

/// Cooperative-interruption hook for the join main loops: called once
/// per iteration, an `Err` aborts the join immediately. The parallel
/// executor uses it to observe `QueryGuard` cancellation/deadlines and
/// sibling-morsel failures inside a running morsel; the serial wrappers
/// pass a no-op. The kernels are generic over the closure (a dyn hook
/// costs a measurable indirect call per kernel advance; monomorphized,
/// the no-op vanishes entirely) — this alias remains for callers that
/// want to name a boxed hook.
pub type Tick<'t> = &'t mut dyn FnMut() -> Result<()>;

/// One stack entry: the element plus the height of the parent-pattern
/// stack at push time (the "pointer" of the paper).
#[derive(Debug, Clone, Copy)]
struct Entry {
    elem: Labeled,
    parent_top: usize,
}

/// Evaluate a linear path twig over the per-node element lists
/// (`lists[i]` sorted by start, matching `twig.nodes[i]`). Returns full
/// root-to-leaf match tuples of node ids.
///
/// Panics if the twig is not a pure path — callers route branching twigs
/// to [`crate::twigstack::twig_stack`].
pub fn path_stack(twig: &TwigPattern, lists: &[Vec<Labeled>]) -> Vec<Vec<NodeId>> {
    let slices: Vec<&[Labeled]> = lists.iter().map(|l| l.as_slice()).collect();
    path_stack_on(twig, &slices, &mut || Ok(())).expect("path_stack with a no-op tick cannot fail")
}

/// [`path_stack`] over borrowed list windows with a [`Tick`] hook — the
/// form the morsel executor runs, one call per label-range slice.
pub fn path_stack_on(
    twig: &TwigPattern,
    lists: &[&[Labeled]],
    tick: &mut impl FnMut() -> Result<()>,
) -> Result<Vec<Vec<NodeId>>> {
    assert!(twig.is_path(), "path_stack requires a linear pattern");
    let n = twig.len();
    assert_eq!(lists.len(), n);
    // Pattern order root..leaf is index order for a path twig.
    let mut cursors = vec![0usize; n];
    let mut stacks: Vec<Vec<Entry>> = vec![Vec::new(); n];
    let mut out: Vec<Vec<NodeId>> = Vec::new();

    loop {
        tick()?;
        // qmin = pattern node whose next element has minimal start.
        let mut qmin = None;
        let mut min_start = u32::MAX;
        for q in 0..n {
            if let Some(e) = lists[q].get(cursors[q]) {
                if e.start < min_start {
                    min_start = e.start;
                    qmin = Some(q);
                }
            }
        }
        let q = match qmin {
            Some(q) => q,
            None => break,
        };
        let next = lists[q][cursors[q]];
        cursors[q] += 1;

        // Pop entries that end before `next` starts, on every stack.
        for s in stacks.iter_mut() {
            while let Some(top) = s.last() {
                if top.elem.end < next.start {
                    s.pop();
                } else {
                    break;
                }
            }
        }
        // Push only if the parent stack can still provide an ancestor.
        if q > 0 && stacks[q - 1].is_empty() {
            continue;
        }
        let parent_top = if q == 0 { 0 } else { stacks[q - 1].len() };
        stacks[q].push(Entry {
            elem: next,
            parent_top,
        });
        if q == n - 1 {
            // Leaf push: emit all solutions ending at this element.
            emit_solutions(
                twig,
                &stacks,
                n - 1,
                stacks[n - 1].len() - 1,
                &mut Vec::new(),
                &mut out,
            );
            stacks[n - 1].pop();
        }
    }
    // Solutions are emitted leaf-ordered; normalize to sorted tuples.
    out.sort();
    out.dedup();
    Ok(out)
}

/// Recursively expand one leaf entry into all consistent ancestor chains.
fn emit_solutions(
    twig: &TwigPattern,
    stacks: &[Vec<Entry>],
    q: usize,
    entry_idx: usize,
    partial: &mut Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
) {
    let entry = stacks[q][entry_idx];
    partial.push(entry.elem.node);
    if q == 0 {
        let mut tuple: Vec<NodeId> = partial.clone();
        tuple.reverse();
        out.push(tuple);
    } else {
        let edge = twig.nodes[q].edge;
        // Candidate parents: entries of stack q-1 below the saved top.
        for pi in 0..entry.parent_top.min(stacks[q - 1].len()) {
            let parent = stacks[q - 1][pi];
            let ok = match edge {
                EdgeKind::Descendant => parent.elem.contains(&entry.elem),
                EdgeKind::Child => parent.elem.is_parent_of(&entry.elem),
            };
            if ok {
                emit_solutions(twig, stacks, q - 1, pi, partial, out);
            }
        }
    }
    partial.pop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::element_list;
    use crate::navigate::enumerate_matches;
    use std::sync::Arc;
    use xqr_store::Document;
    use xqr_xdm::NamePool;

    fn run(xml: &str, pattern: &str) -> (Vec<Vec<NodeId>>, Vec<Vec<NodeId>>) {
        let names = Arc::new(NamePool::new());
        let d = Document::parse(xml, names.clone()).unwrap();
        let t = TwigPattern::parse(pattern, &names).unwrap();
        let lists: Vec<_> = t.nodes.iter().map(|n| element_list(&d, n.name)).collect();
        let mut want = enumerate_matches(&d, &t);
        want.sort();
        want.dedup();
        (path_stack(&t, &lists), want)
    }

    #[test]
    fn simple_descendant_path() {
        let (got, want) = run("<a><b/><x><b/></x></a>", "//a//b");
        assert_eq!(got, want);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn child_edges_respect_levels() {
        let (got, want) = run("<a><b/><x><b/></x></a>", "//a/b");
        assert_eq!(got, want);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn three_level_path_on_recursive_data() {
        let xml = "<a><b><a><b><c/></b></a><c/></b></a>";
        let (got, want) = run(xml, "//a//b//c");
        assert_eq!(got, want);
        assert!(got.len() >= 4, "{got:?}");
    }

    #[test]
    fn deeply_nested_same_name() {
        let mut xml = String::new();
        for _ in 0..10 {
            xml.push_str("<a>");
        }
        for _ in 0..10 {
            xml.push_str("</a>");
        }
        let (got, want) = run(&xml, "//a//a");
        assert_eq!(got, want);
        assert_eq!(got.len(), 45); // C(10,2)
    }

    #[test]
    fn mixed_edges() {
        let xml = "<r><a><m><b><c/></b></m></a><a><b><x><c/></x></b></a></r>";
        let (got, want) = run(xml, "//a//b/c");
        assert_eq!(got, want);
        let (got2, want2) = run(xml, "//a/b//c");
        assert_eq!(got2, want2);
    }

    #[test]
    fn empty_when_any_list_empty() {
        let (got, want) = run("<a><b/></a>", "//a//zz");
        assert_eq!(got, want);
        assert!(got.is_empty());
    }
}
