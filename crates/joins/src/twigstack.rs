//! TwigStack (Bruno, Koudas, Srivastava) — holistic evaluation of a
//! *branching* twig pattern. `getNext` only lets an element onto its
//! stack when it is guaranteed to participate in a root-to-leaf path
//! solution (exact for descendant-only twigs), so the intermediate
//! result — the set of path solutions — stays proportional to the
//! output, unlike a plan of binary structural joins. Experiment E6
//! measures precisely that gap.

use crate::label::Labeled;
use crate::pathstack;
use crate::twig::{EdgeKind, TwigPattern};
use std::collections::HashMap;
use xqr_store::NodeId;
use xqr_xdm::Result;

/// Instrumentation for the optimality claims.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwigStats {
    /// Path solutions emitted before the merge phase.
    pub path_solutions: usize,
    /// Full twig matches after merging.
    pub merged: usize,
    /// Elements pushed onto stacks (work measure).
    pub pushes: usize,
}

struct State<'a> {
    twig: &'a TwigPattern,
    lists: &'a [&'a [Labeled]],
    cursors: Vec<usize>,
    stacks: Vec<Vec<(Labeled, usize)>>,
    /// Path solutions per leaf twig node: tuples along `path_to(leaf)`.
    solutions: Vec<Vec<Vec<NodeId>>>,
    /// Leaf node indices (computed once).
    leaves: Vec<usize>,
    /// Precomputed root-to-node paths per twig node.
    paths: Vec<Vec<usize>>,
    stats: TwigStats,
}

impl<'a> State<'a> {
    fn next_start(&self, q: usize) -> u32 {
        self.lists[q]
            .get(self.cursors[q])
            .map(|e| e.start)
            .unwrap_or(u32::MAX)
    }

    fn next_end(&self, q: usize) -> u32 {
        self.lists[q]
            .get(self.cursors[q])
            .map(|e| e.end)
            .unwrap_or(u32::MAX)
    }

    fn exhausted(&self, q: usize) -> bool {
        self.cursors[q] >= self.lists[q].len()
    }

    /// All leaf streams exhausted → no further solutions possible.
    fn ended(&self) -> bool {
        self.leaves.iter().all(|&l| self.exhausted(l))
    }

    /// Every stream in q's subtree is fully consumed.
    fn subtree_exhausted(&self, q: usize) -> bool {
        self.exhausted(q)
            && self.twig.nodes[q]
                .children
                .iter()
                .all(|&c| self.subtree_exhausted(c))
    }

    fn get_next(&mut self, q: usize) -> usize {
        if self.twig.nodes[q].children.is_empty() {
            return q;
        }
        // Children whose subtrees are spent can neither block nor supply
        // further elements; skipping them keeps the join draining the
        // remaining branches (e.g. `//book[author/last]/price` once the
        // last `last` has streamed but `price` elements are pending).
        let mut live: Vec<usize> = Vec::new();
        let mut any_spent = false;
        for i in 0..self.twig.nodes[q].children.len() {
            let qi = self.twig.nodes[q].children[i];
            if self.subtree_exhausted(qi) {
                any_spent = true;
                continue;
            }
            let ni = self.get_next(qi);
            if ni != qi {
                return ni;
            }
            live.push(qi);
        }
        if any_spent {
            // Streams are consumed in document order, so every remaining
            // q element starts after all elements of the spent subtree
            // and can never contain one — no new q element can complete
            // a match. Existing stack entries still serve other leaves.
            self.cursors[q] = self.lists[q].len();
        }
        let Some(&first) = live.first() else {
            return q;
        };
        let mut qmin = first;
        let mut qmax = first;
        for &qi in &live {
            if self.next_start(qi) < self.next_start(qmin) {
                qmin = qi;
            }
            if self.next_start(qi) > self.next_start(qmax) {
                qmax = qi;
            }
        }
        // Advance q past elements that cannot contain qmax's head.
        while self.next_end(q) < self.next_start(qmax) {
            self.cursors[q] += 1;
        }
        if self.next_start(q) < self.next_start(qmin) {
            q
        } else {
            qmin
        }
    }

    fn clean_stack(&mut self, q: usize, next_start: u32) {
        while let Some((top, _)) = self.stacks[q].last() {
            if top.end < next_start {
                self.stacks[q].pop();
            } else {
                break;
            }
        }
    }

    /// Emit the path solutions for a just-pushed leaf entry, walking the
    /// saved parent pointers like PathStack.
    fn emit_leaf(&mut self, leaf: usize) {
        let path = std::mem::take(&mut self.paths[leaf]);
        let leaf_slot = path.len() - 1;
        let mut partial: Vec<Option<NodeId>> = vec![None; path.len()];
        let entry_idx = self.stacks[leaf].len() - 1;
        let mut found: Vec<Vec<NodeId>> = Vec::new();
        self.expand(&path, leaf_slot, entry_idx, &mut partial, &mut found);
        self.paths[leaf] = path;
        let leaf_pos = self.leaves.iter().position(|&l| l == leaf).expect("leaf");
        self.stats.path_solutions += found.len();
        self.solutions[leaf_pos].extend(found);
    }

    fn expand(
        &self,
        path: &[usize],
        slot: usize,
        entry_idx: usize,
        partial: &mut Vec<Option<NodeId>>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        let q = path[slot];
        let (elem, parent_top) = self.stacks[q][entry_idx];
        partial[slot] = Some(elem.node);
        if slot == 0 {
            out.push(partial.iter().map(|n| n.expect("full path")).collect());
        } else {
            let pq = path[slot - 1];
            let edge = self.twig.nodes[q].edge;
            for pi in 0..parent_top.min(self.stacks[pq].len()) {
                let (pelem, _) = self.stacks[pq][pi];
                let ok = match edge {
                    EdgeKind::Descendant => pelem.contains(&elem),
                    EdgeKind::Child => pelem.is_parent_of(&elem),
                };
                if ok {
                    self.expand(path, slot - 1, pi, partial, out);
                }
            }
        }
        partial[slot] = None;
    }
}

/// Run TwigStack over per-twig-node sorted element lists. Returns full
/// match tuples (indexed by twig node) and the instrumentation.
pub fn twig_stack(twig: &TwigPattern, lists: &[Vec<Labeled>]) -> (Vec<Vec<NodeId>>, TwigStats) {
    let slices: Vec<&[Labeled]> = lists.iter().map(|l| l.as_slice()).collect();
    twig_stack_on(twig, &slices, &mut || Ok(())).expect("twig_stack with a no-op tick cannot fail")
}

/// [`twig_stack`] over borrowed list windows with a
/// [`Tick`](crate::pathstack::Tick) hook — the range-splittable form the
/// morsel executor runs, one call per label-range slice of the inputs.
pub fn twig_stack_on(
    twig: &TwigPattern,
    lists: &[&[Labeled]],
    tick: &mut impl FnMut() -> Result<()>,
) -> Result<(Vec<Vec<NodeId>>, TwigStats)> {
    assert_eq!(lists.len(), twig.len());
    // Fast path: PathStack already handles linear patterns.
    if twig.is_path() {
        let sols = pathstack::path_stack_on(twig, lists, tick)?;
        let stats = TwigStats {
            path_solutions: sols.len(),
            merged: sols.len(),
            pushes: 0,
        };
        return Ok((sols, stats));
    }
    let leaves = twig.leaves();
    let paths: Vec<Vec<usize>> = (0..twig.len()).map(|i| twig.path_to(i)).collect();
    let mut st = State {
        twig,
        lists,
        cursors: vec![0; twig.len()],
        stacks: vec![Vec::new(); twig.len()],
        solutions: vec![Vec::new(); leaves.len()],
        leaves: leaves.clone(),
        paths,
        stats: TwigStats::default(),
    };

    while !st.ended() {
        tick()?;
        let q = st.get_next(0);
        if st.exhausted(q) {
            break;
        }
        let next = st.lists[q][st.cursors[q]];
        let parent = st.twig.nodes[q].parent;
        if let Some(p) = parent {
            st.clean_stack(p, next.start);
        }
        if parent.is_none_or(|p| !st.stacks[p].is_empty()) {
            st.clean_stack(q, next.start);
            let parent_top = parent.map(|p| st.stacks[p].len()).unwrap_or(0);
            st.stacks[q].push((next, parent_top));
            st.stats.pushes += 1;
            st.cursors[q] += 1;
            if st.twig.nodes[q].children.is_empty() {
                st.emit_leaf(q);
                st.stacks[q].pop();
            }
        } else {
            st.cursors[q] += 1;
        }
    }

    let merged = merge_path_solutions(twig, &leaves, &st.solutions);
    st.stats.merged = merged.len();
    Ok((merged, st.stats))
}

/// Merge per-leaf path solutions into full twig matches: tuples must
/// agree on every shared (branching) twig node. Hash-joins each leaf's
/// solutions against the accumulated partials on the shared twig
/// indices, so the merge is linear in inputs + output.
fn merge_path_solutions(
    twig: &TwigPattern,
    leaves: &[usize],
    solutions: &[Vec<Vec<NodeId>>],
) -> Vec<Vec<NodeId>> {
    // Partials are twig-indexed assignments (None = unbound yet).
    let mut partials: Vec<Vec<Option<NodeId>>> = vec![vec![None; twig.len()]];
    let mut bound: Vec<bool> = vec![false; twig.len()];
    for (li, &leaf) in leaves.iter().enumerate() {
        let path = twig.path_to(leaf);
        // Twig indices this path shares with what is already bound.
        let shared: Vec<usize> = path.iter().copied().filter(|&t| bound[t]).collect();
        // Index the new solutions by their values at the shared indices.
        let mut by_key: HashMap<Vec<NodeId>, Vec<&Vec<NodeId>>> = HashMap::new();
        for sol in &solutions[li] {
            let key: Vec<NodeId> = shared
                .iter()
                .map(|&t| {
                    let slot = path.iter().position(|&p| p == t).expect("shared on path");
                    sol[slot]
                })
                .collect();
            by_key.entry(key).or_default().push(sol);
        }
        let mut next: Vec<Vec<Option<NodeId>>> = Vec::new();
        for partial in &partials {
            let key: Vec<NodeId> = shared
                .iter()
                .map(|&t| partial[t].expect("bound index"))
                .collect();
            if let Some(sols) = by_key.get(&key) {
                for sol in sols {
                    let mut merged = partial.clone();
                    for (slot, &t) in path.iter().enumerate() {
                        merged[t] = Some(sol[slot]);
                    }
                    next.push(merged);
                }
            }
        }
        partials = next;
        if partials.is_empty() {
            return Vec::new();
        }
        for &t in &path {
            bound[t] = true;
        }
    }
    let mut out: Vec<Vec<NodeId>> = partials
        .into_iter()
        .map(|m| {
            m.into_iter()
                .map(|n| n.expect("all twig nodes bound"))
                .collect()
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::element_list;
    use crate::navigate::enumerate_matches;
    use std::sync::Arc;
    use xqr_store::Document;
    use xqr_xdm::NamePool;

    fn run(xml: &str, pattern: &str) -> (Vec<Vec<NodeId>>, Vec<Vec<NodeId>>, TwigStats) {
        let names = Arc::new(NamePool::new());
        let d = Document::parse(xml, names.clone()).unwrap();
        let t = TwigPattern::parse(pattern, &names).unwrap();
        let lists: Vec<_> = t.nodes.iter().map(|n| element_list(&d, n.name)).collect();
        let (got, stats) = twig_stack(&t, &lists);
        let mut want = enumerate_matches(&d, &t);
        want.sort();
        want.dedup();
        (got, want, stats)
    }

    #[test]
    fn branching_twig_matches_oracle() {
        let xml = "<bib><book><author/><title/></book><book><title/></book></bib>";
        let (got, want, stats) = run(xml, "//book[author]/title");
        assert_eq!(got, want);
        assert_eq!(stats.merged, 1);
    }

    #[test]
    fn multiple_solutions() {
        let xml = "<bib><book><author/><author/><title/><title/></book></bib>";
        let (got, want, _) = run(xml, "//book[author]/title");
        assert_eq!(got, want);
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn descendant_edges_recursive_data() {
        let xml = "<a><b/><a><c/><b/><a><b/><c/></a></a></a>";
        let (got, want, _) = run(xml, "//a[//b]//c");
        assert_eq!(got, want);
    }

    #[test]
    fn three_way_branch() {
        let xml = "<r><p><x/><y/><z/></p><p><x/><z/></p></r>";
        let (got, want, _) = run(xml, "//p[x][y]/z");
        assert_eq!(got, want);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn no_solution_when_branch_missing() {
        let xml = "<r><p><x/></p></r>";
        let (got, want, _) = run(xml, "//p[x][y]/z");
        assert_eq!(got, want);
        assert!(got.is_empty());
    }

    /// Regression: a multi-level branch (`author/last`) whose subtree
    /// closes before the output leaf (`price`) starts used to abort the
    /// join — `get_next` kept bubbling the exhausted `last` stream up
    /// and the main loop broke with `price` elements still pending.
    #[test]
    fn branch_subtree_closing_before_output_leaf() {
        for (xml, pattern, n) in [
            (
                "<bib><book><author><last/></author><price/></book></bib>",
                "//book[author/last]/price",
                1,
            ),
            (
                "<bib><book><author><last/></author><price/></book>\
                 <book><author><last/></author><price/></book></bib>",
                "//book[author/last]/price",
                2,
            ),
            (
                "<bib><book><author><x><last/></x></author><price/></book></bib>",
                "//book[author//last]/price",
                1,
            ),
            // Output leaf before the branch: already worked, keep pinned.
            (
                "<bib><book><price/><author><last/></author></book></bib>",
                "//book[author/last]/price",
                1,
            ),
        ] {
            let (got, want, _) = run(xml, pattern);
            assert_eq!(got, want, "{pattern} on {xml}");
            assert_eq!(got.len(), n, "{pattern} on {xml}");
        }
    }

    #[test]
    fn linear_pattern_delegates_to_pathstack() {
        let (got, want, _) = run("<a><b><c/></b></a>", "//a/b/c");
        assert_eq!(got, want);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn path_solution_count_bounded_for_descendant_twigs() {
        // For descendant-only twigs TwigStack's path solutions are all
        // mergeable: path_solutions ≈ useful work.
        let mut xml = String::from("<r>");
        for _ in 0..20 {
            xml.push_str("<p><x/><y/></p>");
        }
        xml.push_str("</r>");
        let (got, want, stats) = run(&xml, "//p[//x]//y");
        assert_eq!(got, want);
        assert_eq!(got.len(), 20);
        // 2 path solutions per match (one per leaf), all useful.
        assert_eq!(stats.path_solutions, 40);
    }

    #[test]
    fn deep_recursion_stress() {
        let mut xml = String::new();
        for _ in 0..30 {
            xml.push_str("<a><b/>");
        }
        xml.push_str("<c/>");
        for _ in 0..30 {
            xml.push_str("</a>");
        }
        let (got, want, _) = run(&xml, "//a[b]//c");
        assert_eq!(got, want);
        assert_eq!(got.len(), 30);
    }
}
