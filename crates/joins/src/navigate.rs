//! Navigational twig matching — the baseline the structural-join papers
//! (and experiment E5/E6) compare against: evaluate the pattern by
//! walking the tree from the root, no labels, no inverted lists.
//!
//! Also serves as the correctness oracle: its enumeration is direct from
//! the definition of a twig match.

use crate::twig::{EdgeKind, TwigPattern};
use xqr_store::{walk, Axis, Document, NodeId};
use xqr_xdm::NodeKind;

/// All complete match tuples; `tuple[i]` binds twig node `i`.
///
/// Twig node indices are topological (parents precede children), so a
/// straight index-order recursion assigns each node against its already
/// bound parent.
pub fn enumerate_matches(doc: &Document, twig: &TwigPattern) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    let mut tuple = vec![NodeId(0); twig.len()];
    assign(doc, twig, 0, &mut tuple, &mut out);
    out
}

fn assign(
    doc: &Document,
    twig: &TwigPattern,
    idx: usize,
    tuple: &mut Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
) {
    if idx == twig.len() {
        out.push(tuple.clone());
        return;
    }
    let (from, edge) = match twig.nodes[idx].parent {
        Some(p) => (tuple[p], twig.nodes[idx].edge),
        None => (doc.root(), twig.root_edge),
    };
    for cand in candidates(doc, from, edge, twig, idx) {
        tuple[idx] = cand;
        assign(doc, twig, idx + 1, tuple, out);
    }
}

/// Count matches without materializing tuples: per-node counts multiply
/// across independent branches.
pub fn count_matches(doc: &Document, twig: &TwigPattern) -> u64 {
    let mut total = 0;
    for c in candidates(doc, doc.root(), twig.root_edge, twig, 0) {
        total += count_at(doc, twig, 0, c);
    }
    total
}

/// Distinct bindings of one twig node (e.g. the query's output node)
/// over all matches, in document order.
pub fn matches_of_node(doc: &Document, twig: &TwigPattern, target: usize) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = enumerate_matches(doc, twig)
        .into_iter()
        .map(|t| t[target])
        .collect();
    nodes.sort();
    nodes.dedup();
    nodes
}

fn candidates(
    doc: &Document,
    from: NodeId,
    edge: EdgeKind,
    twig: &TwigPattern,
    twig_idx: usize,
) -> Vec<NodeId> {
    let axis = match edge {
        EdgeKind::Child => Axis::Child,
        EdgeKind::Descendant => Axis::Descendant,
    };
    walk(doc, from, axis)
        .into_iter()
        .filter(|&n| {
            doc.kind(n) == NodeKind::Element && doc.name_id(n) == twig.nodes[twig_idx].name
        })
        .collect()
}

fn count_at(doc: &Document, twig: &TwigPattern, idx: usize, node: NodeId) -> u64 {
    let mut product = 1u64;
    for &ci in &twig.nodes[idx].children {
        let mut sum = 0u64;
        for cand in candidates(doc, node, twig.nodes[ci].edge, twig, ci) {
            sum += count_at(doc, twig, ci, cand);
        }
        if sum == 0 {
            return 0;
        }
        product = product.saturating_mul(sum);
    }
    product
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xqr_xdm::NamePool;

    fn setup(xml: &str, pat: &str) -> (Arc<Document>, TwigPattern) {
        let names = Arc::new(NamePool::new());
        let d = Document::parse(xml, names.clone()).unwrap();
        let t = TwigPattern::parse(pat, &names).unwrap();
        (d, t)
    }

    #[test]
    fn linear_path_matches() {
        let (d, t) = setup("<a><b><c/></b><b/><c/></a>", "//a/b/c");
        let m = enumerate_matches(&d, &t);
        assert_eq!(m.len(), 1);
        assert_eq!(count_matches(&d, &t), 1);
    }

    #[test]
    fn descendant_edges() {
        let (d, t) = setup("<a><x><b/></x><b/></a>", "//a//b");
        assert_eq!(count_matches(&d, &t), 2);
    }

    #[test]
    fn branching_twig() {
        // book with author AND title
        let xml = "<bib><book><author/><title/></book><book><title/></book></bib>";
        let (d, t) = setup(xml, "//book[author]/title");
        let m = enumerate_matches(&d, &t);
        assert_eq!(m.len(), 1);
        assert_eq!(count_matches(&d, &t), 1);
    }

    #[test]
    fn multiple_bindings_multiply() {
        // one book, 2 authors, 2 titles → 4 tuples
        let xml = "<bib><book><author/><author/><title/><title/></book></bib>";
        let (d, t) = setup(xml, "//book[author]/title");
        assert_eq!(enumerate_matches(&d, &t).len(), 4);
        assert_eq!(count_matches(&d, &t), 4);
    }

    #[test]
    fn matches_of_node_dedups() {
        let xml = "<bib><book><author/><author/><title/></book></bib>";
        let (d, t) = setup(xml, "//book[author]/title");
        // title bound once even though 2 tuples
        let titles = matches_of_node(&d, &t, 2);
        assert_eq!(titles.len(), 1);
    }

    #[test]
    fn recursive_document() {
        let (d, t) = setup("<a><a><a/></a></a>", "//a//a");
        // pairs: (a1,a2),(a1,a3),(a2,a3)
        assert_eq!(count_matches(&d, &t), 3);
        assert_eq!(enumerate_matches(&d, &t).len(), 3);
    }

    #[test]
    fn no_match_returns_empty() {
        let (d, t) = setup("<a><b/></a>", "//a/c");
        assert!(enumerate_matches(&d, &t).is_empty());
        assert_eq!(count_matches(&d, &t), 0);
    }
}
