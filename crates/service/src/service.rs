//! [`QueryService`]: the composed service facade.
//!
//! One object an embedder shares across threads (`Arc<QueryService>` or
//! `&QueryService` — everything inside is `Sync`): documents go in via
//! the byte-budgeted catalog, queries go through the sharded plan cache
//! and the admission-controlled worker pool, and a [`ServiceStats`]
//! snapshot reports how the service is doing.
//!
//! Per-request governance: every admitted query gets its own
//! [`QueryGuard`] built from [`ServiceConfig::per_query_limits`], and
//! its deadline clock starts at *submission* — time spent waiting in the
//! run queue counts against the budget, which is the service-level
//! meaning of a deadline.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::catalog::DocumentCatalog;
use crate::plan_cache::PlanCache;
use crate::pool::WorkerPool;
use crate::resilience::{self, CircuitBreaker, RetryPolicy};
use xqr_core::{Engine, EngineOptions, PreparedQuery};
use xqr_pressure::{Category, Charge, MemoryLedger, MorselSink, PressureConfig, PressureState};
use xqr_runtime::{DynamicContext, Item, StreamStats};
use xqr_store::{DocId, NodeId, NodeRef};
use xqr_subscribe::{PublishReport, SubId, SubscriptionRegistry, SubscriptionSink};
use xqr_xdm::{
    CancelHandle, Error, ErrorCode, LatencyHistogram, Limits, MemorySink, QueryGuard, Result,
};

/// Consecutive plan-cache failures that open the service's breaker.
const PLAN_BREAKER_THRESHOLD: u32 = 3;
/// How long the open plan breaker serves `Degraded::CacheOnly`.
const PLAN_BREAKER_COOLDOWN: Duration = Duration::from_millis(250);

/// Configuration for a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Compile/runtime options for the underlying engine. Part of the
    /// plan-cache key via [`EngineOptions::fingerprint`].
    pub engine: EngineOptions,
    /// Total plans the cache may hold before evicting LRU entries.
    pub plan_cache_capacity: usize,
    /// Independently locked cache shards (contention divider).
    pub plan_cache_shards: usize,
    /// Total in-memory bytes of catalog documents; `None` = unbounded.
    pub catalog_max_bytes: Option<u64>,
    /// Worker threads — queries executing at once.
    pub max_concurrent: usize,
    /// Admitted queries that may wait for a worker; beyond this,
    /// submissions fail with `err:XQRL0004 Overloaded`.
    pub max_queued: usize,
    /// Budgets applied to every query (deadline measured from
    /// submission, so queue wait is included).
    pub per_query_limits: Limits,
    /// Retry policy for [`QueryService::run`]-family calls: transient
    /// failures (`XQRL0002/0004/0005`) are retried with exponential
    /// backoff; deterministic errors are returned immediately.
    pub retry: RetryPolicy,
    /// Directory for the durable segment store. `None` (the default)
    /// keeps the catalog purely in-memory; `Some(dir)` makes every
    /// loaded document crash-safe on disk and lets a restarted service
    /// recover its corpus by replaying the manifest — construct with
    /// [`QueryService::open`] to observe recovery errors.
    pub persist_dir: Option<PathBuf>,
    /// Live chunked-ingestion sessions the service will hold at once;
    /// opening past this (after reaping idle sessions) fails with
    /// `err:XQRL0004 Overloaded`.
    pub max_chunk_sessions: usize,
    /// Chunk sessions idle this long are reaped: the next admission
    /// sweep (or an explicit [`QueryService::reap_idle_sessions`])
    /// frees their slots and their buffered state.
    pub chunk_session_idle: Duration,
    /// Event capacity of a stream query's bounded channel — the memory
    /// ceiling of chunked evaluation is O(this), not O(document).
    pub ingest_channel_capacity: usize,
    /// Process-wide memory governance: ceiling, watermark fractions and
    /// hysteresis for the service's [`MemoryLedger`]. The default has no
    /// ceiling — every category is tracked, nothing is shed. With a
    /// ceiling, Yellow triggers the brownout ladder (no new index
    /// builds, plan-cache shrink, catalog demotion, parallel joins run
    /// inline) and Red sheds new chunk sessions, publishes and batch
    /// jobs with `err:XQRL0004`.
    pub pressure: PressureConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            engine: EngineOptions::default(),
            plan_cache_capacity: 256,
            plan_cache_shards: 8,
            catalog_max_bytes: None,
            max_concurrent: std::thread::available_parallelism().map_or(4, |n| n.get()),
            max_queued: 64,
            per_query_limits: Limits::unlimited(),
            retry: RetryPolicy::default(),
            persist_dir: None,
            max_chunk_sessions: 64,
            chunk_session_idle: Duration::from_secs(30),
            ingest_channel_capacity: 256,
            pressure: PressureConfig::default(),
        }
    }
}

struct ServiceShared {
    engine: Arc<Engine>,
    plans: PlanCache,
    limits: Limits,
    retry: RetryPolicy,
    served: AtomicU64,
    failed: AtomicU64,
    index_hits: AtomicU64,
    index_misses: AtomicU64,
    /// Index-fed joins that split into ≥ 2 morsels, summed over queries.
    parallel_joins: AtomicU64,
    /// Morsels executed by those joins.
    morsels_run: AtomicU64,
    /// Inverted-list scans served from a batch's shared scan cache.
    scan_shared_hits: AtomicU64,
    /// `run_batch` calls admitted.
    batches: AtomicU64,
    /// Queries executed inside batches.
    batch_queries: AtomicU64,
    /// Transient-failure re-submissions by the `run` family.
    retries: AtomicU64,
    /// De-synchronizes concurrent retriers' jittered backoff.
    retry_salt: AtomicU64,
    /// Shed queries served by the caller-thread streaming fallback.
    shed_to_streaming: AtomicU64,
    /// Plan acquisitions served in `Degraded::CacheOnly` mode.
    degraded_cache_only: AtomicU64,
    /// Opens after repeated plan-cache failures; while open, queries
    /// serve cached plans or compile uncached (`Degraded::CacheOnly`).
    plans_breaker: CircuitBreaker,
    latency: LatencyHistogram,
    /// Streaming-pass gauges, fed by both the shed-to-streaming rung
    /// and the publish path's shared automaton pass.
    stream_tokens_seen: AtomicU64,
    stream_tokens_skipped: AtomicU64,
    stream_matches: AtomicU64,
    /// Process-wide memory governance: every subsystem charges here.
    ledger: Arc<MemoryLedger>,
    /// Per-query morsel-buffer accounting channel (see [`MorselSink`]).
    morsel_sink: Arc<MorselSink>,
    /// Configured plan-cache capacity — the shrink rung's reference.
    plan_cache_capacity: usize,
    /// Yellow/Red transitions already acted on by the brownout ladder.
    brownouts_seen: AtomicU64,
    /// Work shed at admission because the ledger was Red.
    pressure_sheds: AtomicU64,
}

impl ServiceShared {
    /// Get a plan for `query`, degrading around an unhealthy plan cache.
    ///
    /// A cache whose *insert* side is failing (`err:XQRL0005`, e.g. an
    /// injected fault at `plans.insert`) must not take query execution
    /// down with it: the failed lookup falls back to an uncached
    /// compile, and enough consecutive failures open the breaker so the
    /// cache is bypassed wholesale (cached plans still hit) until a
    /// cooldown probe succeeds. Deterministic compile errors are the
    /// query's own problem and pass through untouched.
    fn acquire_plan(&self, query: &str) -> Result<Arc<PreparedQuery>> {
        if self.plans_breaker.allow() {
            match self.plans.get_or_compile(&self.engine, query) {
                Ok(plan) => {
                    self.plans_breaker.record_success();
                    Ok(plan)
                }
                Err(e) if e.code == ErrorCode::Unavailable => {
                    self.plans_breaker.record_failure();
                    self.degraded_cache_only.fetch_add(1, Ordering::Relaxed);
                    self.engine.compile_shared(query)
                }
                Err(e) => Err(e),
            }
        } else {
            self.degraded_cache_only.fetch_add(1, Ordering::Relaxed);
            match self.plans.get_cached(&self.engine, query) {
                Some(plan) => Ok(plan),
                None => self.engine.compile_shared(query),
            }
        }
    }

    /// Fold one execution's per-query counters into the service gauges.
    fn record_counters(&self, counters: &xqr_runtime::Counters) {
        self.index_hits
            .fetch_add(counters.index_hits.get(), Ordering::Relaxed);
        self.index_misses
            .fetch_add(counters.index_misses.get(), Ordering::Relaxed);
        self.parallel_joins
            .fetch_add(counters.parallel_joins.get(), Ordering::Relaxed);
        self.morsels_run
            .fetch_add(counters.morsels_run.get(), Ordering::Relaxed);
        self.scan_shared_hits
            .fetch_add(counters.scan_cache_hits.get(), Ordering::Relaxed);
    }

    fn record_stream(&self, stats: &StreamStats) {
        self.stream_tokens_seen
            .fetch_add(stats.tokens_seen, Ordering::Relaxed);
        self.stream_tokens_skipped
            .fetch_add(stats.tokens_skipped, Ordering::Relaxed);
        self.stream_matches
            .fetch_add(stats.matches, Ordering::Relaxed);
    }

    /// Build a per-query guard wired for pressure governance: the morsel
    /// sink is attached, and at Yellow or worse the query is pinned to
    /// inline join execution for its whole run (sticky per query — a
    /// mid-flight transition never splits one query across strategies).
    fn governed_guard(&self) -> QueryGuard {
        let guard = QueryGuard::new(self.limits);
        guard.set_memory_sink(Arc::clone(&self.morsel_sink) as Arc<dyn MemorySink>);
        if self.ledger.state() >= PressureState::Yellow {
            guard.shed_parallel();
        }
        guard
    }

    /// Red-state admission check for sheddable work (chunk sessions,
    /// publishes, batch jobs). Queries themselves are *not* shed here —
    /// the pool's bounded queue plus deadline-aware dequeue govern them.
    fn check_red(&self, what: &str) -> Result<()> {
        if self.ledger.state() == PressureState::Red {
            self.pressure_sheds.fetch_add(1, Ordering::Relaxed);
            let snap = self.ledger.snapshot();
            return Err(Error::overloaded(format!(
                "memory pressure is red ({} of {} bytes): {what} shed at admission",
                snap.total, snap.ceiling
            )));
        }
        Ok(())
    }
}

/// A thread-safe query service over one engine. See the crate docs.
pub struct QueryService {
    shared: Arc<ServiceShared>,
    catalog: Arc<DocumentCatalog>,
    pool: WorkerPool,
    subs: SubscriptionRegistry,
    ingest: crate::ingest::IngestState,
}

/// An admitted, in-flight query. Obtain from [`QueryService::submit`];
/// call [`QueryTicket::wait`] for the result, or cancel from any thread
/// via the [`CancelHandle`].
pub struct QueryTicket {
    rx: mpsc::Receiver<Result<String>>,
    cancel: CancelHandle,
}

impl std::fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryTicket")
            .field("cancelled", &self.cancel.is_cancelled())
            .finish()
    }
}

impl QueryTicket {
    /// A handle that stops this query with `err:XQRL0003` when
    /// triggered; clonable and safe to move to another thread.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.cancel.clone()
    }

    /// Block until the query finishes and return its serialized result.
    pub fn wait(self) -> Result<String> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(Error::cancelled("service shut down before the query ran")))
    }
}

impl QueryService {
    /// Build an in-memory service. Panics if [`ServiceConfig::persist_dir`]
    /// is set and opening the segment store fails (an I/O or recovery
    /// error); use [`QueryService::open`] to handle that case.
    pub fn new(config: ServiceConfig) -> Self {
        Self::open(config).expect("service construction failed")
    }

    /// Build a service, opening (or creating) the durable segment store
    /// when [`ServiceConfig::persist_dir`] is set. Recovery is O(manifest):
    /// documents persisted by earlier incarnations are adopted lazily and
    /// mmapped — checksum-verified — on first `doc("name")` touch.
    pub fn open(config: ServiceConfig) -> Result<Self> {
        let engine = Arc::new(Engine::with_options(config.engine.clone()));
        // Catalog loads build structural indexes under the same budgets
        // queries run with; an index build is bounded work, like a query.
        let index_limits = config
            .engine
            .index_documents
            .then_some(config.per_query_limits);
        let catalog = match &config.persist_dir {
            Some(dir) => DocumentCatalog::with_persistence(
                engine.store().clone(),
                config.catalog_max_bytes,
                index_limits,
                dir.clone(),
            )?,
            None => Arc::new(DocumentCatalog::with_indexing(
                engine.store().clone(),
                config.catalog_max_bytes,
                index_limits,
            )),
        };
        let ledger = Arc::new(MemoryLedger::new(config.pressure));
        let plans = PlanCache::new(config.plan_cache_capacity, config.plan_cache_shards);
        plans.attach_ledger(Arc::clone(&ledger));
        catalog.attach_ledger(Arc::clone(&ledger));
        let pool = WorkerPool::new(config.max_concurrent, config.max_queued);
        pool.set_pressure(Arc::clone(&ledger));
        Ok(QueryService {
            shared: Arc::new(ServiceShared {
                engine,
                plans,
                limits: config.per_query_limits,
                retry: config.retry,
                served: AtomicU64::new(0),
                failed: AtomicU64::new(0),
                index_hits: AtomicU64::new(0),
                index_misses: AtomicU64::new(0),
                parallel_joins: AtomicU64::new(0),
                morsels_run: AtomicU64::new(0),
                scan_shared_hits: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                batch_queries: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                retry_salt: AtomicU64::new(0),
                shed_to_streaming: AtomicU64::new(0),
                degraded_cache_only: AtomicU64::new(0),
                plans_breaker: CircuitBreaker::new(PLAN_BREAKER_THRESHOLD, PLAN_BREAKER_COOLDOWN),
                latency: LatencyHistogram::new(),
                stream_tokens_seen: AtomicU64::new(0),
                stream_tokens_skipped: AtomicU64::new(0),
                stream_matches: AtomicU64::new(0),
                morsel_sink: Arc::new(MorselSink(Arc::clone(&ledger))),
                ledger,
                plan_cache_capacity: config.plan_cache_capacity,
                brownouts_seen: AtomicU64::new(0),
                pressure_sheds: AtomicU64::new(0),
            }),
            catalog,
            pool,
            subs: SubscriptionRegistry::new(),
            ingest: crate::ingest::IngestState::new(
                config.max_chunk_sessions,
                config.chunk_session_idle,
                config.ingest_channel_capacity,
            ),
        })
    }

    pub(crate) fn ingest_state(&self) -> &crate::ingest::IngestState {
        &self.ingest
    }

    pub(crate) fn subs_registry(&self) -> &SubscriptionRegistry {
        &self.subs
    }

    pub(crate) fn limits(&self) -> Limits {
        self.shared.limits
    }

    pub(crate) fn acquire_plan_for_ingest(&self, query: &str) -> Result<Arc<PreparedQuery>> {
        self.shared.acquire_plan(query)
    }

    /// The service's memory ledger: live bytes per category, pressure
    /// state, transition counters. Embedders can watch it directly;
    /// everything it reports also surfaces in [`QueryService::stats`].
    pub fn ledger(&self) -> &Arc<MemoryLedger> {
        &self.shared.ledger
    }

    pub(crate) fn check_red(&self, what: &str) -> Result<()> {
        self.shared.check_red(what)
    }

    /// Apply the once-per-transition brownout rungs: on each *new*
    /// Yellow/Red transition, shrink the plan cache to half capacity and
    /// (under persistence, where demotion is lossless) shed cold catalog
    /// residents to half their bytes. Steady-state pressure costs one
    /// atomic read per call; the rungs re-arm every time pressure
    /// re-enters Yellow.
    fn enforce_brownout(&self) {
        let snap = self.shared.ledger.snapshot();
        let seen = snap.to_yellow + snap.to_red;
        let prev = self.shared.brownouts_seen.swap(seen, Ordering::Relaxed);
        if seen > prev && snap.state >= PressureState::Yellow {
            self.shared
                .plans
                .shrink_to(self.shared.plan_cache_capacity / 2);
            if self.catalog.persist_dir().is_some() {
                self.catalog.shed_cold(self.catalog.total_bytes() / 2);
            }
        }
    }

    pub(crate) fn record_publish_stream(&self, stats: &StreamStats) {
        self.shared.record_stream(stats);
    }

    pub(crate) fn note_stream_query_outcome(&self, outcome: &Result<String>) {
        match outcome {
            Ok(_) => self.shared.served.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.shared.failed.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// The engine the service runs on (e.g. for `explain` output).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// The document catalog (direct access for eviction-sensitive
    /// embedders; [`QueryService::load_document`] is the common path).
    pub fn catalog(&self) -> &DocumentCatalog {
        &self.catalog
    }

    /// Load `xml` under `name`, reachable from queries as `doc("name")`.
    /// May evict least-recently-used documents to fit the byte budget.
    ///
    /// Panic-contained: a panic during parse/index/evict (injected or
    /// otherwise) surfaces as `err:XQRL0000`, never unwinds into the
    /// embedder. The catalog keeps its accounting consistent either way.
    pub fn load_document(&self, name: &str, xml: &str) -> Result<DocId> {
        xqr_core::contain_panic(|| self.catalog.put(name, xml))
    }

    /// Remove a named document. `false` if not loaded. Panic-contained
    /// like [`QueryService::load_document`]; a contained panic reports
    /// `false` (the entry, if any, survives for a later retry).
    pub fn remove_document(&self, name: &str) -> bool {
        xqr_core::contain_panic(|| Ok(self.catalog.remove(name))).unwrap_or(false)
    }

    /// Retry removal of store documents orphaned by a contained panic
    /// mid-removal (a query result's constructed document, a publish's
    /// transient). Every publish reaps automatically; this reclaims
    /// without publishing (a quiesced-service sweep). Returns how many
    /// documents were freed.
    pub fn reap_orphaned_documents(&self) -> usize {
        self.engine().store().reap_orphans()
    }

    /// Compile through the plan cache without executing (warm-up path).
    pub fn prepare(&self, query: &str) -> Result<Arc<PreparedQuery>> {
        self.shared.plans.get_or_compile(&self.shared.engine, query)
    }

    /// Render `query`'s compiled plan plus the service's pressure
    /// posture — why a join would run inline or an admission would shed
    /// is explainable from this output alone.
    pub fn explain(&self, query: &str) -> Result<String> {
        let plan = self.shared.acquire_plan(query)?;
        let snap = self.shared.ledger.snapshot();
        let mut text = plan.explain();
        text.push_str(&format!(
            "pressure: {} ({} of {} bytes, peak {}; transitions green: {} yellow: {} red: {})\n",
            snap.state.as_str(),
            snap.total,
            snap.ceiling,
            snap.peak,
            snap.to_green,
            snap.to_yellow,
            snap.to_red,
        ));
        for cat in Category::ALL {
            let c = snap.category(cat);
            text.push_str(&format!(
                "  memory {}: {} (peak {})\n",
                cat.as_str(),
                c.current,
                c.peak
            ));
        }
        Ok(text)
    }

    /// Register a standing query: every subsequent
    /// [`QueryService::publish`] evaluates it against the published
    /// document. Compiles through the plan cache, so a hot subscription
    /// query and its one-shot twin share one plan. The subscription
    /// runs under [`ServiceConfig::per_query_limits`] per document.
    pub fn subscribe(&self, query: &str) -> Result<SubId> {
        self.subscribe_with_sink(query, None)
    }

    /// [`QueryService::subscribe`] with a delivery sink: the sink
    /// receives this subscription's outcome (matches or its coded
    /// error) for every published document, on the publishing thread.
    /// A panicking or failing sink degrades only this subscription.
    pub fn subscribe_with_sink(
        &self,
        query: &str,
        sink: Option<Arc<dyn SubscriptionSink>>,
    ) -> Result<SubId> {
        let plan = self.shared.acquire_plan(query)?;
        Ok(self.subs.register(query, plan, self.shared.limits, sink))
    }

    /// Remove a standing query. `false` for stale ids (already
    /// unsubscribed, or the slot was reused) — never affects the
    /// slot's current tenant.
    pub fn unsubscribe(&self, id: SubId) -> bool {
        self.subs.unregister(id)
    }

    /// Live standing-query count.
    pub fn subscriptions(&self) -> usize {
        self.subs.active()
    }

    /// Publish a transient document at every standing subscription:
    /// one tokenization pass drives the combined automaton for all
    /// streamable subscriptions; non-streamable ones share a single
    /// materialized (and, breaker permitting, indexed) copy routed
    /// through the catalog's accounting, removed again before this
    /// returns. The document is NOT retained — it is never reachable
    /// via `doc("name")`.
    pub fn publish(&self, name: &str, xml: &str) -> Result<PublishReport> {
        self.enforce_brownout();
        self.shared.check_red("publish")?;
        // The tokenization pass and any transient fallback copy are this
        // publish's footprint; released when the report is delivered.
        let _charge = Charge::new(
            Arc::clone(&self.shared.ledger),
            Category::Subscriptions,
            xml.len() as u64,
        );
        let report = self.subs.publish_with_doc(
            &self.shared.engine,
            name,
            xml,
            self.shared.limits,
            || {
                self.catalog
                    .load_transient_indexed(xml)
                    .map(|id| (id, true))
            },
        )?;
        self.shared.record_stream(&report.stats);
        Ok(report)
    }

    /// [`QueryService::publish`] + retention: the document also
    /// becomes (or replaces) catalog entry `name`, queryable afterwards
    /// as `doc("name")`. Fallback subscriptions evaluate against the
    /// retained copy, so nothing is parsed twice.
    pub fn publish_retained(&self, name: &str, xml: &str) -> Result<PublishReport> {
        self.enforce_brownout();
        self.shared.check_red("publish")?;
        let _charge = Charge::new(
            Arc::clone(&self.shared.ledger),
            Category::Subscriptions,
            xml.len() as u64,
        );
        let id = self.load_document(name, xml)?;
        let report = self.subs.publish_with_doc(
            &self.shared.engine,
            name,
            xml,
            self.shared.limits,
            || Ok((id, false)),
        )?;
        self.shared.record_stream(&report.stats);
        Ok(report)
    }

    /// Admit a query for execution, or fail fast with `err:XQRL0004`
    /// when the workers and the run queue are both full. Compilation
    /// (or the cache hit) happens on the worker, so a shed query costs
    /// the service nothing but the admission check.
    pub fn submit(&self, query: &str, ctx: DynamicContext) -> Result<QueryTicket> {
        self.enforce_brownout();
        let shared = self.shared.clone();
        let query = query.to_string();
        let guard = shared.governed_guard();
        let cancel = guard.cancel_handle();
        let deadline = guard.deadline_at();
        let submitted = Instant::now();
        let (tx, rx) = mpsc::channel();
        // Deadline-aware admission: if this query's deadline passes
        // while it waits in the run queue, the pool drops it without
        // executing and this closure fails the ticket — over-deadline
        // work is not worth a worker slot.
        let expire = deadline.map(|_| {
            let tx = tx.clone();
            let shared = self.shared.clone();
            Box::new(move || {
                shared.failed.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(Err(Error::timeout(
                    "deadline expired while queued: dropped at admission, never executed",
                )));
            }) as Box<dyn FnOnce() + Send>
        });
        self.pool.submit_governed(deadline, expire, move || {
            let outcome = shared
                .acquire_plan(&query)
                .and_then(|plan| plan.execute_guarded(&shared.engine, &ctx, guard))
                .and_then(|result| {
                    shared.record_counters(&result.counters);
                    result.serialize_guarded()
                });
            shared.latency.record(submitted.elapsed());
            match &outcome {
                Ok(_) => shared.served.fetch_add(1, Ordering::Relaxed),
                Err(_) => shared.failed.fetch_add(1, Ordering::Relaxed),
            };
            // The serialized result is live until the waiter receives
            // it; charge it for exactly that window.
            let charge = outcome.as_ref().ok().map(|s| {
                Charge::new(
                    Arc::clone(&shared.ledger),
                    Category::QueryOutput,
                    s.len() as u64,
                )
            });
            // Deliver in the publish phase: the worker slot is free by the
            // time the waiter wakes, so "wait, then submit" never sheds.
            // The submitter may have stopped waiting; that's fine.
            Some(Box::new(move || {
                let _ = tx.send(outcome);
                drop(charge);
            }) as Box<dyn FnOnce() + Send>)
        })?;
        Ok(QueryTicket { rx, cancel })
    }

    /// Run a query to completion with an empty dynamic context,
    /// retrying transient failures per [`ServiceConfig::retry`].
    pub fn run(&self, query: &str) -> Result<String> {
        self.run_with_context(query, DynamicContext::new())
    }

    /// Run a query to completion with the given context (external
    /// variable bindings, context item, …).
    ///
    /// Transient failures — shed at admission (`XQRL0004`), a starved
    /// deadline (`XQRL0002`), or a subsystem fault (`XQRL0005`) — are
    /// re-submitted up to [`RetryPolicy::max_retries`] times with
    /// jittered exponential backoff. Deterministic errors (type errors,
    /// budget trips, cancellation) return immediately: retrying them
    /// would burn capacity to get the same answer.
    pub fn run_with_context(&self, query: &str, ctx: DynamicContext) -> Result<String> {
        let policy = self.shared.retry;
        let salt = self.shared.retry_salt.fetch_add(1, Ordering::Relaxed);
        let mut attempt = 0u32;
        loop {
            let outcome = self.submit(query, ctx.clone()).and_then(|t| t.wait());
            match outcome {
                Err(e) if e.is_retryable() && attempt < policy.max_retries => {
                    attempt += 1;
                    self.shared.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(policy.backoff(attempt, salt));
                }
                other => return other,
            }
        }
    }

    /// Run `query` against `xml` bound as the context item, with one
    /// more degradation rung below the retry loop: if the pool is still
    /// shedding (`XQRL0004`) after every retry and the plan is
    /// streamable with exact semantics, the query runs on the *caller's*
    /// thread through the token-streaming matcher — trading the pool's
    /// parallelism for guaranteed progress under overload.
    pub fn run_on_xml(&self, query: &str, xml: &str) -> Result<String> {
        let id = self.shared.engine.store().load_xml(xml, None)?;
        let mut ctx = DynamicContext::new();
        ctx.context_item = Some(Item::Node(NodeRef::new(id, NodeId(0))));
        let pooled = self.run_with_context(query, ctx);
        self.shared.engine.store().remove_document(id);
        match pooled {
            Err(e) if e.code == ErrorCode::Overloaded => {
                let plan = self.shared.acquire_plan(query)?;
                if plan.is_streamable() && plan.streaming_is_exact() {
                    self.shared
                        .shed_to_streaming
                        .fetch_add(1, Ordering::Relaxed);
                    let mut out = String::new();
                    let stats =
                        plan.execute_streaming(&self.shared.engine, xml, |m| out.push_str(m))?;
                    self.shared.record_stream(&stats);
                    self.shared.served.fetch_add(1, Ordering::Relaxed);
                    Ok(out)
                } else {
                    Err(e)
                }
            }
            other => other,
        }
    }

    /// Run many queries against one catalog document in a single pass,
    /// sharing inverted-list scans across them.
    ///
    /// The whole batch is **one pool admission**: it occupies one worker
    /// slot (or is shed as a unit with `err:XQRL0004`), and inside it
    /// every query gets its own plan-cache acquisition, its own
    /// [`QueryGuard`] from [`ServiceConfig::per_query_limits`], and its
    /// own result slot — one failing query never poisons its batch
    /// siblings. Queries touching the same QNames reuse each other's
    /// path-filtered inverted lists through a batch-scoped scan cache,
    /// which is where the shared-scan speedup comes from.
    ///
    /// The outer `Err` covers batch-level failures only: an unknown or
    /// quarantined document, or admission shedding.
    pub fn run_batch(&self, doc: &str, queries: &[&str]) -> Result<Vec<Result<String>>> {
        self.enforce_brownout();
        self.shared.check_red("batch job")?;
        let id = self.catalog.resolve(doc)?.ok_or_else(|| {
            Error::new(
                ErrorCode::DocumentNotFound,
                format!("run_batch: no catalog document named {doc:?}"),
            )
        })?;
        let shared = self.shared.clone();
        let queries: Vec<String> = queries.iter().map(|q| q.to_string()).collect();
        let submitted = Instant::now();
        let (tx, rx) = mpsc::channel();
        self.pool.submit_with_publish(move || {
            let scans = Arc::new(xqr_runtime::ScanCache::new());
            let mut ctx = DynamicContext::new();
            ctx.context_item = Some(Item::Node(NodeRef::new(id, NodeId(0))));
            shared.batches.fetch_add(1, Ordering::Relaxed);
            let outcomes: Vec<Result<String>> = queries
                .iter()
                .map(|query| {
                    shared.batch_queries.fetch_add(1, Ordering::Relaxed);
                    let outcome = shared
                        .acquire_plan(query)
                        .and_then(|plan| {
                            plan.execute_shared_scans(
                                &shared.engine,
                                &ctx,
                                shared.governed_guard(),
                                scans.clone(),
                            )
                        })
                        .and_then(|result| {
                            shared.record_counters(&result.counters);
                            result.serialize_guarded()
                        });
                    match &outcome {
                        Ok(_) => shared.served.fetch_add(1, Ordering::Relaxed),
                        Err(_) => shared.failed.fetch_add(1, Ordering::Relaxed),
                    };
                    outcome
                })
                .collect();
            shared.latency.record(submitted.elapsed());
            Some(Box::new(move || {
                let _ = tx.send(outcomes);
            }) as Box<dyn FnOnce() + Send>)
        })?;
        rx.recv()
            .map_err(|_| Error::cancelled("service shut down before the batch ran"))
    }

    /// A consistent-enough snapshot of every service counter. Individual
    /// gauges are read with relaxed ordering, so a snapshot taken while
    /// queries are in flight may be mid-update; quiescent snapshots are
    /// exact.
    pub fn stats(&self) -> ServiceStats {
        let plans = self.shared.plans.stats();
        let catalog = self.catalog.stats();
        let pool = self.pool.stats();
        let subs = self.subs.stats();
        let ingest = self.ingest.snapshot();
        let ledger = self.shared.ledger.snapshot();
        let queue_wait = self.pool.queue_wait();
        let mut memory_category_peak = [0u64; Category::ALL.len()];
        for (slot, cat) in memory_category_peak.iter_mut().zip(Category::ALL) {
            *slot = ledger.category(cat).peak;
        }
        ServiceStats {
            served: self.shared.served.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            rejected: pool.rejected,
            active: pool.active,
            queued: pool.queued,
            max_concurrent: self.pool.workers() as u64,
            max_queued: self.pool.max_queued() as u64,
            plan_lookups: plans.lookups,
            plan_hits: plans.hits,
            plan_misses: plans.misses,
            plan_evictions: plans.evictions,
            plan_entries: plans.entries,
            catalog_docs: catalog.docs,
            catalog_bytes: catalog.bytes,
            catalog_evictions: catalog.evictions,
            segments_written: catalog.segments_written,
            segments_recovered: catalog.segments_recovered,
            segments_quarantined: catalog.segments_quarantined,
            cold_start_load: Duration::from_nanos(catalog.cold_start_nanos),
            index_builds: catalog.index_builds,
            index_bytes: catalog.index_bytes,
            index_build_time: Duration::from_nanos(catalog.index_build_nanos),
            index_hits: self.shared.index_hits.load(Ordering::Relaxed),
            index_misses: self.shared.index_misses.load(Ordering::Relaxed),
            parallel_joins: self.shared.parallel_joins.load(Ordering::Relaxed),
            morsels_run: self.shared.morsels_run.load(Ordering::Relaxed),
            scan_shared_hits: self.shared.scan_shared_hits.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            batch_queries: self.shared.batch_queries.load(Ordering::Relaxed),
            retries: self.shared.retries.load(Ordering::Relaxed),
            shed_to_streaming: self.shared.shed_to_streaming.load(Ordering::Relaxed),
            degraded_cache_only: self.shared.degraded_cache_only.load(Ordering::Relaxed),
            degraded_no_index: catalog.degraded_no_index,
            index_build_failures: catalog.index_build_failures,
            index_breaker_opens: catalog.index_breaker_opens,
            plan_breaker_opens: self.shared.plans_breaker.opens(),
            lock_recoveries: resilience::lock_recoveries(),
            subscriptions_active: subs.active,
            documents_published: subs.documents_published,
            matches_delivered: subs.matches_delivered,
            shared_pass_evals: subs.shared_pass_evals,
            fallback_evals: subs.fallback_evals,
            delivery_failures: subs.delivery_failures,
            stream_tokens_seen: self.shared.stream_tokens_seen.load(Ordering::Relaxed),
            stream_tokens_skipped: self.shared.stream_tokens_skipped.load(Ordering::Relaxed),
            stream_matches: self.shared.stream_matches.load(Ordering::Relaxed),
            ingest_sessions_opened: ingest.opened,
            ingest_sessions_active: ingest.active,
            ingest_sessions_finished: ingest.finished,
            ingest_sessions_aborted: ingest.aborted,
            ingest_sessions_reaped: ingest.reaped,
            ingest_sessions_failed: ingest.failed,
            ingest_chunks: ingest.chunks,
            ingest_bytes: ingest.bytes,
            ingest_stream_queries: ingest.stream_queries,
            ingest_channel_capacity: ingest.channel_capacity,
            ingest_channel_peak: ingest.channel_peak,
            latency_count: self.shared.latency.count(),
            latency_mean: self.shared.latency.mean(),
            latency_p50: self.shared.latency.p50(),
            latency_p99: self.shared.latency.p99(),
            pressure_state: ledger.state,
            memory_bytes: ledger.total,
            memory_peak: ledger.peak,
            memory_ceiling: ledger.ceiling,
            pressure_to_green: ledger.to_green,
            pressure_to_yellow: ledger.to_yellow,
            pressure_to_red: ledger.to_red,
            memory_rejected: ledger.rejected,
            pressure_sheds: self.shared.pressure_sheds.load(Ordering::Relaxed),
            memory_category_peak,
            joins_shed_pressure: xqr_parallel::parallel_stats().joins_shed_pressure,
            quarantined_bytes: catalog.quarantined_bytes,
            pressure_no_index: catalog.pressure_no_index,
            admitted: pool.admitted,
            dropped_expired: pool.dropped_expired,
            queue_wait_count: queue_wait.count(),
            queue_wait_mean: queue_wait.mean(),
            queue_wait_p50: queue_wait.p50(),
            queue_wait_p99: queue_wait.p99(),
        }
    }

    /// [`QueryService::stats`] rendered as `explain`-style text.
    pub fn stats_text(&self) -> String {
        self.stats().to_string()
    }
}

/// Point-in-time snapshot of the service counters and gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries that completed successfully.
    pub served: u64,
    /// Queries that completed with a coded error (including budget
    /// trips, timeouts, and cancellations).
    pub failed: u64,
    /// Queries shed at admission with `err:XQRL0004`.
    pub rejected: u64,
    /// Queries executing right now.
    pub active: u64,
    /// Queries admitted and waiting for a worker.
    pub queued: u64,
    pub max_concurrent: u64,
    pub max_queued: u64,
    pub plan_lookups: u64,
    pub plan_hits: u64,
    pub plan_misses: u64,
    pub plan_evictions: u64,
    pub plan_entries: u64,
    pub catalog_docs: u64,
    pub catalog_bytes: u64,
    pub catalog_evictions: u64,
    /// Durable segments written by catalog loads (persistent catalogs).
    pub segments_written: u64,
    /// Segments reloaded from disk (cold-start touches and post-eviction
    /// re-reads).
    pub segments_recovered: u64,
    /// Segments quarantined after failing integrity verification.
    pub segments_quarantined: u64,
    /// Wall-clock cost of opening the segment store: manifest replay,
    /// orphan sweep and lazy adoption — not any document load.
    pub cold_start_load: Duration,
    /// Structural indexes built by catalog loads.
    pub index_builds: u64,
    /// Live structural-index bytes (part of `catalog_bytes`).
    pub index_bytes: u64,
    /// Total wall-clock time spent building structural indexes.
    pub index_build_time: Duration,
    /// `IndexScan` operators answered from a structural index.
    pub index_hits: u64,
    /// `IndexScan` operators that fell back to navigation.
    pub index_misses: u64,
    /// Index-fed twig joins that split into ≥ 2 morsels.
    pub parallel_joins: u64,
    /// Morsels executed across those joins.
    pub morsels_run: u64,
    /// Inverted-list scans served from a batch's shared scan cache.
    pub scan_shared_hits: u64,
    /// [`QueryService::run_batch`] calls admitted.
    pub batches: u64,
    /// Queries executed inside batches.
    pub batch_queries: u64,
    /// Transient-failure re-submissions by the `run` family.
    pub retries: u64,
    /// Shed queries served by the caller-thread streaming fallback.
    pub shed_to_streaming: u64,
    /// Plan acquisitions that bypassed the cache (`Degraded::CacheOnly`).
    pub degraded_cache_only: u64,
    /// Catalog loads served unindexed under an open breaker
    /// (`Degraded::NoIndex`).
    pub degraded_no_index: u64,
    /// Structural-index builds that failed (their documents stay live,
    /// unindexed).
    pub index_build_failures: u64,
    /// Times the catalog's index-build breaker opened.
    pub index_breaker_opens: u64,
    /// Times the service's plan-cache breaker opened.
    pub plan_breaker_opens: u64,
    /// Poisoned-lock recoveries in the service layer (process-wide).
    pub lock_recoveries: u64,
    /// Live standing subscriptions.
    pub subscriptions_active: u64,
    /// Documents pushed through [`QueryService::publish`] (and
    /// `publish_retained`).
    pub documents_published: u64,
    /// Per-subscription match deliveries that charged a budget
    /// successfully, summed over publishes.
    pub matches_delivered: u64,
    /// Subscriptions served by the combined shared pass, summed over
    /// publishes.
    pub shared_pass_evals: u64,
    /// Subscriptions served by one-shot fallback, summed over publishes.
    pub fallback_evals: u64,
    /// Sink deliveries that errored or panicked (each degraded only its
    /// own subscription).
    pub delivery_failures: u64,
    /// Tokens inspected by streaming passes (publish shared pass +
    /// shed-to-streaming rung).
    pub stream_tokens_seen: u64,
    /// Tokens pruned by `skip()` without inspection.
    pub stream_tokens_skipped: u64,
    /// Matches emitted by streaming passes.
    pub stream_matches: u64,
    /// Chunk sessions opened ([`QueryService::open_chunk_session`]).
    pub ingest_sessions_opened: u64,
    /// Chunk sessions live right now.
    pub ingest_sessions_active: u64,
    /// Chunk sessions finished (document delivered to subscriptions).
    pub ingest_sessions_finished: u64,
    /// Chunk sessions dropped by [`QueryService::abort_chunk_session`].
    pub ingest_sessions_aborted: u64,
    /// Idle chunk sessions reclaimed by the reaper.
    pub ingest_sessions_reaped: u64,
    /// Chunk sessions removed by a feed/finish failure (lexing error,
    /// budget trip, injected fault).
    pub ingest_sessions_failed: u64,
    /// Chunks accepted across all sessions.
    pub ingest_chunks: u64,
    /// Bytes accepted across all sessions.
    pub ingest_bytes: u64,
    /// Stream queries opened ([`QueryService::open_stream_query`]).
    pub ingest_stream_queries: u64,
    /// Configured event capacity of stream-query channels.
    pub ingest_channel_capacity: u64,
    /// High-water mark over every stream query's channel: backpressure
    /// holds this at or under the capacity regardless of document size.
    pub ingest_channel_peak: u64,
    pub latency_count: u64,
    pub latency_mean: Duration,
    pub latency_p50: Duration,
    pub latency_p99: Duration,
    /// Ledger pressure state at snapshot time.
    pub pressure_state: PressureState,
    /// Live ledger-tracked bytes across every category.
    pub memory_bytes: u64,
    /// High-water mark of `memory_bytes`.
    pub memory_peak: u64,
    /// Configured memory ceiling; 0 when governance is off.
    pub memory_ceiling: u64,
    /// Pressure-state transitions, by destination.
    pub pressure_to_green: u64,
    pub pressure_to_yellow: u64,
    pub pressure_to_red: u64,
    /// `try_charge` refusals at the hard ceiling.
    pub memory_rejected: u64,
    /// Publishes, batch jobs and chunk sessions shed at admission
    /// because the ledger was Red.
    pub pressure_sheds: u64,
    /// Per-category ledger peaks, in [`Category::ALL`] order.
    pub memory_category_peak: [u64; Category::ALL.len()],
    /// Parallel joins routed to inline execution by pressure
    /// (process-wide, like `lock_recoveries`).
    pub joins_shed_pressure: u64,
    /// Disk bytes held by quarantined segments (observability gauge —
    /// never charged against the catalog budget).
    pub quarantined_bytes: u64,
    /// Catalog loads served unindexed because the ledger was at Yellow
    /// or worse (also counted in `degraded_no_index`).
    pub pressure_no_index: u64,
    /// Jobs admitted into the worker pool (ran or expired in queue).
    pub admitted: u64,
    /// Queued jobs dropped unexecuted because their deadline passed.
    pub dropped_expired: u64,
    /// Queue-wait distribution over every dequeue, including drops.
    pub queue_wait_count: u64,
    pub queue_wait_mean: Duration,
    pub queue_wait_p50: Duration,
    pub queue_wait_p99: Duration,
}

impl ServiceStats {
    /// Fraction of plan lookups served from cache, in `[0, 1]`.
    pub fn plan_hit_rate(&self) -> f64 {
        if self.plan_lookups == 0 {
            0.0
        } else {
            self.plan_hits as f64 / self.plan_lookups as f64
        }
    }
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "service: served: {} failed: {} rejected: {}",
            self.served, self.failed, self.rejected
        )?;
        writeln!(
            f,
            "plans:   lookups: {} hits: {} misses: {} evictions: {} entries: {} hit-rate: {:.1}%",
            self.plan_lookups,
            self.plan_hits,
            self.plan_misses,
            self.plan_evictions,
            self.plan_entries,
            self.plan_hit_rate() * 100.0
        )?;
        writeln!(
            f,
            "catalog: docs: {} bytes: {} evictions: {}",
            self.catalog_docs, self.catalog_bytes, self.catalog_evictions
        )?;
        writeln!(
            f,
            "segments: written: {} recovered: {} quarantined: {} cold-start: {:?}",
            self.segments_written,
            self.segments_recovered,
            self.segments_quarantined,
            self.cold_start_load
        )?;
        writeln!(
            f,
            "indexes: builds: {} bytes: {} build-time: {:?} hits: {} misses: {}",
            self.index_builds,
            self.index_bytes,
            self.index_build_time,
            self.index_hits,
            self.index_misses
        )?;
        writeln!(
            f,
            "pool:    active: {} queued: {} max-concurrent: {} max-queued: {} admitted: {} \
dropped-expired: {}",
            self.active,
            self.queued,
            self.max_concurrent,
            self.max_queued,
            self.admitted,
            self.dropped_expired
        )?;
        writeln!(
            f,
            "queue-wait: n: {} mean: {:?} p50: {:?} p99: {:?}",
            self.queue_wait_count, self.queue_wait_mean, self.queue_wait_p50, self.queue_wait_p99
        )?;
        writeln!(
            f,
            "parallel: joins: {} morsels: {} scan-shared-hits: {} batches: {} batch-queries: {}",
            self.parallel_joins,
            self.morsels_run,
            self.scan_shared_hits,
            self.batches,
            self.batch_queries
        )?;
        writeln!(
            f,
            "resilience: retries: {} shed-to-streaming: {} cache-only: {} no-index: {} \
build-failures: {} breaker-opens: {}/{} lock-recoveries: {}",
            self.retries,
            self.shed_to_streaming,
            self.degraded_cache_only,
            self.degraded_no_index,
            self.index_build_failures,
            self.index_breaker_opens,
            self.plan_breaker_opens,
            self.lock_recoveries
        )?;
        writeln!(
            f,
            "pubsub:  subscriptions: {} published: {} matches: {} shared-pass: {} fallback: {} \
delivery-failures: {}",
            self.subscriptions_active,
            self.documents_published,
            self.matches_delivered,
            self.shared_pass_evals,
            self.fallback_evals,
            self.delivery_failures
        )?;
        writeln!(
            f,
            "stream:  tokens-seen: {} tokens-skipped: {} matches: {}",
            self.stream_tokens_seen, self.stream_tokens_skipped, self.stream_matches
        )?;
        writeln!(
            f,
            "ingest:  sessions: {} active: {} finished: {} aborted: {} reaped: {} failed: {} \
chunks: {} bytes: {} stream-queries: {} channel-peak: {}/{}",
            self.ingest_sessions_opened,
            self.ingest_sessions_active,
            self.ingest_sessions_finished,
            self.ingest_sessions_aborted,
            self.ingest_sessions_reaped,
            self.ingest_sessions_failed,
            self.ingest_chunks,
            self.ingest_bytes,
            self.ingest_stream_queries,
            self.ingest_channel_peak,
            self.ingest_channel_capacity
        )?;
        writeln!(
            f,
            "pressure: state: {} bytes: {} peak: {} ceiling: {} to-green: {} to-yellow: {} \
to-red: {} rejected: {} sheds: {} morsels-inline: {} no-index: {} quarantined-bytes: {}",
            self.pressure_state.as_str(),
            self.memory_bytes,
            self.memory_peak,
            self.memory_ceiling,
            self.pressure_to_green,
            self.pressure_to_yellow,
            self.pressure_to_red,
            self.memory_rejected,
            self.pressure_sheds,
            self.joins_shed_pressure,
            self.pressure_no_index,
            self.quarantined_bytes
        )?;
        write!(f, "memory: ")?;
        for (cat, peak) in Category::ALL.iter().zip(self.memory_category_peak) {
            write!(f, " {}: {}", cat.as_str(), peak)?;
        }
        writeln!(f, " (peak bytes)")?;
        write!(
            f,
            "latency: n: {} mean: {:?} p50: {:?} p99: {:?}",
            self.latency_count, self.latency_mean, self.latency_p50, self.latency_p99
        )
    }
}

// The whole point of the service is cross-thread sharing; hold the
// compiler to it.
const _: () = {
    #[allow(dead_code)]
    fn assert_send_sync<T: Send + Sync>() {}
    #[allow(dead_code)]
    fn _assertions() {
        assert_send_sync::<QueryService>();
        assert_send_sync::<ServiceConfig>();
        assert_send_sync::<ServiceStats>();
        assert_send_sync::<DynamicContext>();
    }
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_queries_and_counts_them() {
        let service = QueryService::new(ServiceConfig::default());
        assert_eq!(service.run("1 + 1").unwrap(), "2");
        assert_eq!(service.run("1 + 1").unwrap(), "2");
        assert_eq!(service.run("2 * 3").unwrap(), "6");
        let s = service.stats();
        assert_eq!(s.served, 3);
        assert_eq!(s.failed, 0);
        assert_eq!(s.plan_lookups, 3);
        assert_eq!(s.plan_hits, 1);
        assert_eq!(s.plan_misses, 2);
        assert_eq!(s.latency_count, 3);
        assert!(s.latency_p50 > Duration::ZERO);
    }

    #[test]
    fn documents_reach_queries_through_the_catalog() {
        let service = QueryService::new(ServiceConfig::default());
        service
            .load_document("bib.xml", "<bib><book/><book/></bib>")
            .unwrap();
        assert_eq!(service.run(r#"count(doc("bib.xml")//book)"#).unwrap(), "2");
        assert!(service.remove_document("bib.xml"));
        let err = service.run(r#"doc("bib.xml")"#).unwrap_err();
        assert_eq!(err.code, xqr_xdm::ErrorCode::DocumentNotFound);
    }

    #[test]
    fn failed_queries_count_as_failed() {
        let service = QueryService::new(ServiceConfig::default());
        assert!(service.run("1 idiv 0").is_err());
        assert!(service.run("1 +").is_err());
        let s = service.stats();
        assert_eq!(s.served, 0);
        assert_eq!(s.failed, 2);
    }

    #[test]
    fn per_query_limits_apply() {
        let service = QueryService::new(ServiceConfig {
            per_query_limits: Limits::unlimited().with_max_items(100),
            ..Default::default()
        });
        let err = service
            .run("for $x in 1 to 100000000 return $x")
            .unwrap_err();
        assert_eq!(err.code, xqr_xdm::ErrorCode::Limit);
        assert_eq!(service.stats().failed, 1);
    }

    #[test]
    fn tickets_cancel_from_another_thread() {
        let service = QueryService::new(ServiceConfig::default());
        let ticket = service
            .submit("sum(1 to 10000000000)", DynamicContext::new())
            .unwrap();
        let handle = ticket.cancel_handle();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            handle.cancel();
        });
        let err = ticket.wait().unwrap_err();
        assert_eq!(err.code, xqr_xdm::ErrorCode::Cancelled);
    }

    #[test]
    fn stats_text_renders_every_section() {
        let service = QueryService::new(ServiceConfig::default());
        service.run("1").unwrap();
        let text = service.stats_text();
        for section in [
            "service:",
            "plans:",
            "catalog:",
            "segments:",
            "indexes:",
            "pool:",
            "parallel:",
            "resilience:",
            "pubsub:",
            "stream:",
            "ingest:",
            "pressure:",
            "memory:",
            "queue-wait:",
            "latency:",
        ] {
            assert!(text.contains(section), "{text}");
        }
    }

    #[test]
    fn standing_subscriptions_receive_published_documents() {
        let service = QueryService::new(ServiceConfig::default());
        let streamed = service.subscribe("/bib/book/title").unwrap();
        let fallback = service.subscribe("count(//book)").unwrap();
        assert_eq!(service.subscriptions(), 2);

        let xml = "<bib><book><title>a</title></book><book><title>b</title></book></bib>";
        let report = service.publish("feed-1", xml).unwrap();
        assert_eq!(
            report.result_for(streamed).unwrap().as_ref().unwrap(),
            "<title>a</title><title>b</title>"
        );
        assert_eq!(report.result_for(fallback).unwrap().as_ref().unwrap(), "2");

        // Transient publish: the fallback copy must not linger in the
        // store or the catalog.
        assert_eq!(service.engine().store().doc_count(), 0);
        assert!(service
            .run(r#"doc("feed-1")"#)
            .is_err_and(|e| e.code == ErrorCode::DocumentNotFound));

        assert!(service.unsubscribe(streamed));
        assert!(!service.unsubscribe(streamed), "stale id is a no-op");
        let report = service.publish("feed-2", xml).unwrap();
        assert!(report.result_for(streamed).is_none());
        assert_eq!(service.subscriptions(), 1);

        let s = service.stats();
        assert_eq!(s.subscriptions_active, 1);
        assert_eq!(s.documents_published, 2);
        assert_eq!(s.shared_pass_evals, 1);
        assert_eq!(s.fallback_evals, 2);
        assert!(s.matches_delivered >= 3);
        assert!(s.stream_tokens_seen > 0, "{s}");
    }

    #[test]
    fn publish_retained_keeps_the_document_queryable() {
        let service = QueryService::new(ServiceConfig::default());
        let id = service.subscribe("//title").unwrap();
        let report = service
            .publish_retained("bib.xml", "<bib><book><title>t</title></book></bib>")
            .unwrap();
        assert_eq!(
            report.result_for(id).unwrap().as_ref().unwrap(),
            "<title>t</title>"
        );
        assert_eq!(
            service.run(r#"doc("bib.xml")//title"#).unwrap(),
            "<title>t</title>"
        );
        assert_eq!(service.stats().catalog_docs, 1);
    }

    #[test]
    fn publish_skips_subtrees_no_subscription_can_match() {
        let service = QueryService::new(ServiceConfig::default());
        service.subscribe("/a/b/c").unwrap();
        // The <z> subtree can never match /a/b/c: the combined pass
        // must prune it rather than walk its tokens.
        let xml = "<a><b><c>hit</c></b><z><w/><w/><w/><w/></z></a>";
        service.publish("d", xml).unwrap();
        let s = service.stats();
        assert!(
            s.stream_tokens_skipped > 0,
            "publish pass must prune dead subtrees: {s}"
        );
        assert_eq!(s.stream_matches, 1);
    }

    #[test]
    fn persistent_service_recovers_corpus_after_restart() {
        let dir = std::env::temp_dir().join(format!(
            "xqr-service-restart-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServiceConfig {
            persist_dir: Some(dir.clone()),
            ..Default::default()
        };

        let service = QueryService::open(config.clone()).unwrap();
        service
            .load_document("bib.xml", "<bib><book><title>t</title></book><book/></bib>")
            .unwrap();
        let before = service.run(r#"doc("bib.xml")//title"#).unwrap();
        assert_eq!(service.stats().segments_written, 1);
        drop(service);

        // A fresh incarnation: nothing is loaded until a query touches
        // the document, then the answer must be byte-identical.
        let service = QueryService::open(config).unwrap();
        let s = service.stats();
        assert_eq!((s.catalog_docs, s.segments_recovered), (1, 0));
        assert_eq!(service.run(r#"doc("bib.xml")//title"#).unwrap(), before);
        let s = service.stats();
        assert_eq!(s.segments_recovered, 1);
        assert!(text_has_segment_counters(&service.stats_text()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn text_has_segment_counters(text: &str) -> bool {
        text.contains("segments: written: 0 recovered: 1 quarantined: 0")
    }

    #[test]
    fn run_batch_shares_scans_and_isolates_failures() {
        let service = QueryService::new(ServiceConfig::default());
        service
            .load_document(
                "bib.xml",
                "<bib><book><author/><title>a</title></book>\
                 <book><title>b</title></book></bib>",
            )
            .unwrap();
        let out = service
            .run_batch(
                "bib.xml",
                &[
                    "count(//book/title)",
                    "count(//book/title)", // same scans as the first
                    "1 idiv 0",            // fails alone
                    "count(//book[author]/title)",
                ],
            )
            .unwrap();
        assert_eq!(out[0].as_deref().unwrap(), "2");
        assert_eq!(out[1].as_deref().unwrap(), "2");
        assert!(out[2].is_err());
        assert_eq!(out[3].as_deref().unwrap(), "1");
        let s = service.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.batch_queries, 4);
        assert_eq!(s.served, 3);
        assert_eq!(s.failed, 1);
        assert!(
            s.scan_shared_hits > 0,
            "repeated scans must hit the batch cache: {s}"
        );
        // Unknown documents fail the batch as a unit.
        let err = service.run_batch("nope.xml", &["1"]).unwrap_err();
        assert_eq!(err.code, ErrorCode::DocumentNotFound);
    }

    #[test]
    fn catalog_loads_feed_index_backed_queries() {
        let service = QueryService::new(ServiceConfig::default());
        service
            .load_document(
                "bib.xml",
                "<bib><book><author/><title>t</title></book><book><title/></book></bib>",
            )
            .unwrap();
        assert_eq!(
            service
                .run(r#"count(doc("bib.xml")//book[author]/title)"#)
                .unwrap(),
            "1"
        );
        let s = service.stats();
        assert_eq!(s.index_builds, 1);
        assert!(s.index_bytes > 0);
        assert!(s.index_hits >= 1, "query was answered from the index: {s}");
        // Disabling indexing on the engine disables catalog builds too.
        let service = QueryService::new(ServiceConfig {
            engine: EngineOptions {
                index_documents: false,
                ..Default::default()
            },
            ..Default::default()
        });
        service.load_document("bib.xml", "<bib/>").unwrap();
        assert_eq!(service.run(r#"count(doc("bib.xml")//x)"#).unwrap(), "0");
        let s = service.stats();
        assert_eq!(s.index_builds, 0);
        assert!(s.index_hits == 0 && s.index_misses >= 1, "{s}");
    }
}
