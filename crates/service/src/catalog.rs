//! Document catalog: named documents under a total-bytes budget.
//!
//! A long-lived service cannot let its document store grow without
//! bound. The catalog owns every document it loads — named, so queries
//! reach them via `fn:doc("name")` — and tracks each one's in-memory
//! size ([`xqr_store::Document::memory_bytes`]). When the sum exceeds
//! the configured budget, least-recently-used documents are evicted via
//! [`xqr_store::Store::remove_document`], which frees the store slot for
//! reuse (generation-checked ids make stale references detectable rather
//! than dangling).
//!
//! Eviction is safe with respect to running queries: a query that has
//! already resolved the document holds an `Arc<Document>` and keeps the
//! tree alive until it finishes; a query that resolves *after* eviction
//! gets a clean `err:FODC0002` (document not found).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::resilience::{lock_recover, CircuitBreaker};
use xqr_store::{DocId, Store};
use xqr_xdm::{Limits, QueryGuard, Result};

/// Consecutive index-build failures that open the catalog's breaker.
const INDEX_BREAKER_THRESHOLD: u32 = 3;
/// How long an open breaker skips index builds before probing again.
const INDEX_BREAKER_COOLDOWN: Duration = Duration::from_millis(250);

/// Catalog counters, snapshotted via [`DocumentCatalog::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Live named documents.
    pub docs: u64,
    /// Sum of the live documents' in-memory sizes (tree + structural
    /// index — both count against the byte budget).
    pub bytes: u64,
    /// The structural-index share of `bytes`.
    pub index_bytes: u64,
    /// Documents evicted to stay under the byte budget (replacements and
    /// explicit removals are not counted).
    pub evictions: u64,
    /// Structural indexes built (a budget-tripped build is not counted;
    /// its document stays live, unindexed).
    pub index_builds: u64,
    /// Total wall-clock nanoseconds spent building structural indexes.
    pub index_build_nanos: u64,
    /// Index builds that failed (budget trip or injected fault); their
    /// documents stay live, unindexed.
    pub index_build_failures: u64,
    /// Times the index-build circuit breaker opened after
    /// consecutive failures.
    pub index_breaker_opens: u64,
    /// Loads served in `Degraded::NoIndex` mode: the breaker was open,
    /// so no build was attempted and queries fall back to navigation.
    pub degraded_no_index: u64,
}

struct CatEntry {
    id: DocId,
    bytes: u64,
    index_bytes: u64,
    last_used: u64,
}

struct CatalogInner {
    entries: HashMap<String, CatEntry>,
    total_bytes: u64,
    total_index_bytes: u64,
}

impl CatalogInner {
    fn drop_entry(&mut self, e: &CatEntry) {
        self.total_bytes = self.total_bytes.saturating_sub(e.bytes);
        self.total_index_bytes = self.total_index_bytes.saturating_sub(e.index_bytes);
    }
}

/// Rolls a store load back if [`DocumentCatalog::put`] unwinds between
/// loading the document and registering its catalog entry (a panic in
/// the index build, say): an unregistered document would otherwise leak
/// outside the catalog's accounting forever.
struct LoadRollback<'a> {
    store: &'a Store,
    id: DocId,
    armed: bool,
}

impl Drop for LoadRollback<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.store.remove_document(self.id);
        }
    }
}

/// Named documents with LRU eviction under a total-bytes budget.
pub struct DocumentCatalog {
    store: Arc<Store>,
    /// Total in-memory byte budget; `None` means unbounded.
    max_bytes: Option<u64>,
    /// `Some(limits)` = build a structural index for every loaded
    /// document, with the build guarded by `limits`.
    index_limits: Option<Limits>,
    inner: Mutex<CatalogInner>,
    tick: AtomicU64,
    evictions: AtomicU64,
    index_builds: AtomicU64,
    index_build_nanos: AtomicU64,
    index_build_failures: AtomicU64,
    degraded_no_index: AtomicU64,
    /// Opens after repeated build failures; while open, loads skip the
    /// build entirely (`Degraded::NoIndex`) instead of failing it again.
    index_breaker: CircuitBreaker,
}

impl DocumentCatalog {
    pub fn new(store: Arc<Store>, max_bytes: Option<u64>) -> Self {
        Self::with_indexing(store, max_bytes, None)
    }

    /// A catalog that additionally builds a structural index for every
    /// document it loads (when `index_limits` is `Some`). Index bytes
    /// count against the byte budget and are freed with the document on
    /// eviction, replacement, and removal. A build that trips its
    /// budget leaves the document loaded but unindexed — queries fall
    /// back to navigation.
    pub fn with_indexing(
        store: Arc<Store>,
        max_bytes: Option<u64>,
        index_limits: Option<Limits>,
    ) -> Self {
        DocumentCatalog {
            store,
            max_bytes,
            index_limits,
            inner: Mutex::new(CatalogInner {
                entries: HashMap::new(),
                total_bytes: 0,
                total_index_bytes: 0,
            }),
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            index_builds: AtomicU64::new(0),
            index_build_nanos: AtomicU64::new(0),
            index_build_failures: AtomicU64::new(0),
            degraded_no_index: AtomicU64::new(0),
            index_breaker: CircuitBreaker::new(INDEX_BREAKER_THRESHOLD, INDEX_BREAKER_COOLDOWN),
        }
    }

    /// Is the catalog currently serving loads unindexed because the
    /// index-build breaker is open?
    pub fn index_degraded(&self) -> bool {
        self.index_breaker.is_open()
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Parse `xml` and register it under `name` (reachable from queries
    /// as `doc("name")`). Replaces any previous document of the same
    /// name, then evicts least-recently-used documents until the catalog
    /// fits its byte budget again. The just-loaded document is never its
    /// own eviction victim — a single document larger than the whole
    /// budget is admitted alone (and will be evicted by the next load).
    pub fn put(&self, name: &str, xml: &str) -> Result<DocId> {
        xqr_faults::faultpoint!("catalog.load");
        // Parse (and index) outside the catalog lock: loads can be large.
        let id = self.store.load_xml(xml, Some(name))?;
        let mut rollback = LoadRollback {
            store: &self.store,
            id,
            armed: true,
        };
        let mut bytes = self.store.document(id).memory_bytes() as u64;
        let mut index_bytes = 0;
        if let Some(limits) = self.index_limits {
            if self.index_breaker.allow() {
                let started = Instant::now();
                let guard = QueryGuard::new(limits);
                match xqr_index::ensure_indexed(&self.store, id, &guard) {
                    Ok(Some(index)) => {
                        index_bytes = index.memory_bytes() as u64;
                        bytes += index_bytes;
                        self.index_builds.fetch_add(1, Ordering::Relaxed);
                        self.index_build_nanos
                            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        self.index_breaker.record_success();
                    }
                    // Removed concurrently — nothing to index, nothing
                    // failed.
                    Ok(None) => {}
                    Err(_) => {
                        // Budget trip or injected fault: the document
                        // stays live, unindexed; queries fall back to
                        // navigation. Enough of these in a row open the
                        // breaker.
                        self.index_build_failures.fetch_add(1, Ordering::Relaxed);
                        self.index_breaker.record_failure();
                    }
                }
            } else {
                // Degraded::NoIndex — don't pay for a build that keeps
                // failing; probe again after the cooldown.
                self.degraded_no_index.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut inner = lock_recover(&self.inner);
        if let Some(old_id) = inner.entries.get(name).map(|e| e.id) {
            // Free the store slot *before* unlinking the entry: a panic
            // mid-removal (chaos) leaves a retriable catalog entry, never
            // a document leaked outside the catalog's accounting.
            self.store.remove_document(old_id);
            let old = inner.entries.remove(name).expect("entry checked above");
            inner.drop_entry(&old);
        }
        let tick = self.next_tick();
        inner.entries.insert(
            name.to_string(),
            CatEntry {
                id,
                bytes,
                index_bytes,
                last_used: tick,
            },
        );
        // Committed: the entry owns the document from here on, so a
        // later unwind (eviction loop) must not remove it.
        rollback.armed = false;
        inner.total_bytes += bytes;
        inner.total_index_bytes += index_bytes;
        if let Some(budget) = self.max_bytes {
            while inner.total_bytes > budget && inner.entries.len() > 1 {
                let victim = inner
                    .entries
                    .iter()
                    .filter(|(_, e)| e.id != id)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                    .expect("len > 1 and one entry is the new doc");
                let victim_id = inner.entries[&victim].id;
                // Store removal first — see the replacement path above.
                self.store.remove_document(victim_id);
                let evicted = inner.entries.remove(&victim).expect("victim exists");
                inner.drop_entry(&evicted);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(id)
    }

    /// Resolve a name, refreshing its LRU position. `None` if the name
    /// was never loaded or has been evicted.
    pub fn get(&self, name: &str) -> Option<DocId> {
        let mut inner = lock_recover(&self.inner);
        let tick = self.next_tick();
        inner.entries.get_mut(name).map(|e| {
            e.last_used = tick;
            e.id
        })
    }

    /// True while `name` is loaded (does not refresh LRU position).
    pub fn contains(&self, name: &str) -> bool {
        lock_recover(&self.inner).entries.contains_key(name)
    }

    /// Remove a named document, freeing its store slot. Returns `false`
    /// if the name is not loaded.
    pub fn remove(&self, name: &str) -> bool {
        let mut inner = lock_recover(&self.inner);
        let Some(id) = inner.entries.get(name).map(|e| e.id) else {
            return false;
        };
        // Store removal first — see the replacement path in `put`.
        self.store.remove_document(id);
        let e = inner.entries.remove(name).expect("entry checked above");
        inner.drop_entry(&e);
        true
    }

    pub fn len(&self) -> usize {
        lock_recover(&self.inner).entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of live documents' in-memory sizes.
    pub fn total_bytes(&self) -> u64 {
        lock_recover(&self.inner).total_bytes
    }

    pub fn stats(&self) -> CatalogStats {
        let inner = lock_recover(&self.inner);
        CatalogStats {
            docs: inner.entries.len() as u64,
            bytes: inner.total_bytes,
            index_bytes: inner.total_index_bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
            index_builds: self.index_builds.load(Ordering::Relaxed),
            index_build_nanos: self.index_build_nanos.load(Ordering::Relaxed),
            index_build_failures: self.index_build_failures.load(Ordering::Relaxed),
            index_breaker_opens: self.index_breaker.opens(),
            degraded_no_index: self.degraded_no_index.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc_of_bytes(n: usize) -> String {
        // Rough size control: one text node of n bytes.
        format!("<d>{}</d>", "x".repeat(n))
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let store = Store::new();
        let cat = DocumentCatalog::new(store.clone(), None);
        let id = cat.put("a.xml", "<a/>").unwrap();
        assert_eq!(cat.get("a.xml"), Some(id));
        assert_eq!(store.doc_count(), 1);
        assert!(cat.remove("a.xml"));
        assert!(cat.get("a.xml").is_none());
        assert_eq!(store.doc_count(), 0);
        assert!(!cat.remove("a.xml"));
    }

    #[test]
    fn replacement_frees_the_old_document() {
        let store = Store::new();
        let cat = DocumentCatalog::new(store.clone(), None);
        let old = cat.put("d.xml", &doc_of_bytes(10_000)).unwrap();
        let bytes_before = cat.total_bytes();
        let new = cat.put("d.xml", "<tiny/>").unwrap();
        assert_ne!(old, new);
        assert_eq!(store.doc_count(), 1);
        assert!(cat.total_bytes() < bytes_before);
        assert!(store.try_document(old).is_none(), "old doc was removed");
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let store = Store::new();
        // Budget for roughly two of the three documents.
        let one_doc = {
            let probe = Store::new();
            let id = probe.load_xml(&doc_of_bytes(10_000), None).unwrap();
            probe.document(id).memory_bytes() as u64
        };
        let cat = DocumentCatalog::new(store.clone(), Some(one_doc * 2 + one_doc / 2));
        cat.put("a.xml", &doc_of_bytes(10_000)).unwrap();
        cat.put("b.xml", &doc_of_bytes(10_000)).unwrap();
        cat.get("a.xml"); // refresh a: b becomes the LRU victim
        cat.put("c.xml", &doc_of_bytes(10_000)).unwrap();
        assert_eq!(cat.len(), 2);
        assert!(cat.contains("a.xml"));
        assert!(!cat.contains("b.xml"), "b was least recently used");
        assert!(cat.contains("c.xml"));
        assert_eq!(cat.stats().evictions, 1);
        assert_eq!(store.doc_count(), 2);
        assert!(cat.total_bytes() <= one_doc * 2 + one_doc / 2);
    }

    #[test]
    fn oversized_document_is_admitted_alone() {
        let store = Store::new();
        let cat = DocumentCatalog::new(store.clone(), Some(64));
        cat.put("small.xml", "<s/>").unwrap();
        cat.put("big.xml", &doc_of_bytes(100_000)).unwrap();
        // The oversized doc evicted everything else but stays itself.
        assert_eq!(cat.len(), 1);
        assert!(cat.contains("big.xml"));
    }

    #[test]
    fn indexing_catalog_attaches_and_accounts_indexes() {
        use xqr_xdm::Limits;
        let store = Store::new();
        let cat = DocumentCatalog::with_indexing(store.clone(), None, Some(Limits::unlimited()));
        let id = cat.put("a.xml", "<a><b/><b/></a>").unwrap();
        let index = xqr_index::index_of(&store, id).expect("index attached");
        assert!(index.memory_bytes() > 0);
        let stats = cat.stats();
        assert_eq!(stats.index_builds, 1);
        assert_eq!(stats.index_bytes, index.memory_bytes() as u64);
        assert!(
            stats.bytes > store.document(id).memory_bytes() as u64,
            "index bytes count against the budget"
        );
        // Removal frees the index accounting along with the document.
        assert!(cat.remove("a.xml"));
        let stats = cat.stats();
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.index_bytes, 0);
        assert!(xqr_index::index_of(&store, id).is_none());
    }

    #[test]
    fn index_build_budget_trip_leaves_document_unindexed() {
        use xqr_xdm::Limits;
        let store = Store::new();
        let cat = DocumentCatalog::with_indexing(
            store.clone(),
            None,
            Some(Limits::unlimited().with_max_items(2)),
        );
        let id = cat.put("a.xml", "<a><b/><b/><b/><b/></a>").unwrap();
        assert!(xqr_index::index_of(&store, id).is_none());
        let stats = cat.stats();
        assert_eq!(stats.index_builds, 0);
        assert_eq!(stats.index_bytes, 0);
        assert_eq!(stats.docs, 1, "the document itself is still live");
    }

    #[test]
    fn evicted_documents_vanish_from_doc_function() {
        use xqr_core::Engine;
        let engine = Engine::new();
        let cat = DocumentCatalog::new(engine.store().clone(), Some(1));
        cat.put("a.xml", "<a><b/></a>").unwrap();
        assert_eq!(engine.query(r#"count(doc("a.xml")//b)"#).unwrap(), "1");
        cat.put("z.xml", "<z/>").unwrap(); // budget of 1 byte: evicts a.xml
        assert!(!cat.contains("a.xml"));
        let err = engine.query(r#"doc("a.xml")"#).unwrap_err();
        assert_eq!(err.code, xqr_xdm::ErrorCode::DocumentNotFound);
    }
}
