//! Document catalog: named documents under a total-bytes budget.
//!
//! A long-lived service cannot let its document store grow without
//! bound. The catalog owns every document it loads — named, so queries
//! reach them via `fn:doc("name")` — and tracks each one's in-memory
//! size ([`xqr_store::Document::memory_bytes`]). When the sum exceeds
//! the configured budget, least-recently-used documents are evicted via
//! [`xqr_store::Store::remove_document`], which frees the store slot for
//! reuse (generation-checked ids make stale references detectable rather
//! than dangling).
//!
//! Eviction is safe with respect to running queries: a query that has
//! already resolved the document holds an `Arc<Document>` and keeps the
//! tree alive until it finishes; a query that resolves *after* eviction
//! gets a clean `err:FODC0002` (document not found).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use xqr_store::{DocId, Store};
use xqr_xdm::{Limits, QueryGuard, Result};

/// Catalog counters, snapshotted via [`DocumentCatalog::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Live named documents.
    pub docs: u64,
    /// Sum of the live documents' in-memory sizes (tree + structural
    /// index — both count against the byte budget).
    pub bytes: u64,
    /// The structural-index share of `bytes`.
    pub index_bytes: u64,
    /// Documents evicted to stay under the byte budget (replacements and
    /// explicit removals are not counted).
    pub evictions: u64,
    /// Structural indexes built (a budget-tripped build is not counted;
    /// its document stays live, unindexed).
    pub index_builds: u64,
    /// Total wall-clock nanoseconds spent building structural indexes.
    pub index_build_nanos: u64,
}

struct CatEntry {
    id: DocId,
    bytes: u64,
    index_bytes: u64,
    last_used: u64,
}

struct CatalogInner {
    entries: HashMap<String, CatEntry>,
    total_bytes: u64,
    total_index_bytes: u64,
}

impl CatalogInner {
    fn drop_entry(&mut self, e: &CatEntry) {
        self.total_bytes = self.total_bytes.saturating_sub(e.bytes);
        self.total_index_bytes = self.total_index_bytes.saturating_sub(e.index_bytes);
    }
}

/// Named documents with LRU eviction under a total-bytes budget.
pub struct DocumentCatalog {
    store: Arc<Store>,
    /// Total in-memory byte budget; `None` means unbounded.
    max_bytes: Option<u64>,
    /// `Some(limits)` = build a structural index for every loaded
    /// document, with the build guarded by `limits`.
    index_limits: Option<Limits>,
    inner: Mutex<CatalogInner>,
    tick: AtomicU64,
    evictions: AtomicU64,
    index_builds: AtomicU64,
    index_build_nanos: AtomicU64,
}

impl DocumentCatalog {
    pub fn new(store: Arc<Store>, max_bytes: Option<u64>) -> Self {
        Self::with_indexing(store, max_bytes, None)
    }

    /// A catalog that additionally builds a structural index for every
    /// document it loads (when `index_limits` is `Some`). Index bytes
    /// count against the byte budget and are freed with the document on
    /// eviction, replacement, and removal. A build that trips its
    /// budget leaves the document loaded but unindexed — queries fall
    /// back to navigation.
    pub fn with_indexing(
        store: Arc<Store>,
        max_bytes: Option<u64>,
        index_limits: Option<Limits>,
    ) -> Self {
        DocumentCatalog {
            store,
            max_bytes,
            index_limits,
            inner: Mutex::new(CatalogInner {
                entries: HashMap::new(),
                total_bytes: 0,
                total_index_bytes: 0,
            }),
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            index_builds: AtomicU64::new(0),
            index_build_nanos: AtomicU64::new(0),
        }
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Parse `xml` and register it under `name` (reachable from queries
    /// as `doc("name")`). Replaces any previous document of the same
    /// name, then evicts least-recently-used documents until the catalog
    /// fits its byte budget again. The just-loaded document is never its
    /// own eviction victim — a single document larger than the whole
    /// budget is admitted alone (and will be evicted by the next load).
    pub fn put(&self, name: &str, xml: &str) -> Result<DocId> {
        // Parse (and index) outside the catalog lock: loads can be large.
        let id = self.store.load_xml(xml, Some(name))?;
        let mut bytes = self.store.document(id).memory_bytes() as u64;
        let mut index_bytes = 0;
        if let Some(limits) = self.index_limits {
            let started = Instant::now();
            let guard = QueryGuard::new(limits);
            if let Ok(Some(index)) = xqr_index::ensure_indexed(&self.store, id, &guard) {
                index_bytes = index.memory_bytes() as u64;
                bytes += index_bytes;
                self.index_builds.fetch_add(1, Ordering::Relaxed);
                self.index_build_nanos
                    .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }
        let mut inner = self.inner.lock().expect("catalog lock");
        if let Some(old) = inner.entries.remove(name) {
            self.store.remove_document(old.id);
            inner.drop_entry(&old);
        }
        let tick = self.next_tick();
        inner.entries.insert(
            name.to_string(),
            CatEntry {
                id,
                bytes,
                index_bytes,
                last_used: tick,
            },
        );
        inner.total_bytes += bytes;
        inner.total_index_bytes += index_bytes;
        if let Some(budget) = self.max_bytes {
            while inner.total_bytes > budget && inner.entries.len() > 1 {
                let victim = inner
                    .entries
                    .iter()
                    .filter(|(_, e)| e.id != id)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                    .expect("len > 1 and one entry is the new doc");
                let evicted = inner.entries.remove(&victim).expect("victim exists");
                self.store.remove_document(evicted.id);
                inner.drop_entry(&evicted);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(id)
    }

    /// Resolve a name, refreshing its LRU position. `None` if the name
    /// was never loaded or has been evicted.
    pub fn get(&self, name: &str) -> Option<DocId> {
        let mut inner = self.inner.lock().expect("catalog lock");
        let tick = self.next_tick();
        inner.entries.get_mut(name).map(|e| {
            e.last_used = tick;
            e.id
        })
    }

    /// True while `name` is loaded (does not refresh LRU position).
    pub fn contains(&self, name: &str) -> bool {
        self.inner
            .lock()
            .expect("catalog lock")
            .entries
            .contains_key(name)
    }

    /// Remove a named document, freeing its store slot. Returns `false`
    /// if the name is not loaded.
    pub fn remove(&self, name: &str) -> bool {
        let mut inner = self.inner.lock().expect("catalog lock");
        match inner.entries.remove(name) {
            Some(e) => {
                self.store.remove_document(e.id);
                inner.drop_entry(&e);
                true
            }
            None => false,
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("catalog lock").entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of live documents' in-memory sizes.
    pub fn total_bytes(&self) -> u64 {
        self.inner.lock().expect("catalog lock").total_bytes
    }

    pub fn stats(&self) -> CatalogStats {
        let inner = self.inner.lock().expect("catalog lock");
        CatalogStats {
            docs: inner.entries.len() as u64,
            bytes: inner.total_bytes,
            index_bytes: inner.total_index_bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
            index_builds: self.index_builds.load(Ordering::Relaxed),
            index_build_nanos: self.index_build_nanos.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc_of_bytes(n: usize) -> String {
        // Rough size control: one text node of n bytes.
        format!("<d>{}</d>", "x".repeat(n))
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let store = Store::new();
        let cat = DocumentCatalog::new(store.clone(), None);
        let id = cat.put("a.xml", "<a/>").unwrap();
        assert_eq!(cat.get("a.xml"), Some(id));
        assert_eq!(store.doc_count(), 1);
        assert!(cat.remove("a.xml"));
        assert!(cat.get("a.xml").is_none());
        assert_eq!(store.doc_count(), 0);
        assert!(!cat.remove("a.xml"));
    }

    #[test]
    fn replacement_frees_the_old_document() {
        let store = Store::new();
        let cat = DocumentCatalog::new(store.clone(), None);
        let old = cat.put("d.xml", &doc_of_bytes(10_000)).unwrap();
        let bytes_before = cat.total_bytes();
        let new = cat.put("d.xml", "<tiny/>").unwrap();
        assert_ne!(old, new);
        assert_eq!(store.doc_count(), 1);
        assert!(cat.total_bytes() < bytes_before);
        assert!(store.try_document(old).is_none(), "old doc was removed");
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let store = Store::new();
        // Budget for roughly two of the three documents.
        let one_doc = {
            let probe = Store::new();
            let id = probe.load_xml(&doc_of_bytes(10_000), None).unwrap();
            probe.document(id).memory_bytes() as u64
        };
        let cat = DocumentCatalog::new(store.clone(), Some(one_doc * 2 + one_doc / 2));
        cat.put("a.xml", &doc_of_bytes(10_000)).unwrap();
        cat.put("b.xml", &doc_of_bytes(10_000)).unwrap();
        cat.get("a.xml"); // refresh a: b becomes the LRU victim
        cat.put("c.xml", &doc_of_bytes(10_000)).unwrap();
        assert_eq!(cat.len(), 2);
        assert!(cat.contains("a.xml"));
        assert!(!cat.contains("b.xml"), "b was least recently used");
        assert!(cat.contains("c.xml"));
        assert_eq!(cat.stats().evictions, 1);
        assert_eq!(store.doc_count(), 2);
        assert!(cat.total_bytes() <= one_doc * 2 + one_doc / 2);
    }

    #[test]
    fn oversized_document_is_admitted_alone() {
        let store = Store::new();
        let cat = DocumentCatalog::new(store.clone(), Some(64));
        cat.put("small.xml", "<s/>").unwrap();
        cat.put("big.xml", &doc_of_bytes(100_000)).unwrap();
        // The oversized doc evicted everything else but stays itself.
        assert_eq!(cat.len(), 1);
        assert!(cat.contains("big.xml"));
    }

    #[test]
    fn indexing_catalog_attaches_and_accounts_indexes() {
        use xqr_xdm::Limits;
        let store = Store::new();
        let cat = DocumentCatalog::with_indexing(store.clone(), None, Some(Limits::unlimited()));
        let id = cat.put("a.xml", "<a><b/><b/></a>").unwrap();
        let index = xqr_index::index_of(&store, id).expect("index attached");
        assert!(index.memory_bytes() > 0);
        let stats = cat.stats();
        assert_eq!(stats.index_builds, 1);
        assert_eq!(stats.index_bytes, index.memory_bytes() as u64);
        assert!(
            stats.bytes > store.document(id).memory_bytes() as u64,
            "index bytes count against the budget"
        );
        // Removal frees the index accounting along with the document.
        assert!(cat.remove("a.xml"));
        let stats = cat.stats();
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.index_bytes, 0);
        assert!(xqr_index::index_of(&store, id).is_none());
    }

    #[test]
    fn index_build_budget_trip_leaves_document_unindexed() {
        use xqr_xdm::Limits;
        let store = Store::new();
        let cat = DocumentCatalog::with_indexing(
            store.clone(),
            None,
            Some(Limits::unlimited().with_max_items(2)),
        );
        let id = cat.put("a.xml", "<a><b/><b/><b/><b/></a>").unwrap();
        assert!(xqr_index::index_of(&store, id).is_none());
        let stats = cat.stats();
        assert_eq!(stats.index_builds, 0);
        assert_eq!(stats.index_bytes, 0);
        assert_eq!(stats.docs, 1, "the document itself is still live");
    }

    #[test]
    fn evicted_documents_vanish_from_doc_function() {
        use xqr_core::Engine;
        let engine = Engine::new();
        let cat = DocumentCatalog::new(engine.store().clone(), Some(1));
        cat.put("a.xml", "<a><b/></a>").unwrap();
        assert_eq!(engine.query(r#"count(doc("a.xml")//b)"#).unwrap(), "1");
        cat.put("z.xml", "<z/>").unwrap(); // budget of 1 byte: evicts a.xml
        assert!(!cat.contains("a.xml"));
        let err = engine.query(r#"doc("a.xml")"#).unwrap_err();
        assert_eq!(err.code, xqr_xdm::ErrorCode::DocumentNotFound);
    }
}
