//! Document catalog: named documents under a total-bytes budget, with
//! optional durable persistence.
//!
//! A long-lived service cannot let its document store grow without
//! bound. The catalog owns every document it loads — named, so queries
//! reach them via `fn:doc("name")` — and tracks each one's in-memory
//! size ([`xqr_store::Document::memory_bytes`]). When the sum exceeds
//! the configured budget, least-recently-used documents are evicted via
//! [`xqr_store::Store::remove_document`], which frees the store slot for
//! reuse (generation-checked ids make stale references detectable rather
//! than dangling).
//!
//! Eviction is safe with respect to running queries: a query that has
//! already resolved the document holds an `Arc<Document>` and keeps the
//! tree alive until it finishes; a query that resolves *after* eviction
//! gets a clean `err:FODC0002` (document not found) — or, under
//! persistence, a transparent reload from the document's segment.
//!
//! # Persistence
//!
//! [`DocumentCatalog::with_persistence`] puts an `xqr-segment` store
//! behind the catalog. Every `put` additionally serializes the document
//! (tree + tokens + structural index) into a checksummed segment file,
//! written crash-safely (temp file → fsync → atomic rename → directory
//! fsync) and recorded in an append-only manifest with a generation
//! number. On reopen the manifest is replayed, orphan files are swept,
//! and every recorded document comes back as a lazily-loaded entry:
//! the first access mmaps the segment, verifies its checksums, and
//! re-registers the document with a zero-copy mapped index — no XML
//! parsing, no index build.
//!
//! A segment that fails verification is **quarantined**: it is never
//! served (every access yields the non-retryable `err:XQRL0006
//! CorruptSegment`). Quarantined bytes are *not* charged against the
//! byte budget — the budget bounds memory the catalog actually holds,
//! and a quarantined entry holds none — so a poisoned segment can never
//! permanently shrink the capacity operators sized for live data. The
//! quarantined disk footprint is tracked in its own gauge
//! ([`CatalogStats::quarantined_bytes`]) for observability, and is
//! released when the entry is removed or replaced.
//!
//! Under persistence, LRU eviction demotes a document to its segment
//! instead of dropping it: the tree leaves memory, the entry stays, and
//! the next `fn:doc` call reloads it through the store's URI-miss
//! resolver hook.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

use crate::resilience::{lock_recover, CircuitBreaker};
use xqr_index::{DocIndex, IndexedAccess, SharedIndex};
use xqr_pressure::{Category, MemoryLedger, PressureState};
use xqr_segment::{
    clean_orphans, segment_bytes, write_segment_file, Manifest, ManifestRecord, Segment,
};
use xqr_store::{DocId, Store};
use xqr_xdm::{Error, ErrorCode, Limits, QueryGuard, Result};

/// Consecutive index-build failures that open the catalog's breaker.
const INDEX_BREAKER_THRESHOLD: u32 = 3;
/// How long an open breaker skips index builds before probing again.
const INDEX_BREAKER_COOLDOWN: Duration = Duration::from_millis(250);

/// Catalog counters, snapshotted via [`DocumentCatalog::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatalogStats {
    /// Catalog entries: in-memory documents plus (under persistence)
    /// on-disk and quarantined ones.
    pub docs: u64,
    /// Bytes charged against the budget: live documents' in-memory sizes
    /// (tree + structural index) plus quarantined segments' disk sizes.
    pub bytes: u64,
    /// The structural-index share of `bytes`.
    pub index_bytes: u64,
    /// Documents evicted to stay under the byte budget (replacements and
    /// explicit removals are not counted). Under persistence an eviction
    /// demotes the document to its segment instead of dropping it.
    pub evictions: u64,
    /// Structural indexes built (a budget-tripped build is not counted;
    /// its document stays live, unindexed).
    pub index_builds: u64,
    /// Total wall-clock nanoseconds spent building structural indexes.
    pub index_build_nanos: u64,
    /// Index builds that failed (budget trip or injected fault); their
    /// documents stay live, unindexed.
    pub index_build_failures: u64,
    /// Times the index-build circuit breaker opened after
    /// consecutive failures.
    pub index_breaker_opens: u64,
    /// Loads served in `Degraded::NoIndex` mode: the breaker was open,
    /// so no build was attempted and queries fall back to navigation.
    pub degraded_no_index: u64,
    /// Segments written durably by `put`.
    pub segments_written: u64,
    /// Segments loaded back from disk (verified, mmapped, re-registered).
    pub segments_recovered: u64,
    /// Segments that failed verification and were quarantined.
    pub segments_quarantined: u64,
    /// Wall-clock nanoseconds the persistent open spent replaying the
    /// manifest, sweeping orphans, and adopting entries (0 when the
    /// catalog is memory-only).
    pub cold_start_nanos: u64,
    /// Disk bytes held by quarantined segments. Observability only —
    /// quarantined entries hold no memory, so this never counts against
    /// the byte budget.
    pub quarantined_bytes: u64,
    /// Loads that skipped the index build because the memory ledger was
    /// at Yellow or worse (brownout `Degraded::NoIndex`). Also counted
    /// in `degraded_no_index`.
    pub pressure_no_index: u64,
}

/// Where a catalog entry's document currently lives.
enum Residency {
    /// In memory (and, under persistence, also on disk).
    Loaded {
        id: DocId,
        bytes: u64,
        index_bytes: u64,
    },
    /// Durable on disk only; reloaded lazily on the next access.
    OnDisk,
    /// The segment failed verification. Never served; holds no memory,
    /// so it charges nothing against the budget (its disk footprint is
    /// tracked in the `quarantined_bytes` gauge instead).
    Quarantined,
}

/// The durable half of an entry: which segment file holds it.
#[derive(Clone)]
struct Durable {
    generation: u64,
    file: String,
    disk_bytes: u64,
}

struct CatEntry {
    residency: Residency,
    durable: Option<Durable>,
    last_used: u64,
}

impl CatEntry {
    /// What this entry charges against the budget:
    /// `(total bytes, index share)`.
    fn charge(&self) -> (u64, u64) {
        match &self.residency {
            Residency::Loaded {
                bytes, index_bytes, ..
            } => (*bytes, *index_bytes),
            Residency::OnDisk => (0, 0),
            // A quarantined segment holds no memory: charging its disk
            // bytes would let corruption permanently shrink effective
            // capacity (the old behavior, fixed in the overload PR).
            Residency::Quarantined => (0, 0),
        }
    }

    fn quarantined_disk_bytes(&self) -> u64 {
        match self.residency {
            Residency::Quarantined => self.durable.as_ref().map_or(0, |d| d.disk_bytes),
            _ => 0,
        }
    }

    fn loaded_id(&self) -> Option<DocId> {
        match self.residency {
            Residency::Loaded { id, .. } => Some(id),
            _ => None,
        }
    }
}

struct CatalogInner {
    entries: HashMap<String, CatEntry>,
    total_bytes: u64,
    total_index_bytes: u64,
}

impl CatalogInner {
    fn charge_entry(&mut self, e: &CatEntry) {
        let (b, ib) = e.charge();
        self.total_bytes += b;
        self.total_index_bytes += ib;
    }

    fn uncharge_entry(&mut self, e: &CatEntry) {
        let (b, ib) = e.charge();
        self.total_bytes = self.total_bytes.saturating_sub(b);
        self.total_index_bytes = self.total_index_bytes.saturating_sub(ib);
    }
}

/// The segment store behind a persistent catalog.
struct Persistence {
    dir: PathBuf,
    manifest: Manifest,
    next_generation: AtomicU64,
}

/// Rolls a store load back if [`DocumentCatalog::put`] unwinds between
/// loading the document and registering its catalog entry (a panic in
/// the index build, say): an unregistered document would otherwise leak
/// outside the catalog's accounting forever.
struct LoadRollback<'a> {
    store: &'a Store,
    id: DocId,
    armed: bool,
}

impl Drop for LoadRollback<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.store.remove_document(self.id);
        }
    }
}

/// Named documents with LRU eviction under a total-bytes budget, and
/// optional segment-backed persistence (see the module docs).
pub struct DocumentCatalog {
    store: Arc<Store>,
    /// Total in-memory byte budget; `None` means unbounded.
    max_bytes: Option<u64>,
    /// `Some(limits)` = build a structural index for every loaded
    /// document, with the build guarded by `limits`.
    index_limits: Option<Limits>,
    persist: Option<Persistence>,
    inner: Mutex<CatalogInner>,
    tick: AtomicU64,
    evictions: AtomicU64,
    index_builds: AtomicU64,
    index_build_nanos: AtomicU64,
    index_build_failures: AtomicU64,
    degraded_no_index: AtomicU64,
    segments_written: AtomicU64,
    segments_recovered: AtomicU64,
    segments_quarantined: AtomicU64,
    /// Set once by the persistent open; 0 for memory-only catalogs.
    cold_start_nanos: u64,
    /// Opens after repeated build failures; while open, loads skip the
    /// build entirely (`Degraded::NoIndex`) instead of failing it again.
    index_breaker: CircuitBreaker,
    /// Disk bytes held by quarantined segments (gauge; never budgeted).
    quarantined_bytes: AtomicU64,
    /// Index builds skipped because the memory ledger said Yellow+.
    pressure_no_index: AtomicU64,
    /// Service-wide memory ledger this catalog mirrors its resident
    /// bytes into (`Category::CatalogResident`); set once via
    /// [`DocumentCatalog::attach_ledger`].
    ledger: OnceLock<Arc<MemoryLedger>>,
    /// Last `total_bytes` value pushed to the ledger; mutated only under
    /// the inner lock, so the mirrored delta is exact.
    ledger_synced: AtomicU64,
}

impl DocumentCatalog {
    pub fn new(store: Arc<Store>, max_bytes: Option<u64>) -> Self {
        Self::with_indexing(store, max_bytes, None)
    }

    /// A catalog that additionally builds a structural index for every
    /// document it loads (when `index_limits` is `Some`). Index bytes
    /// count against the byte budget and are freed with the document on
    /// eviction, replacement, and removal. A build that trips its
    /// budget leaves the document loaded but unindexed — queries fall
    /// back to navigation.
    pub fn with_indexing(
        store: Arc<Store>,
        max_bytes: Option<u64>,
        index_limits: Option<Limits>,
    ) -> Self {
        DocumentCatalog {
            store,
            max_bytes,
            index_limits,
            persist: None,
            inner: Mutex::new(CatalogInner {
                entries: HashMap::new(),
                total_bytes: 0,
                total_index_bytes: 0,
            }),
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            index_builds: AtomicU64::new(0),
            index_build_nanos: AtomicU64::new(0),
            index_build_failures: AtomicU64::new(0),
            degraded_no_index: AtomicU64::new(0),
            segments_written: AtomicU64::new(0),
            segments_recovered: AtomicU64::new(0),
            segments_quarantined: AtomicU64::new(0),
            cold_start_nanos: 0,
            index_breaker: CircuitBreaker::new(INDEX_BREAKER_THRESHOLD, INDEX_BREAKER_COOLDOWN),
            quarantined_bytes: AtomicU64::new(0),
            pressure_no_index: AtomicU64::new(0),
            ledger: OnceLock::new(),
            ledger_synced: AtomicU64::new(0),
        }
    }

    /// Mirror this catalog's resident bytes into a service-wide memory
    /// ledger (`Category::CatalogResident`) and let pressure states
    /// drive the brownout ladder (Yellow+ skips index builds). First
    /// call wins; callable on a shared catalog (`Arc<Self>`).
    pub fn attach_ledger(&self, ledger: Arc<MemoryLedger>) {
        if self.ledger.set(ledger).is_ok() {
            // Adopted entries (persistent open) may already be charged.
            let inner = lock_recover(&self.inner);
            self.sync_ledger(&inner);
        }
    }

    /// Push the delta between the catalog's charged bytes and what the
    /// ledger last saw. Must be called with the inner lock held (the
    /// caller passes the guard's target to prove it), so deltas from
    /// concurrent mutations cannot interleave.
    fn sync_ledger(&self, inner: &CatalogInner) {
        let Some(ledger) = self.ledger.get() else {
            return;
        };
        let now = inner.total_bytes;
        let prev = self.ledger_synced.swap(now, Ordering::Relaxed);
        if now > prev {
            ledger.charge(Category::CatalogResident, now - prev);
        } else {
            ledger.release(Category::CatalogResident, prev - now);
        }
    }

    /// Brownout rung: is the attached ledger at Yellow or worse?
    fn pressure_brownout(&self) -> bool {
        self.ledger
            .get()
            .is_some_and(|l| l.state() >= PressureState::Yellow)
    }

    /// Open (or create) a persistent catalog over `dir`.
    ///
    /// Replays the manifest, sweeps orphan files (`*.tmp` and segments
    /// no live record references), and adopts every recorded document as
    /// a lazily-loaded entry — O(manifest) work, no segment is read yet.
    /// Checksums are verified on first touch; a failing segment is
    /// quarantined, never served. The store's URI-miss resolver is wired
    /// to this catalog (via a `Weak`, so the pair still drops), which is
    /// what lets `fn:doc("name")` transparently reload evicted or
    /// not-yet-touched documents.
    pub fn with_persistence(
        store: Arc<Store>,
        max_bytes: Option<u64>,
        index_limits: Option<Limits>,
        dir: impl Into<PathBuf>,
    ) -> Result<Arc<Self>> {
        let started = Instant::now();
        let dir = dir.into();
        let manifest = Manifest::open(&dir)?;
        let replay = manifest.replay()?;
        let live = replay.live();
        clean_orphans(&dir, |f| live.values().any(|l| l.file == f))?;

        let mut entries = HashMap::new();
        let mut quarantined = 0u64;
        let mut total_bytes = 0u64;
        for (uri, l) in &live {
            // Adoption only needs the file's existence and size; content
            // verification is deferred to first touch. A manifest record
            // whose file is missing (externally deleted) is quarantined
            // up front — it can never be served.
            let (residency, disk_bytes) = match fs::metadata(dir.join(&l.file)) {
                Ok(m) => (Residency::OnDisk, m.len()),
                Err(_) => {
                    quarantined += 1;
                    (Residency::Quarantined, 0)
                }
            };
            let entry = CatEntry {
                residency,
                durable: Some(Durable {
                    generation: l.generation,
                    file: l.file.clone(),
                    disk_bytes,
                }),
                last_used: 0,
            };
            total_bytes += entry.charge().0;
            entries.insert(uri.clone(), entry);
        }

        let mut catalog = Self::with_indexing(store, max_bytes, index_limits);
        catalog.persist = Some(Persistence {
            dir,
            manifest,
            next_generation: AtomicU64::new(replay.next_generation()),
        });
        catalog.inner = Mutex::new(CatalogInner {
            entries,
            total_bytes,
            total_index_bytes: 0,
        });
        catalog.segments_quarantined = AtomicU64::new(quarantined);
        catalog.cold_start_nanos = started.elapsed().as_nanos() as u64;

        let catalog = Arc::new(catalog);
        let weak: Weak<DocumentCatalog> = Arc::downgrade(&catalog);
        catalog
            .store
            .set_doc_resolver(Some(Arc::new(move |uri: &str| match weak.upgrade() {
                Some(cat) => cat.resolve(uri),
                None => Ok(None),
            })));
        Ok(catalog)
    }

    /// Is this catalog backed by a durable segment store?
    pub fn is_persistent(&self) -> bool {
        self.persist.is_some()
    }

    /// Is the catalog currently serving loads unindexed because the
    /// index-build breaker is open?
    pub fn index_degraded(&self) -> bool {
        self.index_breaker.is_open()
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Parse (and, breaker permitting, index) a document WITHOUT
    /// creating a catalog entry: the caller owns the returned id and
    /// must remove it from the store when done. The publish path uses
    /// this for the shared fallback document of one publish — index
    /// accounting and the build breaker apply exactly as for [`put`],
    /// but the document never competes for the catalog byte budget,
    /// is never persisted, and is invisible to `doc()` resolution.
    ///
    /// [`put`]: DocumentCatalog::put
    pub fn load_transient_indexed(&self, xml: &str) -> Result<DocId> {
        xqr_faults::faultpoint!("catalog.load");
        let id = self.store.load_xml(xml, None)?;
        if let Some(limits) = self.index_limits {
            if self.pressure_brownout() {
                // Brownout Yellow+: an index build is pure memory
                // amplification right when memory is the problem. Serve
                // unindexed (`Degraded::NoIndex`), same as an open
                // breaker.
                self.pressure_no_index.fetch_add(1, Ordering::Relaxed);
                self.degraded_no_index.fetch_add(1, Ordering::Relaxed);
            } else if self.index_breaker.allow() {
                let started = Instant::now();
                let guard = QueryGuard::new(limits);
                // Panic-contained: unlike `put`, there is no rollback
                // guard here — an unwind would leak the un-entried
                // document past the caller's ownership.
                let built =
                    xqr_core::contain_panic(|| xqr_index::ensure_indexed(&self.store, id, &guard));
                match built {
                    Ok(Some(_)) => {
                        self.index_builds.fetch_add(1, Ordering::Relaxed);
                        self.index_build_nanos
                            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        self.index_breaker.record_success();
                    }
                    Ok(None) => {}
                    Err(_) => {
                        // Budget trip or injected fault: the transient
                        // document stays usable unindexed; fallback
                        // evaluations navigate instead.
                        self.index_build_failures.fetch_add(1, Ordering::Relaxed);
                        self.index_breaker.record_failure();
                    }
                }
            } else {
                self.degraded_no_index.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(id)
    }

    /// Parse `xml` and register it under `name` (reachable from queries
    /// as `doc("name")`). Replaces any previous document of the same
    /// name, then evicts least-recently-used documents until the catalog
    /// fits its byte budget again. The just-loaded document is never its
    /// own eviction victim — a single document larger than the whole
    /// budget is admitted alone (and will be evicted by the next load).
    ///
    /// Under persistence the document is also serialized into a new
    /// segment file and recorded in the manifest before the entry
    /// becomes visible; a persist failure fails the whole `put`, so a
    /// successful return means the document is durable. Exception: a
    /// document whose *guarded index build* failed stays memory-only
    /// (serializing it would require an unguarded build, circumventing
    /// the very limits that tripped).
    pub fn put(&self, name: &str, xml: &str) -> Result<DocId> {
        xqr_faults::faultpoint!("catalog.load");
        // Parse (and index) outside the catalog lock: loads can be large.
        let id = self.store.load_xml(xml, Some(name))?;
        let mut rollback = LoadRollback {
            store: &self.store,
            id,
            armed: true,
        };
        let mut bytes = self.store.document(id).memory_bytes() as u64;
        let mut index_bytes = 0;
        let mut built: Option<SharedIndex> = None;
        let mut build_failed = false;
        if let Some(limits) = self.index_limits {
            if self.pressure_brownout() {
                // Brownout Yellow+: skip the build (and the durable
                // write below, which would rebuild throwaway lists) —
                // the document loads, queries navigate.
                build_failed = true;
                self.pressure_no_index.fetch_add(1, Ordering::Relaxed);
                self.degraded_no_index.fetch_add(1, Ordering::Relaxed);
            } else if self.index_breaker.allow() {
                let started = Instant::now();
                let guard = QueryGuard::new(limits);
                match xqr_index::ensure_indexed(&self.store, id, &guard) {
                    Ok(Some(index)) => {
                        index_bytes = index.memory_bytes() as u64;
                        bytes += index_bytes;
                        built = Some(index);
                        self.index_builds.fetch_add(1, Ordering::Relaxed);
                        self.index_build_nanos
                            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        self.index_breaker.record_success();
                    }
                    // Removed concurrently — nothing to index, nothing
                    // failed.
                    Ok(None) => {}
                    Err(_) => {
                        // Budget trip or injected fault: the document
                        // stays live, unindexed; queries fall back to
                        // navigation. Enough of these in a row open the
                        // breaker.
                        build_failed = true;
                        self.index_build_failures.fetch_add(1, Ordering::Relaxed);
                        self.index_breaker.record_failure();
                    }
                }
            } else {
                // Degraded::NoIndex — don't pay for a build that keeps
                // failing; probe again after the cooldown.
                build_failed = true;
                self.degraded_no_index.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Serialize and write the segment file outside the lock; the
        // manifest append happens under it, so record order and entry
        // order can't disagree between racing puts of the same name.
        let durable = match (&self.persist, build_failed) {
            (Some(p), false) => Some(self.write_segment(p, id, built.as_deref())?),
            _ => None,
        };
        let mut inner = lock_recover(&self.inner);
        if let Some(p) = &self.persist {
            match &durable {
                Some(d) => {
                    if let Err(e) = p.manifest.append(&ManifestRecord::Add {
                        generation: d.generation,
                        file: d.file.clone(),
                        uri: name.to_string(),
                    }) {
                        // The written file is an unreferenced orphan now;
                        // sweep it eagerly (reopen would sweep it anyway).
                        let _ = fs::remove_file(p.dir.join(&d.file));
                        return Err(e);
                    }
                    self.segments_written.fetch_add(1, Ordering::Relaxed);
                }
                // Degraded memory-only replace: retire any stale durable
                // copy, or a restart would serve the *old* version of
                // this name — a wrong answer, not just a missing one.
                None => {
                    if inner.entries.get(name).is_some_and(|e| e.durable.is_some()) {
                        let generation = p.next_generation.fetch_add(1, Ordering::Relaxed);
                        p.manifest.append(&ManifestRecord::Del {
                            generation,
                            uri: name.to_string(),
                        })?;
                    }
                }
            }
        }
        if let Some(old) = inner.entries.remove(name) {
            // Free the store slot *before* unlinking the entry: a panic
            // mid-removal (chaos) leaves a retriable catalog entry, never
            // a document leaked outside the catalog's accounting.
            if let Some(old_id) = old.loaded_id() {
                self.store.remove_document(old_id);
            }
            inner.uncharge_entry(&old);
            // Replacing a quarantined entry releases its gauge bytes.
            self.quarantined_bytes
                .fetch_sub(old.quarantined_disk_bytes(), Ordering::Relaxed);
            // The new Add record supersedes the old one for this URI, so
            // the old segment file is dead weight; best-effort delete
            // (reopen sweeps it as an orphan regardless).
            if let (Some(p), Some(d)) = (&self.persist, &old.durable) {
                let _ = fs::remove_file(p.dir.join(&d.file));
            }
        }
        let tick = self.next_tick();
        let entry = CatEntry {
            residency: Residency::Loaded {
                id,
                bytes,
                index_bytes,
            },
            durable,
            last_used: tick,
        };
        inner.charge_entry(&entry);
        inner.entries.insert(name.to_string(), entry);
        // Committed: the entry owns the document from here on, so a
        // later unwind (eviction loop) must not remove it.
        rollback.armed = false;
        self.evict_to_budget(&mut inner, id);
        self.sync_ledger(&inner);
        Ok(id)
    }

    /// Serialize `id` and write its segment file crash-safely. The
    /// manifest is NOT appended here — that happens under the catalog
    /// lock; until then the file is an unreferenced orphan a crash
    /// would sweep.
    fn write_segment(
        &self,
        p: &Persistence,
        id: DocId,
        index: Option<&dyn xqr_index::IndexedAccess>,
    ) -> Result<Durable> {
        let doc = self.store.document(id);
        let throwaway;
        let concrete: &DocIndex = match index.and_then(|i| i.as_doc_index()) {
            Some(d) => d,
            None => {
                // Indexing is off for this catalog; the segment format
                // still carries the inverted lists, so build them just
                // for the durable copy.
                throwaway = DocIndex::build(&doc)?;
                &throwaway
            }
        };
        let blob = segment_bytes(&doc, concrete)?;
        let generation = p.next_generation.fetch_add(1, Ordering::Relaxed);
        let file = format!("seg-{generation}.seg");
        write_segment_file(&p.dir, &file, &blob)?;
        Ok(Durable {
            generation,
            file,
            disk_bytes: blob.len() as u64,
        })
    }

    /// Evict least-recently-used *loaded* entries until the budget fits.
    /// Under persistence a victim is demoted to its segment (the entry
    /// stays, reloadable); memory-only victims are dropped entirely.
    fn evict_to_budget(&self, inner: &mut CatalogInner, protect: DocId) {
        let Some(budget) = self.max_bytes else {
            return;
        };
        self.evict_to(inner, budget, Some(protect));
    }

    /// Shed resident documents until the catalog holds at most
    /// `target_bytes` — the brownout ladder's demote/evict rung. Under
    /// persistence victims are demoted to their segments (reloadable);
    /// memory-only victims are dropped. Cheap when already under the
    /// target (one lock, no scan).
    pub fn shed_cold(&self, target_bytes: u64) {
        let mut inner = lock_recover(&self.inner);
        if inner.total_bytes <= target_bytes {
            return;
        }
        self.evict_to(&mut inner, target_bytes, None);
        self.sync_ledger(&inner);
    }

    fn evict_to(&self, inner: &mut CatalogInner, budget: u64, protect: Option<DocId>) {
        while inner.total_bytes > budget {
            let Some(victim) = inner
                .entries
                .iter()
                .filter(|(_, e)| e.loaded_id().is_some_and(|id| Some(id) != protect))
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                // Nothing left to evict (only the protected document
                // and on-disk entries remain).
                break;
            };
            let entry = inner.entries.get(&victim).expect("victim exists");
            let id = entry.loaded_id().expect("victim is loaded");
            // Store removal first — see the replacement path in `put`.
            self.store.remove_document(id);
            let mut evicted = inner.entries.remove(&victim).expect("victim exists");
            inner.uncharge_entry(&evicted);
            if evicted.durable.is_some() {
                // Demote: the document lives on in its segment and
                // reloads on the next access.
                evicted.residency = Residency::OnDisk;
                inner.charge_entry(&evicted);
                inner.entries.insert(victim, evicted);
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Load an on-disk entry back into memory: mmap, verify, register.
    /// Caller holds the inner lock and has checked the entry is
    /// `OnDisk`. Corruption quarantines the entry (bytes stay charged)
    /// and returns the coded error; transient faults leave it on disk,
    /// retryable.
    fn reload_locked(&self, inner: &mut CatalogInner, name: &str) -> Result<DocId> {
        let persist = self
            .persist
            .as_ref()
            .expect("on-disk entry implies persistence");
        let durable = inner
            .entries
            .get(name)
            .and_then(|e| e.durable.clone())
            .expect("on-disk entry has a segment");
        let path = persist.dir.join(&durable.file);
        let loaded = (|| -> Result<(DocId, u64, u64)> {
            let seg = Segment::open(&path)?;
            if seg.uri() != Some(name) {
                return Err(Error::corrupt_segment(format!(
                    "segment {} carries uri {:?}, catalog expected {name:?}",
                    durable.file,
                    seg.uri()
                )));
            }
            let (doc, index) = seg.load(self.store.names())?;
            let index_bytes = index.memory_bytes() as u64;
            let bytes = doc.memory_bytes() as u64 + index_bytes;
            let id = self.store.add_document(doc);
            xqr_index::attach_index(&self.store, id, index);
            Ok((id, bytes, index_bytes))
        })();
        let tick = self.next_tick();
        let entry = inner.entries.get_mut(name).expect("caller checked");
        match loaded {
            Ok((id, bytes, index_bytes)) => {
                // OnDisk charged nothing, so no uncharge needed.
                entry.residency = Residency::Loaded {
                    id,
                    bytes,
                    index_bytes,
                };
                entry.last_used = tick;
                inner.total_bytes += bytes;
                inner.total_index_bytes += index_bytes;
                self.segments_recovered.fetch_add(1, Ordering::Relaxed);
                self.evict_to_budget(inner, id);
                Ok(id)
            }
            Err(e) if e.code == ErrorCode::CorruptSegment => {
                // Quarantine holds no memory, so the budget is untouched;
                // the disk footprint goes to the observability gauge.
                entry.residency = Residency::Quarantined;
                self.quarantined_bytes
                    .fetch_add(durable.disk_bytes, Ordering::Relaxed);
                self.segments_quarantined.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
            // Transient (an injected mmap fault, say): stay OnDisk so a
            // retry can succeed.
            Err(e) => Err(e),
        }
    }

    /// Resolve a name to a live document id, reloading from disk when
    /// necessary. `Ok(None)` means the name is genuinely absent; a
    /// quarantined entry propagates `err:XQRL0006`. This is the store's
    /// URI-miss resolver under persistence.
    pub fn resolve(&self, name: &str) -> Result<Option<DocId>> {
        let mut inner = lock_recover(&self.inner);
        let tick = self.next_tick();
        let out = match inner.entries.get_mut(name) {
            None => Ok(None),
            Some(e) => match e.residency {
                Residency::Loaded { id, .. } => {
                    e.last_used = tick;
                    Ok(Some(id))
                }
                Residency::OnDisk => self.reload_locked(&mut inner, name).map(Some),
                Residency::Quarantined => Err(Error::corrupt_segment(format!(
                    "document {name:?} is quarantined: its segment failed integrity \
                     verification"
                ))),
            },
        };
        self.sync_ledger(&inner);
        out
    }

    /// Resolve a name, refreshing its LRU position. `None` if the name
    /// was never loaded, has been dropped, or cannot be served (a
    /// quarantined or currently-unreadable segment — use
    /// [`DocumentCatalog::resolve`] for the coded error).
    pub fn get(&self, name: &str) -> Option<DocId> {
        self.resolve(name).ok().flatten()
    }

    /// True while `name` has a catalog entry (loaded, on disk, or
    /// quarantined; does not refresh LRU position).
    pub fn contains(&self, name: &str) -> bool {
        lock_recover(&self.inner).entries.contains_key(name)
    }

    /// Remove a named document: frees its store slot and, under
    /// persistence, appends a deletion record and deletes the segment
    /// file (releasing any quarantined bytes). Returns `false` if the
    /// name is not present — or if the deletion record could not be
    /// made durable, in which case the entry survives for a retry.
    pub fn remove(&self, name: &str) -> bool {
        let mut inner = lock_recover(&self.inner);
        let Some(entry) = inner.entries.get(name) else {
            return false;
        };
        if let (Some(p), Some(d)) = (&self.persist, &entry.durable) {
            let generation = p.next_generation.fetch_add(1, Ordering::Relaxed);
            if p.manifest
                .append(&ManifestRecord::Del {
                    generation,
                    uri: name.to_string(),
                })
                .is_err()
            {
                // Not durable — the segment would resurrect on reopen.
                // Keep the entry consistent with disk and let the caller
                // retry.
                return false;
            }
            let _ = fs::remove_file(p.dir.join(&d.file));
        }
        // Store removal first — see the replacement path in `put`.
        if let Some(id) = entry.loaded_id() {
            self.store.remove_document(id);
        }
        let e = inner.entries.remove(name).expect("entry checked above");
        inner.uncharge_entry(&e);
        self.quarantined_bytes
            .fetch_sub(e.quarantined_disk_bytes(), Ordering::Relaxed);
        self.sync_ledger(&inner);
        true
    }

    pub fn len(&self) -> usize {
        lock_recover(&self.inner).entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes charged against the budget (in-memory documents plus
    /// quarantined segments' disk bytes).
    pub fn total_bytes(&self) -> u64 {
        lock_recover(&self.inner).total_bytes
    }

    /// The directory a persistent catalog stores segments in.
    pub fn persist_dir(&self) -> Option<&Path> {
        self.persist.as_ref().map(|p| p.dir.as_path())
    }

    pub fn stats(&self) -> CatalogStats {
        let inner = lock_recover(&self.inner);
        CatalogStats {
            docs: inner.entries.len() as u64,
            bytes: inner.total_bytes,
            index_bytes: inner.total_index_bytes,
            evictions: self.evictions.load(Ordering::Relaxed),
            index_builds: self.index_builds.load(Ordering::Relaxed),
            index_build_nanos: self.index_build_nanos.load(Ordering::Relaxed),
            index_build_failures: self.index_build_failures.load(Ordering::Relaxed),
            index_breaker_opens: self.index_breaker.opens(),
            degraded_no_index: self.degraded_no_index.load(Ordering::Relaxed),
            segments_written: self.segments_written.load(Ordering::Relaxed),
            segments_recovered: self.segments_recovered.load(Ordering::Relaxed),
            segments_quarantined: self.segments_quarantined.load(Ordering::Relaxed),
            quarantined_bytes: self.quarantined_bytes.load(Ordering::Relaxed),
            pressure_no_index: self.pressure_no_index.load(Ordering::Relaxed),
            cold_start_nanos: self.cold_start_nanos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc_of_bytes(n: usize) -> String {
        // Rough size control: one text node of n bytes.
        format!("<d>{}</d>", "x".repeat(n))
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xqr-catalog-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_remove_roundtrip() {
        let store = Store::new();
        let cat = DocumentCatalog::new(store.clone(), None);
        let id = cat.put("a.xml", "<a/>").unwrap();
        assert_eq!(cat.get("a.xml"), Some(id));
        assert_eq!(store.doc_count(), 1);
        assert!(cat.remove("a.xml"));
        assert!(cat.get("a.xml").is_none());
        assert_eq!(store.doc_count(), 0);
        assert!(!cat.remove("a.xml"));
    }

    #[test]
    fn replacement_frees_the_old_document() {
        let store = Store::new();
        let cat = DocumentCatalog::new(store.clone(), None);
        let old = cat.put("d.xml", &doc_of_bytes(10_000)).unwrap();
        let bytes_before = cat.total_bytes();
        let new = cat.put("d.xml", "<tiny/>").unwrap();
        assert_ne!(old, new);
        assert_eq!(store.doc_count(), 1);
        assert!(cat.total_bytes() < bytes_before);
        assert!(store.try_document(old).is_none(), "old doc was removed");
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let store = Store::new();
        // Budget for roughly two of the three documents.
        let one_doc = {
            let probe = Store::new();
            let id = probe.load_xml(&doc_of_bytes(10_000), None).unwrap();
            probe.document(id).memory_bytes() as u64
        };
        let cat = DocumentCatalog::new(store.clone(), Some(one_doc * 2 + one_doc / 2));
        cat.put("a.xml", &doc_of_bytes(10_000)).unwrap();
        cat.put("b.xml", &doc_of_bytes(10_000)).unwrap();
        cat.get("a.xml"); // refresh a: b becomes the LRU victim
        cat.put("c.xml", &doc_of_bytes(10_000)).unwrap();
        assert_eq!(cat.len(), 2);
        assert!(cat.contains("a.xml"));
        assert!(!cat.contains("b.xml"), "b was least recently used");
        assert!(cat.contains("c.xml"));
        assert_eq!(cat.stats().evictions, 1);
        assert_eq!(store.doc_count(), 2);
        assert!(cat.total_bytes() <= one_doc * 2 + one_doc / 2);
    }

    #[test]
    fn oversized_document_is_admitted_alone() {
        let store = Store::new();
        let cat = DocumentCatalog::new(store.clone(), Some(64));
        cat.put("small.xml", "<s/>").unwrap();
        cat.put("big.xml", &doc_of_bytes(100_000)).unwrap();
        // The oversized doc evicted everything else but stays itself.
        assert_eq!(cat.len(), 1);
        assert!(cat.contains("big.xml"));
    }

    #[test]
    fn indexing_catalog_attaches_and_accounts_indexes() {
        use xqr_xdm::Limits;
        let store = Store::new();
        let cat = DocumentCatalog::with_indexing(store.clone(), None, Some(Limits::unlimited()));
        let id = cat.put("a.xml", "<a><b/><b/></a>").unwrap();
        let index = xqr_index::index_of(&store, id).expect("index attached");
        assert!(index.memory_bytes() > 0);
        let stats = cat.stats();
        assert_eq!(stats.index_builds, 1);
        assert_eq!(stats.index_bytes, index.memory_bytes() as u64);
        assert!(
            stats.bytes > store.document(id).memory_bytes() as u64,
            "index bytes count against the budget"
        );
        // Removal frees the index accounting along with the document.
        assert!(cat.remove("a.xml"));
        let stats = cat.stats();
        assert_eq!(stats.bytes, 0);
        assert_eq!(stats.index_bytes, 0);
        assert!(xqr_index::index_of(&store, id).is_none());
    }

    #[test]
    fn index_build_budget_trip_leaves_document_unindexed() {
        use xqr_xdm::Limits;
        let store = Store::new();
        let cat = DocumentCatalog::with_indexing(
            store.clone(),
            None,
            Some(Limits::unlimited().with_max_items(2)),
        );
        let id = cat.put("a.xml", "<a><b/><b/><b/><b/></a>").unwrap();
        assert!(xqr_index::index_of(&store, id).is_none());
        let stats = cat.stats();
        assert_eq!(stats.index_builds, 0);
        assert_eq!(stats.index_bytes, 0);
        assert_eq!(stats.docs, 1, "the document itself is still live");
    }

    #[test]
    fn evicted_documents_vanish_from_doc_function() {
        use xqr_core::Engine;
        let engine = Engine::new();
        let cat = DocumentCatalog::new(engine.store().clone(), Some(1));
        cat.put("a.xml", "<a><b/></a>").unwrap();
        assert_eq!(engine.query(r#"count(doc("a.xml")//b)"#).unwrap(), "1");
        cat.put("z.xml", "<z/>").unwrap(); // budget of 1 byte: evicts a.xml
        assert!(!cat.contains("a.xml"));
        let err = engine.query(r#"doc("a.xml")"#).unwrap_err();
        assert_eq!(err.code, xqr_xdm::ErrorCode::DocumentNotFound);
    }

    #[test]
    fn persistent_put_survives_reopen() {
        let dir = scratch("reopen");
        let store = Store::new();
        let cat = DocumentCatalog::with_persistence(store, None, Some(Limits::unlimited()), &dir)
            .unwrap();
        cat.put("a.xml", "<a><b/><b/></a>").unwrap();
        assert_eq!(cat.stats().segments_written, 1);
        drop(cat); // simulated shutdown: only the fsynced files survive

        let store = Store::new();
        let cat = DocumentCatalog::with_persistence(store.clone(), None, None, &dir).unwrap();
        assert!(cat.contains("a.xml"));
        assert_eq!(store.doc_count(), 0, "adoption is lazy");
        let id = cat.get("a.xml").expect("reloads from segment");
        assert_eq!(store.doc_count(), 1);
        assert_eq!(cat.stats().segments_recovered, 1);
        // The reload attached the mapped index.
        assert!(xqr_index::index_of(&store, id).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_eviction_demotes_and_reloads() {
        let dir = scratch("demote");
        let store = Store::new();
        let cat = DocumentCatalog::with_persistence(store.clone(), Some(1), None, &dir).unwrap();
        cat.put("a.xml", "<a>one</a>").unwrap();
        cat.put("b.xml", "<b>two</b>").unwrap(); // 1-byte budget: evicts a
        assert!(cat.contains("a.xml"), "demoted, not dropped");
        assert!(cat.stats().evictions >= 1);
        // The next access transparently reloads from the segment.
        let id = cat.get("a.xml").expect("reload after demotion");
        assert!(store.try_document(id).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn ledger_mirrors_resident_bytes_through_put_evict_remove() {
        let ledger = Arc::new(MemoryLedger::unbounded());
        let store = Store::new();
        let cat = DocumentCatalog::new(store, None);
        cat.attach_ledger(Arc::clone(&ledger));
        assert_eq!(ledger.total(), 0);

        cat.put("a.xml", &doc_of_bytes(2_000)).unwrap();
        let after_a = ledger.total();
        assert_eq!(after_a, cat.total_bytes(), "ledger tracks the catalog");
        assert!(after_a > 2_000);

        cat.put("b.xml", &doc_of_bytes(1_000)).unwrap();
        assert_eq!(ledger.total(), cat.total_bytes());
        assert_eq!(
            ledger
                .snapshot()
                .category(Category::CatalogResident)
                .current,
            cat.total_bytes()
        );

        cat.remove("a.xml");
        cat.remove("b.xml");
        assert_eq!(ledger.total(), 0, "all resident bytes released");
    }

    #[test]
    fn attach_ledger_charges_preexisting_residents() {
        let store = Store::new();
        let cat = DocumentCatalog::new(store, None);
        cat.put("a.xml", &doc_of_bytes(500)).unwrap();
        let ledger = Arc::new(MemoryLedger::unbounded());
        cat.attach_ledger(Arc::clone(&ledger));
        assert_eq!(ledger.total(), cat.total_bytes(), "late attach syncs");
    }

    #[test]
    fn brownout_skips_index_builds_but_serves_documents() {
        use xqr_xdm::Limits;
        // A tiny ceiling already in Yellow before the catalog charges.
        let ledger = Arc::new(MemoryLedger::new(
            xqr_pressure::PressureConfig::with_ceiling(1_000),
        ));
        ledger.charge(Category::QueryOutput, 800); // 80% > yellow_enter
        assert!(ledger.state() >= PressureState::Yellow);

        let store = Store::new();
        let cat = DocumentCatalog::with_indexing(store.clone(), None, Some(Limits::unlimited()));
        cat.attach_ledger(Arc::clone(&ledger));
        let id = cat.put("a.xml", "<a><b/><b/></a>").unwrap();
        assert!(
            xqr_index::index_of(&store, id).is_none(),
            "no index under pressure"
        );
        let stats = cat.stats();
        assert_eq!(stats.index_builds, 0);
        assert_eq!(stats.pressure_no_index, 1);
        assert_eq!(stats.degraded_no_index, 1);
        assert_eq!(stats.docs, 1, "the document itself still loads");

        // Pressure clears: the next load builds its index again.
        ledger.release(Category::QueryOutput, 800);
        assert_eq!(ledger.state(), PressureState::Green);
        let id2 = cat.put("b.xml", "<b><c/></b>").unwrap();
        assert!(xqr_index::index_of(&store, id2).is_some());
    }

    #[test]
    fn shed_cold_demotes_down_to_target() {
        let dir = scratch("shed-cold");
        let store = Store::new();
        let cat = DocumentCatalog::with_persistence(store, None, None, &dir).unwrap();
        cat.put("a.xml", &doc_of_bytes(4_000)).unwrap();
        cat.put("b.xml", &doc_of_bytes(4_000)).unwrap();
        let full = cat.total_bytes();
        assert!(full > 8_000);

        cat.shed_cold(full / 2);
        assert!(cat.total_bytes() <= full / 2, "shed to the target");
        assert!(cat.contains("a.xml"), "demoted entries survive on disk");
        assert!(cat.contains("b.xml"));
        // And reload transparently once pressure is gone.
        assert!(cat.get("a.xml").is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_remove_is_durable() {
        let dir = scratch("remove");
        {
            let cat = DocumentCatalog::with_persistence(Store::new(), None, None, &dir).unwrap();
            cat.put("a.xml", "<a/>").unwrap();
            cat.put("b.xml", "<b/>").unwrap();
            assert!(cat.remove("a.xml"));
        }
        let cat = DocumentCatalog::with_persistence(Store::new(), None, None, &dir).unwrap();
        assert!(!cat.contains("a.xml"), "deletion replayed from manifest");
        assert!(cat.contains("b.xml"));
        let _ = fs::remove_dir_all(&dir);
    }
}
