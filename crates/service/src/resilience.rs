//! Resilience primitives: poison-recovering locks, bounded retry with
//! deterministic backoff, and circuit breakers.
//!
//! The service's stance on failure comes from the error-code taxonomy
//! ([`xqr_xdm::ErrorCode::is_retryable`]): *transient* codes
//! (`XQRL0002/0004/0005`) describe a moment — queue pressure, a starved
//! deadline, an injected subsystem fault — and deserve a bounded retry;
//! every other code is deterministic and retrying it only burns
//! capacity. When retries keep failing, the circuit breaker converts
//! "try and fail every time" into an explicit degradation mode
//! (`Degraded::NoIndex`, `Degraded::CacheOnly`) that is reported in
//! [`crate::ServiceStats`] instead of being silently absorbed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

// The poison-recovering lock moved to `xqr-parallel` with the worker
// pool (the morsel executor's structures recover through it too);
// re-exported here so service-layer code and embedders keep their
// import path, and so every recovery still lands in one process-wide
// gauge.
pub use xqr_parallel::{lock_recover, lock_recoveries};

/// The degradation modes the service can enter instead of failing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Degraded {
    /// The index-build breaker is open: catalog loads serve documents
    /// unindexed and queries fall back to navigational evaluation.
    NoIndex,
    /// The plan-cache breaker is open: queries compile per-execution
    /// (cached plans still hit) instead of going through cache inserts.
    CacheOnly,
}

/// Bounded retry with exponential backoff and deterministic jitter.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = no retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..Default::default()
        }
    }

    /// The sleep before retry number `attempt` (1-based): exponential in
    /// the attempt with ±50% jitter. Jitter is a pure function of
    /// `(salt, attempt)` — no RNG, so a replayed chaos run backs off
    /// identically — while distinct salts (e.g. a per-query counter)
    /// still de-synchronize herds of retriers.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let capped = exp.min(self.max_backoff);
        // Map jitter into [50%, 150%] of the capped backoff.
        let jitter = splitmix64(salt ^ u64::from(attempt)) % 1001;
        capped.mul_f64(0.5 + jitter as f64 / 1000.0)
    }
}

/// A consecutive-failure circuit breaker.
///
/// * **Closed** (normal): operations run; each failure increments a
///   consecutive-failure count, any success resets it.
/// * **Open**: after `threshold` consecutive failures, [`allow`] returns
///   `false` for `cooldown` — callers take their degraded path without
///   paying for the doomed operation.
/// * **Half-open**: once the cooldown elapses, a single probe is let
///   through; success closes the breaker, failure re-opens it for
///   another cooldown.
///
/// [`allow`]: CircuitBreaker::allow
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    state: Mutex<BreakerState>,
    opens: AtomicU64,
}

#[derive(Debug, Default)]
struct BreakerState {
    consecutive_failures: u32,
    open_until: Option<Instant>,
    /// A half-open probe is in flight; further callers stay degraded
    /// until it reports.
    probing: bool,
}

impl CircuitBreaker {
    /// Opens after `threshold` consecutive failures (clamped to ≥ 1),
    /// for `cooldown` per open period.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            state: Mutex::new(BreakerState::default()),
            opens: AtomicU64::new(0),
        }
    }

    /// Should the caller attempt the protected operation? `false` means
    /// take the degraded path. A `true` during cooldown expiry admits
    /// exactly one half-open probe; the caller must report the outcome
    /// via [`record_success`] / [`record_failure`].
    ///
    /// [`record_success`]: CircuitBreaker::record_success
    /// [`record_failure`]: CircuitBreaker::record_failure
    pub fn allow(&self) -> bool {
        let mut state = lock_recover(&self.state);
        match state.open_until {
            None => true,
            Some(until) if Instant::now() < until => false,
            Some(_) => {
                if state.probing {
                    false
                } else {
                    state.probing = true;
                    true
                }
            }
        }
    }

    pub fn record_success(&self) {
        let mut state = lock_recover(&self.state);
        state.consecutive_failures = 0;
        state.open_until = None;
        state.probing = false;
    }

    pub fn record_failure(&self) {
        let mut state = lock_recover(&self.state);
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        state.probing = false;
        if state.consecutive_failures >= self.threshold {
            state.open_until = Some(Instant::now() + self.cooldown);
            self.opens.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Is the breaker currently refusing operations?
    pub fn is_open(&self) -> bool {
        let state = lock_recover(&self.state);
        matches!(state.open_until, Some(until) if Instant::now() < until)
    }

    /// Times the breaker has transitioned closed → open.
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_recover_survives_a_poisoning_panic() {
        let m = Mutex::new(7u32);
        let before = lock_recoveries();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7, "data still readable");
        assert_eq!(lock_recoveries(), before + 1);
        *lock_recover(&m) = 8;
        assert_eq!(*lock_recover(&m), 8);
    }

    #[test]
    fn backoff_grows_exponentially_within_bounds() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(60),
        };
        let b1 = p.backoff(1, 1);
        let b3 = p.backoff(3, 1);
        // Attempt 1 jitters around 10ms: within [5ms, 15ms].
        assert!(b1 >= Duration::from_millis(5) && b1 <= Duration::from_millis(15));
        // Attempt 3 would be 40ms ±50%: within [20ms, 60ms] (cap 60ms ⇒
        // at most 90ms even with jitter — still ≤ 1.5 × cap).
        assert!(b3 >= Duration::from_millis(20));
        assert!(b3 <= Duration::from_millis(90));
        // Deterministic: same (attempt, salt) → same backoff.
        assert_eq!(p.backoff(2, 9), p.backoff(2, 9));
        assert_ne!(p.backoff(2, 9), p.backoff(2, 10), "salt de-synchronizes");
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_half_open() {
        let b = CircuitBreaker::new(3, Duration::from_millis(20));
        assert!(b.allow());
        b.record_failure();
        b.record_failure();
        assert!(b.allow(), "below threshold: still closed");
        b.record_failure();
        assert!(b.is_open());
        assert!(!b.allow(), "open: callers degrade");
        assert_eq!(b.opens(), 1);

        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow(), "cooldown over: one half-open probe");
        assert!(!b.allow(), "second caller waits for the probe");
        b.record_failure();
        assert!(!b.allow(), "probe failed: re-opened");
        assert_eq!(b.opens(), 2);

        std::thread::sleep(Duration::from_millis(25));
        assert!(b.allow());
        b.record_success();
        assert!(b.allow(), "probe succeeded: closed again");
        assert!(!b.is_open());
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let b = CircuitBreaker::new(2, Duration::from_secs(60));
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert!(b.allow(), "streak was reset; one failure is not two");
        assert_eq!(b.opens(), 0);
    }
}
