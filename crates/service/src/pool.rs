//! The bounded worker pool, re-exported from `xqr-parallel`.
//!
//! The pool started life here as the service's admission-control
//! machinery; the morsel-parallel join executor now reuses the same
//! implementation for intra-query work, so the code lives in
//! `xqr-parallel` (below the service in the crate DAG) and the service
//! re-exports it under its historical path. Everything — submission,
//! shedding with `err:XQRL0004`, the publish phase, shutdown semantics —
//! is unchanged; see `xqr_parallel::pool` for the implementation and
//! its tests.

pub use xqr_parallel::{PoolStats, WorkerPool};
