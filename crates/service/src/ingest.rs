//! Chunked-ingestion front-end: documents arrive as byte chunks over
//! many calls instead of one string.
//!
//! Two entry points, both on [`QueryService`]:
//!
//! * **Chunk sessions** ([`QueryService::open_chunk_session`]) publish a
//!   document at the standing-subscription set while its bytes are still
//!   arriving: each [`QueryService::feed_chunk`] advances the combined
//!   automaton incrementally, and
//!   [`QueryService::finish_chunk_session`] runs the same fallback and
//!   delivery tail as [`QueryService::publish`] — the chunked and
//!   whole-document paths produce identical reports, which the
//!   differential oracle enforces. Session ids are generation-checked
//!   (a stale id never touches a slot's current tenant), sessions carry
//!   the service's per-query budgets, idle sessions are reaped, and
//!   admission is bounded: past `max_chunk_sessions` live sessions,
//!   opens fail with `err:XQRL0004 Overloaded`.
//!
//! * **Stream queries** ([`QueryService::open_stream_query`]) run one
//!   query over a chunked document. Streamable plans run on a live
//!   bounded channel (`xqr-ingest`): a worker thread drives the token
//!   matcher while the caller feeds bytes, memory stays O(channel), and
//!   the producer parks when the evaluator falls behind (backpressure).
//!   Non-streamable plans buffer and evaluate at finish — same results,
//!   same error codes, just without the bounded-memory guarantee.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::resilience::lock_recover;
use crate::service::QueryService;
use xqr_ingest::IngestPipeline;
use xqr_pressure::{Category, Charge};
use xqr_runtime::{StreamMatcher, StreamStats};
use xqr_subscribe::{PublishReport, PublishSession};
use xqr_xdm::{Error, QueryGuard, Result};

/// Baseline ledger charge for a live chunk session or buffered stream
/// query (slot bookkeeping, lexer state); fed bytes grow it.
const SESSION_BASE_BYTES: u64 = 4096;
/// Estimated bytes per event slot in a stream query's bounded channel.
const CHANNEL_EVENT_BYTES: u64 = 64;

/// Generation-checked handle to a live chunk session. Stale ids (the
/// session finished, aborted, or was reaped, and the slot may have been
/// reused) fail deterministically with `err:XQRL0003` — they can never
/// feed another client's session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId {
    pub(crate) slot: u32,
    pub(crate) generation: u64,
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}g{}", self.slot, self.generation)
    }
}

struct SessionEntry {
    generation: u64,
    session: PublishSession,
    /// Session-wide budget: deadline from open, byte cap over the whole
    /// feed, cancellation.
    guard: QueryGuard,
    last_activity: Instant,
    /// Ledger charge for this session's buffered state; grows with every
    /// fed chunk and releases when the session ends, however it ends.
    charge: Charge,
}

/// Shared ingestion state: the fixed slot table (one mutex per slot, so
/// concurrent sessions never contend) and the counters behind the
/// `ingest:` stats section.
pub(crate) struct IngestState {
    slots: Box<[Mutex<Option<SessionEntry>>]>,
    next_generation: AtomicU64,
    idle_timeout: Duration,
    channel_capacity: usize,
    sessions_opened: AtomicU64,
    sessions_finished: AtomicU64,
    sessions_aborted: AtomicU64,
    sessions_reaped: AtomicU64,
    sessions_failed: AtomicU64,
    chunks_fed: AtomicU64,
    bytes_fed: AtomicU64,
    stream_queries: AtomicU64,
    /// High-water mark of any stream query's event channel — with
    /// backpressure working this never exceeds `channel_capacity`, no
    /// matter how large the document.
    channel_peak: AtomicU64,
}

/// Point-in-time copy of the ingest counters for [`crate::ServiceStats`].
pub(crate) struct IngestSnapshot {
    pub opened: u64,
    pub active: u64,
    pub finished: u64,
    pub aborted: u64,
    pub reaped: u64,
    pub failed: u64,
    pub chunks: u64,
    pub bytes: u64,
    pub stream_queries: u64,
    pub channel_capacity: u64,
    pub channel_peak: u64,
}

impl IngestState {
    pub(crate) fn new(
        max_sessions: usize,
        idle_timeout: Duration,
        channel_capacity: usize,
    ) -> Self {
        let slots = (0..max_sessions.max(1))
            .map(|_| Mutex::new(None))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        IngestState {
            slots,
            next_generation: AtomicU64::new(0),
            idle_timeout,
            channel_capacity: channel_capacity.max(1),
            sessions_opened: AtomicU64::new(0),
            sessions_finished: AtomicU64::new(0),
            sessions_aborted: AtomicU64::new(0),
            sessions_reaped: AtomicU64::new(0),
            sessions_failed: AtomicU64::new(0),
            chunks_fed: AtomicU64::new(0),
            bytes_fed: AtomicU64::new(0),
            stream_queries: AtomicU64::new(0),
            channel_peak: AtomicU64::new(0),
        }
    }

    fn stale(id: SessionId) -> Error {
        Error::cancelled(format!(
            "ingest session {id} is unknown, finished, or was reaped"
        ))
    }

    fn slot(&self, id: SessionId) -> Result<&Mutex<Option<SessionEntry>>> {
        self.slots
            .get(id.slot as usize)
            .ok_or_else(|| Self::stale(id))
    }

    fn fold_gauges(&self, gauges: &xqr_ingest::ChannelGauges) {
        self.channel_peak
            .fetch_max(gauges.peak() as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> IngestSnapshot {
        let active = self
            .slots
            .iter()
            .filter(|s| lock_recover(s).is_some())
            .count() as u64;
        IngestSnapshot {
            opened: self.sessions_opened.load(Ordering::Relaxed),
            active,
            finished: self.sessions_finished.load(Ordering::Relaxed),
            aborted: self.sessions_aborted.load(Ordering::Relaxed),
            reaped: self.sessions_reaped.load(Ordering::Relaxed),
            failed: self.sessions_failed.load(Ordering::Relaxed),
            chunks: self.chunks_fed.load(Ordering::Relaxed),
            bytes: self.bytes_fed.load(Ordering::Relaxed),
            stream_queries: self.stream_queries.load(Ordering::Relaxed),
            channel_capacity: self.channel_capacity as u64,
            channel_peak: self.channel_peak.load(Ordering::Relaxed),
        }
    }
}

impl QueryService {
    /// Open a chunked publish session for a document named `name`.
    /// Bytes then arrive via [`QueryService::feed_chunk`] — split at any
    /// boundary — and [`QueryService::finish_chunk_session`] delivers to
    /// every standing subscription exactly as [`QueryService::publish`]
    /// would have.
    ///
    /// Admission is bounded: when every slot is live (idle sessions are
    /// reaped first), this fails with `err:XQRL0004 Overloaded`. The
    /// session runs under [`crate::ServiceConfig::per_query_limits`]:
    /// the deadline clock starts now, and document-byte budgets cover
    /// the whole feed.
    pub fn open_chunk_session(&self, name: &str) -> Result<SessionId> {
        self.check_red("chunk session")?;
        let st = self.ingest_state();
        let mut reaped = false;
        loop {
            for (i, slot) in st.slots.iter().enumerate() {
                let mut entry = lock_recover(slot);
                if entry.is_none() {
                    // Ceiling-checked: a session that cannot even cover
                    // its base footprint is refused outright (and this
                    // is the `pressure.charge` faultpoint the chaos
                    // suite injects through).
                    let charge = Charge::try_new(
                        Arc::clone(self.ledger()),
                        Category::ChunkSessions,
                        SESSION_BASE_BYTES,
                    )?;
                    let generation = st.next_generation.fetch_add(1, Ordering::Relaxed) + 1;
                    let session =
                        self.subs_registry()
                            .begin_publish(self.engine(), name, self.limits());
                    *entry = Some(SessionEntry {
                        generation,
                        session,
                        guard: QueryGuard::new(self.limits()),
                        last_activity: Instant::now(),
                        charge,
                    });
                    st.sessions_opened.fetch_add(1, Ordering::Relaxed);
                    return Ok(SessionId {
                        slot: i as u32,
                        generation,
                    });
                }
            }
            if reaped {
                return Err(Error::overloaded(format!(
                    "too many live ingest sessions ({}); finish, abort, or let one idle out",
                    st.slots.len()
                )));
            }
            self.reap_idle_sessions();
            reaped = true;
        }
    }

    /// Feed one chunk into a live session. Streamable subscriptions
    /// advance incrementally (see
    /// [`QueryService::chunk_session_matches`]). Any failure — a lexing
    /// error, a tripped budget, an injected fault — removes the session
    /// and returns its stable coded error; later calls with the same id
    /// report the session as gone.
    pub fn feed_chunk(&self, id: SessionId, chunk: &[u8]) -> Result<()> {
        let st = self.ingest_state();
        let slot = st.slot(id)?;
        let mut guard = lock_recover(slot);
        // The entry lives *outside* the slot while the chunk is fed: if
        // feeding fails — or panics past the containment below — the
        // session drops with this frame and the slot is already free,
        // so a fault can never leak a wedged session.
        let mut e = match guard.take() {
            Some(e) if e.generation == id.generation => e,
            other => {
                *guard = other;
                return Err(IngestState::stale(id));
            }
        };
        match feed_entry(&mut e, chunk) {
            Ok(()) => {
                e.last_activity = Instant::now();
                *guard = Some(e);
                st.chunks_fed.fetch_add(1, Ordering::Relaxed);
                st.bytes_fed
                    .fetch_add(chunk.len() as u64, Ordering::Relaxed);
                Ok(())
            }
            Err(err) => {
                // Cleanup on failure: the slot frees immediately, and the
                // session's buffered state drops without ever touching
                // the store or catalog.
                st.sessions_failed.fetch_add(1, Ordering::Relaxed);
                Err(err)
            }
        }
    }

    /// Matches delivered to streamable subscriptions so far — observable
    /// while bytes are still arriving, which is the point of chunked
    /// ingestion.
    pub fn chunk_session_matches(&self, id: SessionId) -> Result<u64> {
        let st = self.ingest_state();
        let slot = st.slot(id)?;
        let entry = lock_recover(slot);
        match entry.as_ref() {
            Some(e) if e.generation == id.generation => Ok(e.session.matches_so_far()),
            _ => Err(IngestState::stale(id)),
        }
    }

    /// End of input: resolve the tail, run fallback evaluations over the
    /// materialized document (routed through the catalog like
    /// [`QueryService::publish`] — transient, never retained), deliver
    /// every outcome, and report. The session is gone afterwards, on
    /// success and on failure alike.
    pub fn finish_chunk_session(&self, id: SessionId) -> Result<PublishReport> {
        let st = self.ingest_state();
        let slot = st.slot(id)?;
        let mut guard = lock_recover(slot);
        let entry = match guard.take() {
            Some(e) if e.generation == id.generation => e,
            other => {
                *guard = other;
                return Err(IngestState::stale(id));
            }
        };
        // The slot is free from here on; the (possibly slow) fallback
        // tail runs outside every lock.
        drop(guard);
        match finish_entry(self, entry) {
            Ok(report) => {
                self.record_publish_stream(&report.stats);
                st.sessions_finished.fetch_add(1, Ordering::Relaxed);
                Ok(report)
            }
            Err(e) => {
                st.sessions_failed.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Drop a live session without delivering anything. `false` for
    /// stale ids — never affects the slot's current tenant.
    pub fn abort_chunk_session(&self, id: SessionId) -> bool {
        let st = self.ingest_state();
        let Ok(slot) = st.slot(id) else { return false };
        let mut entry = lock_recover(slot);
        match entry.as_ref() {
            Some(e) if e.generation == id.generation => {
                *entry = None;
                st.sessions_aborted.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Remove sessions idle past the configured timeout (abandoned
    /// clients must not pin slots forever). Runs automatically when an
    /// open finds every slot taken; callable directly from an
    /// embedder's housekeeping loop. Returns how many were reaped.
    pub fn reap_idle_sessions(&self) -> usize {
        let st = self.ingest_state();
        let mut reaped = 0;
        for slot in st.slots.iter() {
            let mut entry = lock_recover(slot);
            if let Some(e) = entry.as_ref() {
                if e.last_activity.elapsed() >= st.idle_timeout {
                    *entry = None;
                    reaped += 1;
                }
            }
        }
        st.sessions_reaped
            .fetch_add(reaped as u64, Ordering::Relaxed);
        reaped as usize
    }

    /// Live chunk sessions right now.
    pub fn chunk_sessions(&self) -> usize {
        self.ingest_state()
            .slots
            .iter()
            .filter(|s| lock_recover(s).is_some())
            .count()
    }

    /// Run one query over a document that arrives as chunks. Streamable
    /// plans evaluate on a live bounded channel — first results exist
    /// before the last byte arrives, and memory stays O(channel
    /// capacity); everything else buffers and evaluates at
    /// [`StreamQuery::finish`] with identical results and error codes.
    pub fn open_stream_query(&self, query: &str) -> Result<StreamQuery<'_>> {
        self.check_red("stream query")?;
        let st = self.ingest_state();
        let plan = self.acquire_plan_for_ingest(query)?;
        let inner = match plan.stream_pattern() {
            Some(p) if plan.streaming_is_exact() => {
                let pattern = p.clone();
                let guard = QueryGuard::new(self.limits());
                let pipe_guard = (!guard.is_unlimited()).then(|| guard.clone());
                let (pipeline, rx) = xqr_ingest::pipeline(
                    self.engine().names().clone(),
                    st.channel_capacity,
                    pipe_guard.clone(),
                );
                // A dedicated thread, not a pool worker: a drip-fed
                // document can straddle seconds, and parking a pool slot
                // on it would starve interactive queries.
                let worker = std::thread::spawn(move || {
                    let mut matcher = StreamMatcher::new(rx, pattern);
                    if let Some(g) = pipe_guard {
                        matcher = matcher.with_guard(g);
                    }
                    xqr_core::contain_panic(|| {
                        let mut out = String::new();
                        while let Some(m) = matcher.next_match()? {
                            out.push_str(&m);
                        }
                        Ok((out, matcher.stats))
                    })
                });
                StreamQueryInner::Streamed {
                    pipeline: Box::new(pipeline),
                    worker,
                }
            }
            _ => StreamQueryInner::Buffered {
                query: query.to_string(),
                buf: Vec::new(),
            },
        };
        st.stream_queries.fetch_add(1, Ordering::Relaxed);
        // Streamed mode's footprint is the bounded channel; buffered
        // mode starts at the baseline and grows with every fed chunk.
        let charge = Charge::new(
            Arc::clone(self.ledger()),
            Category::IngestChannels,
            match &inner {
                StreamQueryInner::Streamed { .. } => {
                    st.channel_capacity as u64 * CHANNEL_EVENT_BYTES
                }
                StreamQueryInner::Buffered { .. } => SESSION_BASE_BYTES,
            },
        );
        Ok(StreamQuery {
            service: self,
            inner,
            charge,
        })
    }
}

fn feed_entry(e: &mut SessionEntry, chunk: &[u8]) -> Result<()> {
    xqr_faults::faultpoint!("ingest.chunk");
    // Deadline/cancellation, then the byte budget over the whole feed.
    e.guard.check_startup()?;
    e.guard
        .check_document_bytes(e.session.bytes_fed() + chunk.len() as u64)?;
    e.session.feed(chunk)?;
    // Ceiling-checked growth: a feed that would blow the hard ceiling
    // fails the session with `err:XQRL0004` instead of charging past it.
    e.charge.try_grow(chunk.len() as u64)?;
    Ok(())
}

fn finish_entry(service: &QueryService, entry: SessionEntry) -> Result<PublishReport> {
    xqr_faults::faultpoint!("ingest.flush");
    entry.guard.check_startup()?;
    entry
        .session
        .finish(service.subs_registry(), service.engine(), |xml| {
            service
                .catalog()
                .load_transient_indexed(xml)
                .map(|id| (id, true))
        })
}

enum StreamQueryInner {
    Streamed {
        // Boxed: the pipeline embeds the tokenizer's lexer state and
        // would otherwise dwarf the Buffered variant.
        pipeline: Box<IngestPipeline>,
        worker: JoinHandle<Result<(String, StreamStats)>>,
    },
    Buffered {
        query: String,
        buf: Vec<u8>,
    },
}

/// An in-flight chunked query from [`QueryService::open_stream_query`].
/// Feed bytes, then [`StreamQuery::finish`] for the serialized result.
pub struct StreamQuery<'s> {
    service: &'s QueryService,
    inner: StreamQueryInner,
    /// Ledger charge for this query's channel or buffer; released when
    /// the query finishes or is dropped.
    charge: Charge,
}

impl StreamQuery<'_> {
    /// Feed one chunk. In streamed mode this blocks only while the
    /// bounded channel is full — backpressure, not buffering.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<()> {
        match &mut self.inner {
            StreamQueryInner::Streamed { pipeline, .. } => pipeline.feed(chunk),
            StreamQueryInner::Buffered { buf, .. } => {
                buf.extend_from_slice(chunk);
                self.charge.grow(chunk.len() as u64);
                Ok(())
            }
        }
    }

    /// Is this query evaluating while bytes arrive (bounded memory), or
    /// buffering for a whole-document evaluation at finish?
    pub fn is_streamed(&self) -> bool {
        matches!(self.inner, StreamQueryInner::Streamed { .. })
    }

    /// The channel's high-water mark so far (streamed mode; 0 buffered).
    pub fn channel_peak(&self) -> usize {
        match &self.inner {
            StreamQueryInner::Streamed { pipeline, .. } => pipeline.gauges().peak(),
            StreamQueryInner::Buffered { .. } => 0,
        }
    }

    /// End of input: complete the evaluation and return the serialized
    /// result. The evaluator's own error (a budget trip, a match-time
    /// failure) wins over the producer's view of it (a dropped channel).
    pub fn finish(self) -> Result<String> {
        let st = self.service.ingest_state();
        match self.inner {
            StreamQueryInner::Streamed {
                mut pipeline,
                worker,
            } => {
                let fed = pipeline.finish();
                st.fold_gauges(&pipeline.gauges());
                let outcome = match worker.join() {
                    Ok(Ok((out, stats))) => {
                        fed?;
                        self.service.record_publish_stream(&stats);
                        Ok(out)
                    }
                    Ok(Err(e)) => Err(e),
                    Err(_) => Err(Error::internal("stream-query worker panicked")),
                };
                self.service.note_stream_query_outcome(&outcome);
                outcome
            }
            StreamQueryInner::Buffered { query, buf } => {
                let xml = String::from_utf8(buf)
                    .map_err(|_| Error::syntax("invalid UTF-8 in document"))?;
                self.service.run_on_xml(&query, &xml)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use xqr_xdm::{ErrorCode, Limits};

    fn service() -> QueryService {
        QueryService::new(ServiceConfig::default())
    }

    #[test]
    fn chunked_publish_equals_whole_document_publish() {
        let svc = service();
        let streamed = svc.subscribe("/bib/book/title").unwrap();
        let fallback = svc.subscribe("count(//book)").unwrap();
        let xml = "<bib><book><title>a</title></book><book><title>b</title></book></bib>";
        let whole = svc.publish("doc", xml).unwrap();

        for chunk in [1usize, 3, 16, xml.len()] {
            let id = svc.open_chunk_session("doc").unwrap();
            for c in xml.as_bytes().chunks(chunk) {
                svc.feed_chunk(id, c).unwrap();
            }
            let report = svc.finish_chunk_session(id).unwrap();
            assert_eq!(
                report.result_for(streamed),
                whole.result_for(streamed),
                "chunk {chunk}"
            );
            assert_eq!(report.result_for(fallback), whole.result_for(fallback));
            assert_eq!(report.stats.matches, whole.stats.matches);
            // Transient either way: nothing lingers in the store.
            assert_eq!(svc.engine().store().doc_count(), 0);
        }
        let s = svc.stats();
        assert_eq!(s.ingest_sessions_finished, 4);
        assert_eq!(s.ingest_sessions_active, 0);
        assert!(s.ingest_bytes >= 4 * xml.len() as u64);
    }

    #[test]
    fn matches_surface_while_bytes_still_arrive() {
        let svc = service();
        svc.subscribe("/a/b").unwrap();
        let id = svc.open_chunk_session("live").unwrap();
        svc.feed_chunk(id, b"<a><b>first</b>").unwrap();
        assert_eq!(svc.chunk_session_matches(id).unwrap(), 1);
        svc.feed_chunk(id, b"<b>second</b></a>").unwrap();
        assert_eq!(svc.chunk_session_matches(id).unwrap(), 2);
        svc.finish_chunk_session(id).unwrap();
    }

    #[test]
    fn stale_session_ids_never_touch_a_reused_slot() {
        let svc = QueryService::new(ServiceConfig {
            max_chunk_sessions: 1,
            ..Default::default()
        });
        let first = svc.open_chunk_session("one").unwrap();
        assert!(svc.abort_chunk_session(first));
        let second = svc.open_chunk_session("two").unwrap();
        assert_eq!(first.slot, second.slot, "slot is reused");
        // The stale id fails deterministically and leaves the tenant alone.
        let err = svc.feed_chunk(first, b"<x/>").unwrap_err();
        assert_eq!(err.code, ErrorCode::Cancelled);
        assert!(!svc.abort_chunk_session(first));
        assert!(svc.finish_chunk_session(first).is_err());
        svc.feed_chunk(second, b"<x/>").unwrap();
        svc.finish_chunk_session(second).unwrap();
    }

    #[test]
    fn admission_is_bounded_and_idle_sessions_are_reaped() {
        let svc = QueryService::new(ServiceConfig {
            max_chunk_sessions: 2,
            chunk_session_idle: Duration::from_millis(0),
            ..Default::default()
        });
        let a = svc.open_chunk_session("a").unwrap();
        let _b = svc.open_chunk_session("b").unwrap();
        assert_eq!(svc.chunk_sessions(), 2);
        // Full table, but both sessions are idle past the (zero) timeout:
        // the open reaps and succeeds.
        let c = svc.open_chunk_session("c").unwrap();
        assert!(svc.feed_chunk(a, b"<x/>").is_err(), "a was reaped");
        let svc2 = QueryService::new(ServiceConfig {
            max_chunk_sessions: 1,
            ..Default::default()
        });
        let _live = svc2.open_chunk_session("live").unwrap();
        let err = svc2.open_chunk_session("more").unwrap_err();
        assert_eq!(err.code, ErrorCode::Overloaded);
        let _ = c;
        assert!(svc.stats().ingest_sessions_reaped >= 2);
    }

    #[test]
    fn feed_failures_clean_the_session_up() {
        let svc = service();
        svc.subscribe("/a/b").unwrap();
        let id = svc.open_chunk_session("bad").unwrap();
        svc.feed_chunk(id, b"<a><b>x</b>").unwrap();
        let err = svc.feed_chunk(id, b"</wrong>").unwrap_err();
        assert_eq!(err.code, ErrorCode::Syntax);
        // Session is gone; nothing leaked into the store.
        assert_eq!(svc.chunk_sessions(), 0);
        assert_eq!(svc.engine().store().doc_count(), 0);
        assert!(svc.feed_chunk(id, b"more").is_err());
        assert_eq!(svc.stats().ingest_sessions_failed, 1);
    }

    #[test]
    fn session_byte_budget_trips_across_chunks() {
        let svc = QueryService::new(ServiceConfig {
            per_query_limits: Limits::unlimited().with_max_document_bytes(10),
            ..Default::default()
        });
        let id = svc.open_chunk_session("budget").unwrap();
        svc.feed_chunk(id, b"<a>12").unwrap();
        let err = svc.feed_chunk(id, b"3456789</a>").unwrap_err();
        assert_eq!(err.code, ErrorCode::Limit);
        assert_eq!(svc.chunk_sessions(), 0);
    }

    #[test]
    fn stream_query_evaluates_over_a_live_channel() {
        let svc = service();
        let mut q = svc.open_stream_query("/order/date").unwrap();
        assert!(q.is_streamed());
        let xml = r#"<order><date>2003-08-19</date><qty>2</qty></order>"#;
        for c in xml.as_bytes().chunks(5) {
            q.feed(c).unwrap();
        }
        assert_eq!(q.finish().unwrap(), "<date>2003-08-19</date>");
        let s = svc.stats();
        assert_eq!(s.ingest_stream_queries, 1);
        assert!(s.ingest_channel_peak >= 1);
        assert!(s.ingest_channel_peak <= s.ingest_channel_capacity);
        assert!(s.stream_tokens_seen > 0);
    }

    #[test]
    fn non_streamable_queries_buffer_with_identical_results() {
        let svc = service();
        let xml = "<bib><book/><book/></bib>";
        let mut q = svc.open_stream_query("count(//book)").unwrap();
        assert!(!q.is_streamed());
        for c in xml.as_bytes().chunks(3) {
            q.feed(c).unwrap();
        }
        assert_eq!(
            q.finish().unwrap(),
            svc.run_on_xml("count(//book)", xml).unwrap()
        );
    }

    #[test]
    fn stream_query_reports_lexer_errors_like_the_whole_document_path() {
        let svc = service();
        let mut q = svc.open_stream_query("/a/b").unwrap();
        q.feed(b"<a><b>x</b>").unwrap();
        let fed = q.feed(b"</wrong>");
        // The producer may or may not see the error first depending on
        // scheduling; finish must surface it either way.
        let err = match fed {
            Err(e) => e,
            Ok(()) => q.finish().unwrap_err(),
        };
        assert_eq!(err.code, ErrorCode::Syntax);
    }

    #[test]
    fn bounded_channel_holds_peak_at_capacity_for_large_documents() {
        let svc = QueryService::new(ServiceConfig {
            ingest_channel_capacity: 8,
            ..Default::default()
        });
        // A document orders of magnitude larger than the channel: with
        // backpressure the peak occupancy still never exceeds 8 events.
        let mut xml = String::from("<log>");
        for i in 0..20_000 {
            xml.push_str(&format!("<e id=\"{i}\">payload {i}</e>"));
        }
        xml.push_str("<hit/></log>");
        let mut q = svc.open_stream_query("/log/hit").unwrap();
        for c in xml.as_bytes().chunks(4096) {
            q.feed(c).unwrap();
        }
        assert!(q.channel_peak() <= 8);
        assert_eq!(q.finish().unwrap(), "<hit/>");
        let s = svc.stats();
        assert!(
            s.ingest_channel_peak <= 8,
            "backpressure must bound the channel: {s}"
        );
    }
}
