//! # xqr-service — an embeddable, thread-safe query service.
//!
//! The paper's XQRL processor was productized as a server that compiles a
//! query once and executes it many times; this crate is that service
//! layer for the `xqr` engine. It wraps [`xqr_core::Engine`] with the
//! three pieces that separate a query evaluator from a system:
//!
//! * a **sharded LRU plan cache** ([`PlanCache`]) keyed by
//!   `(query text, engine-options fingerprint)` so repeated queries skip
//!   parse/normalize/typecheck/optimize entirely;
//! * a **document catalog** ([`DocumentCatalog`]) that owns named
//!   documents under a total-bytes budget with LRU eviction, built on
//!   `Store::remove_document`;
//! * **admission control** ([`WorkerPool`]): a bounded run queue in front
//!   of a fixed set of workers — when both the workers and the queue are
//!   full, new queries are rejected with the stable error
//!   `err:XQRL0004 Overloaded` instead of queueing without bound;
//! * **standing queries** (`xqr-subscribe`): register subscriptions with
//!   [`QueryService::subscribe`], push documents at the whole set with
//!   [`QueryService::publish`] — streamable subscriptions share one
//!   combined-automaton pass per document, everything else falls back to
//!   one-shot evaluation over a single shared materialized copy.
//!
//! [`QueryService`] composes the three and surfaces a [`ServiceStats`]
//! snapshot (cache hit rate, p50/p99 latency, active/queued gauges) both
//! as a struct and as `explain`-style text.
//!
//! ```
//! use xqr_service::{QueryService, ServiceConfig};
//!
//! let service = QueryService::new(ServiceConfig::default());
//! service.load_document("bib.xml", "<bib><book/><book/></bib>").unwrap();
//! assert_eq!(service.run(r#"count(doc("bib.xml")//book)"#).unwrap(), "2");
//! assert_eq!(service.run(r#"count(doc("bib.xml")//book)"#).unwrap(), "2");
//! assert!(service.stats().plan_hits >= 1);
//! ```

pub mod catalog;
pub mod ingest;
pub mod plan_cache;
pub mod pool;
pub mod resilience;
pub mod service;

pub use catalog::{CatalogStats, DocumentCatalog};
pub use ingest::{SessionId, StreamQuery};
pub use plan_cache::{PlanCache, PlanCacheStats};
pub use pool::{PoolStats, WorkerPool};
pub use resilience::{CircuitBreaker, Degraded, RetryPolicy};
pub use service::{QueryService, ServiceConfig, ServiceStats};
pub use xqr_subscribe::{
    CollectingSink, Delivery, PublishReport, SubId, SubscribeStats, SubscriptionSink,
};
