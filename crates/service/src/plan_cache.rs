//! Sharded LRU cache of compiled query plans.
//!
//! Compilation (parse → normalize → typecheck → optimize) dominates the
//! cost of short queries, and a service sees the same query texts over
//! and over — the paper's production deployment made prepared plans a
//! first-class citizen for exactly this reason. The cache is keyed by
//! `(query text, engine-options fingerprint)`
//! ([`xqr_core::EngineOptions::fingerprint`]): a plan is only reused
//! under options that would have compiled it identically.
//!
//! Sharding: the key hash picks one of N independently locked shards, so
//! concurrent lookups from a worker pool contend only 1/N of the time.
//! Each shard is a small `HashMap` with last-used ticks; eviction scans
//! the shard for the oldest tick, which is O(shard size) but shards are
//! bounded at `capacity / shards` entries — tens, not thousands.
//! Compilation happens *outside* the shard lock: two threads racing on
//! the same missing key may both compile, but neither ever blocks the
//! shard on a slow compile.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::resilience::lock_recover;
use xqr_core::{Engine, PreparedQuery};
use xqr_pressure::{Category, MemoryLedger};
use xqr_xdm::Result;

/// Coarse per-plan overhead estimate: the compiled operator tree plus
/// map/entry bookkeeping. Plans don't expose exact sizes; the ledger
/// needs a stable order-of-magnitude signal, not an audit.
const PLAN_OVERHEAD_BYTES: u64 = 1024;

/// Cache counters, snapshotted via [`PlanCache::stats`].
///
/// `lookups` is counted independently of `hits`/`misses` so the
/// invariant `hits + misses == lookups` is a real consistency check,
/// not an identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    pub lookups: u64,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Live entries across all shards.
    pub entries: u64,
}

impl PlanCacheStats {
    /// Fraction of lookups served from cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

struct Entry {
    plan: Arc<PreparedQuery>,
    last_used: u64,
    /// Estimated footprint charged to the ledger; released on removal.
    bytes: u64,
}

type Key = (Arc<str>, u64);

struct Shard {
    map: HashMap<Key, Entry>,
}

/// A sharded, capacity-bounded LRU cache of compiled plans.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    /// Max entries per shard (total capacity / shard count, at least 1).
    shard_capacity: usize,
    /// Logical clock for LRU ordering, shared by all shards.
    tick: AtomicU64,
    lookups: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Optional memory ledger mirroring estimated plan bytes under
    /// [`Category::PlanCache`].
    ledger: OnceLock<Arc<MemoryLedger>>,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans across `shards` shards.
    /// Both are clamped to at least 1.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let shard_capacity = capacity.max(1).div_ceil(shards);
        PlanCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                    })
                })
                .collect(),
            shard_capacity,
            tick: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            ledger: OnceLock::new(),
        }
    }

    /// Mirror estimated plan bytes into `ledger` under
    /// [`Category::PlanCache`]. First attach wins; entries inserted
    /// before the attach are not retro-charged (the cache usually
    /// attaches empty, at service construction).
    pub fn attach_ledger(&self, ledger: Arc<MemoryLedger>) {
        let _ = self.ledger.set(ledger);
    }

    /// Estimated footprint of one cached plan for `query`.
    fn entry_bytes(query: &str) -> u64 {
        query.len() as u64 + PLAN_OVERHEAD_BYTES
    }

    fn ledger_charge(&self, bytes: u64) {
        if let Some(l) = self.ledger.get() {
            l.charge(Category::PlanCache, bytes);
        }
    }

    fn ledger_release(&self, bytes: u64) {
        if let Some(l) = self.ledger.get() {
            l.release(Category::PlanCache, bytes);
        }
    }

    fn shard_of(&self, key: &Key) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up the plan for `(query, fingerprint)`, compiling with
    /// `engine` on a miss. Compilation errors are *not* cached — a
    /// mistyped query costs a compile each time, which keeps the cache
    /// free of dead entries.
    pub fn get_or_compile(&self, engine: &Engine, query: &str) -> Result<Arc<PreparedQuery>> {
        let key: Key = (Arc::from(query), engine.options().fingerprint());
        self.lookups.fetch_add(1, Ordering::Relaxed);
        {
            let mut shard = lock_recover(self.shard_of(&key));
            if let Some(entry) = shard.map.get_mut(&key) {
                entry.last_used = self.next_tick();
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(entry.plan.clone());
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Compile outside the lock; a concurrent racer on the same key
        // may also compile, and whichever inserts last wins. Both get a
        // correct plan either way.
        let plan = engine.compile_shared(query)?;
        // The insert is where a real cache subsystem would touch shared
        // storage; an injected fault here fails the lookup, and the
        // service degrades to compiling without caching.
        xqr_faults::faultpoint!("plans.insert");
        let bytes = Self::entry_bytes(query);
        let mut freed = 0u64;
        let mut shard = lock_recover(self.shard_of(&key));
        while shard.map.len() >= self.shard_capacity && !shard.map.contains_key(&key) {
            let oldest = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("shard at capacity is non-empty");
            if let Some(victim) = shard.map.remove(&oldest) {
                freed += victim.bytes;
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let tick = self.next_tick();
        let replaced = shard.map.insert(
            key,
            Entry {
                plan: plan.clone(),
                last_used: tick,
                bytes,
            },
        );
        drop(shard);
        freed += replaced.map_or(0, |e| e.bytes);
        self.ledger_charge(bytes);
        self.ledger_release(freed);
        Ok(plan)
    }

    /// Evict least-recently-used plans until at most `max_entries`
    /// remain — the brownout ladder's plan-shedding rung. The configured
    /// capacity is untouched, so the cache regrows once pressure clears.
    /// Returns the number of plans shed.
    pub fn shrink_to(&self, max_entries: usize) -> u64 {
        let per_shard = max_entries.div_ceil(self.shards.len());
        let mut shed = 0u64;
        let mut freed = 0u64;
        for shard in &self.shards {
            let mut shard = lock_recover(shard);
            while shard.map.len() > per_shard {
                let oldest = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty while over target");
                if let Some(victim) = shard.map.remove(&oldest) {
                    freed += victim.bytes;
                }
                shed += 1;
            }
        }
        self.evictions.fetch_add(shed, Ordering::Relaxed);
        self.ledger_release(freed);
        shed
    }

    /// Look up a cached plan without compiling on a miss — the
    /// `Degraded::CacheOnly` read path when the insert side of the cache
    /// is unhealthy. Hits refresh LRU position and count as lookups.
    pub fn get_cached(&self, engine: &Engine, query: &str) -> Option<Arc<PreparedQuery>> {
        let key: Key = (Arc::from(query), engine.options().fingerprint());
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let mut shard = lock_recover(self.shard_of(&key));
        match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = self.next_tick();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.plan.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Drop every cached plan (counters are preserved).
    pub fn clear(&self) {
        let mut freed = 0u64;
        for shard in &self.shards {
            let mut shard = lock_recover(shard);
            freed += shard.map.values().map(|e| e.bytes).sum::<u64>();
            shard.map.clear();
        }
        self.ledger_release(freed);
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_queries_hit_the_cache() {
        let engine = Engine::new();
        let cache = PlanCache::new(64, 4);
        for _ in 0..10 {
            cache.get_or_compile(&engine, "1 + 1").unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.lookups, 10);
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 9);
        assert_eq!(s.hits + s.misses, s.lookups);
        assert!(s.hit_rate() > 0.8);
    }

    #[test]
    fn distinct_queries_are_distinct_entries() {
        let engine = Engine::new();
        let cache = PlanCache::new(64, 4);
        cache.get_or_compile(&engine, "1").unwrap();
        cache.get_or_compile(&engine, "2").unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn different_options_miss_on_the_same_text() {
        use xqr_core::EngineOptions;
        let a = Engine::new();
        let b = Engine::with_options(EngineOptions::unoptimized());
        assert_ne!(a.options().fingerprint(), b.options().fingerprint());
        let cache = PlanCache::new(64, 4);
        cache.get_or_compile(&a, "//x").unwrap();
        cache.get_or_compile(&b, "//x").unwrap();
        assert_eq!(
            cache.stats().misses,
            2,
            "same text, different options: no reuse"
        );
    }

    #[test]
    fn capacity_bound_evicts_lru() {
        let engine = Engine::new();
        // One shard so the LRU order is total.
        let cache = PlanCache::new(2, 1);
        cache.get_or_compile(&engine, "1").unwrap();
        cache.get_or_compile(&engine, "2").unwrap();
        cache.get_or_compile(&engine, "1").unwrap(); // refresh "1"
        cache.get_or_compile(&engine, "3").unwrap(); // evicts "2"
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let before = cache.stats().hits;
        cache.get_or_compile(&engine, "1").unwrap();
        assert_eq!(cache.stats().hits, before + 1, "\"1\" survived eviction");
        cache.get_or_compile(&engine, "2").unwrap();
        assert_eq!(cache.stats().misses, 4, "\"2\" was the LRU victim");
    }

    #[test]
    fn ledger_tracks_inserts_evictions_and_shrink() {
        let engine = Engine::new();
        let ledger = Arc::new(MemoryLedger::unbounded());
        let cache = PlanCache::new(8, 2);
        cache.attach_ledger(Arc::clone(&ledger));

        for i in 0..8 {
            cache
                .get_or_compile(&engine, &format!("{i} + {i}"))
                .unwrap();
        }
        // Shard skew may evict during the fill; the live charge matches
        // whatever actually stayed resident.
        let live = cache.len() as u64;
        let full = ledger.snapshot().category(Category::PlanCache).current;
        assert!(full >= live * PLAN_OVERHEAD_BYTES, "{full} for {live}");

        let shed = cache.shrink_to(2);
        assert!(shed >= live - 2, "shed {shed} of {live}");
        assert!(cache.len() <= 2);
        let after = ledger.snapshot().category(Category::PlanCache).current;
        assert!(after < full, "shrink released bytes: {after} vs {full}");
        assert!(cache.stats().evictions >= shed);

        cache.clear();
        assert_eq!(
            ledger.snapshot().category(Category::PlanCache).current,
            0,
            "clear releases everything"
        );
        // The cache regrows after a shrink — capacity was untouched.
        cache.get_or_compile(&engine, "1 + 1").unwrap();
        assert_eq!(cache.len(), 1);
        assert!(ledger.snapshot().category(Category::PlanCache).current > 0);
    }

    #[test]
    fn eviction_churn_keeps_ledger_balanced() {
        let engine = Engine::new();
        let ledger = Arc::new(MemoryLedger::unbounded());
        let cache = PlanCache::new(2, 1);
        cache.attach_ledger(Arc::clone(&ledger));
        for i in 0..20 {
            cache
                .get_or_compile(&engine, &format!("{} + 1", i % 7))
                .unwrap();
        }
        // Live charge equals the sum over live entries, not the churn.
        let live = ledger.snapshot().category(Category::PlanCache).current;
        assert!(
            live <= 2 * (PLAN_OVERHEAD_BYTES + 16),
            "charge bounded by capacity: {live}"
        );
        cache.clear();
        assert_eq!(ledger.total(), 0);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let engine = Engine::new();
        let cache = PlanCache::new(8, 1);
        assert!(cache.get_or_compile(&engine, "1 +").is_err());
        assert!(cache.get_or_compile(&engine, "1 +").is_err());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().misses, 2);
    }

    /// `hits + misses == lookups` must survive heavy eviction churn: a
    /// tiny cache, many more distinct queries than capacity, and
    /// concurrent threads racing compiles and evictions.
    #[test]
    fn stats_invariant_holds_under_eviction_pressure() {
        let engine = std::sync::Arc::new(Engine::new());
        let cache = std::sync::Arc::new(PlanCache::new(4, 2));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let engine = engine.clone();
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        // 32 distinct queries over capacity 4: almost
                        // every miss evicts something.
                        let q = format!("{} + {}", t % 4, i % 8);
                        cache.get_or_compile(&engine, &q).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.lookups, 800);
        assert_eq!(s.hits + s.misses, s.lookups);
        assert!(s.evictions > 0, "no eviction pressure: {s:?}");
        // Capacity is per shard: at most ceil(4 / 2) entries per shard.
        assert!(cache.len() <= 4, "over capacity: {}", cache.len());
        assert_eq!(s.entries, cache.len() as u64);
        // Evictions never exceed insertions (= misses that compiled).
        assert!(s.evictions <= s.misses, "{s:?}");
    }

    /// A worker that panics while holding a shard lock (injected faults
    /// do exactly this) must not turn the whole cache read-only: every
    /// later caller recovers the lock instead of propagating the panic.
    #[test]
    fn a_poisoned_shard_does_not_take_down_the_cache() {
        let engine = Engine::new();
        let cache = PlanCache::new(64, 4);
        cache.get_or_compile(&engine, "1 + 1").unwrap();
        let before = crate::resilience::lock_recoveries();
        // Poison every shard: whichever one "1 + 1" hashes into is
        // certainly covered.
        for shard in &cache.shards {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = shard.lock().unwrap();
                panic!("poison the shard");
            }));
            assert!(shard.is_poisoned());
        }
        // Reads, writes and stats all still work...
        cache.get_or_compile(&engine, "1 + 1").unwrap();
        cache.get_or_compile(&engine, "2 + 2").unwrap();
        assert!(cache.get_cached(&engine, "1 + 1").is_some());
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, s.lookups, "{s:?}");
        assert_eq!(s.entries, 2);
        // ...and the recoveries were counted for the operator.
        assert!(crate::resilience::lock_recoveries() >= before + 4);
    }

    #[test]
    fn concurrent_lookups_are_consistent() {
        let engine = std::sync::Arc::new(Engine::new());
        let cache = std::sync::Arc::new(PlanCache::new(16, 4));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let engine = engine.clone();
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let q = format!("{} + {}", t % 3, i % 5);
                        cache.get_or_compile(&engine, &q).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.lookups, 400);
        assert_eq!(s.hits + s.misses, s.lookups);
    }
}
