//! Overload-governance integration tests: the memory ledger's pressure
//! states driving the brownout ladder through the service facade, Red
//! admission sheds with stable coded errors, deadline-aware queue drops,
//! and the `dropped_expired + completed == admitted` accounting
//! invariant at the service level. The open-loop overload harness
//! (`xqr-harness --bin overload`) sweeps the same ground at 10×
//! capacity; these tests pin the individual contracts.

use std::time::Duration;

use xqr_pressure::{Category, PressureConfig, PressureState};
use xqr_service::{QueryService, ServiceConfig};
use xqr_xdm::{ErrorCode, Limits};

/// A service governed by a small ceiling so tests can push the ledger
/// through its states with explicit charges.
fn governed(ceiling: u64) -> QueryService {
    QueryService::new(ServiceConfig {
        pressure: PressureConfig::with_ceiling(ceiling),
        ..Default::default()
    })
}

#[test]
fn red_sheds_publishes_batches_and_sessions_with_coded_errors() {
    let svc = governed(10_000);
    svc.load_document("d.xml", "<d><x/></d>").unwrap();
    svc.subscribe("/d/x").unwrap();

    svc.ledger().charge(Category::QueryOutput, 9_500);
    assert_eq!(svc.ledger().state(), PressureState::Red);

    for err in [
        svc.publish("p", "<d/>").unwrap_err(),
        svc.publish_retained("p", "<d/>").unwrap_err(),
        svc.run_batch("d.xml", &["1"]).unwrap_err(),
        svc.open_chunk_session("s").unwrap_err(),
        svc.open_stream_query("/d/x").err().expect("shed"),
    ] {
        assert_eq!(err.code, ErrorCode::Overloaded, "{err}");
        assert!(err.is_retryable(), "pressure sheds are retryable: {err}");
        assert!(
            err.to_string().contains("memory pressure is red"),
            "diagnosable: {err}"
        );
    }
    assert!(svc.stats().pressure_sheds >= 5);

    // Load stops: the ledger walks back to Green and everything admits
    // again — brownout is a mode, not a ratchet.
    svc.ledger().release(Category::QueryOutput, 9_500);
    assert_eq!(svc.ledger().state(), PressureState::Green);
    svc.publish("p", "<d><x/></d>").unwrap();
    let id = svc.open_chunk_session("s").unwrap();
    svc.feed_chunk(id, b"<d/>").unwrap();
    svc.finish_chunk_session(id).unwrap();
    assert!(svc.run_batch("d.xml", &["1"]).is_ok());
}

#[test]
fn yellow_skips_index_builds_and_shrinks_the_plan_cache() {
    let svc = QueryService::new(ServiceConfig {
        plan_cache_capacity: 32,
        plan_cache_shards: 1,
        // Ceiling sized so the primed plan cache (~31 KB of estimated
        // charges) keeps the ledger Green, and the explicit charge below
        // lands it in Yellow — and keeps it there even after the shrink
        // rung releases plan bytes.
        pressure: PressureConfig::with_ceiling(100_000),
        ..Default::default()
    });
    // Prime the plan cache well past half capacity while Green.
    for i in 0..30 {
        svc.prepare(&format!("{i} + {i}")).unwrap();
    }
    assert!(svc.stats().plan_entries >= 30);
    assert_eq!(svc.ledger().state(), PressureState::Green);

    svc.ledger().charge(Category::QueryOutput, 55_000);
    assert_eq!(svc.ledger().state(), PressureState::Yellow);

    // Documents still load under Yellow — just without index builds.
    svc.load_document("y.xml", "<y><a/><a/></y>").unwrap();
    assert_eq!(svc.run(r#"count(doc("y.xml")//a)"#).unwrap(), "2");
    let s = svc.stats();
    assert!(s.pressure_no_index >= 1, "{s}");
    // The first submit after the transition shrank the cache to half
    // (plus the just-submitted query's own fresh entry).
    assert!(s.plan_entries <= 17, "plan cache shrank: {s}");
    assert_eq!(s.pressure_state, PressureState::Yellow);
    assert!(s.pressure_to_yellow >= 1);
    assert!(svc.stats_text().contains("pressure: state: yellow"));
    let plan_text = svc.explain("1 + 1").unwrap();
    assert!(plan_text.contains("pressure: yellow"), "{plan_text}");
    assert!(plan_text.contains("memory plans:"), "{plan_text}");

    svc.ledger().release(Category::QueryOutput, 55_000);
    assert_eq!(svc.stats().pressure_state, PressureState::Green);
}

#[test]
fn expired_deadlines_are_dropped_from_the_queue_not_executed() {
    // One worker, a deep queue, and a deadline shorter than the head
    // job: everything behind the head expires in the queue.
    let svc = QueryService::new(ServiceConfig {
        max_concurrent: 1,
        max_queued: 16,
        per_query_limits: Limits::unlimited().with_deadline(Duration::from_millis(40)),
        ..Default::default()
    });
    let slow = svc
        .submit("sum(1 to 40000000)", Default::default())
        .unwrap();
    let mut tickets = Vec::new();
    for _ in 0..8 {
        tickets.push(svc.submit("1 + 1", Default::default()).unwrap());
    }
    let mut dropped = 0;
    for t in tickets {
        match t.wait() {
            Err(e) if e.code == ErrorCode::Timeout => {
                assert!(
                    e.to_string().contains("never executed"),
                    "queue drops say so: {e}"
                );
                dropped += 1;
            }
            // A fast machine may still run early entries before the
            // deadline; the slow head may also time out mid-run.
            other => drop(other),
        }
    }
    let _ = slow.wait();
    let s = svc.stats();
    assert!(dropped >= 1, "at least one queued query expired: {s}");
    assert!(s.dropped_expired >= 1, "{s}");
    // The service-level accounting invariant, drained.
    assert_eq!(s.dropped_expired + s.latency_count, s.admitted, "{s}");
    assert_eq!(s.queue_wait_count, s.admitted, "every dequeue recorded");
}

#[test]
fn query_output_and_session_bytes_flow_through_the_ledger() {
    let svc = governed(1 << 30);
    // A chunk session's fed bytes are charged while it lives...
    let id = svc.open_chunk_session("s").unwrap();
    svc.feed_chunk(id, b"<d>payload payload payload</d>")
        .unwrap();
    let live = svc.ledger().snapshot();
    assert!(
        live.category(Category::ChunkSessions).current > 0,
        "{live:?}"
    );
    svc.finish_chunk_session(id).unwrap();
    // ...and released when it ends.
    let after = svc.ledger().snapshot();
    assert_eq!(after.category(Category::ChunkSessions).current, 0);
    assert!(after.category(Category::ChunkSessions).peak > 0);

    // Query output peaks through the ledger even though it is released
    // by the time the waiter has the string.
    svc.run("string-join(for $i in 1 to 200 return 'x', '')")
        .unwrap();
    let snap = svc.ledger().snapshot();
    assert!(snap.category(Category::QueryOutput).peak >= 200, "{snap:?}");
    assert_eq!(snap.category(Category::QueryOutput).current, 0);

    // Stream queries charge their channel for their lifetime.
    let mut q = svc.open_stream_query("/a/b").unwrap();
    assert!(
        svc.ledger()
            .snapshot()
            .category(Category::IngestChannels)
            .current
            > 0
    );
    q.feed(b"<a><b>x</b></a>").unwrap();
    q.finish().unwrap();
    assert_eq!(
        svc.ledger()
            .snapshot()
            .category(Category::IngestChannels)
            .current,
        0
    );
}

#[test]
fn catalog_bytes_mirror_into_the_ledger_through_the_service() {
    let svc = governed(1 << 30);
    svc.load_document("a.xml", &format!("<a>{}</a>", "x".repeat(5_000)))
        .unwrap();
    let snap = svc.ledger().snapshot();
    assert!(
        snap.category(Category::CatalogResident).current > 5_000,
        "{snap:?}"
    );
    svc.remove_document("a.xml");
    assert_eq!(
        svc.ledger()
            .snapshot()
            .category(Category::CatalogResident)
            .current,
        0
    );
}
