//! Catalog recovery integration tests: crash-safety, quarantine through
//! the query path, byte accounting for quarantined segments, and
//! manifest replay edge cases observed at the catalog level. The
//! kill-and-recover harness (`xqr-harness --bin recover`) sweeps the
//! same ground with seeded schedules; these tests pin the individual
//! contracts.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use xqr_faults::{FaultKind, FaultRule, FaultSchedule};
use xqr_segment::{segment_bytes, write_segment_file, Manifest, ManifestRecord};
use xqr_service::{DocumentCatalog, QueryService, ServiceConfig};
use xqr_store::{Document, Store};
use xqr_xdm::{ErrorCode, NamePool};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xqr-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path) -> ServiceConfig {
    ServiceConfig {
        persist_dir: Some(dir.to_path_buf()),
        ..Default::default()
    }
}

/// Flip one byte in the only `.seg` file under `dir`.
fn flip_a_byte(dir: &Path) {
    let seg = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "seg"))
        .expect("a segment file");
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&seg, bytes).unwrap();
}

#[test]
fn byte_flip_surfaces_as_coded_quarantine_through_queries() {
    let dir = scratch("bitflip-query");
    {
        let service = QueryService::open(config(&dir)).unwrap();
        service
            .load_document("a.xml", "<a><b>text</b></a>")
            .unwrap();
    }
    flip_a_byte(&dir);

    let service = QueryService::open(config(&dir)).unwrap();
    // The corruption is discovered on first touch and reported with the
    // stable code — not as "document not found", not as a panic.
    let err = service.run(r#"doc("a.xml")"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::CorruptSegment, "{err}");
    assert!(!err.is_retryable(), "corruption is not transient: {err}");
    // Quarantine is sticky: the next touch fails the same way without
    // re-reading the segment.
    let err = service.run(r#"count(doc("a.xml")//b)"#).unwrap_err();
    assert_eq!(err.code, ErrorCode::CorruptSegment);
    assert_eq!(service.stats().segments_quarantined, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantined_bytes_are_a_gauge_not_a_budget_charge() {
    let dir = scratch("quarantine-accounting");
    let file_len;
    {
        let store = Store::new();
        let catalog = DocumentCatalog::with_persistence(store, None, None, &dir).unwrap();
        catalog.put("a.xml", "<a><b/><b/><c>txt</c></a>").unwrap();
        file_len = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.path().extension().is_some_and(|x| x == "seg"))
            .unwrap()
            .metadata()
            .unwrap()
            .len();
    }
    flip_a_byte(&dir);

    let store = Store::new();
    let catalog = DocumentCatalog::with_persistence(store, None, None, &dir).unwrap();
    // Adopted but untouched: on-disk entries charge nothing.
    assert_eq!(catalog.total_bytes(), 0);
    let err = catalog.resolve("a.xml").unwrap_err();
    assert_eq!(err.code, ErrorCode::CorruptSegment);
    // Regression: a quarantined entry holds no memory, so it charges
    // nothing against `catalog_max_bytes` — a poisoned segment must not
    // permanently shrink the effective capacity for healthy documents.
    // Its disk footprint is visible in the dedicated gauge instead.
    assert_eq!(catalog.total_bytes(), 0);
    assert_eq!(catalog.stats().quarantined_bytes, file_len);
    assert_eq!(catalog.stats().segments_quarantined, 1);
    assert!(catalog.contains("a.xml"), "quarantined, not forgotten");

    assert!(catalog.remove("a.xml"));
    assert_eq!(catalog.total_bytes(), 0);
    assert_eq!(catalog.stats().quarantined_bytes, 0, "gauge released");
    assert!(!catalog.contains("a.xml"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantine_does_not_shrink_effective_capacity() {
    let dir = scratch("quarantine-capacity");
    {
        let store = Store::new();
        let catalog = DocumentCatalog::with_persistence(store, None, None, &dir).unwrap();
        catalog.put("bad.xml", "<a><b/><b/><c>txt</c></a>").unwrap();
    }
    flip_a_byte(&dir);

    // A budget sized for one healthy document. If the quarantined
    // segment's disk bytes were still charged, this load would thrash or
    // evict the healthy document immediately.
    let store = Store::new();
    let catalog =
        DocumentCatalog::with_persistence(store.clone(), Some(64 * 1024), None, &dir).unwrap();
    assert_eq!(
        catalog.resolve("bad.xml").unwrap_err().code,
        ErrorCode::CorruptSegment
    );
    let id = catalog.put("good.xml", "<g>healthy</g>").unwrap();
    assert_eq!(catalog.get("good.xml"), Some(id), "stays resident");
    assert_eq!(catalog.stats().evictions, 0, "no pressure from quarantine");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_at_each_persist_site_reopens_cleanly() {
    for site in [
        "segment.write",
        "segment.fsync",
        "segment.rename",
        "manifest.append",
    ] {
        let dir = scratch(&format!("crash-{}", site.replace('.', "-")));
        let acked;
        {
            let service = QueryService::open(config(&dir)).unwrap();
            let _guard = xqr_faults::install(
                FaultSchedule::new(7).rule(FaultRule::new(site, FaultKind::ErrorReturn).one_in(1)),
            );
            acked = service.load_document("a.xml", "<a/>").is_ok();
        }
        assert!(!acked, "{site}: injected persist fault must fail the load");

        // Whatever the crash left behind, reopening is clean and the
        // unacknowledged document is absent — not partial, not stale.
        let service = QueryService::open(config(&dir)).unwrap();
        let err = service.run(r#"doc("a.xml")"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::DocumentNotFound, "{site}: {err}");
        // The directory still works for new loads.
        service.load_document("b.xml", "<b/>").unwrap();
        assert_eq!(service.run(r#"count(doc("b.xml"))"#).unwrap(), "1");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn duplicate_generation_records_replay_idempotently() {
    let dir = scratch("dup-generation");
    // Hand-author a manifest whose Add record is duplicated — the shape
    // a crash between append and ack can leave after a blind retry.
    let names = Arc::new(NamePool::new());
    let doc = Document::parse_with_uri("<a><b/></a>", names, Some("a.xml")).unwrap();
    let index = xqr_index::DocIndex::build(&doc).unwrap();
    let bytes = segment_bytes(&doc, &index).unwrap();
    let manifest = Manifest::open(&dir).unwrap();
    write_segment_file(&dir, "seg-1.seg", &bytes).unwrap();
    for _ in 0..2 {
        manifest
            .append(&ManifestRecord::Add {
                generation: 1,
                file: "seg-1.seg".into(),
                uri: "a.xml".into(),
            })
            .unwrap();
    }

    let store = Store::new();
    let catalog = DocumentCatalog::with_persistence(store, None, None, &dir).unwrap();
    assert_eq!(catalog.len(), 1, "one live document, not two");
    let id = catalog.get("a.xml").expect("reloads");
    assert!(id.index() < u32::MAX);
    assert_eq!(catalog.stats().segments_recovered, 1);
    // New generations allocate past the duplicate, not on top of it.
    catalog.put("b.xml", "<b/>").unwrap();
    assert!(catalog.get("b.xml").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn orphan_files_are_swept_and_the_catalog_recovers() {
    let dir = scratch("orphans");
    {
        let service = QueryService::open(config(&dir)).unwrap();
        service.load_document("a.xml", "<a>keep</a>").unwrap();
    }
    // A crash can strand temp files and unreferenced segments.
    std::fs::write(dir.join("seg-99.seg"), b"not a segment").unwrap();
    std::fs::write(dir.join("seg-100.seg.tmp"), b"torn write").unwrap();

    let service = QueryService::open(config(&dir)).unwrap();
    assert!(!dir.join("seg-99.seg").exists(), "orphan segment swept");
    assert!(!dir.join("seg-100.seg.tmp").exists(), "temp file swept");
    assert_eq!(service.run(r#"string(doc("a.xml")/a)"#).unwrap(), "keep");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_demotes_to_disk_and_queries_reload_transparently() {
    let dir = scratch("demote-reload");
    let store = Store::new();
    // A 1-byte budget: every put immediately demotes the previous
    // resident to its on-disk segment.
    let catalog = DocumentCatalog::with_persistence(store.clone(), Some(1), None, &dir).unwrap();
    catalog.put("a.xml", "<a>alpha</a>").unwrap();
    catalog.put("b.xml", "<b>beta</b>").unwrap();
    assert!(catalog.stats().evictions >= 1);
    // Both stay reachable: the demoted one reloads from its segment on
    // access, byte-identically.
    for (name, text) in [("a.xml", "alpha"), ("b.xml", "beta")] {
        let id = catalog.get(name).expect(name);
        let doc = store.try_document(id).expect("live after reload");
        assert!(doc.serialize_node(doc.root()).contains(text));
    }
    assert!(catalog.stats().segments_recovered >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}
