//! Property tests: every axis agrees with its primitive definition in
//! terms of document order and parent links, on random trees.

use proptest::prelude::*;
use std::sync::Arc;
use xqr_store::{walk, Axis, Document, NodeId};
use xqr_xdm::{NamePool, NodeKind};
use xqr_xmlgen::{random_tree, RandomTreeConfig};

fn arb_doc() -> impl Strategy<Value = Arc<Document>> {
    (any::<u64>(), 10usize..150, 2usize..7).prop_map(|(seed, nodes, depth)| {
        let xml = random_tree(&RandomTreeConfig {
            seed,
            nodes,
            max_depth: depth,
            alphabet: 3,
            p_ancestor: 0.2,
            p_descendant: 0.2,
            p_text: 0.3,
            ..Default::default()
        });
        Document::parse(&xml, Arc::new(NamePool::new())).unwrap()
    })
}

/// Naive ancestor set via parent links.
fn ancestors_naive(doc: &Document, n: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut p = doc.parent(n);
    while let Some(a) = p {
        out.push(a);
        p = doc.parent(a);
    }
    out
}

fn tree_nodes(doc: &Document) -> Vec<NodeId> {
    (0..doc.len() as u32)
        .map(NodeId)
        .filter(|&n| !matches!(doc.kind(n), NodeKind::Attribute | NodeKind::Namespace))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn descendant_is_interval(doc in arb_doc()) {
        for &n in tree_nodes(&doc).iter().take(40) {
            let desc = walk(&doc, n, Axis::Descendant);
            // Every descendant is inside the containment interval, and
            // every tree node inside the interval is a descendant.
            for d in &desc {
                prop_assert!(doc.is_ancestor(n, *d));
            }
            let inside: Vec<NodeId> = tree_nodes(&doc)
                .into_iter()
                .filter(|&m| doc.is_ancestor(n, m))
                .collect();
            prop_assert_eq!(desc, inside);
        }
    }

    #[test]
    fn ancestor_matches_parent_chain(doc in arb_doc()) {
        for &n in tree_nodes(&doc).iter().take(40) {
            prop_assert_eq!(walk(&doc, n, Axis::Ancestor), ancestors_naive(&doc, n));
        }
    }

    #[test]
    fn following_preceding_partition_the_document(doc in arb_doc()) {
        // For any tree node: {self+descendants} ∪ ancestors ∪ following
        // ∪ preceding = all tree nodes, all disjoint.
        for &n in tree_nodes(&doc).iter().take(25) {
            let mut all: Vec<NodeId> = walk(&doc, n, Axis::DescendantOrSelf);
            all.extend(walk(&doc, n, Axis::Ancestor));
            all.extend(walk(&doc, n, Axis::Following));
            all.extend(walk(&doc, n, Axis::Preceding));
            let before = all.len();
            all.sort();
            all.dedup();
            prop_assert_eq!(before, all.len(), "axes overlap at {:?}", n);
            prop_assert_eq!(all, tree_nodes(&doc));
        }
    }

    #[test]
    fn siblings_share_parent(doc in arb_doc()) {
        for &n in tree_nodes(&doc).iter().take(40) {
            for s in walk(&doc, n, Axis::FollowingSibling) {
                prop_assert_eq!(doc.parent(s), doc.parent(n));
                prop_assert!(s > n);
            }
            for s in walk(&doc, n, Axis::PrecedingSibling) {
                prop_assert_eq!(doc.parent(s), doc.parent(n));
                prop_assert!(s < n);
            }
        }
    }

    #[test]
    fn child_parent_duality(doc in arb_doc()) {
        for &n in tree_nodes(&doc).iter().take(40) {
            for c in walk(&doc, n, Axis::Child) {
                prop_assert_eq!(walk(&doc, c, Axis::Parent), vec![n]);
            }
        }
    }

    #[test]
    fn levels_count_ancestors(doc in arb_doc()) {
        for &n in tree_nodes(&doc).iter().take(60) {
            prop_assert_eq!(
                doc.level(n) as usize,
                ancestors_naive(&doc, n).len(),
            );
        }
    }

    #[test]
    fn dewey_orders_like_preorder(doc in arb_doc()) {
        // Dewey labels compare lexicographically exactly like node ids —
        // both encode document order.
        let nodes = tree_nodes(&doc);
        for pair in nodes.windows(2).take(50) {
            let (a, b) = (pair[0], pair[1]);
            let da = doc.dewey(a);
            let db = doc.dewey(b);
            // a < b in preorder ⇒ dewey(a) < dewey(b) OR a is an
            // ancestor of b (prefix relation).
            prop_assert!(da < db || db.starts_with(&da));
        }
    }
}
