//! The multi-document store and global node references.
//!
//! Node identity and document order across documents: a [`NodeRef`] is
//! `(doc, node)` and the data model's arbitrary-but-stable cross-document
//! order is the lexicographic order on that pair. The runtime appends
//! result documents for constructed nodes here too, which is what gives
//! constructed nodes *new* identities (the talk: "can the result of an
//! expression contain newly created nodes?").

use crate::document::{DocId, Document, NodeId};
use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use xqr_xdm::{Error, ErrorCode, NamePool, Result};

/// A node in some document of a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef {
    pub doc: DocId,
    pub node: NodeId,
}

impl NodeRef {
    pub fn new(doc: DocId, node: NodeId) -> Self {
        NodeRef { doc, node }
    }
}

/// One document slot. Slots are reused after removal; the generation
/// counter is bumped on every removal so stale [`DocId`]s fail their
/// generation check instead of resolving to an unrelated document.
struct Slot {
    generation: u32,
    doc: Option<Arc<Document>>,
    /// Generation-checked side attachment (e.g. a structural index built
    /// by `xqr-index`). Cleared whenever the document leaves the slot, so
    /// an attachment can never outlive — or be read through a stale id
    /// of — the document it describes.
    aux: Option<Arc<dyn Any + Send + Sync>>,
}

#[derive(Default)]
struct StoreInner {
    slots: Vec<Slot>,
    /// Indices of empty slots, ready for reuse.
    free: Vec<u32>,
    by_uri: HashMap<String, DocId>,
    /// Sum of `Document::memory_bytes` over live documents.
    live_bytes: u64,
}

/// A URI-miss hook: given a URI the store has no live document for,
/// try to materialize one (e.g. reload it from a durable segment) and
/// return its id. `Ok(None)` means "genuinely absent"; an error (a
/// quarantined segment's `XQRL0006`, say) propagates to the query.
pub type DocResolver = dyn Fn(&str) -> Result<Option<DocId>> + Send + Sync;

/// A shared collection of documents. Loading is cheap-append; removal
/// ([`Store::remove_document`]) frees the slot for reuse so long-lived
/// stores (one-shot query paths, document catalogs with eviction) run in
/// bounded memory instead of growing forever.
pub struct Store {
    names: Arc<NamePool>,
    inner: RwLock<StoreInner>,
    /// Consulted by [`Store::document_by_uri`] on a miss, outside the
    /// inner lock (the resolver re-enters the store to add the reloaded
    /// document).
    resolver: RwLock<Option<Arc<DocResolver>>>,
    /// Documents whose removal panicked (a contained fault mid-drop):
    /// parked here by [`Store::park_orphan`] and retried by
    /// [`Store::reap_orphans`], so a panic at the removal site is a
    /// bounded, recoverable leak instead of a permanent one.
    orphans: std::sync::Mutex<Vec<DocId>>,
}

impl Store {
    pub fn new() -> Arc<Store> {
        Arc::new(Store {
            names: Arc::new(NamePool::new()),
            inner: RwLock::new(StoreInner::default()),
            resolver: RwLock::new(None),
            orphans: std::sync::Mutex::new(Vec::new()),
        })
    }

    pub fn with_names(names: Arc<NamePool>) -> Arc<Store> {
        Arc::new(Store {
            names,
            inner: RwLock::new(StoreInner::default()),
            resolver: RwLock::new(None),
            orphans: std::sync::Mutex::new(Vec::new()),
        })
    }

    /// Install (or clear) the URI-miss resolver. The resolver must not
    /// capture an owning reference back to whatever owns this store's
    /// `Arc` (use a `Weak`), or the pair never drops.
    pub fn set_doc_resolver(&self, r: Option<Arc<DocResolver>>) {
        *self.resolver.write().unwrap_or_else(|p| p.into_inner()) = r;
    }

    pub fn names(&self) -> &Arc<NamePool> {
        &self.names
    }

    /// Poison-recovering read lock. Every mutation of `StoreInner` keeps
    /// its invariants at each exit point, so a panic in a holder (a
    /// chaos-injected one, say) leaves consistent state; aborting every
    /// later reader over it would turn one contained panic into a
    /// process-wide outage.
    fn read(&self) -> RwLockReadGuard<'_, StoreInner> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Poison-recovering write lock; see [`Store::read`].
    fn write(&self) -> RwLockWriteGuard<'_, StoreInner> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Register a document, returning its id. Slots of previously removed
    /// documents are reused (with a fresh generation).
    pub fn add_document(&self, doc: Arc<Document>) -> DocId {
        let mut inner = self.write();
        inner.live_bytes += doc.memory_bytes() as u64;
        let id = match inner.free.pop() {
            Some(index) => {
                let slot = &mut inner.slots[index as usize];
                slot.doc = Some(doc.clone());
                slot.aux = None;
                DocId::new(index, slot.generation)
            }
            None => {
                let index = inner.slots.len() as u32;
                inner.slots.push(Slot {
                    generation: 0,
                    doc: Some(doc.clone()),
                    aux: None,
                });
                DocId::new(index, 0)
            }
        };
        if let Some(uri) = &doc.uri {
            inner.by_uri.insert(uri.clone(), id);
        }
        id
    }

    /// Remove a document, freeing its slot for reuse. Returns `false` if
    /// the id is stale (already removed) — removal is idempotent.
    ///
    /// Callers must ensure no live [`NodeRef`]s into the document remain;
    /// resolving one afterwards via [`Store::document`] panics with a
    /// stale-id message (contained by the engine's panic boundary, but a
    /// caller bug nonetheless). Holders of an already-resolved
    /// `Arc<Document>` are unaffected — the tree is freed when the last
    /// clone drops.
    pub fn remove_document(&self, id: DocId) -> bool {
        xqr_faults::faultpoint_infallible!("store.remove");
        let mut inner = self.write();
        let Some(slot) = inner.slots.get_mut(id.index() as usize) else {
            return false;
        };
        if slot.generation != id.generation() || slot.doc.is_none() {
            return false;
        }
        let doc = slot.doc.take().expect("checked live above");
        slot.aux = None;
        slot.generation = slot.generation.wrapping_add(1);
        inner.free.push(id.index());
        inner.live_bytes = inner.live_bytes.saturating_sub(doc.memory_bytes() as u64);
        if let Some(uri) = &doc.uri {
            // Only unlink the URI if it still maps to *this* document (a
            // reload under the same URI may have superseded the mapping).
            if inner.by_uri.get(uri) == Some(&id) {
                inner.by_uri.remove(uri);
            }
        }
        true
    }

    /// Park a document whose removal panicked (the panic was contained
    /// by the caller). [`Store::reap_orphans`] retries it later, so a
    /// fault at the removal site cannot leak the document permanently.
    pub fn park_orphan(&self, id: DocId) {
        self.orphans
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(id);
    }

    /// Retry removal of parked orphans. Each retry is panic-contained;
    /// documents whose removal panics again stay parked for the next
    /// sweep. Returns how many were freed (removal is idempotent, so a
    /// document freed some other way still counts).
    pub fn reap_orphans(&self) -> usize {
        let pending = {
            let mut orphans = self.orphans.lock().unwrap_or_else(|p| p.into_inner());
            if orphans.is_empty() {
                return 0;
            }
            std::mem::take(&mut *orphans)
        };
        let mut reclaimed = 0;
        let mut kept = Vec::new();
        for id in pending {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.remove_document(id)
            })) {
                Ok(_) => reclaimed += 1,
                Err(_) => kept.push(id),
            }
        }
        if !kept.is_empty() {
            self.orphans
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .append(&mut kept);
        }
        reclaimed
    }

    /// Documents currently parked for a removal retry.
    pub fn orphan_count(&self) -> usize {
        self.orphans.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Parse and register XML text under an optional URI.
    pub fn load_xml(&self, xml: &str, uri: Option<&str>) -> Result<DocId> {
        xqr_faults::faultpoint!("store.load");
        let doc = Document::parse_with_uri(xml, self.names.clone(), uri)?;
        Ok(self.add_document(doc))
    }

    /// Guarded [`Store::load_xml`]: parsing respects the guard's token,
    /// depth and document-size limits — how `fn:doc` loads documents
    /// inside a guarded execution.
    pub fn load_xml_guarded(
        &self,
        xml: &str,
        uri: Option<&str>,
        guard: &xqr_xdm::QueryGuard,
    ) -> Result<DocId> {
        xqr_faults::faultpoint!("store.load");
        let doc = Document::parse_guarded(xml, self.names.clone(), uri, guard)?;
        Ok(self.add_document(doc))
    }

    /// Resolve a document id. Panics on a stale id (document removed) —
    /// that is a caller bug, not a query error; use
    /// [`Store::try_document`] to probe gracefully.
    pub fn document(&self, id: DocId) -> Arc<Document> {
        self.try_document(id)
            .unwrap_or_else(|| panic!("stale DocId {id:?}: document was removed from the store"))
    }

    /// Resolve a document id, returning `None` when the id is stale.
    pub fn try_document(&self, id: DocId) -> Option<Arc<Document>> {
        let inner = self.read();
        let slot = inner.slots.get(id.index() as usize)?;
        if slot.generation != id.generation() {
            return None;
        }
        slot.doc.clone()
    }

    /// Attach auxiliary per-document data (a structural index, say) to a
    /// live slot. Returns `false` when the id is stale — the attachment
    /// is dropped rather than applied to whatever reused the slot. The
    /// attachment is cleared automatically when the document is removed.
    pub fn set_aux(&self, id: DocId, aux: Arc<dyn Any + Send + Sync>) -> bool {
        let mut inner = self.write();
        let Some(slot) = inner.slots.get_mut(id.index() as usize) else {
            return false;
        };
        if slot.generation != id.generation() || slot.doc.is_none() {
            return false;
        }
        slot.aux = Some(aux);
        true
    }

    /// Read back the auxiliary attachment for a document, generation
    /// checked: a stale id yields `None`, never another document's data.
    pub fn aux(&self, id: DocId) -> Option<Arc<dyn Any + Send + Sync>> {
        let inner = self.read();
        let slot = inner.slots.get(id.index() as usize)?;
        if slot.generation != id.generation() {
            return None;
        }
        slot.aux.clone()
    }

    pub fn document_by_uri(&self, uri: &str) -> Result<(DocId, Arc<Document>)> {
        xqr_faults::faultpoint!("store.read");
        // Fast path under the read lock.
        {
            let inner = self.read();
            if let Some(&id) = inner.by_uri.get(uri) {
                let doc = inner.slots[id.index() as usize]
                    .doc
                    .clone()
                    .expect("by_uri points at a live slot");
                return Ok((id, doc));
            }
        }
        // Miss: give the resolver a chance to materialize the document
        // (reload from a durable segment). Both locks are released here —
        // the resolver re-enters the store via `add_document`.
        let resolver = self
            .resolver
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        if let Some(resolver) = resolver {
            if let Some(id) = resolver(uri)? {
                if let Some(doc) = self.try_document(id) {
                    return Ok((id, doc));
                }
            }
        }
        Err(Error::new(
            ErrorCode::DocumentNotFound,
            format!("no document available at {uri:?}"),
        ))
    }

    /// Number of live (not removed) documents.
    pub fn doc_count(&self) -> usize {
        let inner = self.read();
        inner.slots.len() - inner.free.len()
    }

    /// Approximate bytes held by live documents
    /// (sum of [`Document::memory_bytes`]).
    pub fn live_bytes(&self) -> u64 {
        self.read().live_bytes
    }

    /// Resolve a node reference to its document.
    pub fn doc_of(&self, n: NodeRef) -> Arc<Document> {
        self.document(n.doc)
    }

    /// Document order across the whole store.
    pub fn doc_order(&self, a: NodeRef, b: NodeRef) -> std::cmp::Ordering {
        a.cmp(&b)
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Store({} documents)", self.doc_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_lookup_by_uri() {
        let store = Store::new();
        let id = store.load_xml("<a/>", Some("bib.xml")).unwrap();
        let (found, doc) = store.document_by_uri("bib.xml").unwrap();
        assert_eq!(found, id);
        assert_eq!(doc.len(), 2); // document node + element
        assert!(store.document_by_uri("other.xml").is_err());
    }

    #[test]
    fn node_refs_order_across_documents() {
        let store = Store::new();
        let d1 = store.load_xml("<a/>", None).unwrap();
        let d2 = store.load_xml("<b/>", None).unwrap();
        let n1 = NodeRef::new(d1, NodeId(1));
        let n2 = NodeRef::new(d2, NodeId(0));
        assert!(n1 < n2);
        let n3 = NodeRef::new(d1, NodeId(0));
        assert!(n3 < n1);
    }

    #[test]
    fn remove_document_frees_and_reuses_slots() {
        let store = Store::new();
        let id = store.load_xml("<a><b/><c/></a>", Some("a.xml")).unwrap();
        assert_eq!(store.doc_count(), 1);
        assert!(store.live_bytes() > 0);

        assert!(store.remove_document(id));
        assert_eq!(store.doc_count(), 0);
        assert_eq!(store.live_bytes(), 0);
        assert!(store.document_by_uri("a.xml").is_err());
        // Removal is idempotent; the stale id no longer resolves.
        assert!(!store.remove_document(id));
        assert!(store.try_document(id).is_none());

        // The freed slot is reused with a bumped generation.
        let id2 = store.load_xml("<d/>", None).unwrap();
        assert_eq!(id2.index(), id.index());
        assert_ne!(id2.generation(), id.generation());
        assert!(store.try_document(id).is_none());
        assert!(store.try_document(id2).is_some());
    }

    #[test]
    fn reload_under_same_uri_supersedes_mapping() {
        let store = Store::new();
        let old = store.load_xml("<v1/>", Some("doc.xml")).unwrap();
        let new = store.load_xml("<v2/>", Some("doc.xml")).unwrap();
        // Removing the superseded document must not unlink the new one.
        assert!(store.remove_document(old));
        let (found, _) = store.document_by_uri("doc.xml").unwrap();
        assert_eq!(found, new);
    }

    #[test]
    #[should_panic(expected = "stale DocId")]
    fn stale_id_resolution_panics() {
        let store = Store::new();
        let id = store.load_xml("<a/>", None).unwrap();
        store.remove_document(id);
        store.document(id);
    }

    #[test]
    fn aux_attachment_is_generation_checked() {
        let store = Store::new();
        let id = store.load_xml("<a/>", None).unwrap();
        assert!(store.aux(id).is_none());
        assert!(store.set_aux(id, Arc::new(41u64)));
        let got = store.aux(id).expect("attached");
        assert_eq!(got.downcast_ref::<u64>(), Some(&41));

        // Removal clears the attachment and stales the id.
        assert!(store.remove_document(id));
        assert!(store.aux(id).is_none());
        assert!(!store.set_aux(id, Arc::new(99u64)));

        // The reused slot starts clean, and the stale id still reads
        // nothing even though the slot index is occupied again.
        let id2 = store.load_xml("<b/>", None).unwrap();
        assert_eq!(id2.index(), id.index());
        assert!(store.aux(id2).is_none());
        assert!(store.aux(id).is_none());
        assert!(store.set_aux(id2, Arc::new(7u64)));
        assert!(store.aux(id).is_none(), "stale id must not see new aux");
    }

    #[test]
    fn shared_name_pool_across_documents() {
        let store = Store::new();
        store.load_xml("<x/>", None).unwrap();
        store.load_xml("<x/>", None).unwrap();
        // Same name interned once.
        let names = store.names();
        let before = names.len();
        names.intern(&xqr_xdm::QName::local("x"));
        assert_eq!(names.len(), before);
    }
}
