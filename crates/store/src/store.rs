//! The multi-document store and global node references.
//!
//! Node identity and document order across documents: a [`NodeRef`] is
//! `(doc, node)` and the data model's arbitrary-but-stable cross-document
//! order is the lexicographic order on that pair. The runtime appends
//! result documents for constructed nodes here too, which is what gives
//! constructed nodes *new* identities (the talk: "can the result of an
//! expression contain newly created nodes?").

use crate::document::{DocId, Document, NodeId};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};
use xqr_xdm::{Error, ErrorCode, NamePool, Result};

/// A node in some document of a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef {
    pub doc: DocId,
    pub node: NodeId,
}

impl NodeRef {
    pub fn new(doc: DocId, node: NodeId) -> Self {
        NodeRef { doc, node }
    }
}

#[derive(Default)]
struct StoreInner {
    docs: Vec<Arc<Document>>,
    by_uri: HashMap<String, DocId>,
}

/// A shared, append-only collection of documents.
pub struct Store {
    names: Arc<NamePool>,
    inner: RwLock<StoreInner>,
}

impl Store {
    pub fn new() -> Arc<Store> {
        Arc::new(Store { names: Arc::new(NamePool::new()), inner: RwLock::new(StoreInner::default()) })
    }

    pub fn with_names(names: Arc<NamePool>) -> Arc<Store> {
        Arc::new(Store { names, inner: RwLock::new(StoreInner::default()) })
    }

    pub fn names(&self) -> &Arc<NamePool> {
        &self.names
    }

    /// Register a document, returning its id.
    pub fn add_document(&self, doc: Arc<Document>) -> DocId {
        let mut inner = self.inner.write().expect("store lock");
        let id = DocId(inner.docs.len() as u32);
        if let Some(uri) = &doc.uri {
            inner.by_uri.insert(uri.clone(), id);
        }
        inner.docs.push(doc);
        id
    }

    /// Parse and register XML text under an optional URI.
    pub fn load_xml(&self, xml: &str, uri: Option<&str>) -> Result<DocId> {
        let doc = Document::parse_with_uri(xml, self.names.clone(), uri)?;
        Ok(self.add_document(doc))
    }

    /// Guarded [`Store::load_xml`]: parsing respects the guard's token,
    /// depth and document-size limits — how `fn:doc` loads documents
    /// inside a guarded execution.
    pub fn load_xml_guarded(
        &self,
        xml: &str,
        uri: Option<&str>,
        guard: &xqr_xdm::QueryGuard,
    ) -> Result<DocId> {
        let doc = Document::parse_guarded(xml, self.names.clone(), uri, guard)?;
        Ok(self.add_document(doc))
    }

    pub fn document(&self, id: DocId) -> Arc<Document> {
        self.inner.read().expect("store lock").docs[id.0 as usize].clone()
    }

    pub fn document_by_uri(&self, uri: &str) -> Result<(DocId, Arc<Document>)> {
        let inner = self.inner.read().expect("store lock");
        match inner.by_uri.get(uri) {
            Some(&id) => Ok((id, inner.docs[id.0 as usize].clone())),
            None => Err(Error::new(
                ErrorCode::DocumentNotFound,
                format!("no document available at {uri:?}"),
            )),
        }
    }

    pub fn doc_count(&self) -> usize {
        self.inner.read().expect("store lock").docs.len()
    }

    /// Resolve a node reference to its document.
    pub fn doc_of(&self, n: NodeRef) -> Arc<Document> {
        self.document(n.doc)
    }

    /// Document order across the whole store.
    pub fn doc_order(&self, a: NodeRef, b: NodeRef) -> std::cmp::Ordering {
        a.cmp(&b)
    }
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Store({} documents)", self.doc_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_lookup_by_uri() {
        let store = Store::new();
        let id = store.load_xml("<a/>", Some("bib.xml")).unwrap();
        let (found, doc) = store.document_by_uri("bib.xml").unwrap();
        assert_eq!(found, id);
        assert_eq!(doc.len(), 2); // document node + element
        assert!(store.document_by_uri("other.xml").is_err());
    }

    #[test]
    fn node_refs_order_across_documents() {
        let store = Store::new();
        let d1 = store.load_xml("<a/>", None).unwrap();
        let d2 = store.load_xml("<b/>", None).unwrap();
        let n1 = NodeRef::new(d1, NodeId(1));
        let n2 = NodeRef::new(d2, NodeId(0));
        assert!(n1 < n2);
        let n3 = NodeRef::new(d1, NodeId(0));
        assert!(n3 < n1);
    }

    #[test]
    fn shared_name_pool_across_documents() {
        let store = Store::new();
        store.load_xml("<x/>", None).unwrap();
        store.load_xml("<x/>", None).unwrap();
        // Same name interned once.
        let names = store.names();
        let before = names.len();
        names.intern(&xqr_xdm::QName::local("x"));
        assert_eq!(names.len(), before);
    }
}
