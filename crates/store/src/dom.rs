//! A deliberately conventional pointer-based DOM — the "Trees (e.g. DOM)"
//! representation the talk contrasts with arrays:
//!
//! * "natural representation of XML data; good support of navigation" —
//!   children are owned `Vec`s of refcounted nodes;
//! * "difficult to use in streaming; difficult for query processing:
//!   mixes indexes and data" — every node is a separate heap allocation.
//!
//! Experiment E3 builds the same documents as DOM, TokenStream and the
//! labeled store and compares construction time, scan time and memory.

use std::cell::RefCell;
use std::rc::{Rc, Weak};
use xqr_xdm::{NodeKind, QName, Result};
use xqr_xmlparse::{XmlEvent, XmlReader};

pub type DomRef = Rc<RefCell<DomNode>>;

/// One heap-allocated tree node.
#[derive(Debug)]
pub struct DomNode {
    pub kind: NodeKind,
    pub name: Option<QName>,
    pub value: String,
    pub attributes: Vec<(QName, String)>,
    pub children: Vec<DomRef>,
    pub parent: Weak<RefCell<DomNode>>,
}

impl DomNode {
    fn new(kind: NodeKind) -> DomRef {
        Rc::new(RefCell::new(DomNode {
            kind,
            name: None,
            value: String::new(),
            attributes: Vec::new(),
            children: Vec::new(),
            parent: Weak::new(),
        }))
    }
}

/// Parse XML text into a DOM tree, returning the document node.
pub fn parse_dom(input: &str) -> Result<DomRef> {
    let mut reader = XmlReader::new(input);
    let doc = DomNode::new(NodeKind::Document);
    let mut stack: Vec<DomRef> = vec![doc.clone()];
    loop {
        match reader.next_event()? {
            XmlEvent::StartDocument => {}
            XmlEvent::EndDocument => break,
            XmlEvent::StartElement {
                name, attributes, ..
            } => {
                let el = DomNode::new(NodeKind::Element);
                {
                    let mut n = el.borrow_mut();
                    n.name = Some(name);
                    n.attributes = attributes
                        .into_iter()
                        .map(|a| (a.name, a.value.to_string()))
                        .collect();
                    n.parent = Rc::downgrade(stack.last().expect("stack non-empty"));
                }
                stack
                    .last()
                    .expect("stack non-empty")
                    .borrow_mut()
                    .children
                    .push(el.clone());
                stack.push(el);
            }
            XmlEvent::EndElement { .. } => {
                stack.pop();
            }
            XmlEvent::Text(t) => {
                let tn = DomNode::new(NodeKind::Text);
                tn.borrow_mut().value = t.to_string();
                tn.borrow_mut().parent = Rc::downgrade(stack.last().expect("stack non-empty"));
                stack
                    .last()
                    .expect("stack non-empty")
                    .borrow_mut()
                    .children
                    .push(tn);
            }
            XmlEvent::Comment(c) => {
                let cn = DomNode::new(NodeKind::Comment);
                cn.borrow_mut().value = c.to_string();
                stack
                    .last()
                    .expect("stack non-empty")
                    .borrow_mut()
                    .children
                    .push(cn);
            }
            XmlEvent::ProcessingInstruction { target, data } => {
                let pn = DomNode::new(NodeKind::ProcessingInstruction);
                {
                    let mut n = pn.borrow_mut();
                    n.name = Some(QName::local(&target));
                    n.value = data.to_string();
                }
                stack
                    .last()
                    .expect("stack non-empty")
                    .borrow_mut()
                    .children
                    .push(pn);
            }
        }
    }
    Ok(doc)
}

/// Count nodes (bench helper: forces a full navigation pass).
pub fn count_nodes(node: &DomRef) -> usize {
    let n = node.borrow();
    1 + n.children.iter().map(count_nodes).sum::<usize>()
}

/// Concatenated text, recursively (the DOM analogue of `string-value`).
pub fn string_value(node: &DomRef) -> String {
    let n = node.borrow();
    if n.kind == NodeKind::Text {
        return n.value.clone();
    }
    let mut out = String::new();
    for c in &n.children {
        out.push_str(&string_value(c));
    }
    out
}

/// Find descendant elements by local name (navigational baseline probe).
pub fn descendants_named(node: &DomRef, local: &str, out: &mut Vec<DomRef>) {
    let n = node.borrow();
    for c in &n.children {
        {
            let cb = c.borrow();
            if cb.kind == NodeKind::Element
                && cb
                    .name
                    .as_ref()
                    .map(|q| q.local_name() == local)
                    .unwrap_or(false)
            {
                out.push(c.clone());
            }
        }
        descendants_named(c, local, out);
    }
}

/// Rough per-node memory estimate for the comparison table: struct size
/// plus owned strings and vec headers (undercounts allocator overhead,
/// which only favours DOM in the comparison).
pub fn memory_bytes(node: &DomRef) -> usize {
    let n = node.borrow();
    let own = std::mem::size_of::<DomNode>()
        + n.value.len()
        + n.attributes
            .iter()
            .map(|(q, v)| q.local_name().len() + v.len() + 48)
            .sum::<usize>()
        + n.children.capacity() * std::mem::size_of::<DomRef>();
    own + n.children.iter().map(memory_bytes).sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_structure() {
        let d = parse_dom(r#"<a x="1"><b>hi</b><c/></a>"#).unwrap();
        assert_eq!(count_nodes(&d), 5); // doc, a, b, text, c
        let a = d.borrow().children[0].clone();
        assert_eq!(a.borrow().attributes.len(), 1);
        assert_eq!(string_value(&a), "hi");
    }

    #[test]
    fn parent_links_work() {
        let d = parse_dom("<a><b/></a>").unwrap();
        let a = d.borrow().children[0].clone();
        let b = a.borrow().children[0].clone();
        let p = b.borrow().parent.upgrade().unwrap();
        assert!(Rc::ptr_eq(&p, &a));
    }

    #[test]
    fn descendant_search() {
        let d = parse_dom("<a><b/><c><b/></c></a>").unwrap();
        let mut found = Vec::new();
        descendants_named(&d, "b", &mut found);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn memory_is_counted() {
        let d = parse_dom("<a><b>some text content here</b></a>").unwrap();
        assert!(memory_bytes(&d) > 100);
    }
}
