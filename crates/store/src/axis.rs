//! XPath axes over the store — the navigation the talk's abbreviated and
//! non-abbreviated step syntax compiles to.
//!
//! Forward axes exploit the preorder layout: `descendant` is a linear
//! scan of the label interval, `following` a scan from `end+1`. Reverse
//! axes (`parent`, `ancestor`, `preceding*`) use the parent links; the
//! compiler's backward-axis rewrite exists precisely to avoid these at
//! runtime, but the engine still supports them.

use crate::document::{Document, NodeId};
use xqr_xdm::NodeKind;

/// The axes we implement (the required set plus the optional full-axis
/// feature the talk lists: following/preceding and siblings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    Attribute,
    SelfAxis,
    Parent,
    Ancestor,
    AncestorOrSelf,
    FollowingSibling,
    PrecedingSibling,
    Following,
    Preceding,
    Namespace,
}

impl Axis {
    /// Reverse axes deliver nodes before the context node in document
    /// order; paths must re-sort afterwards (or be rewritten away).
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::PrecedingSibling
                | Axis::Preceding
        )
    }

    /// Principal node kind: attribute for the attribute axis, namespace
    /// for the namespace axis, element otherwise (decides what `*`
    /// matches).
    pub fn principal_kind(self) -> NodeKind {
        match self {
            Axis::Attribute => NodeKind::Attribute,
            Axis::Namespace => NodeKind::Namespace,
            _ => NodeKind::Element,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Attribute => "attribute",
            Axis::SelfAxis => "self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::Namespace => "namespace",
        }
    }

    pub fn from_name(s: &str) -> Option<Axis> {
        Some(match s {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "attribute" => Axis::Attribute,
            "self" => Axis::SelfAxis,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            "namespace" => Axis::Namespace,
            _ => return None,
        })
    }
}

/// Is `n` on the main child tree (not an attribute/namespace node)?
fn is_tree_node(doc: &Document, n: NodeId) -> bool {
    !matches!(doc.kind(n), NodeKind::Attribute | NodeKind::Namespace)
}

/// Walk an axis from `ctx`, returning matching node ids. Nodes are
/// produced in axis order (reverse axes yield nearest-first, per XPath),
/// and the caller applies node tests.
pub fn walk(doc: &Document, ctx: NodeId, axis: Axis) -> Vec<NodeId> {
    match axis {
        Axis::SelfAxis => vec![ctx],
        Axis::Child => {
            let mut out = Vec::new();
            let mut c = doc.first_child(ctx);
            while let Some(n) = c {
                out.push(n);
                c = doc.next_sibling(n);
            }
            out
        }
        Axis::Descendant => {
            let end = doc.end(ctx);
            (ctx.0 + 1..=end)
                .map(NodeId)
                .filter(|&n| is_tree_node(doc, n))
                .collect()
        }
        Axis::DescendantOrSelf => {
            let mut out = vec![ctx];
            out.extend(walk(doc, ctx, Axis::Descendant));
            out
        }
        Axis::Attribute => doc.attributes(ctx).collect(),
        Axis::Namespace => doc.namespaces(ctx).collect(),
        Axis::Parent => doc.parent(ctx).into_iter().collect(),
        Axis::Ancestor => {
            let mut out = Vec::new();
            let mut p = doc.parent(ctx);
            while let Some(n) = p {
                out.push(n);
                p = doc.parent(n);
            }
            out
        }
        Axis::AncestorOrSelf => {
            let mut out = vec![ctx];
            out.extend(walk(doc, ctx, Axis::Ancestor));
            out
        }
        Axis::FollowingSibling => {
            let mut out = Vec::new();
            let mut s = doc.next_sibling(ctx);
            while let Some(n) = s {
                out.push(n);
                s = doc.next_sibling(n);
            }
            out
        }
        Axis::PrecedingSibling => {
            // Nearest-first per the reverse-axis convention.
            let mut before = Vec::new();
            if let Some(p) = doc.parent(ctx) {
                let mut c = doc.first_child(p);
                while let Some(n) = c {
                    if n == ctx {
                        break;
                    }
                    before.push(n);
                    c = doc.next_sibling(n);
                }
            }
            before.reverse();
            before
        }
        Axis::Following => {
            // Everything after this subtree, minus attributes/namespaces.
            let start = doc.end(ctx) + 1;
            (start..doc.len() as u32)
                .map(NodeId)
                .filter(|&n| is_tree_node(doc, n))
                .collect()
        }
        Axis::Preceding => {
            // Nodes strictly before ctx in doc order, excluding ancestors
            // and attr/ns nodes; nearest-first.
            let mut out: Vec<NodeId> = (1..ctx.0)
                .map(NodeId)
                .filter(|&n| is_tree_node(doc, n) && !doc.is_ancestor(n, ctx))
                .collect();
            out.reverse();
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use xqr_xdm::{NamePool, QName};

    fn doc(xml: &str) -> Arc<Document> {
        Document::parse(xml, Arc::new(NamePool::new())).unwrap()
    }

    fn names(d: &Document, nodes: &[NodeId]) -> Vec<String> {
        nodes
            .iter()
            .map(|&n| {
                d.name(n)
                    .map(|q| q.local_name().to_string())
                    .unwrap_or_else(|| format!("#{}", d.kind(n)))
            })
            .collect()
    }

    // <root><a><b/><c><d/></c></a><e/></root>
    fn fixture() -> (
        Arc<Document>,
        NodeId,
        NodeId,
        NodeId,
        NodeId,
        NodeId,
        NodeId,
    ) {
        let d = doc("<root><a><b/><c><d/></c></a><e/></root>");
        let root = d.first_child(d.root()).unwrap();
        let a = d.first_child(root).unwrap();
        let b = d.first_child(a).unwrap();
        let c = d.next_sibling(b).unwrap();
        let dd = d.first_child(c).unwrap();
        let e = d.next_sibling(a).unwrap();
        (d, root, a, b, c, dd, e)
    }

    #[test]
    fn child_and_descendant() {
        let (d, root, a, b, c, dd, e) = fixture();
        assert_eq!(walk(&d, root, Axis::Child), vec![a, e]);
        assert_eq!(walk(&d, a, Axis::Descendant), vec![b, c, dd]);
        assert_eq!(walk(&d, a, Axis::DescendantOrSelf), vec![a, b, c, dd]);
        assert_eq!(walk(&d, b, Axis::Descendant), vec![]);
    }

    #[test]
    fn ancestors() {
        let (d, root, a, _b, c, dd, _e) = fixture();
        assert_eq!(walk(&d, dd, Axis::Ancestor), vec![c, a, root, d.root()]);
        assert_eq!(walk(&d, dd, Axis::AncestorOrSelf)[0], dd);
        assert_eq!(walk(&d, dd, Axis::Parent), vec![c]);
        assert_eq!(walk(&d, d.root(), Axis::Parent), vec![]);
    }

    #[test]
    fn siblings() {
        let (d, _root, a, b, c, _dd, e) = fixture();
        assert_eq!(walk(&d, b, Axis::FollowingSibling), vec![c]);
        assert_eq!(walk(&d, c, Axis::PrecedingSibling), vec![b]);
        assert_eq!(walk(&d, a, Axis::FollowingSibling), vec![e]);
        assert_eq!(walk(&d, e, Axis::PrecedingSibling), vec![a]);
    }

    #[test]
    fn following_and_preceding() {
        let (d, _root, _a, b, c, dd, e) = fixture();
        // following(b) = c, d, e (not ancestors, not self subtree)
        assert_eq!(walk(&d, b, Axis::Following), vec![c, dd, e]);
        // preceding(e) excludes ancestors (root) but includes a's subtree
        let p = walk(&d, e, Axis::Preceding);
        let n = names(&d, &p);
        assert_eq!(n, vec!["d", "c", "b", "a"]); // nearest first
    }

    #[test]
    fn attributes_not_on_child_or_descendant_axes() {
        let d = doc(r#"<r><a x="1"><b y="2"/></a></r>"#);
        let r = d.first_child(d.root()).unwrap();
        let a = d.first_child(r).unwrap();
        for n in walk(&d, r, Axis::Descendant) {
            assert_ne!(d.kind(n), NodeKind::Attribute);
        }
        let attrs = walk(&d, a, Axis::Attribute);
        assert_eq!(attrs.len(), 1);
        assert_eq!(d.name(attrs[0]).unwrap(), QName::local("x"));
    }

    #[test]
    fn axis_name_roundtrip() {
        for axis in [
            Axis::Child,
            Axis::Descendant,
            Axis::DescendantOrSelf,
            Axis::Attribute,
            Axis::SelfAxis,
            Axis::Parent,
            Axis::Ancestor,
            Axis::AncestorOrSelf,
            Axis::FollowingSibling,
            Axis::PrecedingSibling,
            Axis::Following,
            Axis::Preceding,
            Axis::Namespace,
        ] {
            assert_eq!(Axis::from_name(axis.name()), Some(axis));
        }
        assert_eq!(Axis::from_name("sideways"), None);
    }

    #[test]
    fn reverse_axis_classification() {
        assert!(Axis::Ancestor.is_reverse());
        assert!(Axis::Preceding.is_reverse());
        assert!(!Axis::Descendant.is_reverse());
        assert_eq!(Axis::Attribute.principal_kind(), NodeKind::Attribute);
        assert_eq!(Axis::Child.principal_kind(), NodeKind::Element);
    }
}
