//! The materialized document store: struct-of-arrays in preorder, with
//! containment labels *(start, end, level)* on every node.
//!
//! This is the engine's "tree" half: the TokenStream is the wire/scan
//! representation, the store is what path navigation, document-order
//! comparison and structural joins run against. The node index *is* the
//! preorder/start position, so document order is an integer comparison
//! and the `(start, end)` interval test decides ancestorship in O(1) —
//! the labeling scheme behind the structural-join literature the talk
//! surveys (Al-Khalifa et al.).

use crate::index::TagIndex;
use std::sync::Arc;
use xqr_tokenstream::{ParserTokenIterator, StringPool, Token, TokenIterator};
use xqr_xdm::{Error, NameId, NamePool, NodeKind, QName, Result};

/// Identifies a document within a [`crate::store::Store`].
///
/// Ids are *generation-checked*: the store reuses the slot of a removed
/// document (see `Store::remove_document`) but bumps the slot's
/// generation, so a stale `DocId` held across a removal can never
/// silently resolve to the wrong document — it fails the generation
/// check instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId {
    pub(crate) index: u32,
    pub(crate) generation: u32,
}

impl DocId {
    pub(crate) fn new(index: u32, generation: u32) -> Self {
        DocId { index, generation }
    }

    /// The slot index within the store (stable while the document lives).
    pub fn index(&self) -> u32 {
        self.index
    }

    /// The slot generation this id was minted under.
    pub fn generation(&self) -> u32 {
        self.generation
    }
}

/// A node within one document: its preorder index.
///
/// `repr(transparent)` is load-bearing: the segment layer persists
/// `Labeled { node: NodeId, … }` records byte-for-byte and reads them
/// back as zero-copy slices from mapped files, which requires `NodeId`
/// to have exactly `u32`'s layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct NodeId(pub u32);

pub const NO_NODE: u32 = u32::MAX;

/// A fully built, immutable document.
pub struct Document {
    pub names: Arc<NamePool>,
    kinds: Vec<NodeKind>,
    node_names: Vec<NameId>,
    parents: Vec<u32>,
    next_siblings: Vec<u32>,
    first_children: Vec<u32>,
    /// Index of the last node in this node's subtree (containment `end`;
    /// == own index for leaves).
    subtree_ends: Vec<u32>,
    levels: Vec<u16>,
    /// Pooled content: text of text/comment nodes, value of attributes,
    /// data of PIs, uri of namespace nodes. `NO_NODE` when absent.
    values: Vec<u32>,
    strings: StringPool,
    tag_index: TagIndex,
    /// Base URI (document-uri); informational.
    pub uri: Option<String>,
}

impl Document {
    /// Parse XML text into a document (streaming through tokens).
    pub fn parse(input: &str, names: Arc<NamePool>) -> Result<Arc<Document>> {
        Self::parse_with_uri(input, names, None)
    }

    /// Parse with a document URI attached (for `fn:doc` lookup).
    pub fn parse_with_uri(
        input: &str,
        names: Arc<NamePool>,
        uri: Option<&str>,
    ) -> Result<Arc<Document>> {
        let mut it = ParserTokenIterator::new(input, names.clone());
        Self::from_tokens_with_uri(&mut it, names, uri)
    }

    /// Guarded parse: the token pull charges `guard`'s token budget and
    /// the underlying reader enforces its depth/document-size limits.
    pub fn parse_guarded(
        input: &str,
        names: Arc<NamePool>,
        uri: Option<&str>,
        guard: &xqr_xdm::QueryGuard,
    ) -> Result<Arc<Document>> {
        let mut it = ParserTokenIterator::with_guard(input, names.clone(), guard.clone());
        Self::from_tokens_with_uri(&mut it, names, uri)
    }

    /// Build from any token iterator.
    pub fn from_tokens(it: &mut dyn TokenIterator, names: Arc<NamePool>) -> Result<Arc<Document>> {
        Self::from_tokens_with_uri(it, names, None)
    }

    pub fn from_tokens_with_uri(
        it: &mut dyn TokenIterator,
        names: Arc<NamePool>,
        uri: Option<&str>,
    ) -> Result<Arc<Document>> {
        let mut b = DocumentBuilder::new(names);
        if let Some(u) = uri {
            b = b.with_uri(u);
        }
        while let Some(t) = it.next_token()? {
            match t {
                Token::StartDocument => b.start_document(),
                Token::EndDocument => b.end(),
                Token::StartElement(n) => b.start_element_id(n),
                Token::EndElement => b.end(),
                Token::Attribute(n, v) => b.attribute_id(n, &it.pooled_str(v)),
                Token::NamespaceDecl(p, u) => b.namespace(&it.pooled_str(p), &it.pooled_str(u)),
                Token::Text(s) => b.text(&it.pooled_str(s)),
                Token::Comment(s) => b.comment(&it.pooled_str(s)),
                Token::ProcessingInstruction(n, d) => {
                    let q = it.name(n);
                    b.pi(q.local_name(), &it.pooled_str(d));
                }
            }
        }
        b.finish()
    }

    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The document node (root of the tree). Every document has one.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.0 as usize]
    }

    pub fn name_id(&self, n: NodeId) -> NameId {
        self.node_names[n.0 as usize]
    }

    pub fn name(&self, n: NodeId) -> Option<QName> {
        let id = self.name_id(n);
        if id.is_none() && !self.kind(n).is_named() {
            None
        } else {
            Some(self.names.resolve(id))
        }
    }

    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        let p = self.parents[n.0 as usize];
        (p != NO_NODE).then_some(NodeId(p))
    }

    pub fn first_child(&self, n: NodeId) -> Option<NodeId> {
        let c = self.first_children[n.0 as usize];
        (c != NO_NODE).then_some(NodeId(c))
    }

    pub fn next_sibling(&self, n: NodeId) -> Option<NodeId> {
        let s = self.next_siblings[n.0 as usize];
        (s != NO_NODE).then_some(NodeId(s))
    }

    /// Containment label start (== preorder index).
    pub fn start(&self, n: NodeId) -> u32 {
        n.0
    }

    /// Containment label end: index of the last descendant.
    pub fn end(&self, n: NodeId) -> u32 {
        self.subtree_ends[n.0 as usize]
    }

    pub fn level(&self, n: NodeId) -> u16 {
        self.levels[n.0 as usize]
    }

    /// O(1) ancestorship via interval containment: is `a` an ancestor of `d`?
    pub fn is_ancestor(&self, a: NodeId, d: NodeId) -> bool {
        a.0 < d.0 && d.0 <= self.subtree_ends[a.0 as usize]
    }

    /// Raw content of a leaf-ish node (text, comment, PI data, attribute
    /// value, namespace uri).
    pub fn value(&self, n: NodeId) -> Option<&str> {
        let v = self.values[n.0 as usize];
        (v != NO_NODE).then(|| self.strings.get(xqr_tokenstream::StrId(v)))
    }

    /// `string-value` accessor: concatenated descendant text for
    /// elements/documents, content otherwise.
    pub fn string_value(&self, n: NodeId) -> String {
        match self.kind(n) {
            NodeKind::Element | NodeKind::Document => {
                let mut out = String::new();
                let end = self.end(n);
                let mut i = n.0 + 1;
                while i <= end {
                    if self.kinds[i as usize] == NodeKind::Text {
                        if let Some(v) = self.value(NodeId(i)) {
                            out.push_str(v);
                        }
                    }
                    i += 1;
                }
                out
            }
            _ => self.value(n).unwrap_or("").to_string(),
        }
    }

    /// The Dewey label of a node: child ordinals from the root. Used by
    /// tests comparing labeling schemes and by `order by` tiebreaks.
    pub fn dewey(&self, n: NodeId) -> Vec<u32> {
        let mut path = Vec::new();
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            // ordinal among *all* preceding siblings (attrs included).
            let mut ord = 0;
            let mut c = self.first_child(p);
            while let Some(ch) = c {
                if ch == cur {
                    break;
                }
                ord += 1;
                c = self.next_sibling(ch);
            }
            path.push(ord);
            cur = p;
        }
        path.reverse();
        path
    }

    /// All elements (and attributes) with the given name, in document
    /// order — the inverted list structural joins consume.
    pub fn elements_named(&self, name: NameId) -> &[u32] {
        self.tag_index.elements(name)
    }

    pub fn attributes_named(&self, name: NameId) -> &[u32] {
        self.tag_index.attributes(name)
    }

    /// All element node ids in document order.
    pub fn all_elements(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as u32)
            .map(NodeId)
            .filter(|&n| self.kind(n) == NodeKind::Element)
    }

    /// Attributes of an element: the Attribute/Namespace nodes stored
    /// directly after it.
    pub fn attributes(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut i = n.0 + 1;
        let len = self.len() as u32;
        std::iter::from_fn(move || {
            while i < len {
                let k = self.kinds[i as usize];
                if k == NodeKind::Attribute {
                    let id = NodeId(i);
                    i += 1;
                    return Some(id);
                } else if k == NodeKind::Namespace {
                    i += 1;
                    continue;
                }
                break;
            }
            None
        })
    }

    /// Namespace nodes of an element.
    pub fn namespaces(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut i = n.0 + 1;
        let len = self.len() as u32;
        std::iter::from_fn(move || {
            if i < len && self.kinds[i as usize] == NodeKind::Namespace {
                let id = NodeId(i);
                i += 1;
                return Some(id);
            }
            None
        })
    }

    /// Look up an attribute by name.
    pub fn attribute(&self, n: NodeId, name: &QName) -> Option<NodeId> {
        self.attributes(n)
            .find(|&a| self.name(a).as_ref() == Some(name))
    }

    /// Approximate memory footprint (bytes) — the representation
    /// experiment compares this against DOM and TokenStream figures.
    pub fn memory_bytes(&self) -> usize {
        let n = self.len();
        n * (std::mem::size_of::<NodeKind>() + 4 /*names*/ + 4 * 4 /*links*/ + 2 /*level*/ + 4/*values*/)
            + self.strings.payload_bytes()
            + self.tag_index.memory_bytes()
    }

    /// Borrowed view of the struct-of-arrays, for serialization into a
    /// durable segment. Node id == array index throughout.
    pub fn raw_parts(&self) -> DocParts<'_> {
        DocParts {
            kinds: &self.kinds,
            node_names: &self.node_names,
            parents: &self.parents,
            next_siblings: &self.next_siblings,
            first_children: &self.first_children,
            subtree_ends: &self.subtree_ends,
            levels: &self.levels,
            values: &self.values,
            strings: &self.strings,
            uri: self.uri.as_deref(),
        }
    }

    /// Reassemble a document from deserialized arrays (the segment load
    /// path — skips parsing entirely). Validates the cross-array
    /// invariants that later accessors index on without bounds checks,
    /// so a logic error in a segment reader surfaces here as a coded
    /// error rather than a panic mid-query. The tag index is rebuilt
    /// (one cheap pass) instead of being persisted.
    pub fn from_raw_parts(names: Arc<NamePool>, parts: DocPartsOwned) -> Result<Arc<Document>> {
        let n = parts.kinds.len();
        if parts.node_names.len() != n
            || parts.parents.len() != n
            || parts.next_siblings.len() != n
            || parts.first_children.len() != n
            || parts.subtree_ends.len() != n
            || parts.levels.len() != n
            || parts.values.len() != n
        {
            return Err(Error::value("document arrays disagree on length"));
        }
        let n32 = n as u32;
        let in_range = |v: u32| v == NO_NODE || v < n32;
        let pool_len = parts.strings.len() as u32;
        let name_len = names.len() as u32;
        for i in 0..n {
            if !in_range(parts.parents[i])
                || !in_range(parts.next_siblings[i])
                || !in_range(parts.first_children[i])
                || parts.subtree_ends[i] >= n32
            {
                return Err(Error::value("document link out of range"));
            }
            let v = parts.values[i];
            if v != NO_NODE && v >= pool_len {
                return Err(Error::value("document value id out of range"));
            }
            if parts.node_names[i].0 >= name_len {
                return Err(Error::value("document name id out of range"));
            }
        }
        let tag_index = TagIndex::build(&parts.kinds, &parts.node_names);
        Ok(Arc::new(Document {
            names,
            kinds: parts.kinds,
            node_names: parts.node_names,
            parents: parts.parents,
            next_siblings: parts.next_siblings,
            first_children: parts.first_children,
            subtree_ends: parts.subtree_ends,
            levels: parts.levels,
            values: parts.values,
            strings: parts.strings,
            tag_index,
            uri: parts.uri,
        }))
    }

    /// Serialize the subtree rooted at `n` back to XML text.
    pub fn serialize_node(&self, n: NodeId) -> String {
        let mut out = String::new();
        self.serialize_into(n, &mut out);
        out
    }

    /// Serialize with writer options (pretty-printing etc.) by replaying
    /// the subtree as parser events.
    pub fn serialize_node_opts(
        &self,
        n: NodeId,
        opts: xqr_xmlparse::WriterOptions,
    ) -> Result<String> {
        let mut w = xqr_xmlparse::XmlWriter::new(opts);
        self.write_events(n, &mut w)?;
        Ok(w.into_string())
    }

    fn write_events(&self, n: NodeId, w: &mut xqr_xmlparse::XmlWriter) -> Result<()> {
        use xqr_xmlparse::{Attribute, NamespaceDecl, XmlEvent};
        match self.kind(n) {
            NodeKind::Document => {
                let mut c = self.first_child(n);
                while let Some(ch) = c {
                    self.write_events(ch, w)?;
                    c = self.next_sibling(ch);
                }
            }
            NodeKind::Element => {
                let name = self.name(n).expect("elements are named");
                let namespaces = self
                    .namespaces(n)
                    .map(|ns| {
                        let prefix = self
                            .name(ns)
                            .map(|q| q.local_name().to_string())
                            .unwrap_or_default();
                        NamespaceDecl {
                            prefix: if prefix.is_empty() {
                                None
                            } else {
                                Some(prefix.into())
                            },
                            uri: self.value(ns).unwrap_or("").into(),
                        }
                    })
                    .collect();
                let attributes = self
                    .attributes(n)
                    .map(|a| Attribute {
                        name: self.name(a).expect("attrs are named"),
                        value: self.value(a).unwrap_or("").into(),
                    })
                    .collect();
                w.write(&XmlEvent::StartElement {
                    name: name.clone(),
                    attributes,
                    namespaces,
                    empty: false,
                })?;
                let mut c = self.first_child(n);
                while let Some(ch) = c {
                    self.write_events(ch, w)?;
                    c = self.next_sibling(ch);
                }
                w.write(&XmlEvent::EndElement { name })?;
            }
            NodeKind::Text => {
                w.write(&XmlEvent::Text(self.value(n).unwrap_or("").into()))?;
            }
            NodeKind::Comment => {
                w.write(&XmlEvent::Comment(self.value(n).unwrap_or("").into()))?;
            }
            NodeKind::ProcessingInstruction => {
                let target = self
                    .name(n)
                    .map(|q| q.local_name().to_string())
                    .unwrap_or_default();
                w.write(&XmlEvent::ProcessingInstruction {
                    target: target.into(),
                    data: self.value(n).unwrap_or("").into(),
                })?;
            }
            NodeKind::Attribute | NodeKind::Namespace => {
                w.write(&XmlEvent::Text(self.value(n).unwrap_or("").into()))?;
            }
        }
        Ok(())
    }

    fn serialize_into(&self, n: NodeId, out: &mut String) {
        match self.kind(n) {
            NodeKind::Document => {
                let mut c = self.first_child(n);
                while let Some(ch) = c {
                    self.serialize_into(ch, out);
                    c = self.next_sibling(ch);
                }
            }
            NodeKind::Element => {
                let name = self.name(n).expect("elements are named");
                out.push('<');
                out.push_str(&name.lexical());
                for ns in self.namespaces(n) {
                    let prefix = self.name(ns).map(|q| q.local_name().to_string());
                    match prefix.as_deref() {
                        Some("") | None => out.push_str(" xmlns"),
                        Some(p) => {
                            out.push_str(" xmlns:");
                            out.push_str(p);
                        }
                    }
                    out.push_str("=\"");
                    xqr_xmlparse::escape_attr(self.value(ns).unwrap_or(""), out);
                    out.push('"');
                }
                for a in self.attributes(n) {
                    out.push(' ');
                    out.push_str(&self.name(a).expect("attrs are named").lexical());
                    out.push_str("=\"");
                    xqr_xmlparse::escape_attr(self.value(a).unwrap_or(""), out);
                    out.push('"');
                }
                match self.first_child(n) {
                    None => out.push_str("/>"),
                    Some(first) => {
                        out.push('>');
                        let mut c = Some(first);
                        while let Some(ch) = c {
                            self.serialize_into(ch, out);
                            c = self.next_sibling(ch);
                        }
                        out.push_str("</");
                        out.push_str(&name.lexical());
                        out.push('>');
                    }
                }
            }
            NodeKind::Text => xqr_xmlparse::escape_text(self.value(n).unwrap_or(""), out),
            NodeKind::Comment => {
                out.push_str("<!--");
                out.push_str(self.value(n).unwrap_or(""));
                out.push_str("-->");
            }
            NodeKind::ProcessingInstruction => {
                out.push_str("<?");
                if let Some(q) = self.name(n) {
                    out.push_str(q.local_name());
                }
                let data = self.value(n).unwrap_or("");
                if !data.is_empty() {
                    out.push(' ');
                    out.push_str(data);
                }
                out.push_str("?>");
            }
            NodeKind::Attribute | NodeKind::Namespace => {
                // Standalone attribute serialization: its value.
                out.push_str(self.value(n).unwrap_or(""));
            }
        }
    }
}

impl std::fmt::Debug for Document {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Document({} nodes)", self.len())
    }
}

/// Borrowed struct-of-arrays view of a document (see
/// [`Document::raw_parts`]).
pub struct DocParts<'a> {
    pub kinds: &'a [NodeKind],
    pub node_names: &'a [NameId],
    pub parents: &'a [u32],
    pub next_siblings: &'a [u32],
    pub first_children: &'a [u32],
    pub subtree_ends: &'a [u32],
    pub levels: &'a [u16],
    pub values: &'a [u32],
    pub strings: &'a StringPool,
    pub uri: Option<&'a str>,
}

/// Owned struct-of-arrays for reassembly (see
/// [`Document::from_raw_parts`]).
pub struct DocPartsOwned {
    pub kinds: Vec<NodeKind>,
    pub node_names: Vec<NameId>,
    pub parents: Vec<u32>,
    pub next_siblings: Vec<u32>,
    pub first_children: Vec<u32>,
    pub subtree_ends: Vec<u32>,
    pub levels: Vec<u16>,
    pub values: Vec<u32>,
    pub strings: StringPool,
    pub uri: Option<String>,
}

/// Streaming builder producing the struct-of-arrays representation.
pub struct DocumentBuilder {
    doc: DocumentParts,
    /// Stack of open nodes (document + elements).
    open: Vec<u32>,
    /// Per open node: last child pushed (to wire next_sibling).
    last_child: Vec<u32>,
    started: bool,
}

struct DocumentParts {
    names: Arc<NamePool>,
    kinds: Vec<NodeKind>,
    node_names: Vec<NameId>,
    parents: Vec<u32>,
    next_siblings: Vec<u32>,
    first_children: Vec<u32>,
    subtree_ends: Vec<u32>,
    levels: Vec<u16>,
    values: Vec<u32>,
    strings: StringPool,
    uri: Option<String>,
}

impl DocumentBuilder {
    pub fn new(names: Arc<NamePool>) -> Self {
        DocumentBuilder {
            doc: DocumentParts {
                names,
                kinds: Vec::new(),
                node_names: Vec::new(),
                parents: Vec::new(),
                next_siblings: Vec::new(),
                first_children: Vec::new(),
                subtree_ends: Vec::new(),
                levels: Vec::new(),
                values: Vec::new(),
                strings: StringPool::new(),
                uri: None,
            },
            open: Vec::new(),
            last_child: Vec::new(),
            started: false,
        }
    }

    pub fn with_uri(mut self, uri: impl Into<String>) -> Self {
        self.doc.uri = Some(uri.into());
        self
    }

    fn push_node(&mut self, kind: NodeKind, name: NameId, value: Option<&str>) -> u32 {
        let idx = self.doc.kinds.len() as u32;
        let parent = self.open.last().copied().unwrap_or(NO_NODE);
        self.doc.kinds.push(kind);
        self.doc.node_names.push(name);
        self.doc.parents.push(parent);
        self.doc.next_siblings.push(NO_NODE);
        self.doc.first_children.push(NO_NODE);
        self.doc.subtree_ends.push(idx);
        self.doc.levels.push(self.open.len() as u16);
        self.doc.values.push(match value {
            Some(v) => self.doc.strings.intern(v).0,
            None => NO_NODE,
        });
        // Attribute/namespace nodes attach to the parent but do not chain
        // into the child list.
        let is_attrish = matches!(kind, NodeKind::Attribute | NodeKind::Namespace);
        if parent != NO_NODE && !is_attrish {
            let last = self.last_child.last_mut().expect("open stack in sync");
            if *last == NO_NODE {
                self.doc.first_children[parent as usize] = idx;
            } else {
                self.doc.next_siblings[*last as usize] = idx;
            }
            *last = idx;
        }
        idx
    }

    pub fn start_document(&mut self) {
        if !self.started {
            self.started = true;
            let idx = self.push_node(NodeKind::Document, NameId::NONE, None);
            self.open.push(idx);
            self.last_child.push(NO_NODE);
        }
    }

    pub fn start_element(&mut self, name: &QName) {
        let id = self.doc.names.intern(name);
        self.start_element_id(id);
    }

    pub fn start_element_id(&mut self, name: NameId) {
        self.start_document();
        let idx = self.push_node(NodeKind::Element, name, None);
        self.open.push(idx);
        self.last_child.push(NO_NODE);
    }

    /// Close the innermost open node (element or document).
    pub fn end(&mut self) {
        if let Some(idx) = self.open.pop() {
            self.last_child.pop();
            let end = (self.doc.kinds.len() as u32).saturating_sub(1);
            self.doc.subtree_ends[idx as usize] = end;
        }
    }

    pub fn attribute(&mut self, name: &QName, value: &str) {
        let id = self.doc.names.intern(name);
        self.attribute_id(id, value);
    }

    pub fn attribute_id(&mut self, name: NameId, value: &str) {
        self.push_node(NodeKind::Attribute, name, Some(value));
    }

    pub fn namespace(&mut self, prefix: &str, uri: &str) {
        let id = self.doc.names.intern(&QName::local(prefix));
        self.push_node(NodeKind::Namespace, id, Some(uri));
    }

    pub fn text(&mut self, content: &str) {
        self.start_document();
        // Adjacent text nodes merge, per the data model.
        if let Some(&last) = self.last_child.last() {
            if last != NO_NODE
                && self.doc.kinds[last as usize] == NodeKind::Text
                && last == (self.doc.kinds.len() as u32 - 1)
            {
                let merged = format!(
                    "{}{}",
                    self.doc
                        .strings
                        .get(xqr_tokenstream::StrId(self.doc.values[last as usize])),
                    content
                );
                self.doc.values[last as usize] = self.doc.strings.intern(&merged).0;
                return;
            }
        }
        self.push_node(NodeKind::Text, NameId::NONE, Some(content));
    }

    pub fn comment(&mut self, content: &str) {
        self.start_document();
        self.push_node(NodeKind::Comment, NameId::NONE, Some(content));
    }

    pub fn pi(&mut self, target: &str, data: &str) {
        self.start_document();
        let id = self.doc.names.intern(&QName::local(target));
        self.push_node(NodeKind::ProcessingInstruction, id, Some(data));
    }

    pub fn finish(mut self) -> Result<Arc<Document>> {
        if !self.started {
            self.start_document();
            self.open.pop();
            self.last_child.pop();
        }
        // Close anything left open (incl. the document node).
        while !self.open.is_empty() {
            if self.open.len() == 1 {
                self.end();
            } else {
                return Err(Error::internal(
                    "document builder finished with open elements",
                ));
            }
        }
        let tag_index = TagIndex::build(&self.doc.kinds, &self.doc.node_names);
        let d = self.doc;
        Ok(Arc::new(Document {
            names: d.names,
            kinds: d.kinds,
            node_names: d.node_names,
            parents: d.parents,
            next_siblings: d.next_siblings,
            first_children: d.first_children,
            subtree_ends: d.subtree_ends,
            levels: d.levels,
            values: d.values,
            strings: d.strings,
            tag_index,
            uri: d.uri,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(xml: &str) -> Arc<Document> {
        Document::parse(xml, Arc::new(NamePool::new())).unwrap()
    }

    #[test]
    fn builds_structure() {
        let d = doc(
            r#"<book year="1967"><title>The politics of experience</title><author>R.D. Laing</author></book>"#,
        );
        // document + book + @year + title + text + author + text
        assert_eq!(d.len(), 7);
        let root = d.root();
        assert_eq!(d.kind(root), NodeKind::Document);
        let book = d.first_child(root).unwrap();
        assert_eq!(d.name(book).unwrap().local_name(), "book");
        let title = d.first_child(book).unwrap();
        assert_eq!(d.name(title).unwrap().local_name(), "title");
        let author = d.next_sibling(title).unwrap();
        assert_eq!(d.name(author).unwrap().local_name(), "author");
        assert!(d.next_sibling(author).is_none());
    }

    #[test]
    fn attributes_are_not_children() {
        let d = doc(r#"<a x="1" y="2"><b/></a>"#);
        let a = d.first_child(d.root()).unwrap();
        let attrs: Vec<_> = d.attributes(a).collect();
        assert_eq!(attrs.len(), 2);
        let b = d.first_child(a).unwrap();
        assert_eq!(d.name(b).unwrap().local_name(), "b");
        assert_eq!(d.value(attrs[0]), Some("1"));
        assert_eq!(d.parent(attrs[0]), Some(a));
    }

    #[test]
    fn containment_labels() {
        let d = doc("<a><b><c/></b><e/></a>");
        let a = d.first_child(d.root()).unwrap();
        let b = d.first_child(a).unwrap();
        let c = d.first_child(b).unwrap();
        let e = d.next_sibling(b).unwrap();
        assert!(d.is_ancestor(a, b));
        assert!(d.is_ancestor(a, c));
        assert!(d.is_ancestor(b, c));
        assert!(!d.is_ancestor(b, e));
        assert!(!d.is_ancestor(c, b));
        assert!(!d.is_ancestor(a, a));
        assert_eq!(d.level(a), 1);
        assert_eq!(d.level(c), 3);
        assert_eq!(d.end(a), e.0);
    }

    #[test]
    fn string_value_concatenates_descendant_text() {
        let d = doc("<s>The great <title>P</title> facts</s>");
        let s = d.first_child(d.root()).unwrap();
        assert_eq!(d.string_value(s), "The great P facts");
    }

    #[test]
    fn adjacent_texts_merge() {
        let d = doc("<a>x<![CDATA[y]]>z</a>");
        let a = d.first_child(d.root()).unwrap();
        let t = d.first_child(a).unwrap();
        assert_eq!(d.kind(t), NodeKind::Text);
        assert_eq!(d.value(t), Some("xyz"));
        assert!(d.next_sibling(t).is_none());
    }

    #[test]
    fn dewey_labels() {
        let d = doc("<a><b/><b><c/></b></a>");
        let a = d.first_child(d.root()).unwrap();
        let b1 = d.first_child(a).unwrap();
        let b2 = d.next_sibling(b1).unwrap();
        let c = d.first_child(b2).unwrap();
        assert_eq!(d.dewey(a), vec![0]);
        assert_eq!(d.dewey(b1), vec![0, 0]);
        assert_eq!(d.dewey(b2), vec![0, 1]);
        assert_eq!(d.dewey(c), vec![0, 1, 0]);
    }

    #[test]
    fn tag_index_lists_in_document_order() {
        let d = doc("<a><b/><c><b/></c><b/></a>");
        let name = d.names.get(&QName::local("b")).unwrap();
        let list = d.elements_named(name);
        assert_eq!(list.len(), 3);
        assert!(list.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn serialize_roundtrip() {
        let xml = r#"<a x="1"><b>hi &amp; low</b><!--c--><?p d?></a>"#;
        let d = doc(xml);
        assert_eq!(d.serialize_node(d.root()), xml);
    }

    #[test]
    fn namespace_nodes_kept() {
        let d = doc(r#"<a xmlns:p="urn:p"><p:b/></a>"#);
        let a = d.first_child(d.root()).unwrap();
        let ns: Vec<_> = d.namespaces(a).collect();
        assert_eq!(ns.len(), 1);
        assert_eq!(d.value(ns[0]), Some("urn:p"));
        assert_eq!(
            d.serialize_node(d.root()),
            r#"<a xmlns:p="urn:p"><p:b/></a>"#
        );
    }

    #[test]
    fn attribute_lookup() {
        let d = doc(r#"<a year="1967"/>"#);
        let a = d.first_child(d.root()).unwrap();
        let y = d.attribute(a, &QName::local("year")).unwrap();
        assert_eq!(d.value(y), Some("1967"));
        assert!(d.attribute(a, &QName::local("nope")).is_none());
    }
}
