//! Per-tag inverted lists: for each element/attribute name, the node ids
//! carrying it, in document order. These are the "element lists" that the
//! structural-join algorithms (crate `xqr-joins`) merge, and what the
//! engine uses to seed `//name` scans without walking the whole tree.

use std::collections::HashMap;
use xqr_xdm::{NameId, NodeKind};

#[derive(Debug, Default)]
pub struct TagIndex {
    elements: HashMap<NameId, Vec<u32>>,
    attributes: HashMap<NameId, Vec<u32>>,
}

impl TagIndex {
    /// Build from the parallel kind/name arrays (node id == array index,
    /// already in document order).
    pub fn build(kinds: &[NodeKind], names: &[NameId]) -> Self {
        let mut idx = TagIndex::default();
        for (i, (&kind, &name)) in kinds.iter().zip(names).enumerate() {
            match kind {
                NodeKind::Element => idx.elements.entry(name).or_default().push(i as u32),
                NodeKind::Attribute => idx.attributes.entry(name).or_default().push(i as u32),
                _ => {}
            }
        }
        idx
    }

    pub fn elements(&self, name: NameId) -> &[u32] {
        self.elements.get(&name).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn attributes(&self, name: NameId) -> &[u32] {
        self.attributes.get(&name).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn element_names(&self) -> impl Iterator<Item = NameId> + '_ {
        self.elements.keys().copied()
    }

    pub fn memory_bytes(&self) -> usize {
        let entries: usize = self
            .elements
            .values()
            .chain(self.attributes.values())
            .map(|v| v.len() * 4 + 16)
            .sum();
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_separates_kinds() {
        let kinds = [
            NodeKind::Document,
            NodeKind::Element,
            NodeKind::Attribute,
            NodeKind::Element,
            NodeKind::Text,
        ];
        let names = [NameId(0), NameId(1), NameId(1), NameId(1), NameId(0)];
        let idx = TagIndex::build(&kinds, &names);
        assert_eq!(idx.elements(NameId(1)), &[1, 3]);
        assert_eq!(idx.attributes(NameId(1)), &[2]);
        assert_eq!(idx.elements(NameId(9)), &[] as &[u32]);
    }
}
