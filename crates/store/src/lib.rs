//! # xqr-store — labeled in-memory XML node store
//!
//! The materialized half of the engine: documents as struct-of-arrays in
//! preorder with containment labels *(start, end, level)*, per-tag
//! inverted lists for the structural joins, XPath axes, a multi-document
//! [`Store`] providing cross-document node identity/order, and a
//! pointer-based [`dom`] baseline used by the representation experiments.

pub mod axis;
pub mod document;
pub mod dom;
pub mod index;
pub mod store;

pub use axis::{walk, Axis};
pub use document::{DocId, DocParts, DocPartsOwned, Document, DocumentBuilder, NodeId, NO_NODE};
pub use index::TagIndex;
pub use store::{DocResolver, NodeRef, Store};
