//! # xqr-pressure — process-wide memory ledger and overload governance
//!
//! Every other resource bound in the system is *local*: the catalog
//! bounds resident documents, the plan cache bounds plans, each ingest
//! channel bounds one session. Nothing bounds their *sum*, so a burst
//! of concurrent ingest + batch + pubsub traffic can blow past any
//! intended process ceiling while every individual limiter reports
//! healthy. This crate is the one memory/overload brain the service
//! layers share:
//!
//! - A [`MemoryLedger`]: cheap atomic byte accounting under named
//!   [`Category`]s, charged at every allocation site that used to grow
//!   unaccounted (chunk-session buffers, ingest channels, subscription
//!   fallback documents, morsel output buffers, query output) or was
//!   charged only locally (catalog resident bytes, plan cache).
//! - Watermark-driven [`PressureState`]s — Green / Yellow / Red — with
//!   hysteresis: a state is entered at `enter` fraction of the ceiling
//!   and left only below `enter × (1 − hysteresis)`, so charge/release
//!   noise around a watermark cannot flap the brownout ladder.
//! - A hard ceiling: [`MemoryLedger::try_charge`] refuses a charge that
//!   would exceed the configured ceiling with a stable `XQRL0004`, so
//!   callers shed load instead of allocating past the budget.
//!
//! The ledger never acts on its own — it is a *signal*. Each layer
//! polls [`MemoryLedger::state`] at its admission points and walks its
//! own rung of the brownout ladder (skip index builds, demote cold
//! catalog entries, shrink the plan cache, shed morsels inline, reject
//! new sessions). Keeping the ledger passive keeps it cheap: a charge
//! is two or three atomic adds; the transition mutex is touched only
//! when a watermark is actually crossed.
//!
//! ## Transition discipline
//!
//! Observable state changes go **one step at a time** — Green→Red
//! passes through Yellow, and each entry bumps the matching transition
//! counter — so operators (and the property tests) can reconstruct the
//! pressure history from the counters alone. A small mutex serializes
//! the read-compute-write of a transition; charges themselves never
//! block on it unless a watermark is being crossed.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use xqr_xdm::{Error, Result};

/// Named accounting buckets. Every byte the service holds beyond plain
/// per-query evaluator state is charged to exactly one category, so the
/// per-category peaks in a [`LedgerSnapshot`] tell an operator *which*
/// subsystem drove a pressure episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Parsed + indexed documents resident in the catalog.
    CatalogResident,
    /// Compiled plans held by the plan cache (estimated).
    PlanCache,
    /// Chunked publish sessions: bytes buffered for the fallback pass.
    ChunkSessions,
    /// Streaming ingest: bounded token channels and buffered stream
    /// queries.
    IngestChannels,
    /// Subscription fallback / transient published documents.
    Subscriptions,
    /// Morsel-parallel join output buffers in flight.
    MorselBuffers,
    /// Serialized query output being handed back to clients.
    QueryOutput,
}

impl Category {
    pub const ALL: [Category; 7] = [
        Category::CatalogResident,
        Category::PlanCache,
        Category::ChunkSessions,
        Category::IngestChannels,
        Category::Subscriptions,
        Category::MorselBuffers,
        Category::QueryOutput,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            Category::CatalogResident => "catalog",
            Category::PlanCache => "plans",
            Category::ChunkSessions => "chunks",
            Category::IngestChannels => "ingest",
            Category::Subscriptions => "pubsub",
            Category::MorselBuffers => "morsels",
            Category::QueryOutput => "output",
        }
    }

    fn index(&self) -> usize {
        Category::ALL
            .iter()
            .position(|c| c == self)
            .expect("listed")
    }
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The three overload levels. Ordered: `Green < Yellow < Red`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum PressureState {
    /// Under the Yellow watermark: no degradation.
    #[default]
    Green,
    /// Brownout: expensive optional work (index builds, parallel
    /// morsels, plan caching headroom, cold resident documents) is
    /// shed to protect foreground queries.
    Yellow,
    /// Overload: new sessions, publishes and batch jobs are rejected
    /// with `XQRL0004` and resident state is evicted aggressively.
    Red,
}

impl PressureState {
    pub fn as_str(&self) -> &'static str {
        match self {
            PressureState::Green => "green",
            PressureState::Yellow => "yellow",
            PressureState::Red => "red",
        }
    }
}

impl std::fmt::Display for PressureState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Watermark configuration. All fractions are of `ceiling`.
///
/// With the defaults and a 100 MB ceiling: Yellow is entered at 70 MB
/// and left below 63 MB; Red is entered at 90 MB and left below 81 MB;
/// `try_charge` refuses to go past 100 MB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PressureConfig {
    /// Hard process budget in bytes. `None` disables governance: the
    /// ledger still accounts (peaks stay observable) but the state is
    /// always Green and `try_charge` never refuses.
    pub ceiling: Option<u64>,
    /// Fraction of the ceiling at which Yellow is entered.
    pub yellow_enter: f64,
    /// Fraction of the ceiling at which Red is entered.
    pub red_enter: f64,
    /// Exit watermark slack: a state is left below
    /// `enter × (1 − hysteresis)`. Zero means enter == exit (no
    /// hysteresis, maximal flapping); must stay below 1.
    pub hysteresis: f64,
}

impl Default for PressureConfig {
    fn default() -> Self {
        PressureConfig {
            ceiling: None,
            yellow_enter: 0.70,
            red_enter: 0.90,
            hysteresis: 0.10,
        }
    }
}

impl PressureConfig {
    /// Governance with a hard ceiling and the default watermarks.
    pub fn with_ceiling(bytes: u64) -> Self {
        PressureConfig {
            ceiling: Some(bytes),
            ..Default::default()
        }
    }

    fn yellow_enter_bytes(&self, ceiling: u64) -> u64 {
        (ceiling as f64 * self.yellow_enter.clamp(0.0, 1.0)) as u64
    }

    fn red_enter_bytes(&self, ceiling: u64) -> u64 {
        (ceiling as f64 * self.red_enter.clamp(0.0, 1.0)) as u64
    }

    fn exit_bytes(&self, enter: u64) -> u64 {
        (enter as f64 * (1.0 - self.hysteresis.clamp(0.0, 0.99))) as u64
    }
}

#[derive(Default)]
struct CatCell {
    current: AtomicU64,
    peak: AtomicU64,
}

/// Point-in-time copy of one category's gauge and high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CategorySnapshot {
    pub current: u64,
    pub peak: u64,
}

/// Point-in-time copy of the whole ledger, cheap to take (relaxed
/// loads, no locks). Surfaced through `ServiceStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerSnapshot {
    pub state: PressureState,
    pub total: u64,
    pub peak: u64,
    /// `0` when governance is disabled (no ceiling configured).
    pub ceiling: u64,
    /// Indexed by [`Category::ALL`] order.
    pub categories: [CategorySnapshot; Category::ALL.len()],
    /// Times each state was *entered* since construction.
    pub to_green: u64,
    pub to_yellow: u64,
    pub to_red: u64,
    /// Charges refused at the hard ceiling (`XQRL0004`).
    pub rejected: u64,
}

impl LedgerSnapshot {
    pub fn category(&self, cat: Category) -> CategorySnapshot {
        self.categories[cat.index()]
    }

    /// Total observable state transitions.
    pub fn transitions(&self) -> u64 {
        self.to_green + self.to_yellow + self.to_red
    }
}

/// The process-wide byte ledger. One per [`QueryService`]; every layer
/// holds an `Arc` and charges its category at allocation/release sites.
///
/// [`QueryService`]: ../xqr_service/struct.QueryService.html
pub struct MemoryLedger {
    config: PressureConfig,
    categories: [CatCell; Category::ALL.len()],
    total: AtomicU64,
    peak: AtomicU64,
    /// Encodes [`PressureState`]: 0 green, 1 yellow, 2 red.
    state: AtomicU8,
    /// Serializes watermark transitions so the observable state always
    /// moves one step at a time and each entry is counted exactly once.
    transition: Mutex<()>,
    to_green: AtomicU64,
    to_yellow: AtomicU64,
    to_red: AtomicU64,
    rejected: AtomicU64,
}

impl MemoryLedger {
    pub fn new(config: PressureConfig) -> Self {
        MemoryLedger {
            config,
            categories: Default::default(),
            total: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            state: AtomicU8::new(0),
            transition: Mutex::new(()),
            to_green: AtomicU64::new(0),
            to_yellow: AtomicU64::new(0),
            to_red: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Accounting-only ledger: no ceiling, state pinned Green.
    pub fn unbounded() -> Self {
        MemoryLedger::new(PressureConfig::default())
    }

    pub fn config(&self) -> &PressureConfig {
        &self.config
    }

    /// The configured hard ceiling, if governance is on.
    pub fn ceiling(&self) -> Option<u64> {
        self.config.ceiling
    }

    /// Current pressure state (relaxed load — a cheap poll).
    pub fn state(&self) -> PressureState {
        match self.state.load(Ordering::Relaxed) {
            0 => PressureState::Green,
            1 => PressureState::Yellow,
            _ => PressureState::Red,
        }
    }

    /// Total bytes currently charged across all categories.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Charge unconditionally: accounting sites that cannot shed (the
    /// bytes already exist). Watermarks still move, so the brownout
    /// ladder reacts on the next poll.
    pub fn charge(&self, cat: Category, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let cell = &self.categories[cat.index()];
        let cur = cell.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
        cell.peak.fetch_max(cur, Ordering::Relaxed);
        let total = self.total.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(total, Ordering::Relaxed);
        self.settle(total);
    }

    /// Charge only if the hard ceiling allows it. Refusal is a stable
    /// `XQRL0004` naming the category, the shortfall and the current
    /// state, so a shed at the ceiling is distinguishable from a full
    /// run queue. Carries the `pressure.charge` failpoint: injected
    /// faults here surface as coded errors from whatever admission
    /// path performed the charge.
    pub fn try_charge(&self, cat: Category, bytes: u64) -> Result<()> {
        xqr_faults::faultpoint!("pressure.charge");
        if let Some(ceiling) = self.config.ceiling {
            // Optimistic reserve: add, then back out on overshoot. Two
            // racing reservations may both back out — that is the safe
            // direction (shed rather than exceed).
            let total = self.total.fetch_add(bytes, Ordering::Relaxed) + bytes;
            if total > ceiling {
                self.total.fetch_sub(bytes, Ordering::Relaxed);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                self.settle(total - bytes);
                return Err(Error::overloaded(format!(
                    "memory ceiling: {} bytes for {} would put the ledger at {} of {} (state: {})",
                    bytes,
                    cat,
                    total,
                    ceiling,
                    self.state()
                )));
            }
            self.peak.fetch_max(total, Ordering::Relaxed);
            let cell = &self.categories[cat.index()];
            let cur = cell.current.fetch_add(bytes, Ordering::Relaxed) + bytes;
            cell.peak.fetch_max(cur, Ordering::Relaxed);
            self.settle(total);
            Ok(())
        } else {
            self.charge(cat, bytes);
            Ok(())
        }
    }

    /// Release previously charged bytes. Saturates at zero (a release
    /// bug must not wrap the gauge into the exabytes and wedge Red).
    pub fn release(&self, cat: Category, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let cell = &self.categories[cat.index()];
        saturating_sub(&cell.current, bytes);
        let total = saturating_sub(&self.total, bytes);
        self.settle(total);
    }

    /// Walk the state machine toward where `total` says it should be,
    /// one observable step per iteration. Green→Red therefore always
    /// passes through Yellow (and bumps `to_yellow` on the way).
    fn settle(&self, mut total: u64) {
        let Some(ceiling) = self.config.ceiling else {
            return;
        };
        let yellow_enter = self.config.yellow_enter_bytes(ceiling);
        let red_enter = self.config.red_enter_bytes(ceiling);
        let yellow_exit = self.config.exit_bytes(yellow_enter);
        let red_exit = self.config.exit_bytes(red_enter);
        loop {
            let cur = self.state();
            let step = match cur {
                PressureState::Green if total >= yellow_enter => PressureState::Yellow,
                PressureState::Yellow if total >= red_enter => PressureState::Red,
                PressureState::Yellow if total < yellow_exit => PressureState::Green,
                PressureState::Red if total < red_exit => PressureState::Yellow,
                _ => return,
            };
            let _guard = self.transition.lock().unwrap_or_else(|e| e.into_inner());
            // Re-read under the lock: a racer may have already moved.
            if self.state() != cur {
                continue;
            }
            self.state.store(step as u8, Ordering::Relaxed);
            match step {
                PressureState::Green => self.to_green.fetch_add(1, Ordering::Relaxed),
                PressureState::Yellow => self.to_yellow.fetch_add(1, Ordering::Relaxed),
                PressureState::Red => self.to_red.fetch_add(1, Ordering::Relaxed),
            };
            drop(_guard);
            // The gauge may have moved while we held the lock; settle
            // against the freshest value so we neither stop short nor
            // overshoot.
            total = self.total();
        }
    }

    pub fn snapshot(&self) -> LedgerSnapshot {
        let mut categories = [CategorySnapshot::default(); Category::ALL.len()];
        for (i, cell) in self.categories.iter().enumerate() {
            categories[i] = CategorySnapshot {
                current: cell.current.load(Ordering::Relaxed),
                peak: cell.peak.load(Ordering::Relaxed),
            };
        }
        LedgerSnapshot {
            state: self.state(),
            total: self.total(),
            peak: self.peak.load(Ordering::Relaxed),
            ceiling: self.config.ceiling.unwrap_or(0),
            categories,
            to_green: self.to_green.load(Ordering::Relaxed),
            to_yellow: self.to_yellow.load(Ordering::Relaxed),
            to_red: self.to_red.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

fn saturating_sub(cell: &AtomicU64, bytes: u64) -> u64 {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_sub(bytes);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return next,
            Err(seen) => cur = seen,
        }
    }
}

/// RAII charge: releases its bytes on drop, so a panic or early return
/// on any path between charge and release cannot leak ledger bytes.
/// Holds its own `Arc` — safe to move into worker closures and session
/// tables that outlive the charging scope.
pub struct Charge {
    ledger: Arc<MemoryLedger>,
    cat: Category,
    bytes: u64,
}

impl Charge {
    /// Unconditional charge (see [`MemoryLedger::charge`]).
    pub fn new(ledger: Arc<MemoryLedger>, cat: Category, bytes: u64) -> Charge {
        ledger.charge(cat, bytes);
        Charge { ledger, cat, bytes }
    }

    /// Ceiling-checked charge (see [`MemoryLedger::try_charge`]).
    pub fn try_new(ledger: Arc<MemoryLedger>, cat: Category, bytes: u64) -> Result<Charge> {
        ledger.try_charge(cat, bytes)?;
        Ok(Charge { ledger, cat, bytes })
    }

    /// Grow the charge by `more` bytes, refusing at the ceiling. On
    /// refusal the existing charge is untouched.
    pub fn try_grow(&mut self, more: u64) -> Result<()> {
        self.ledger.try_charge(self.cat, more)?;
        self.bytes += more;
        Ok(())
    }

    /// Grow unconditionally.
    pub fn grow(&mut self, more: u64) {
        self.ledger.charge(self.cat, more);
        self.bytes += more;
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Charge {
    fn drop(&mut self) {
        self.ledger.release(self.cat, self.bytes);
    }
}

/// Adapter: lets a [`MemoryLedger`] stand behind the dependency-free
/// [`xqr_xdm::MemorySink`] guard hook. The parallel executor charges
/// morsel output buffers through the query's guard without `xqr-xdm`
/// or `xqr-parallel` needing this crate's types at their API surface.
pub struct MorselSink(pub Arc<MemoryLedger>);

impl xqr_xdm::MemorySink for MorselSink {
    fn charge(&self, bytes: u64) {
        self.0.charge(Category::MorselBuffers, bytes);
    }
    fn release(&self, bytes: u64) {
        self.0.release(Category::MorselBuffers, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xqr_xdm::ErrorCode;

    fn bounded(ceiling: u64) -> MemoryLedger {
        MemoryLedger::new(PressureConfig::with_ceiling(ceiling))
    }

    #[test]
    fn accounting_tracks_current_and_peak_per_category() {
        let l = MemoryLedger::unbounded();
        l.charge(Category::PlanCache, 100);
        l.charge(Category::QueryOutput, 50);
        l.release(Category::PlanCache, 40);
        let s = l.snapshot();
        assert_eq!(s.category(Category::PlanCache).current, 60);
        assert_eq!(s.category(Category::PlanCache).peak, 100);
        assert_eq!(s.category(Category::QueryOutput).current, 50);
        assert_eq!(s.total, 110);
        assert_eq!(s.peak, 150);
        assert_eq!(s.state, PressureState::Green);
        assert_eq!(s.transitions(), 0, "no ceiling, no transitions");
    }

    #[test]
    fn release_saturates_instead_of_wrapping() {
        let l = bounded(1000);
        l.charge(Category::ChunkSessions, 10);
        l.release(Category::ChunkSessions, 999);
        let s = l.snapshot();
        assert_eq!(s.total, 0);
        assert_eq!(s.category(Category::ChunkSessions).current, 0);
        assert_eq!(s.state, PressureState::Green, "not wedged by underflow");
    }

    #[test]
    fn watermarks_enter_yellow_then_red_one_step_at_a_time() {
        let l = bounded(1000); // yellow at 700, red at 900
        l.charge(Category::CatalogResident, 650);
        assert_eq!(l.state(), PressureState::Green);
        l.charge(Category::CatalogResident, 100); // 750
        assert_eq!(l.state(), PressureState::Yellow);
        // A single charge that jumps Green-range to Red-range still
        // records an intermediate Yellow entry.
        let l2 = bounded(1000);
        l2.charge(Category::CatalogResident, 950);
        let s = l2.snapshot();
        assert_eq!(s.state, PressureState::Red);
        assert_eq!(s.to_yellow, 1, "passed through yellow: {s:?}");
        assert_eq!(s.to_red, 1);
    }

    #[test]
    fn hysteresis_holds_the_state_until_the_exit_watermark() {
        let l = bounded(1000); // yellow enters at 700, exits below 630
        l.charge(Category::IngestChannels, 750);
        assert_eq!(l.state(), PressureState::Yellow);
        l.release(Category::IngestChannels, 80); // 670: inside the band
        assert_eq!(l.state(), PressureState::Yellow, "no flap inside the band");
        l.release(Category::IngestChannels, 50); // 620 < 630
        assert_eq!(l.state(), PressureState::Green);
        let s = l.snapshot();
        assert_eq!((s.to_yellow, s.to_green), (1, 1));
    }

    #[test]
    fn try_charge_refuses_at_the_ceiling_with_xqrl0004() {
        let l = bounded(1000);
        l.try_charge(Category::QueryOutput, 900).unwrap();
        let err = l.try_charge(Category::QueryOutput, 200).unwrap_err();
        assert_eq!(err.code, ErrorCode::Overloaded);
        assert!(err.to_string().contains("memory ceiling"), "{err}");
        let s = l.snapshot();
        assert_eq!(s.total, 900, "refused charge fully backed out");
        assert_eq!(s.rejected, 1);
        // Headroom still admits.
        l.try_charge(Category::QueryOutput, 100).unwrap();
        assert_eq!(l.total(), 1000);
    }

    #[test]
    fn unbounded_ledger_never_refuses_and_stays_green() {
        let l = MemoryLedger::unbounded();
        l.try_charge(Category::Subscriptions, u64::MAX / 2).unwrap();
        assert_eq!(l.state(), PressureState::Green);
        assert_eq!(l.snapshot().ceiling, 0);
    }

    #[test]
    fn charge_guard_releases_on_drop_and_grow_is_ceiling_checked() {
        let ledger = Arc::new(bounded(1000));
        {
            let mut c = Charge::try_new(ledger.clone(), Category::ChunkSessions, 400).unwrap();
            c.try_grow(500).unwrap();
            assert_eq!(c.bytes(), 900);
            let err = c.try_grow(200).unwrap_err();
            assert_eq!(err.code, ErrorCode::Overloaded);
            assert_eq!(c.bytes(), 900, "failed grow leaves the charge intact");
            assert_eq!(ledger.total(), 900);
        }
        assert_eq!(ledger.total(), 0, "drop released everything");
        assert_eq!(ledger.state(), PressureState::Green);
    }

    #[test]
    fn concurrent_charges_balance_to_zero() {
        let ledger = Arc::new(bounded(1 << 40));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let ledger = ledger.clone();
                std::thread::spawn(move || {
                    let cat = Category::ALL[t % Category::ALL.len()];
                    for i in 0..1000u64 {
                        ledger.charge(cat, i % 97 + 1);
                        ledger.release(cat, i % 97 + 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = ledger.snapshot();
        assert_eq!(s.total, 0, "{s:?}");
        for cat in Category::ALL {
            assert_eq!(s.category(cat).current, 0);
        }
    }

    #[test]
    fn injected_fault_at_pressure_charge_is_a_coded_error() {
        use xqr_faults::{FaultKind, FaultRule, FaultSchedule};
        let l = bounded(1000);
        let _g = xqr_faults::install(
            FaultSchedule::new(7).rule(FaultRule::new("pressure.charge", FaultKind::ErrorReturn)),
        );
        let err = l.try_charge(Category::ChunkSessions, 10).unwrap_err();
        assert_eq!(err.code, ErrorCode::Unavailable);
        assert_eq!(l.total(), 0, "failed charge charged nothing");
    }

    /// Satellite: random charge/release sequences never skip a state,
    /// always respect hysteresis, and Green is re-entered after full
    /// release — no sticky Red. The model replays the same sequence
    /// against the watermark rules and checks the ledger agrees after
    /// every step; the transition counters must account for exactly
    /// the entries the model saw.
    #[test]
    fn property_random_sequences_respect_the_state_machine() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let config = PressureConfig::with_ceiling(10_000);
        let ceiling = 10_000u64;
        let yellow_enter = config.yellow_enter_bytes(ceiling);
        let red_enter = config.red_enter_bytes(ceiling);
        let yellow_exit = config.exit_bytes(yellow_enter);
        let red_exit = config.exit_bytes(red_enter);

        for seed in 0..64u64 {
            let mut rng = StdRng::seed_from_u64(0xB00B007 ^ seed);
            // Single-threaded drive: mirror every operation in a model
            // of the watermark rules and compare after each step.
            let ledger = MemoryLedger::new(config);
            let mut live: Vec<(Category, u64)> = Vec::new();
            let mut model_total: u64 = 0;
            let mut model = PressureState::Green;
            let (mut mg, mut my, mut mr) = (0u64, 0u64, 0u64);
            let mut settle = |total: u64, state: &mut PressureState| loop {
                let next = match *state {
                    PressureState::Green if total >= yellow_enter => PressureState::Yellow,
                    PressureState::Yellow if total >= red_enter => PressureState::Red,
                    PressureState::Yellow if total < yellow_exit => PressureState::Green,
                    PressureState::Red if total < red_exit => PressureState::Yellow,
                    _ => return,
                };
                assert_eq!(
                    (next as i8 - *state as i8).abs(),
                    1,
                    "skip {state:?}->{next:?}"
                );
                match next {
                    PressureState::Green => mg += 1,
                    PressureState::Yellow => my += 1,
                    PressureState::Red => mr += 1,
                }
                *state = next;
            };
            for _ in 0..600 {
                if live.is_empty() || rng.gen_bool(0.55) {
                    let cat = Category::ALL[rng.gen_range(0..Category::ALL.len())];
                    let bytes = rng.gen_range(1..2_501u64);
                    if ledger.try_charge(cat, bytes).is_ok() {
                        live.push((cat, bytes));
                        model_total += bytes;
                        assert!(model_total <= ceiling, "ceiling breached");
                        settle(model_total, &mut model);
                    } else {
                        assert!(model_total + bytes > ceiling, "spurious refusal");
                    }
                } else {
                    let idx = rng.gen_range(0..live.len());
                    let (cat, bytes) = live.swap_remove(idx);
                    ledger.release(cat, bytes);
                    model_total -= bytes;
                    settle(model_total, &mut model);
                }
                assert_eq!(ledger.state(), model, "seed {seed}: state diverged");
                assert_eq!(ledger.total(), model_total, "seed {seed}: gauge diverged");
            }
            // Full release: Green must be re-entered — no sticky Red.
            for (cat, bytes) in live.drain(..) {
                ledger.release(cat, bytes);
                model_total -= bytes;
                settle(model_total, &mut model);
            }
            assert_eq!(ledger.total(), 0);
            assert_eq!(
                ledger.state(),
                PressureState::Green,
                "seed {seed}: sticky state"
            );
            let s = ledger.snapshot();
            assert_eq!(
                (s.to_green, s.to_yellow, s.to_red),
                (mg, my, mr),
                "seed {seed}: transition counters diverged"
            );
        }
    }
}
