//! The talk's "XML message brokers" use case: "simple path expressions,
//! single input message, small data sets, transient and streaming data".
//!
//! A broker evaluates routing predicates over a stream of messages; the
//! engine's token-streaming mode never materializes a message, and
//! `skip()` jumps over subtrees that cannot match.
//!
//! ```sh
//! cargo run --example message_broker
//! ```

use xqr::Engine;

fn main() -> xqr::Result<()> {
    let engine = Engine::new();
    // Route on the order header: match /order/header/priority.
    let route = engine.compile("/order/header/priority")?;
    assert!(route.is_streamable(), "routing pattern should stream");

    // A stream of inbound messages (in reality: sockets / queues).
    let messages = [r#"<order id="1"><header><priority>gold</priority></header><lines><line sku="a" qty="2"/></lines></order>"#.to_string(),
        format!(
            r#"<order id="2"><header><priority>standard</priority></header><lines>{}</lines></order>"#,
            "<line sku=\"bulk\" qty=\"1\"/>".repeat(5_000)
        ),
        r#"<order id="3"><header><priority>gold</priority></header><lines/></order>"#.to_string(),
        r#"<note>not an order at all</note>"#.to_string()];

    let mut gold = 0usize;
    let mut total_skipped = 0u64;
    for (i, msg) in messages.iter().enumerate() {
        let mut matched = Vec::new();
        let stats = route.execute_streaming(&engine, msg, |m| matched.push(m.to_string()))?;
        total_skipped += stats.tokens_skipped;
        let is_gold = matched.iter().any(|m| m.contains("gold"));
        if is_gold {
            gold += 1;
        }
        println!(
            "message {}: {} bytes, priority match: {:?}, tokens skipped: {}",
            i + 1,
            msg.len(),
            matched.first().map(|s| s.as_str()).unwrap_or("-"),
            stats.tokens_skipped
        );
    }
    println!("\nrouted {gold} gold orders; skipped {total_skipped} tokens total");
    println!("(the 5000-line bulk order was skipped past, not parsed into a tree)");
    Ok(())
}
