//! Quickstart: compile and run XQuery against XML, three ways.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xqr::{bind, DynamicContext, Engine, Item};

fn main() -> xqr::Result<()> {
    // 1. One-shot: query a document string directly.
    let engine = Engine::new();
    let bib = r#"<bib>
        <book year="1994"><title>TCP/IP Illustrated</title><price>65.95</price></book>
        <book year="2000"><title>Data on the Web</title><price>39.95</price></book>
        <book year="1999"><title>Economics of Tech</title><price>129.95</price></book>
    </bib>"#;
    let cheap = engine.query_xml(bib, "//book[price < 100]/title/text()")?;
    println!("titles under $100: {cheap}");

    // 2. Prepared query, re-executed with different variable bindings.
    let prepared = engine.compile(
        "declare variable $limit external;
         for $b in //book
         where $b/price < $limit
         order by $b/price descending
         return <hit year=\"{$b/@year}\">{string($b/title)}</hit>",
    )?;
    let doc = engine.store().load_xml(bib, None)?;
    for limit in [50, 100, 200] {
        let mut ctx = DynamicContext::new();
        ctx.context_item = Some(Item::Node(xqr::NodeRef::new(doc, xqr::NodeId(0))));
        bind(&mut ctx, "limit", vec![Item::integer(limit)]);
        let result = prepared.execute(&engine, &ctx)?;
        println!("under ${limit}: {}", result.serialize_guarded().unwrap());
    }

    // 3. Inspect the compiled plan.
    let q = engine.compile("//book[1]/title")?;
    println!("\nplan for //book[1]/title:\n{}", q.explain());
    Ok(())
}
